//! F4 — Figure 4: the reference-count view is exact, live, and matches
//! the figure's numbers for the paper's own deployment.

use tyche_bench::scenarios::{self, layout};
use tyche_core::prelude::*;

#[test]
fn figure4_numbers_reproduced() {
    // The paper's Figure 4 shows, for the Fig. 3 deployment: confidential
    // regions with reference count 1, the shared window with 2, and the
    // driver/VM regions each with 1.
    let f = scenarios::fig2();
    let rows = scenarios::fig4_view(
        &f.monitor,
        &[
            layout::CRYPTO,
            layout::APP,
            layout::APP_CRYPTO,
            layout::APP_GPU,
            layout::NET,
        ],
    );
    assert_eq!(
        rows.iter().map(|r| r.refcount).collect::<Vec<_>>(),
        vec![1, 1, 2, 2, 2],
        "the figure's refcount column"
    );
    // And the figure's ownership column: who exactly is in each set.
    assert_eq!(rows[0].domains, vec![f.crypto]);
    assert_eq!(rows[1].domains, vec![f.app]);
    let mut want = vec![f.crypto, f.app];
    want.sort();
    assert_eq!(rows[2].domains, want);
    let mut want = vec![f.gpu_domain, f.app];
    want.sort();
    assert_eq!(rows[3].domains, want);
    let mut want = vec![f.provider, f.app];
    want.sort();
    assert_eq!(rows[4].domains, want);
}

#[test]
fn refcounts_track_every_transition_of_state() {
    let mut m = tyche_bench::boot();
    let os = m.engine.root().unwrap();
    let region = MemRegion::new(0x10_0000, 0x10_1000);
    let check = |m: &tyche_monitor::Monitor, want: usize, stage: &str| {
        assert_eq!(m.engine.refcount_mem(region), want, "{stage}");
    };
    check(&m, 1, "boot: OS only");
    let (a, _) = m.engine.create_domain(os).unwrap();
    let (b, _) = m.engine.create_domain(os).unwrap();
    let cap = {
        let mut client = libtyche::TycheClient::new(&mut m, 0);
        client.carve(region.start, region.end).unwrap()
    };
    check(&m, 1, "carve changes nothing");
    let s1 = m
        .engine
        .share(os, cap, a, None, Rights::RW, RevocationPolicy::NONE)
        .unwrap();
    check(&m, 2, "share adds a domain");
    let s2 = m
        .engine
        .share(a, s1, b, None, Rights::RO, RevocationPolicy::NONE)
        .unwrap();
    check(&m, 3, "onward share adds another");
    m.engine.revoke(a, s2).unwrap();
    check(&m, 2, "revoking the leaf share");
    let g = m
        .engine
        .grant(os, cap, b, None, Rights::RW, RevocationPolicy::ZERO)
        .unwrap();
    // Wait: cap still has the a-share child under it... grant suspends
    // the OS cap; a's share survives (it is an independent child).
    check(&m, 2, "grant moved OS's access to b; a still shares");
    m.engine.revoke(os, g).unwrap();
    check(&m, 2, "grant returned: OS + a");
    m.engine.revoke(os, s1).unwrap();
    check(&m, 1, "all sharing revoked");
    m.sync_effects().unwrap();
    assert!(tyche_core::audit::audit(&m.engine).is_empty());
}

#[test]
fn min_max_distinguish_partial_coverage() {
    let mut m = tyche_bench::boot();
    let os = m.engine.root().unwrap();
    let (a, _) = m.engine.create_domain(os).unwrap();
    let cap = {
        let mut client = libtyche::TycheClient::new(&mut m, 0);
        client.carve(0x10_0000, 0x10_2000).unwrap()
    };
    // Share only the first page of a two-page query range.
    m.engine
        .share(
            os,
            cap,
            a,
            Some(MemRegion::new(0x10_0000, 0x10_1000)),
            Rights::RO,
            RevocationPolicy::NONE,
        )
        .unwrap();
    let rc = m
        .engine
        .refcount_mem_full(MemRegion::new(0x10_0000, 0x10_2000));
    assert_eq!(rc.max, 2);
    assert_eq!(rc.min, 1);
    assert!(!rc.is_exclusive());
}
