//! §4.2 extension: "safely multiplexing (with and without SR-IOV) PCI
//! devices among TEEs". Two mutually distrustful enclaves each own one
//! virtual function of the same NIC; packets flow between them through
//! the device, yet neither can reach the other's memory — and the
//! no-SR-IOV alternative is demonstrably unsafe.

use tyche_core::prelude::*;
use tyche_hw::addr::GuestPhysAddr;
use tyche_hw::iommu::DeviceId;
use tyche_hw::sriov::{SriovNic, VfIndex, VfRing};
use tyche_monitor::{boot_x86, BootConfig};

const PF: u16 = 0x100;
const A_MEM: (u64, u64) = (0x10_0000, 0x10_4000);
const B_MEM: (u64, u64) = (0x20_0000, 0x20_4000);

/// Builds a TEE with memory + a VF device capability, sealed after both
/// (device capabilities, like all resources, must arrive before sealing).
fn tee_with_vf(m: &mut tyche_monitor::Monitor, mem: (u64, u64), vf_bus: u16) -> DomainId {
    let mut client = libtyche::TycheClient::new(m, 0);
    let (d, _gate) = client.create_domain().unwrap();
    let cap = client.carve(mem.0, mem.1).unwrap();
    client
        .grant(cap, d, Rights::RW, RevocationPolicy::OBFUSCATE)
        .unwrap();
    let dev = {
        let me = client.whoami();
        client
            .monitor
            .engine
            .caps_of(me)
            .iter()
            .find(|c| c.active && matches!(c.resource, Resource::Device(x) if x == vf_bus))
            .map(|c| c.id)
            .unwrap()
    };
    client
        .grant(dev, d, Rights::USE, RevocationPolicy::NONE)
        .unwrap();
    let core0 = {
        let me = client.whoami();
        client
            .monitor
            .engine
            .caps_of(me)
            .iter()
            .find(|c| c.active && matches!(c.resource, Resource::CpuCore(0)))
            .map(|c| c.id)
            .unwrap()
    };
    client
        .share(core0, d, None, Rights::USE, RevocationPolicy::NONE)
        .unwrap();
    client.set_entry(d, mem.0).unwrap();
    client.seal(d, SealPolicy::strict()).unwrap();
    d
}

#[test]
fn sriov_full_path() {
    let mut m = boot_x86(BootConfig {
        devices: vec![PF + 1, PF + 2],
        ..Default::default()
    });
    m.dom_write(0, A_MEM.0, b"packet from TEE A").unwrap();
    let a = tee_with_vf(&mut m, A_MEM, PF + 1);
    let b = tee_with_vf(&mut m, B_MEM, PF + 2);

    // The engine view: each VF owned by exactly one TEE.
    assert!(m.engine.owns_device(a, PF + 1));
    assert!(m.engine.owns_device(b, PF + 2));
    assert!(!m.engine.owns_device(a, PF + 2));
    // The I/O-MMU contexts follow the capabilities.
    let ctx_a = m.machine.iommu.context_of(DeviceId(PF + 1)).unwrap();
    let ctx_b = m.machine.iommu.context_of(DeviceId(PF + 2)).unwrap();
    assert_eq!(Some(ctx_a), m.x86_backend().unwrap().ept_root(a));
    assert_eq!(Some(ctx_b), m.x86_backend().unwrap().ept_root(b));
    assert_ne!(ctx_a, ctx_b);

    // Wire up the NIC: VF0 -> TEE A, VF1 -> TEE B.
    let mut nic = SriovNic::new(DeviceId(PF), 2);
    assert_eq!(nic.vf_device_id(VfIndex(0)), DeviceId(PF + 1));
    nic.configure_ring(
        VfIndex(0),
        VfRing {
            rx_base: GuestPhysAddr::new(A_MEM.0 + 0x2000),
            rx_slots: 4,
            slot_bytes: 256,
        },
    );
    nic.configure_ring(
        VfIndex(1),
        VfRing {
            rx_base: GuestPhysAddr::new(B_MEM.0 + 0x2000),
            rx_slots: 4,
            slot_bytes: 256,
        },
    );

    // A TEE-A packet lands in TEE B's ring through the device...
    nic.send(
        &mut m.machine.iommu,
        &mut m.machine.mem,
        VfIndex(0),
        VfIndex(1),
        GuestPhysAddr::new(A_MEM.0),
        17,
    )
    .unwrap();
    // ...readable by B (as B), invisible to the provider.
    let mut got = [0u8; 17];
    let gate_b = m
        .engine
        .caps()
        .find(|c| matches!(c.resource, Resource::Transition(t) if t == b))
        .map(|c| c.id)
        .unwrap();
    m.call(0, tyche_monitor::abi::MonitorCall::Enter { cap: gate_b })
        .unwrap();
    m.dom_read(0, B_MEM.0 + 0x2000, &mut got).unwrap();
    assert_eq!(&got, b"packet from TEE A");
    m.call(0, tyche_monitor::abi::MonitorCall::Return).unwrap();
    assert!(
        m.dom_read(0, B_MEM.0 + 0x2000, &mut [0u8; 1]).is_err(),
        "provider blind"
    );

    // And the boundary: A cannot transmit B's memory through its VF.
    let err = nic
        .send(
            &mut m.machine.iommu,
            &mut m.machine.mem,
            VfIndex(0),
            VfIndex(1),
            GuestPhysAddr::new(B_MEM.0),
            8,
        )
        .unwrap_err();
    assert!(matches!(err, tyche_hw::sriov::SendError::TxFault(_)));
}

#[test]
fn without_sriov_sharing_one_function_is_unsafe() {
    // The contrast case: one single-function device shared between two
    // TEEs. The I/O-MMU has ONE context per function, so whoever
    // programs the device last gets a DMA engine with the other's view —
    // the paper's motivation for SR-IOV-based multiplexing.
    let mut m = boot_x86(BootConfig {
        devices: vec![PF + 1],
        ..Default::default()
    });
    m.dom_write(0, A_MEM.0, b"tee a secret").unwrap();
    let a = tee_with_vf(&mut m, A_MEM, PF + 1);
    // The OS later re-grants the same function to a second TEE: the
    // engine forbids it while A holds it (exclusive USE grant) — the
    // monitor-level protection that makes non-SR-IOV sharing refusable.
    let os = m.engine.root().unwrap();
    let dev_cap_left: Vec<_> = m
        .engine
        .caps_of(os)
        .iter()
        .filter(|c| c.active && matches!(c.resource, Resource::Device(x) if x == PF + 1))
        .map(|c| c.id)
        .collect();
    assert!(
        dev_cap_left.is_empty(),
        "the OS granted the function away entirely"
    );
    assert!(m.engine.owns_device(a, PF + 1));
}
