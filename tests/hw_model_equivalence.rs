//! The executive is pinned to the model: after any sequence of monitor
//! calls, the hardware translation structures must grant exactly what
//! the capability engine says (`Monitor::audit_hardware`), on both
//! platforms, including across backend-refused (compensated) operations.

use proptest::prelude::*;
use tyche_core::prelude::*;
use tyche_monitor::abi::MonitorCall;
use tyche_monitor::{boot_riscv, boot_x86, BootConfig, Monitor};

/// An abstract monitor-call script the fuzzer drives. Capability ids are
/// chosen from the acting domain's live capabilities by index.
#[derive(Clone, Debug)]
enum Op {
    Create,
    Share {
        cap: usize,
        target: usize,
        page: u8,
        rights: u8,
    },
    Grant {
        cap: usize,
        target: usize,
    },
    Split {
        cap: usize,
        frac: u8,
    },
    Revoke {
        cap: usize,
    },
    SealAndEnter {
        target: usize,
    },
    Kill {
        target: usize,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Create),
        (0usize..32, 0usize..8, 0u8..200, 1u8..8).prop_map(|(cap, target, page, rights)| {
            Op::Share {
                cap,
                target,
                page,
                rights,
            }
        }),
        (0usize..32, 0usize..8).prop_map(|(cap, target)| Op::Grant { cap, target }),
        (0usize..32, 1u8..16).prop_map(|(cap, frac)| Op::Split { cap, frac }),
        (0usize..32).prop_map(|cap| Op::Revoke { cap }),
        (0usize..8).prop_map(|target| Op::SealAndEnter { target }),
        (0usize..8).prop_map(|target| Op::Kill { target }),
    ]
}

fn apply(m: &mut Monitor, op: &Op) {
    let os = m.engine.root().unwrap();
    // Always act as the OS on core 0 (return first if a prior op entered).
    while m.current_domain(0) != os {
        let _ = m.call(0, MonitorCall::Return);
    }
    let domains: Vec<DomainId> = m
        .engine
        .domains()
        .filter(|d| d.is_alive() && d.id != os)
        .map(|d| d.id)
        .collect();
    let caps: Vec<CapId> = m
        .engine
        .caps_of(os)
        .iter()
        .filter(|c| c.active)
        .map(|c| c.id)
        .collect();
    if caps.is_empty() {
        return;
    }
    let cap = |i: usize| caps[i % caps.len()];
    let dom = |i: usize| domains.get(i % domains.len().max(1)).copied();

    match op {
        Op::Create => {
            let _ = m.call(0, MonitorCall::CreateDomain);
        }
        Op::Share {
            cap: c,
            target,
            page,
            rights,
        } => {
            if let Some(t) = dom(*target) {
                let s = 0x10_0000 + (*page as u64) * 0x1000;
                let _ = m.call(
                    0,
                    MonitorCall::Share {
                        cap: cap(*c),
                        target: t,
                        sub: Some((s, s + 0x1000)),
                        rights: Rights(*rights),
                        policy: RevocationPolicy::ZERO,
                    },
                );
            }
        }
        Op::Grant { cap: c, target } => {
            if let Some(t) = dom(*target) {
                let _ = m.call(
                    0,
                    MonitorCall::Grant {
                        cap: cap(*c),
                        target: t,
                        rights: Rights::RW,
                        policy: RevocationPolicy::OBFUSCATE,
                    },
                );
            }
        }
        Op::Split { cap: c, frac } => {
            let id = cap(*c);
            if let Some(region) = m.engine.cap(id).and_then(|k| k.resource.as_mem()) {
                let at = (region.start + region.len() * (*frac as u64) / 16) & !0xfff;
                let _ = m.call(0, MonitorCall::Split { cap: id, at });
            }
        }
        Op::Revoke { cap: c } => {
            let _ = m.call(0, MonitorCall::Revoke { cap: cap(*c) });
        }
        Op::SealAndEnter { target } => {
            if let Some(t) = dom(*target) {
                let _ = m.call(
                    0,
                    MonitorCall::SetEntry {
                        domain: t,
                        entry: 0,
                    },
                );
                let _ = m.call(
                    0,
                    MonitorCall::Seal {
                        domain: t,
                        allow_outward: true,
                        allow_children: true,
                    },
                );
            }
        }
        Op::Kill { target } => {
            if let Some(t) = dom(*target) {
                let _ = m.call(0, MonitorCall::Kill { domain: t });
            }
        }
    }
}

fn small_boot(x86: bool) -> Monitor {
    // A small machine keeps the audit fast (fewer pages to enumerate).
    let config = BootConfig {
        machine: tyche_hw::machine::MachineConfig {
            ram_bytes: 8 * 1024 * 1024,
            monitor_reserved: 4 * 1024 * 1024,
            cores: 2,
            ..Default::default()
        },
        ..Default::default()
    };
    if x86 {
        boot_x86(config)
    } else {
        boot_riscv(config)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn x86_hardware_tracks_engine(ops in proptest::collection::vec(op_strategy(), 1..25)) {
        let mut m = small_boot(true);
        for op in &ops {
            apply(&mut m, op);
        }
        let issues = m.audit_hardware();
        prop_assert!(issues.is_empty(), "after {:?}: {:?}", ops, issues);
        prop_assert!(tyche_core::audit::audit(&m.engine).is_empty());
    }

    #[test]
    fn riscv_hardware_tracks_engine(ops in proptest::collection::vec(op_strategy(), 1..25)) {
        let mut m = small_boot(false);
        for op in &ops {
            apply(&mut m, op);
        }
        let issues = m.audit_hardware();
        prop_assert!(issues.is_empty(), "after {:?}: {:?}", ops, issues);
        prop_assert!(tyche_core::audit::audit(&m.engine).is_empty());
    }
}

#[test]
fn audit_clean_after_known_scenarios() {
    let m = boot_x86(BootConfig::default());
    let issues = m.audit_hardware();
    assert!(issues.is_empty(), "{issues:?}");
    // A full Figure 2 deployment audits clean too.
    let f = tyche_bench::scenarios::fig2();
    let issues = f.monitor.audit_hardware();
    assert!(issues.is_empty(), "{issues:?}");
    let _ = m;
}

#[test]
fn audit_detects_divergence() {
    // Sanity: the auditor is not vacuous — corrupt an EPT entry behind
    // the engine's back and the audit flags it.
    let mut m = small_boot(true);
    let os = m.engine.root().unwrap();
    let root = m.x86_backend().unwrap().ept_root(os).unwrap();
    let ept = tyche_hw::x86::ept::Ept::from_root(root);
    // Unmap a page the engine still grants.
    ept.unmap(
        &mut m.machine.mem,
        tyche_hw::addr::GuestPhysAddr::new(0x1000),
    )
    .unwrap();
    let issues = m.audit_hardware();
    assert!(
        issues
            .iter()
            .any(|i| i.contains("0x1000") && i.contains("unmapped")),
        "{issues:?}"
    );
}
