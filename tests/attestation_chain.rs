//! C8 — the full two-tier chain across crates: TPM (hw) → monitor boot →
//! engine report → verifier, plus the §3.4 confidentiality+integrity
//! corollary (refcount 1 + obfuscating revocation).

use tyche_bench::{boot, spawn_sealed};
use tyche_core::prelude::*;
use tyche_monitor::attest::Verifier;
use tyche_monitor::boot::{expected_monitor_pcr, MONITOR_VERSION};

fn verifier_for(m: &tyche_monitor::Monitor) -> Verifier {
    Verifier {
        tpm_key: m.machine.tpm.attestation_key(),
        expected_monitor_pcr: expected_monitor_pcr(MONITOR_VERSION),
        monitor_key: m.report_key(),
    }
}

#[test]
fn exclusive_plus_obfuscating_gives_confidentiality_and_integrity() {
    // §3.4: "exclusive access to a resource (a reference count of 1)
    // coupled with an obfuscating revocation policy guarantees integrity
    // (while in use) and confidentiality."
    let mut m = boot();
    let (enclave, gate) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    let verifier = verifier_for(&m);
    let qn = [1u8; 32];
    let rn = [2u8; 32];
    let quote = m.machine_quote(qn).expect("quote");
    let report = m.attest_domain(enclave, rn).unwrap();
    let att = verifier.verify(&quote, &qn, &report, &rn, None).unwrap();
    assert!(att.sharing_is_exactly(&[]), "refcount 1 everywhere");

    // Integrity while in use: nobody else can write the region (only the
    // enclave maps it) — demonstrated by the OS faulting.
    assert!(m.dom_write(0, 0x10_0000, &[0]).is_err());
    // Confidentiality at end-of-life: revocation zeroes before returning.
    let mut client = libtyche::TycheClient::new(&mut m, 0);
    client.enter(gate).unwrap();
    client.write(0x10_0000, b"secret").unwrap();
    client.ret().unwrap();
    let granted = m
        .engine
        .caps_of(enclave)
        .iter()
        .find(|c| c.is_memory())
        .map(|c| c.id)
        .unwrap();
    let mut client = libtyche::TycheClient::new(&mut m, 0);
    client.revoke(granted).unwrap();
    let mut buf = [0u8; 6];
    m.dom_read(0, 0x10_0000, &mut buf).unwrap();
    assert_eq!(buf, [0u8; 6]);
}

#[test]
fn attestation_is_a_snapshot_with_freshness() {
    // Two attestations with different nonces differ only in signature
    // binding; the verifier must demand its own nonce each time.
    let mut m = boot();
    let (enclave, _) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    let verifier = verifier_for(&m);
    let quote = m.machine_quote([1u8; 32]).expect("quote");
    let r1 = m.attest_domain(enclave, [10u8; 32]).unwrap();
    let r2 = m.attest_domain(enclave, [11u8; 32]).unwrap();
    assert_eq!(r1.report, r2.report, "same state, same report content");
    assert_ne!(r1.signature, r2.signature, "nonce-bound signatures");
    assert!(verifier
        .verify(&quote, &[1u8; 32], &r1, &[10u8; 32], None)
        .is_ok());
    assert!(verifier
        .verify(&quote, &[1u8; 32], &r1, &[11u8; 32], None)
        .is_err());
}

#[test]
fn any_domain_can_request_attestations() {
    // Attestation is not a privileged operation: a child domain asks the
    // monitor to attest a sibling (reports are public; secrets are not
    // in them).
    let mut m = boot();
    let (target, _) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    let (_req, gate) = spawn_sealed(&mut m, 0, 0x20_0000, 0x1000, &[0], SealPolicy::strict());
    let mut client = libtyche::TycheClient::new(&mut m, 0);
    client.enter(gate).unwrap();
    let report = client.attest(target, 99).unwrap();
    assert_eq!(report.report.domain, target);
    client.ret().unwrap();
}

#[test]
fn report_reflects_rights_not_just_regions() {
    // Downgraded rights show in the attestation: a verifier can tell RO
    // sharing from RW sharing.
    let mut m = boot();
    let os = m.engine.root().unwrap();
    let (d, _) = m.engine.create_domain(os).unwrap();
    let cap = {
        let mut client = libtyche::TycheClient::new(&mut m, 0);
        client.carve(0x10_0000, 0x10_1000).unwrap()
    };
    m.engine
        .share(os, cap, d, None, Rights::RO, RevocationPolicy::NONE)
        .unwrap();
    m.engine.set_entry(os, d, 0x10_0000).unwrap();
    m.engine.seal(os, d, SealPolicy::strict()).unwrap();
    m.sync_effects().unwrap();
    let report = m.attest_domain(d, [0u8; 32]).unwrap();
    let mem = report
        .report
        .resources
        .iter()
        .find(|r| matches!(r.resource, Resource::Memory(_)))
        .unwrap();
    assert_eq!(mem.rights, Rights::RO);
    assert_eq!(mem.refcount.max, 2, "shared with the OS");
}
