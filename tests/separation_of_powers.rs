//! F1 — the separation of powers (Figure 1), asserted end to end:
//! legislative (any domain defines policies), executive (the monitor
//! alone enforces), judiciary (a root of trust provides verifiable
//! oversight of both).

use tyche_bench::{boot, spawn_sealed};
use tyche_core::prelude::*;
use tyche_monitor::attest::Verifier;
use tyche_monitor::boot::{expected_monitor_pcr, monitor_image_intact, MONITOR_VERSION};

#[test]
fn legislative_any_domain_defines_policies() {
    // Not just the OS: an unprivileged child domain defines isolation
    // policies for *its* resources (creates a grandchild, grants memory,
    // seals it) without the OS being involved in any decision.
    let mut m = boot();
    let (child, gate) = spawn_sealed(
        &mut m,
        0,
        0x10_0000,
        0x10_0000,
        &[0],
        SealPolicy::nestable(),
    );
    let mut client = libtyche::TycheClient::new(&mut m, 0);
    client.enter(gate).unwrap();
    assert_eq!(client.whoami(), child);
    // The child legislates: a grandchild enclave with an exclusive page.
    let (grandchild, _t) = client.create_domain().unwrap();
    let page = client.carve(0x12_0000, 0x12_1000).unwrap();
    client
        .grant(page, grandchild, Rights::RW, RevocationPolicy::OBFUSCATE)
        .unwrap();
    client.set_entry(grandchild, 0x12_0000).unwrap();
    client.seal(grandchild, SealPolicy::strict()).unwrap();
    client.ret().unwrap();
    // The policy binds everyone, including the OS that "owns" the machine.
    assert!(m.dom_read(0, 0x12_0000, &mut [0u8; 1]).is_err());
    assert!(m
        .engine
        .refcount_mem_full(MemRegion::new(0x12_0000, 0x12_1000))
        .is_exclusive());
}

#[test]
fn executive_only_the_monitor_reconfigures_hardware() {
    // Domains cannot program translation structures directly: the only
    // way hardware state changes is a validated monitor call. Proof by
    // exhaustion of the API: every mutation path we attempt with foreign
    // capabilities is refused, and hardware still matches the engine.
    let mut m = boot();
    let (enclave, _gate) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    let os = m.engine.root().unwrap();
    let os_ram = m
        .engine
        .caps_of(os)
        .iter()
        .find(|c| c.active && c.is_memory())
        .map(|c| c.id)
        .unwrap();

    // The enclave's own capability ids, to try from the wrong side.
    let enclave_mem = m
        .engine
        .caps_of(enclave)
        .iter()
        .find(|c| c.is_memory())
        .map(|c| c.id)
        .unwrap();

    // OS tries to split/share the *enclave's* capability: refused.
    let mut client = libtyche::TycheClient::new(&mut m, 0);
    assert!(client.split(enclave_mem, 0x10_0800).is_err());
    assert!(client
        .share(enclave_mem, os, None, Rights::RO, RevocationPolicy::NONE)
        .is_err());
    // But its own still works (the refusals were authorization, not mood).
    let region = client
        .monitor
        .engine
        .cap(os_ram)
        .unwrap()
        .resource
        .as_mem()
        .unwrap();
    let mid = (region.start + region.len() / 2) & !0xfff;
    assert!(client.split(os_ram, mid).is_ok());
}

#[test]
fn judiciary_oversees_monitor_and_domains() {
    let mut m = boot();
    let (enclave, _) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    // Tier 1: the boot measurement proves which monitor runs; the image
    // in memory still hashes to it.
    assert!(monitor_image_intact(&m));
    // Tier 2: a remote verifier accepts the full chain...
    let verifier = Verifier {
        tpm_key: m.machine.tpm.attestation_key(),
        expected_monitor_pcr: expected_monitor_pcr(MONITOR_VERSION),
        monitor_key: m.report_key(),
    };
    let qn = [5u8; 32];
    let rn = [6u8; 32];
    let quote = m.machine_quote(qn).expect("quote");
    let report = m.attest_domain(enclave, rn).unwrap();
    assert!(verifier.verify(&quote, &qn, &report, &rn, None).is_ok());
    // ...and the judiciary binds the executive: the report's refcounts
    // are the engine's ground truth, which the auditor independently checks.
    assert!(tyche_core::audit::audit(&m.engine).is_empty());
}
