//! C5 — the three §4.2 improvements over SGX, as a side-by-side matrix
//! against the SGX model baseline.

use tyche_baselines::sgx::{HostPid, SgxError, SgxMachine};
use tyche_bench::boot;
use tyche_core::prelude::*;
use tyche_elf::image::{ElfImage, ElfMachine, Segment, SegmentFlags};
use tyche_elf::manifest::Manifest;

fn image(base: u64) -> ElfImage {
    ElfImage::new(base, ElfMachine::X86_64).with_segment(Segment::new(
        base,
        SegmentFlags::RW,
        b"enclave".to_vec(),
    ))
}

#[test]
fn improvement_1_explicit_sharing_prevents_leaks() {
    // SGX: enclave code can write secrets through any host pointer —
    // the untrusted address space is implicitly reachable.
    let mut sgx = SgxMachine::new(1000);
    let e = sgx
        .ecreate(HostPid(1), (0x10_0000, 0x20_0000), 4, false)
        .unwrap();
    assert!(sgx.enclave_can_read_host(e, 0x7fff_0000).unwrap());

    // Tyche: the same stray write faults, because nothing outside the
    // enclave's capabilities is mapped at all.
    let mut m = boot();
    let e = libtyche::Enclave::load(
        &mut m,
        0,
        image(0x10_0000),
        Manifest::enclave_default(1),
        false,
    )
    .unwrap();
    e.enter(&mut m, 0).unwrap();
    let stray = m.dom_write(0, 0x50_0000, b"leaked secret");
    assert!(stray.is_err(), "accidental leak becomes a fault");
    libtyche::Enclave::exit(&mut m, 0).unwrap();
}

#[test]
fn improvement_2_layout_reuse() {
    // SGX: a process gets ONE enclave per ELRANGE; identical layouts
    // collide.
    let mut sgx = SgxMachine::new(10_000);
    sgx.ecreate(HostPid(1), (0x10_0000, 0x20_0000), 4, false)
        .unwrap();
    assert_eq!(
        sgx.ecreate(HostPid(1), (0x10_0000, 0x20_0000), 4, false),
        Err(SgxError::RangeOverlap)
    );

    // Tyche: 16 enclaves from byte-identical images (different physical
    // placement — domains name physical memory, so there is no virtual
    // range to fight over).
    let mut m = boot();
    let mut measurements = Vec::new();
    for i in 0..16u64 {
        let base = 0x10_0000 + i * 0x2000;
        let e =
            libtyche::Enclave::load(&mut m, 0, image(base), Manifest::enclave_default(1), false)
                .unwrap();
        measurements.push(e.measurement());
    }
    assert_eq!(measurements.len(), 16);
    // All alive simultaneously, each with exclusive memory.
    for i in 0..16u64 {
        let base = 0x10_0000 + i * 0x2000;
        assert!(m
            .engine
            .refcount_mem_full(MemRegion::new(base, base + 0x1000))
            .is_exclusive());
    }
}

#[test]
fn improvement_3_nesting_depth() {
    // SGX: depth 1 is the ceiling, structurally.
    let mut sgx = SgxMachine::new(10_000);
    assert_eq!(
        sgx.ecreate(HostPid(1), (0x10_0000, 0x20_0000), 4, true),
        Err(SgxError::NestingUnsupported)
    );

    // Tyche: nest to depth 6; each level is an enclave created by the
    // previous one out of its own memory.
    let mut m = boot();
    let mut client = libtyche::TycheClient::new(&mut m, 0);
    let mut base = 0x10_0000u64;
    let mut len = 0x100_0000u64;
    let mut depth = 0;
    for _ in 0..6 {
        let (d, t) = client.create_domain().unwrap();
        let cap = client.carve(base, base + len).unwrap();
        client
            .grant(cap, d, Rights::RWX, RevocationPolicy::ZERO)
            .unwrap();
        let core = {
            let me = client.whoami();
            client
                .monitor
                .engine
                .caps_of(me)
                .iter()
                .find(|c| c.active && matches!(c.resource, Resource::CpuCore(0)))
                .map(|c| c.id)
                .unwrap()
        };
        client
            .share(core, d, None, Rights::USE, RevocationPolicy::NONE)
            .unwrap();
        client.set_entry(d, base).unwrap();
        client.seal(d, SealPolicy::nestable()).unwrap();
        client.enter(t).unwrap();
        depth += 1;
        base += 0x1000;
        len = ((len / 2) & !0xfff).max(0x2000);
    }
    assert_eq!(depth, 6);
    // Innermost memory is exclusive at any depth.
    assert!(client
        .monitor
        .engine
        .refcount_mem_full(MemRegion::new(base, base + 0x1000))
        .is_exclusive());
    for _ in 0..depth {
        let mut c2 = libtyche::TycheClient::new(&mut m, 0);
        c2.ret().unwrap();
    }
    assert!(tyche_core::audit::audit(&m.engine).is_empty());
}

#[test]
fn epc_limit_vs_no_artificial_memory_cap() {
    // SGX: the EPC bounds total enclave memory machine-wide.
    let mut sgx = SgxMachine::new(64);
    sgx.ecreate(HostPid(1), (0x10_0000, 0x20_0000), 48, false)
        .unwrap();
    assert_eq!(
        sgx.ecreate(HostPid(2), (0x10_0000, 0x20_0000), 48, false),
        Err(SgxError::EpcExhausted)
    );
    // Tyche: enclave memory is ordinary RAM; the only bound is RAM itself.
    let mut m = boot();
    let a = libtyche::Enclave::load(
        &mut m,
        0,
        image(0x10_0000),
        Manifest::enclave_default(1),
        false,
    );
    let b = libtyche::Enclave::load(
        &mut m,
        0,
        image(0x80_0000),
        Manifest::enclave_default(1),
        false,
    );
    assert!(a.is_ok() && b.is_ok());
}

#[test]
fn measurement_equivalence_offline_vs_loaded() {
    // §4.2: "generating a binary's hash offline to be compared with the
    // attestation provided by Tyche". The loaded enclave's report carries
    // per-segment content digests that match what a verifier computes
    // from the ELF file alone.
    let mut m = boot();
    let img = image(0x10_0000);
    let manifest = Manifest::enclave_default(1);
    let offline = tyche_elf::measure::segment_digests(&img, &manifest);
    let e = libtyche::Enclave::load(&mut m, 0, img, manifest, false).unwrap();
    let report = e.attest(&mut m, 0, 1).unwrap();
    assert_eq!(report.report.content_measurements.len(), 1);
    // The loader measures page-padded content; offline digests are padded
    // to memsz. With memsz < page the loaded page has a zero tail — the
    // loader records the page-aligned region, so compare against the
    // padded-page digest.
    let mut padded = b"enclave".to_vec();
    padded.resize(0x1000, 0);
    assert_eq!(
        report.report.content_measurements[0].2,
        tyche_crypto::hash(&padded)
    );
    let _ = offline;
}
