//! F3 — Figure 3: the Figure 2 workload deployed across traditional
//! system abstractions (hypervisor, VM, processes), with trust domains
//! cutting orthogonally through all of them.

use tyche_bench::boot;
use tyche_core::prelude::*;
use tyche_guest::{GuestOs, SysResult, Syscall};

/// Builds the full Figure 3 stack and returns what each box can see.
#[test]
fn full_deployment() {
    let mut m = boot();
    let provider = m.engine.root().unwrap();

    // --- The SaaS VM: a confidential VM the provider schedules blind. ---
    m.dom_write(0, 0x40_0000, b"saas vm kernel").unwrap();
    let vm = libtyche::ConfidentialVm::launch(
        &mut m,
        0,
        (0x40_0000, 0x80_0000),
        &[0, 1],
        0x40_0000,
        &[(0x40_0000, 0x40_1000)],
    )
    .unwrap();
    assert!(
        m.dom_read(0, 0x40_0000, &mut [0u8; 1]).is_err(),
        "provider blind to VM"
    );

    // --- Inside the VM: a guest OS with processes. ---
    vm.enter(&mut m, 0).unwrap();
    let mut guest = GuestOs::new((0x40_0000, 0x80_0000), 0, 0x10_0000);
    let app_proc = guest.spawn(0x10_0000).unwrap();
    let addr = match guest.syscall(&mut m, app_proc, Syscall::Alloc { len: 64 }) {
        SysResult::Addr(a) => a,
        other => panic!("{other:?}"),
    };
    assert_eq!(
        guest.syscall(
            &mut m,
            app_proc,
            Syscall::Write {
                addr,
                data: b"saas app".to_vec()
            }
        ),
        SysResult::Ok
    );

    // --- The crypto engine: an enclave nested *inside* the VM, carved
    // from guest RAM by the guest itself. The trust domain crosses the VM
    // boundary: not even the guest kernel can read it afterwards. ---
    let mut client = libtyche::TycheClient::new(&mut m, 0);
    let (crypto, _gate) = client.create_domain().unwrap();
    let page = client.carve(0x60_0000, 0x60_1000).unwrap();
    client
        .grant(page, crypto, Rights::RW, RevocationPolicy::OBFUSCATE)
        .unwrap();
    client.set_entry(crypto, 0x60_0000).unwrap();
    client.seal(crypto, SealPolicy::strict()).unwrap();
    assert!(
        m.dom_read(0, 0x60_0000, &mut [0u8; 1]).is_err(),
        "guest kernel blind to enclave"
    );
    libtyche::ConfidentialVm::exit(&mut m, 0).unwrap();
    assert!(
        m.dom_read(0, 0x60_0000, &mut [0u8; 1]).is_err(),
        "provider blind to enclave"
    );

    // --- The driver: sandboxed inside the provider's own kernel. ---
    let sb = libtyche::Sandbox::create(&mut m, 0, (0x10_0000, 0x10_4000), None).unwrap();
    assert!(
        m.dom_read(0, 0x10_0000, &mut [0u8; 1]).is_err(),
        "provider blind to driver scratch"
    );

    // --- The monitor sees a flat set of trust domains; every one of the
    // traditional boxes (hypervisor/VM/process) maps onto one or none. ---
    let live: Vec<DomainId> = m
        .engine
        .domains()
        .filter(|d| d.is_alive())
        .map(|d| d.id)
        .collect();
    assert!(live.contains(&provider));
    assert!(live.contains(&vm.domain));
    assert!(live.contains(&crypto));
    assert!(live.contains(&sb.domain));
    // Depth does not grow the TCB: the crypto enclave nested inside a VM
    // inside the hypervisor trusts only the monitor (its report's memory
    // is refcount-1 regardless of nesting).
    assert!(m
        .engine
        .refcount_mem_full(MemRegion::new(0x60_0000, 0x60_1000))
        .is_exclusive());
    assert!(tyche_core::audit::audit(&m.engine).is_empty());
}

#[test]
fn vm_teardown_takes_nested_enclave_with_it() {
    let mut m = boot();
    m.dom_write(0, 0x40_0000, b"k").unwrap();
    let vm =
        libtyche::ConfidentialVm::launch(&mut m, 0, (0x40_0000, 0x60_0000), &[0], 0x40_0000, &[])
            .unwrap();
    vm.enter(&mut m, 0).unwrap();
    let mut client = libtyche::TycheClient::new(&mut m, 0);
    let (crypto, _gate) = client.create_domain().unwrap();
    let page = client.carve(0x50_0000, 0x50_1000).unwrap();
    client
        .grant(page, crypto, Rights::RW, RevocationPolicy::ZERO)
        .unwrap();
    client.write(0x44_0000, b"vm data").unwrap();
    libtyche::ConfidentialVm::exit(&mut m, 0).unwrap();
    // Destroying the VM cascades: its grant to the nested enclave dies
    // too, and all memory returns to the provider zeroed.
    vm.destroy(&mut m, 0).unwrap();
    assert!(
        !m.engine
            .domain(crypto)
            .map(|d| d.is_alive())
            .unwrap_or(false)
            || m.engine.caps_of(crypto).is_empty(),
        "nested enclave lost its resources with the VM"
    );
    let mut buf = [0u8; 7];
    m.dom_read(0, 0x44_0000, &mut buf).unwrap();
    assert_eq!(buf, [0u8; 7]);
    m.dom_read(0, 0x50_0000, &mut buf).unwrap();
    assert_eq!(buf, [0u8; 7]);
    assert!(tyche_core::audit::audit(&m.engine).is_empty());
}
