//! Cross-backend equivalence: the same capability-level policy must
//! produce the same accept/deny decisions on x86 (EPT) and RISC-V (PMP),
//! wherever both platforms can express the layout. This is the §3.3
//! claim that the monitor's guarantees are mechanism-independent.

use tyche_bench::spawn_sealed;
use tyche_core::prelude::*;
use tyche_monitor::abi::MonitorCall;
use tyche_monitor::{boot_riscv, boot_x86, BootConfig, Monitor};

fn both() -> [Monitor; 2] {
    [
        boot_x86(BootConfig::default()),
        boot_riscv(BootConfig::default()),
    ]
}

/// Probes a fixed set of addresses as the current domain; returns the
/// allow/deny bitmap.
fn probe(m: &mut Monitor, addrs: &[u64]) -> Vec<bool> {
    addrs
        .iter()
        .map(|&a| m.dom_read(0, a, &mut [0u8; 1]).is_ok())
        .collect()
}

#[test]
fn enclave_isolation_identical() {
    let addrs = [0x5000u64, 0x10_0000, 0x10_0800, 0x10_1000, 0x20_0000];
    let mut views = Vec::new();
    for mut m in both() {
        let arch = m.arch();
        let (_d, gate) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
        let os_view = probe(&mut m, &addrs);
        m.call(0, MonitorCall::Enter { cap: gate }).unwrap();
        let enclave_view = probe(&mut m, &addrs);
        m.call(0, MonitorCall::Return).unwrap();
        views.push((arch, os_view, enclave_view));
    }
    assert_eq!(
        views[0].1, views[1].1,
        "OS views agree across {:?}/{:?}",
        views[0].0, views[1].0
    );
    assert_eq!(views[0].2, views[1].2, "enclave views agree");
    // And the expected shape: the OS lost exactly the enclave page.
    assert_eq!(views[0].1, vec![true, false, false, true, true]);
    assert_eq!(views[0].2, vec![false, true, true, false, false]);
}

#[test]
fn shared_window_identical() {
    let addrs = [0x30_0000u64, 0x30_0800, 0x30_1000];
    let mut results = Vec::new();
    for mut m in both() {
        let os = m.engine.root().unwrap();
        let (child, gate) = m.engine.create_domain(os).unwrap();
        m.sync_effects().unwrap();
        let ram = m
            .engine
            .caps_of(os)
            .iter()
            .find(|c| c.active && c.is_memory())
            .map(|c| c.id)
            .unwrap();
        m.call(
            0,
            MonitorCall::Share {
                cap: ram,
                target: child,
                sub: Some((0x30_0000, 0x30_1000)),
                rights: Rights::RO,
                policy: RevocationPolicy::NONE,
            },
        )
        .unwrap();
        let core0 = m
            .engine
            .caps_of(os)
            .iter()
            .find(|c| c.active && matches!(c.resource, Resource::CpuCore(0)))
            .map(|c| c.id)
            .unwrap();
        m.call(
            0,
            MonitorCall::Share {
                cap: core0,
                target: child,
                sub: None,
                rights: Rights::USE,
                policy: RevocationPolicy::NONE,
            },
        )
        .unwrap();
        m.call(
            0,
            MonitorCall::SetEntry {
                domain: child,
                entry: 0x30_0000,
            },
        )
        .unwrap();
        m.call(
            0,
            MonitorCall::Seal {
                domain: child,
                allow_outward: false,
                allow_children: false,
            },
        )
        .unwrap();
        m.call(0, MonitorCall::Enter { cap: gate }).unwrap();
        let reads = probe(&mut m, &addrs);
        // Writes to a read-only window must fail on both.
        let write_denied = m.dom_write(0, 0x30_0000, &[1]).is_err();
        m.call(0, MonitorCall::Return).unwrap();
        results.push((reads, write_denied));
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[0].0, vec![true, true, false]);
    assert!(results[0].1);
}

#[test]
fn revocation_effects_identical() {
    let mut outcomes = Vec::new();
    for mut m in both() {
        let (child, _gate) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
        // Write a secret as the OS cannot (it lost the page); use the
        // engine view to find the granted cap and revoke it.
        let granted = m
            .engine
            .caps_of(child)
            .iter()
            .find(|c| c.is_memory())
            .map(|c| c.id)
            .unwrap();
        m.call(0, MonitorCall::Revoke { cap: granted }).unwrap();
        let mut buf = [0u8; 4];
        m.dom_read(0, 0x10_0000, &mut buf).unwrap();
        outcomes.push((
            buf,
            m.engine.refcount_mem(MemRegion::new(0x10_0000, 0x10_1000)),
        ));
    }
    assert_eq!(outcomes[0], outcomes[1]);
    assert_eq!(outcomes[0].1, 1);
}

#[test]
fn engine_state_is_platform_independent() {
    // After identical call sequences, the *capability engine* state
    // (domains, refcounts, measurements) is byte-identical across
    // platforms — only the enforcement mechanism differs.
    let mut digests = Vec::new();
    for mut m in both() {
        let (d, _) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
        let report = m.attest_domain(d, [0u8; 32]).unwrap();
        digests.push(report.report.canonical_bytes());
    }
    assert_eq!(
        digests[0], digests[1],
        "identical reports, EPT or PMP underneath"
    );
}
