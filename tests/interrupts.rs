//! §4.1 extension: cross-domain interrupt routing via remapping —
//! interrupt vectors are ordinary capabilities: grantable, shareable,
//! revocable, attested, and enforced by the remapping hardware.

use tyche_bench::boot;
use tyche_core::metrics::Counter;
use tyche_core::prelude::*;
use tyche_monitor::abi::MonitorCall;

const VEC: u32 = 33;

/// Builds a sealed driver domain holding one page, core 0, and interrupt
/// vector [`VEC`] (granted — exclusive delivery).
fn driver_domain(m: &mut tyche_monitor::Monitor) -> (DomainId, CapId, CapId) {
    let mut client = libtyche::TycheClient::new(m, 0);
    let (d, gate) = client.create_domain().unwrap();
    let page = client.carve(0x10_0000, 0x10_1000).unwrap();
    client
        .grant(page, d, Rights::RW, RevocationPolicy::ZERO)
        .unwrap();
    let (core0, irq) = {
        let me = client.whoami();
        let caps = client.monitor.engine.caps_of(me);
        let core0 = caps
            .iter()
            .find(|c| c.active && matches!(c.resource, Resource::CpuCore(0)))
            .map(|c| c.id)
            .unwrap();
        let irq = caps
            .iter()
            .find(|c| c.active && matches!(c.resource, Resource::Interrupt(v) if v == VEC))
            .map(|c| c.id)
            .unwrap();
        (core0, irq)
    };
    client
        .share(core0, d, None, Rights::USE, RevocationPolicy::NONE)
        .unwrap();
    let granted_irq = client
        .grant(irq, d, Rights::USE, RevocationPolicy::NONE)
        .unwrap();
    client.set_entry(d, 0x10_0000).unwrap();
    client.seal(d, SealPolicy::strict()).unwrap();
    (d, gate, granted_irq)
}

#[test]
fn vector_deliveries_follow_the_capability() {
    let mut m = boot();
    let (driver, gate, _irq) = driver_domain(&mut m);

    // The device raises the vector twice.
    assert!(m.machine.irq.raise(VEC).is_some());
    assert!(m.machine.irq.raise(VEC).is_some());

    // The OS (running now) sees nothing — it granted the vector away.
    assert!(m.pending_interrupts(0).is_empty());

    // The driver domain drains both deliveries on entry.
    m.call(0, MonitorCall::Enter { cap: gate }).unwrap();
    assert_eq!(m.current_domain(0), driver);
    assert_eq!(m.pending_interrupts(0), vec![VEC, VEC]);
    assert!(m.pending_interrupts(0).is_empty(), "drained");
    m.call(0, MonitorCall::Return).unwrap();
}

#[test]
fn revocation_stops_delivery_and_exposes_dos() {
    let mut m = boot();
    let (_driver, _gate, granted_irq) = driver_domain(&mut m);
    assert!(m.machine.irq.raise(VEC).is_some(), "routed while granted");

    // The OS revokes the vector: deliveries return to the OS (the grant's
    // parent reactivates and re-routes).
    let mut client = libtyche::TycheClient::new(&mut m, 0);
    client.revoke(granted_irq).unwrap();
    assert!(m.machine.irq.raise(VEC).is_some());
    assert_eq!(m.pending_interrupts(0), vec![VEC], "OS receives again");

    // Now the OS drops its own root endowment entirely: the vector is
    // unrouted; raises are dropped AND counted — the observable
    // denial-of-service signal (§4.1 "expose denial of service attacks").
    let os = m.engine.root().unwrap();
    let root_irq = m
        .engine
        .caps_of(os)
        .iter()
        .find(|c| c.active && matches!(c.resource, Resource::Interrupt(v) if v == VEC))
        .map(|c| c.id)
        .unwrap();
    m.call(0, MonitorCall::Revoke { cap: root_irq }).unwrap();
    let spurious_before = m.machine.metrics.get(Counter::IrqSpurious);
    assert!(m.machine.irq.raise(VEC).is_none(), "dropped");
    assert_eq!(
        m.machine.metrics.get(Counter::IrqSpurious),
        spurious_before + 1,
        "and accounted for"
    );
}

#[test]
fn vector_appears_in_attestation() {
    let mut m = boot();
    let (driver, _gate, _irq) = driver_domain(&mut m);
    let report = m.attest_domain(driver, [0u8; 32]).unwrap();
    let irq_entry = report
        .report
        .resources
        .iter()
        .find(|r| matches!(r.resource, Resource::Interrupt(v) if v == VEC))
        .expect("vector enumerated");
    assert_eq!(irq_entry.refcount.max, 1, "exclusive delivery, attestable");
    assert_eq!(irq_entry.rights, Rights::USE);
}

#[test]
fn shared_vector_fans_out_to_last_router() {
    // Sharing (rather than granting) a vector keeps both capabilities
    // active; the remap table holds one route, so the most recent
    // routing wins — and the refcount 2 in both attestations makes the
    // ambiguity *visible*, which is the controlled-sharing contract.
    let mut m = boot();
    let os = m.engine.root().unwrap();
    let (d, _gate) = {
        let mut client = libtyche::TycheClient::new(&mut m, 0);
        let (d, gate) = client.create_domain().unwrap();
        let page = client.carve(0x10_0000, 0x10_1000).unwrap();
        client
            .grant(page, d, Rights::RW, RevocationPolicy::NONE)
            .unwrap();
        let irq = {
            let me = client.whoami();
            client
                .monitor
                .engine
                .caps_of(me)
                .iter()
                .find(|c| c.active && matches!(c.resource, Resource::Interrupt(v) if v == VEC))
                .map(|c| c.id)
                .unwrap()
        };
        client
            .share(irq, d, None, Rights::USE, RevocationPolicy::NONE)
            .unwrap();
        client.set_entry(d, 0x10_0000).unwrap();
        client.seal(d, SealPolicy::strict()).unwrap();
        (d, gate)
    };
    let entry = m
        .engine
        .enumerate(d)
        .unwrap()
        .into_iter()
        .find(|r| matches!(r.resource, Resource::Interrupt(_)))
        .unwrap();
    assert_eq!(entry.refcount.max, 2, "sharing is visible: os + d");
    let _ = os;
}

#[test]
fn domain_death_purges_routes() {
    let mut m = boot();
    let (driver, _gate, _irq) = driver_domain(&mut m);
    m.machine.irq.raise(VEC).unwrap();
    let mut client = libtyche::TycheClient::new(&mut m, 0);
    client.kill(driver).unwrap();
    // The OS's parent capability reactivated, re-routing the vector to
    // the OS; the dead domain's pending queue is purged.
    assert!(m.machine.irq.raise(VEC).is_some());
    assert_eq!(m.pending_interrupts(0), vec![VEC]);
    assert!(tyche_core::audit::audit(&m.engine).is_empty());
}
