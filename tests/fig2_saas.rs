//! F2 — Figure 2 as an integration test: the confidential SaaS pipeline
//! with attestation-gated key provisioning, plus the attack variants the
//! customer check must catch.

use tyche_bench::scenarios::{self, layout};
use tyche_core::prelude::*;
use tyche_monitor::abi::MonitorCall;

#[test]
fn honest_deployment_accepted_and_correct() {
    let mut f = scenarios::fig2();
    assert!(scenarios::fig2_customer_verifies(&mut f));
    let data = *b"0123456789abcdef0123456789abcdef";
    let key = 42;
    let ct = scenarios::fig2_run_pipeline(&mut f, key, &data);
    assert_eq!(ct, scenarios::fig2_expected(key, &data).to_vec());
}

#[test]
fn provider_reads_nothing_confidential_at_any_stage() {
    let mut f = scenarios::fig2();
    let data = *b"0123456789abcdef0123456789abcdef";
    scenarios::fig2_run_pipeline(&mut f, 7, &data);
    let m = &mut f.monitor;
    for addr in [
        layout::CRYPTO.0,
        layout::CRYPTO.0 + 0x2000, // the key
        layout::APP.0,
        layout::APP.0 + 0x1000, // the staged input
        layout::APP_CRYPTO.0,
        layout::APP_GPU.0,
    ] {
        assert!(
            m.dom_read(0, addr, &mut [0u8; 1]).is_err(),
            "provider read {addr:#x}"
        );
    }
    // Only the NET buffer (by design untrusted) is provider-visible.
    assert!(m.dom_read(0, layout::NET.0, &mut [0u8; 1]).is_ok());
}

#[test]
fn customer_rejects_spy_window() {
    // The provider builds the same deployment but slips itself a read
    // window into the app's "confidential" memory before sealing: the
    // refcount rises to 2 where the customer demands 1, and verification
    // fails. This is the controlled-sharing check doing its job.
    let mut f = scenarios::fig2_with_spy_window();
    assert!(!scenarios::fig2_customer_verifies(&mut f));
}

#[test]
fn gpu_confined_to_its_window() {
    let mut f = scenarios::fig2();
    // Exfiltration attempts in both directions fault at the I/O-MMU.
    for (src, dst) in [
        (layout::APP_GPU.0, layout::CRYPTO.0), // write into crypto
        (layout::APP.0, layout::APP_GPU.0),    // read app memory
        (layout::NET.0, layout::APP_GPU.0),    // read even untrusted mem
    ] {
        let r = f.gpu.run_kernel(
            &mut f.monitor.machine.iommu,
            &mut f.monitor.machine.mem,
            tyche_hw::device::KernelDesc {
                input: tyche_hw::addr::GuestPhysAddr::new(src),
                output: tyche_hw::addr::GuestPhysAddr::new(dst),
                len: 16,
            },
        );
        assert!(r.is_err(), "GPU escaped: {src:#x} -> {dst:#x}");
    }
}

#[test]
fn teardown_scrubs_everything() {
    let mut f = scenarios::fig2();
    let data = *b"0123456789abcdef0123456789abcdef";
    scenarios::fig2_run_pipeline(&mut f, 9, &data);
    let m = &mut f.monitor;
    let os = m.engine.root().unwrap();
    m.engine.kill(os, f.app).unwrap();
    m.engine.kill(os, f.crypto).unwrap();
    m.sync_effects().unwrap();
    // The provider regains the enclave regions zeroed (OBFUSCATE grants).
    let mut buf = [0u8; 8];
    m.dom_read(0, layout::CRYPTO.0 + 0x2000, &mut buf).unwrap();
    assert_eq!(buf, [0u8; 8], "key scrubbed");
    m.dom_read(0, layout::APP.0 + 0x1000, &mut buf).unwrap();
    assert_eq!(buf, [0u8; 8], "staged input scrubbed");
    assert!(tyche_core::audit::audit(&m.engine).is_empty());
}

#[test]
fn cores_are_validated_resources_too() {
    // Fig. 2 components run only on cores in their resource config.
    let mut f = scenarios::fig2();
    let m = &mut f.monitor;
    // Core 1 was never shared with the app.
    assert!(m.call(1, MonitorCall::Enter { cap: f.app_gate }).is_err());
    assert!(m.call(0, MonitorCall::Enter { cap: f.app_gate }).is_ok());
    m.call(0, MonitorCall::Return).unwrap();
    let _ = Rights::NONE;
}
