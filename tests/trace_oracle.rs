//! Trace-oracle suite: every runtime-verification checker is locked
//! down from both sides.
//!
//! For each of the six temporal invariants in `tyche_verify::rv`, this
//! suite runs (a) a *conforming* scenario on the real monitor whose
//! drained trace must pass every checker, and (b) a *seeded violation*
//! — a `#[doc(hidden)]` corruption hook mid-run, or a tampered event in
//! the drained log — that the checker must catch **at the exact event
//! index** where the contradiction becomes observable. The index
//! assertions are what make the checkers an oracle rather than a smoke
//! test: a checker that fires late, early, or on the wrong event fails
//! here even if it still "detects" the corruption.
//!
//! Log tampering (for the SMP shootdown/IPI invariants, whose events
//! the monitor itself can only emit correctly) doubles as the
//! attestation story: a forged or rewritten event changes the SHA-256
//! chain, so the same edit that trips a checker also breaks the
//! attested digest.

use tyche_bench::{boot, spawn_sealed};
use tyche_core::prelude::*;
use tyche_core::trace::{EventKind, TraceEvent, TraceLog};
use tyche_monitor::abi::MonitorCall;
use tyche_monitor::{boot_x86, BootConfig, ConcurrentMonitor, Monitor};
use tyche_verify::rv;

/// Boots the default x86 machine with the trace sink recording.
fn traced_boot() -> Monitor {
    let m = boot();
    m.machine.trace.enable(m.machine.cores);
    m
}

/// Asserts `log` violates exactly one invariant and returns the finding.
fn only_finding(log: &TraceLog, checker: &str) -> rv::Finding {
    let findings = rv::check_all(log);
    assert_eq!(findings.len(), 1, "expected one finding, got {findings:?}");
    let f = findings.into_iter().next().unwrap();
    assert_eq!(f.checker, checker, "wrong checker fired: {f}");
    f
}

/// Index of the last event in `log` matching `pred`.
fn last_index(log: &TraceLog, pred: impl Fn(&EventKind) -> bool) -> usize {
    log.events()
        .iter()
        .rposition(|e| pred(&e.kind))
        .expect("event present in trace")
}

// ---------------------------------------------------------------------
// transition-stack
// ---------------------------------------------------------------------

#[test]
fn conforming_transitions_pass_all_checkers() {
    let mut m = traced_boot();
    let (_d, gate) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    // Mediated roundtrip, then two fast roundtrips (fill, then hit).
    m.call(0, MonitorCall::Enter { cap: gate }).unwrap();
    m.call(0, MonitorCall::Return).unwrap();
    m.enter_fast(0, gate).unwrap();
    m.ret_fast(0).unwrap();
    m.enter_fast(0, gate).unwrap();
    m.ret_fast(0).unwrap();
    let log = m.trace().drain();
    assert!(
        log.events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::CacheHit { .. })),
        "second fast enter must hit the cache"
    );
    let findings = rv::check_all(&log);
    assert!(findings.is_empty(), "conforming run flagged: {findings:?}");
}

#[test]
fn forged_return_frame_is_caught_at_the_return() {
    let mut m = traced_boot();
    let (_d1, g1) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    let (d2, _g2) = spawn_sealed(&mut m, 0, 0x20_0000, 0x1000, &[0], SealPolicy::strict());
    m.call(0, MonitorCall::Enter { cap: g1 }).unwrap();
    // Stack corruption: the open frame now claims d2 was the caller, so
    // the return transfers somewhere no transition capability authorized.
    m.corrupt_frame(0, d2);
    m.call(0, MonitorCall::Return).unwrap();
    let log = m.trace().drain();
    let f = only_finding(&log, "transition-stack");
    assert_eq!(
        f.index,
        last_index(&log, |k| matches!(k, EventKind::Return { .. })),
        "caught at the forged return, not before or after: {f}"
    );
    assert_eq!(m.current_domain(0), d2, "the corruption really redirected control");
}

#[test]
fn forged_hypercall_exit_is_caught_at_the_exit() {
    // An exit bracket with no matching enter cannot be produced by the
    // monitor (every `call` brackets itself), so this is a log tamper:
    // the checker catches it, and the chain digest changes too.
    let mut m = traced_boot();
    m.call(0, MonitorCall::CreateDomain).unwrap();
    let log = m.trace().drain();
    let untampered_chain = log.chain();
    let mut events = log.events().to_vec();
    let seq = events.last().map(|e| e.seq + 1).unwrap_or(0);
    events.push(TraceEvent {
        seq,
        core: 0,
        kind: EventKind::HyperExit {
            leaf: 99,
            code: 0,
            cycles: 0,
        },
    });
    let tampered = TraceLog::from_events(events);
    let f = only_finding(&tampered, "transition-stack");
    assert_eq!(f.index, tampered.len() - 1, "caught at the forged exit");
    assert_ne!(tampered.chain(), untampered_chain, "attested chain broke");
}

// ---------------------------------------------------------------------
// fast-cache
// ---------------------------------------------------------------------

#[test]
fn conforming_cache_refill_after_mutation_passes() {
    let mut m = traced_boot();
    let (_d, gate) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    m.enter_fast(0, gate).unwrap();
    m.ret_fast(0).unwrap();
    // A mutation bumps the generation; the honest monitor drops its
    // cache and re-validates, emitting a fresh fill before any hit.
    m.call(0, MonitorCall::CreateDomain).unwrap();
    m.enter_fast(0, gate).unwrap();
    m.ret_fast(0).unwrap();
    m.enter_fast(0, gate).unwrap();
    m.ret_fast(0).unwrap();
    let log = m.trace().drain();
    let fills = log
        .events()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::CacheFill { .. }))
        .count();
    assert_eq!(fills, 2, "one fill per validity window");
    let findings = rv::check_all(&log);
    assert!(findings.is_empty(), "conforming refill flagged: {findings:?}");
}

#[test]
fn stale_cache_service_is_caught_at_the_hit() {
    let mut m = traced_boot();
    let (_d, gate) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    m.enter_fast(0, gate).unwrap();
    m.ret_fast(0).unwrap();
    // A real mutation invalidates every cached validation...
    m.call(0, MonitorCall::CreateDomain).unwrap();
    // ...but a buggy monitor believes its cache is still current and
    // serves the pre-mutation entry without re-validating.
    m.corrupt_fast_cache_gen(m.engine.generation());
    m.enter_fast(0, gate).unwrap();
    m.ret_fast(0).unwrap();
    let log = m.trace().drain();
    let f = only_finding(&log, "fast-cache");
    assert_eq!(
        f.index,
        last_index(&log, |k| matches!(k, EventKind::CacheHit { .. })),
        "caught at the stale hit: {f}"
    );
}

// ---------------------------------------------------------------------
// gen-monotonic
// ---------------------------------------------------------------------

#[test]
fn conforming_mutations_bump_generation_monotonically() {
    let mut m = traced_boot();
    m.call(0, MonitorCall::CreateDomain).unwrap();
    m.call(0, MonitorCall::CreateDomain).unwrap();
    let _ = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    let log = m.trace().drain();
    let bumps: Vec<u64> = log
        .events()
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::GenBump { gen } => Some(gen),
            _ => None,
        })
        .collect();
    assert!(bumps.len() >= 3, "mutations recorded: {bumps:?}");
    assert!(bumps.windows(2).all(|w| w[1] > w[0]), "strictly increasing");
    let findings = rv::check_all(&log);
    assert!(findings.is_empty(), "conforming bumps flagged: {findings:?}");
}

#[test]
fn generation_replay_is_caught_at_the_repeated_bump() {
    let mut m = traced_boot();
    m.call(0, MonitorCall::CreateDomain).unwrap();
    // Replay the current generation: a "mutation" that does not advance
    // the counter, i.e. an invalidation that snapshot readers will miss.
    let gen = m.engine.generation();
    m.engine.corrupt_generation(gen);
    let log = m.trace().drain();
    let f = only_finding(&log, "gen-monotonic");
    assert_eq!(f.index, log.len() - 1, "caught at the replayed bump: {f}");
}

// ---------------------------------------------------------------------
// quarantine-sticky
// ---------------------------------------------------------------------

#[test]
fn conforming_quarantine_stays_sealed_off() {
    let mut m = traced_boot();
    let (d, gate) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    m.call(0, MonitorCall::Enter { cap: gate }).unwrap();
    m.call(0, MonitorCall::Return).unwrap();
    m.engine.quarantine(d).unwrap();
    // The honest monitor refuses every later entry attempt.
    assert!(m.call(0, MonitorCall::Enter { cap: gate }).is_err());
    assert!(m.enter_fast(0, gate).is_err());
    let log = m.trace().drain();
    assert!(
        log.events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::Quarantine { domain } if domain == d.0)),
        "quarantine recorded"
    );
    let findings = rv::check_all(&log);
    assert!(findings.is_empty(), "refused entries flagged: {findings:?}");
}

#[test]
fn quarantine_bypass_is_caught_at_the_entry() {
    let mut m = traced_boot();
    let (d, gate) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    m.engine.quarantine(d).unwrap();
    // Corruption: the quarantine flag is cleared and the deactivated
    // transition capability resurrected behind the monitor's back — the
    // engine-level containment evaporates, so the (honest) monitor now
    // lets the entry through. Only the trace still knows.
    m.engine.corrupt_domain(d).unwrap().quarantined = false;
    m.engine.corrupt_cap(gate).unwrap().active = true;
    m.call(0, MonitorCall::Enter { cap: gate }).unwrap();
    m.call(0, MonitorCall::Return).unwrap();
    let log = m.trace().drain();
    let f = only_finding(&log, "quarantine-sticky");
    assert_eq!(
        f.index,
        last_index(&log, |k| matches!(k, EventKind::Enter { .. })),
        "caught at the forbidden entry: {f}"
    );
}

// ---------------------------------------------------------------------
// revoke-shootdown + ipi-accounting (SMP)
// ---------------------------------------------------------------------

/// Boots a traced SMP setup: one sealed child per core (private memory
/// window + its core), served through [`ConcurrentMonitor`]. Returns
/// the wrapper, a drain handle onto the shared sink, and per-core
/// `(domain, transition cap, memory share cap)` triples.
fn traced_smp() -> (
    ConcurrentMonitor,
    tyche_core::trace::TraceSink,
    Vec<(DomainId, CapId, CapId)>,
) {
    let mut m = boot_x86(BootConfig::default());
    m.machine.trace.enable(m.machine.cores);
    let sink = m.machine.trace.clone();
    let root = m.engine.root().unwrap();
    let cores = m.machine.cores;
    let mut out = Vec::new();
    for core in 0..cores {
        let base = 0x40_0000 + (core as u64) * 0x10_000;
        let (child, gate) = m.engine.create_domain(root).unwrap();
        let ram_cap = m
            .engine
            .caps_of(root)
            .iter()
            .find(|c| {
                c.active
                    && matches!(c.resource, Resource::Memory(r)
                        if r.start <= base && base + 0x10_000 <= r.end)
            })
            .map(|c| c.id)
            .unwrap();
        let share = m
            .engine
            .share(
                root,
                ram_cap,
                child,
                Some(MemRegion::new(base, base + 0x10_000)),
                Rights::RWX,
                RevocationPolicy::NONE,
            )
            .unwrap();
        let core_cap = m
            .engine
            .caps_of(root)
            .iter()
            .find(|c| c.active && matches!(c.resource, Resource::CpuCore(n) if n == core))
            .map(|c| c.id)
            .unwrap();
        m.engine
            .share(root, core_cap, child, None, Rights::USE, RevocationPolicy::NONE)
            .unwrap();
        m.engine.set_entry(root, child, base).unwrap();
        m.engine.seal(root, child, SealPolicy::strict()).unwrap();
        m.sync_effects().unwrap();
        out.push((child, gate, share));
    }
    (ConcurrentMonitor::new(m), sink, out)
}

#[test]
fn smp_shootdown_cycle_passes_all_checkers() {
    let (cm, sink, doms) = traced_smp();
    let (_d1, gate1, share1) = doms[1];
    // Core 1 fast-enters its child; core 0 then revokes that child's
    // memory window, queues the invalidation, and delivers the batch —
    // core 1 is running the affected domain, so exactly one IPI goes out.
    cm.serve(1, MonitorCall::Enter { cap: gate1 }).unwrap();
    cm.serve(0, MonitorCall::Revoke { cap: share1 }).unwrap();
    let sent = cm.sync_shootdowns(0);
    assert_eq!(sent, 1, "core 1 was running the affected domain");
    cm.serve(1, MonitorCall::Return).unwrap();
    let log = sink.drain();
    for kind in ["shoot-queue", "ipi", "shoot-batch"] {
        assert!(
            log.events().iter().any(|e| e.kind.name() == kind),
            "{kind} recorded in {}-event trace",
            log.len()
        );
    }
    let findings = rv::check_all(&log);
    assert!(findings.is_empty(), "conforming shootdown flagged: {findings:?}");
}

#[test]
fn lost_shootdown_is_caught_at_end_of_trace() {
    let (cm, sink, doms) = traced_smp();
    let (_d1, gate1, share1) = doms[1];
    cm.serve(1, MonitorCall::Enter { cap: gate1 }).unwrap();
    cm.serve(0, MonitorCall::Revoke { cap: share1 }).unwrap();
    cm.sync_shootdowns(0);
    cm.serve(1, MonitorCall::Return).unwrap();
    let log = sink.drain();
    let untampered_chain = log.chain();
    // Tamper: a queued invalidation whose delivering batch was scrubbed
    // from the log — the signature of a revocation whose remote flush
    // never happened.
    let mut events = log.events().to_vec();
    let seq = events.last().map(|e| e.seq + 1).unwrap_or(0);
    events.push(TraceEvent {
        seq,
        core: 0,
        kind: EventKind::ShootQueue { domain: 7 },
    });
    let tampered = TraceLog::from_events(events);
    let f = only_finding(&tampered, "revoke-shootdown");
    assert_eq!(f.index, tampered.len() - 1, "leak pinned to end of trace: {f}");
    assert_ne!(tampered.chain(), untampered_chain, "attested chain broke");
}

#[test]
fn understated_ipi_count_is_caught_at_the_batch() {
    let (cm, sink, doms) = traced_smp();
    let (_d1, gate1, share1) = doms[1];
    cm.serve(1, MonitorCall::Enter { cap: gate1 }).unwrap();
    cm.serve(0, MonitorCall::Revoke { cap: share1 }).unwrap();
    assert_eq!(cm.sync_shootdowns(0), 1);
    cm.serve(1, MonitorCall::Return).unwrap();
    let log = sink.drain();
    // Tamper: the batch under-reports its IPI count — a shootdown
    // claiming fewer remote flushes than the trace shows were charged.
    let mut events = log.events().to_vec();
    let at = events
        .iter()
        .rposition(|e| matches!(e.kind, EventKind::ShootBatch { .. }))
        .expect("batch recorded");
    if let EventKind::ShootBatch { drained, .. } = events[at].kind {
        events[at].kind = EventKind::ShootBatch { drained, ipis: 0 };
    }
    let tampered = TraceLog::from_events(events);
    let f = only_finding(&tampered, "ipi-accounting");
    assert_eq!(f.index, at, "caught at the lying batch: {f}");
}
