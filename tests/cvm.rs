//! C12 — confidential VMs: the hypervisor schedules what it cannot read,
//! guests self-compartmentalize, and teardown is provably clean.

use tyche_bench::boot;
use tyche_core::prelude::*;
use tyche_guest::{GuestOs, SysResult, Syscall};

const GUEST_RAM: (u64, u64) = (0x40_0000, 0x80_0000);

fn launch(m: &mut tyche_monitor::Monitor) -> libtyche::ConfidentialVm {
    m.dom_write(0, GUEST_RAM.0, b"guest kernel image").unwrap();
    libtyche::ConfidentialVm::launch(
        m,
        0,
        GUEST_RAM,
        &[0, 1],
        GUEST_RAM.0,
        &[(GUEST_RAM.0, GUEST_RAM.0 + 0x1000)],
    )
    .unwrap()
}

#[test]
fn scheduling_without_trust() {
    // The asymmetry the paper wants: the hypervisor-role domain keeps the
    // transition capability (it can schedule) but no memory capability
    // (it cannot inspect).
    let mut m = boot();
    let vm = launch(&mut m);
    let provider = m.engine.root().unwrap();
    // Can schedule: enter works.
    vm.enter(&mut m, 0).unwrap();
    libtyche::ConfidentialVm::exit(&mut m, 0).unwrap();
    // Cannot inspect: no active memory caps over guest RAM.
    let covering: Vec<_> = m
        .engine
        .active_mem_coverage()
        .into_iter()
        .filter(|(d, r)| *d == provider && r.overlaps(&MemRegion::new(GUEST_RAM.0, GUEST_RAM.1)))
        .collect();
    assert!(
        covering.is_empty(),
        "provider holds nothing over guest RAM: {covering:?}"
    );
}

#[test]
fn full_guest_os_lifecycle_inside_cvm() {
    let mut m = boot();
    let vm = launch(&mut m);
    vm.enter(&mut m, 0).unwrap();
    let mut guest = GuestOs::new(GUEST_RAM, 0, 0x10_0000);
    // Multi-process workload with IPC, entirely inside the cVM.
    let a = guest.spawn(0x8_0000).unwrap();
    let b = guest.spawn(0x8_0000).unwrap();
    assert_eq!(
        guest.syscall(&mut m, b, Syscall::PipeRecv),
        SysResult::WouldBlock
    );
    guest.syscall(
        &mut m,
        a,
        Syscall::PipeSend {
            dst: b,
            data: b"from a".to_vec(),
        },
    );
    assert_eq!(
        guest.syscall(&mut m, b, Syscall::PipeRecv),
        SysResult::Bytes(b"from a".to_vec())
    );
    // Scheduler round-robins the two.
    let first = guest.schedule().unwrap();
    guest.preempt(first);
    let second = guest.schedule().unwrap();
    assert_ne!(first, second);
    libtyche::ConfidentialVm::exit(&mut m, 0).unwrap();
    // All of that was invisible to the provider.
    assert!(m
        .dom_read(0, GUEST_RAM.0 + 0x10_0000, &mut [0u8; 1])
        .is_err());
}

#[test]
fn guest_isolates_its_own_driver() {
    // Fig. 3 composed: a driver sandbox *inside* a confidential VM. The
    // guest kernel is protected from its driver; the provider from both.
    let mut m = boot();
    let vm = launch(&mut m);
    vm.enter(&mut m, 0).unwrap();
    let kernel_state = GUEST_RAM.0 + 0x8_0000;
    m.dom_write(0, kernel_state, b"guest kernel state").unwrap();
    let scratch = (GUEST_RAM.0 + 0x20_0000, GUEST_RAM.0 + 0x20_4000);
    let window = (GUEST_RAM.0 + 0x21_0000, GUEST_RAM.0 + 0x21_1000);
    let host = tyche_guest::driver::DriverHost::sandboxed(&mut m, 0, scratch, window).unwrap();
    let mut buggy = tyche_guest::driver::BuggyDriver {
        wild_target: kernel_state,
    };
    let resp = host
        .dispatch(
            &mut m,
            0,
            &mut buggy,
            tyche_guest::driver::DriverRequest {
                op: 666,
                addr: window.0,
                len: 4,
            },
        )
        .unwrap();
    assert_eq!(resp, tyche_guest::driver::DriverResponse::Crashed);
    let mut buf = [0u8; 18];
    m.dom_read(0, kernel_state, &mut buf).unwrap();
    assert_eq!(&buf, b"guest kernel state");
    libtyche::ConfidentialVm::exit(&mut m, 0).unwrap();
    assert!(tyche_core::audit::audit(&m.engine).is_empty());
}

#[test]
fn cvm_attestation_binds_launch_image() {
    let mut m1 = boot();
    let vm1 = launch(&mut m1);
    let r1 = vm1.attest(&mut m1, 0, 1).unwrap();

    // A second machine with a *different* guest image produces a
    // different content measurement.
    let mut m2 = boot();
    m2.dom_write(0, GUEST_RAM.0, b"trojaned kernel!!!").unwrap();
    let vm2 = libtyche::ConfidentialVm::launch(
        &mut m2,
        0,
        GUEST_RAM,
        &[0, 1],
        GUEST_RAM.0,
        &[(GUEST_RAM.0, GUEST_RAM.0 + 0x1000)],
    )
    .unwrap();
    let r2 = vm2.attest(&mut m2, 0, 1).unwrap();
    assert_ne!(
        r1.report.content_measurements[0].2, r2.report.content_measurements[0].2,
        "launch image is bound into the attestation"
    );
}

#[test]
fn destroy_scrubs_even_after_guest_activity() {
    let mut m = boot();
    let vm = launch(&mut m);
    vm.enter(&mut m, 0).unwrap();
    for off in (0u64..0x10_0000).step_by(0x1_0000) {
        m.dom_write(0, GUEST_RAM.0 + off, b"guest secret block")
            .unwrap();
    }
    libtyche::ConfidentialVm::exit(&mut m, 0).unwrap();
    vm.destroy(&mut m, 0).unwrap();
    for off in (0u64..0x10_0000).step_by(0x1_0000) {
        let mut buf = [0u8; 18];
        m.dom_read(0, GUEST_RAM.0 + off, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 18], "offset {off:#x} scrubbed");
    }
}
