//! C10 — the monitor mediates all control transfers and refuses every
//! violation class (§3.1): fixed entry points, core ownership, stack
//! discipline, authorization by running context.

use tyche_bench::{boot, spawn_sealed};
use tyche_core::prelude::*;
use tyche_monitor::abi::MonitorCall;
use tyche_monitor::Status;

#[test]
fn transitions_only_through_capabilities() {
    let mut m = boot();
    let (_d, gate) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    // A second domain that never received the gate cannot enter, even
    // knowing the capability id (ids are not authority — possession is).
    let (_other, other_gate) =
        spawn_sealed(&mut m, 0, 0x20_0000, 0x1000, &[0], SealPolicy::strict());
    m.call(0, MonitorCall::Enter { cap: other_gate }).unwrap();
    assert_eq!(
        m.call(0, MonitorCall::Enter { cap: gate }),
        Err(Status::Denied),
        "gate owned by the OS, not by this domain"
    );
    m.call(0, MonitorCall::Return).unwrap();
}

#[test]
fn entry_point_is_fixed() {
    // There is no API to enter anywhere but the sealed entry point, and
    // the entry point cannot change after sealing.
    let mut m = boot();
    let (d, gate) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    assert_eq!(
        m.call(
            0,
            MonitorCall::SetEntry {
                domain: d,
                entry: 0x10_0800
            }
        ),
        Err(Status::Denied)
    );
    match m.call(0, MonitorCall::Enter { cap: gate }).unwrap() {
        tyche_monitor::monitor::CallResult::Entered { entry, .. } => {
            assert_eq!(entry, 0x10_0000, "always the sealed entry");
        }
        other => panic!("{other:?}"),
    }
    m.call(0, MonitorCall::Return).unwrap();
}

#[test]
fn cores_are_resources() {
    let mut m = boot();
    // Sealed with core 1 only.
    let mut client = libtyche::TycheClient::new(&mut m, 0);
    let (d, gate) = client.create_domain().unwrap();
    let page = client.carve(0x10_0000, 0x10_1000).unwrap();
    client
        .grant(page, d, Rights::RWX, RevocationPolicy::NONE)
        .unwrap();
    let core1 = {
        let me = client.whoami();
        client
            .monitor
            .engine
            .caps_of(me)
            .iter()
            .find(|c| c.active && matches!(c.resource, Resource::CpuCore(1)))
            .map(|c| c.id)
            .unwrap()
    };
    client
        .share(core1, d, None, Rights::USE, RevocationPolicy::NONE)
        .unwrap();
    client.set_entry(d, 0x10_0000).unwrap();
    client.seal(d, SealPolicy::strict()).unwrap();
    // Core 0: refused. Core 1: allowed.
    assert_eq!(
        m.call(0, MonitorCall::Enter { cap: gate }),
        Err(Status::Denied)
    );
    assert!(m.call(1, MonitorCall::Enter { cap: gate }).is_ok());
    m.call(1, MonitorCall::Return).unwrap();
}

#[test]
fn revoking_a_core_strands_the_domain() {
    let mut m = boot();
    let (d, gate) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    // Find the core share child owned by d and revoke it (the OS is the
    // granter).
    let core_cap = m
        .engine
        .caps_of(d)
        .iter()
        .find(|c| matches!(c.resource, Resource::CpuCore(_)))
        .map(|c| c.id)
        .unwrap();
    let os = m.engine.root().unwrap();
    m.engine.revoke(os, core_cap).unwrap();
    m.sync_effects().unwrap();
    assert_eq!(
        m.call(0, MonitorCall::Enter { cap: gate }),
        Err(Status::Denied),
        "no core, no execution — scheduling is a revocable resource"
    );
}

#[test]
fn call_stack_depth_and_discipline() {
    let mut m = boot();
    let (_a, ga) = spawn_sealed(&mut m, 0, 0x10_0000, 0x4_0000, &[0], SealPolicy::nestable());
    // Build a 3-deep call chain: OS -> a -> b (created by a) and check
    // returns unwind in order.
    m.call(0, MonitorCall::Enter { cap: ga }).unwrap();
    let mut client = libtyche::TycheClient::new(&mut m, 0);
    let (b, gb) = client.create_domain().unwrap();
    let page = client.carve(0x10_4000, 0x10_5000).unwrap();
    client
        .grant(page, b, Rights::RW, RevocationPolicy::NONE)
        .unwrap();
    let core = {
        let me = client.whoami();
        client
            .monitor
            .engine
            .caps_of(me)
            .iter()
            .find(|c| c.active && matches!(c.resource, Resource::CpuCore(0)))
            .map(|c| c.id)
            .unwrap()
    };
    client
        .share(core, b, None, Rights::USE, RevocationPolicy::NONE)
        .unwrap();
    client.set_entry(b, 0x12_0000).unwrap();
    client.seal(b, SealPolicy::strict()).unwrap();
    client.enter(gb).unwrap();
    let b_now = m.current_domain(0);
    assert_eq!(b_now, b);
    // Unwind: b -> a -> OS, then one more return is refused.
    m.call(0, MonitorCall::Return).unwrap();
    m.call(0, MonitorCall::Return).unwrap();
    assert_eq!(m.current_domain(0), m.engine.root().unwrap());
    assert_eq!(m.call(0, MonitorCall::Return), Err(Status::Denied));
}

#[test]
fn per_core_contexts_are_independent() {
    let mut m = boot();
    let (a, ga) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0, 1], SealPolicy::strict());
    // Enter a on core 0; core 1 still runs the OS.
    m.call(0, MonitorCall::Enter { cap: ga }).unwrap();
    assert_eq!(m.current_domain(0), a);
    assert_eq!(m.current_domain(1), m.engine.root().unwrap());
    // Core 1's memory view is the OS's; core 0's is the enclave's.
    assert!(
        m.dom_read(1, 0x10_0000, &mut [0u8; 1]).is_err(),
        "core1=OS: no enclave access"
    );
    assert!(
        m.dom_read(0, 0x10_0000, &mut [0u8; 1]).is_ok(),
        "core0=enclave: access"
    );
    m.call(0, MonitorCall::Return).unwrap();
}

#[test]
fn cannot_kill_a_running_domain() {
    // Killing a domain that currently occupies a core would leave that
    // core's hardware context pointing at freed translation frames; the
    // monitor must refuse until the domain is off-CPU.
    let mut m = boot();
    let (victim, gate) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    m.call(0, MonitorCall::Enter { cap: gate }).unwrap();
    // The OS on core 1 tries to kill the domain running on core 0.
    assert_eq!(
        m.call(1, MonitorCall::Kill { domain: victim }),
        Err(Status::Denied)
    );
    assert!(m.engine.domain(victim).unwrap().is_alive());
    // Once it returns, the kill goes through and the core is safe.
    m.call(0, MonitorCall::Return).unwrap();
    m.call(1, MonitorCall::Kill { domain: victim }).unwrap();
    assert!(!m.engine.domain(victim).unwrap().is_alive());
    assert!(m.audit_hardware().is_empty());
}

#[test]
fn revoking_memory_of_a_running_domain_takes_effect_immediately() {
    // Revocation does not wait for the victim to stop running: its
    // hardware access is torn down while it is current on another core,
    // with the TLB shootdown applied in the same sync.
    let mut m = boot();
    let (victim, gate) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    m.call(0, MonitorCall::Enter { cap: gate }).unwrap();
    assert!(m.dom_read(0, 0x10_0000, &mut [0u8; 1]).is_ok());
    // The OS (running on core 1) revokes the victim's memory grant.
    let mem_cap = m
        .engine
        .caps_of(victim)
        .iter()
        .find(|c| c.is_memory())
        .map(|c| c.id)
        .unwrap();
    m.call(1, MonitorCall::Revoke { cap: mem_cap }).unwrap();
    // The running domain lost the page at once — no stale-TLB window.
    assert!(
        m.dom_read(0, 0x10_0000, &mut [0u8; 1]).is_err(),
        "revocation strips a running domain immediately"
    );
    // The victim stays alive and still returns cleanly.
    assert!(m.engine.domain(victim).unwrap().is_alive());
    m.call(0, MonitorCall::Return).unwrap();
    assert!(m.audit_hardware().is_empty());
}

#[test]
fn revoking_the_gate_of_a_running_domain_does_not_strand_the_stack() {
    // Revoking the transition capability used to enter a running domain
    // closes the door for future entries but does not invalidate the
    // in-flight frame: the return path unwinds normally.
    let mut m = boot();
    let (_victim, gate) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
    m.call(0, MonitorCall::Enter { cap: gate }).unwrap();
    m.call(1, MonitorCall::Revoke { cap: gate }).unwrap();
    m.call(0, MonitorCall::Return).unwrap();
    assert_eq!(m.current_domain(0), m.engine.root().unwrap());
    // Re-entry through the revoked gate is refused.
    assert_eq!(
        m.call(0, MonitorCall::Enter { cap: gate }),
        Err(Status::NotFound)
    );
}

#[test]
fn cannot_kill_a_fast_path_caller() {
    // The kill refusal covers fast-path frames too. This matters because
    // a fast frame caches the caller's VMFUNC slot for the return; if the
    // caller could be killed mid-call, the slot could be recycled by a
    // new domain and the return would switch into the wrong EPT.
    let mut m = boot();
    let (mid, gate_mid) = spawn_sealed(&mut m, 0, 0x10_0000, 0x8000, &[0], SealPolicy::nestable());
    m.enter_fast(0, gate_mid).unwrap();
    // mid creates + fast-enters a child, putting itself on the stack.
    let mut client = libtyche::TycheClient::new(&mut m, 0);
    let (child, gate_child) = client.create_domain().unwrap();
    let page = client.carve(0x10_4000, 0x10_5000).unwrap();
    client
        .grant(page, child, Rights::RW, RevocationPolicy::NONE)
        .unwrap();
    let core = {
        let me = client.whoami();
        client
            .monitor
            .engine
            .caps_of(me)
            .iter()
            .find(|c| c.active && matches!(c.resource, Resource::CpuCore(0)))
            .map(|c| c.id)
            .unwrap()
    };
    client
        .share(core, child, None, Rights::USE, RevocationPolicy::NONE)
        .unwrap();
    client.set_entry(child, 0x10_4000).unwrap();
    client.seal(child, SealPolicy::strict()).unwrap();
    m.enter_fast(0, gate_child).unwrap();
    // The OS on core 1 cannot kill `mid` while its fast frame is live.
    assert_eq!(
        m.call(1, MonitorCall::Kill { domain: mid }),
        Err(Status::Denied)
    );
    assert!(m.engine.domain(mid).unwrap().is_alive());
    // Unwind the fast frames; now the kill goes through.
    m.ret_fast(0).unwrap();
    m.ret_fast(0).unwrap();
    m.call(1, MonitorCall::Kill { domain: mid }).unwrap();
    assert!(!m.engine.domain(mid).unwrap().is_alive());
}

#[test]
fn cannot_kill_a_stacked_caller() {
    // A domain that is a *caller* in an active transition stack is also
    // unkillable: the return path would switch into freed state.
    let mut m = boot();
    let (mid, gate_mid) = spawn_sealed(&mut m, 0, 0x10_0000, 0x8000, &[0], SealPolicy::nestable());
    m.call(0, MonitorCall::Enter { cap: gate_mid }).unwrap();
    // mid creates + enters a child, putting itself on the stack.
    let mut client = libtyche::TycheClient::new(&mut m, 0);
    let (_child, gate_child) = client.create_domain().unwrap();
    let page = client.carve(0x10_4000, 0x10_5000).unwrap();
    client
        .grant(page, _child, Rights::RW, RevocationPolicy::NONE)
        .unwrap();
    let core = {
        let me = client.whoami();
        client
            .monitor
            .engine
            .caps_of(me)
            .iter()
            .find(|c| c.active && matches!(c.resource, Resource::CpuCore(0)))
            .map(|c| c.id)
            .unwrap()
    };
    client
        .share(core, _child, None, Rights::USE, RevocationPolicy::NONE)
        .unwrap();
    client.set_entry(_child, 0x10_4000).unwrap();
    client.seal(_child, SealPolicy::strict()).unwrap();
    client.enter(gate_child).unwrap();
    // The OS on core 1 cannot kill `mid` while it sits on core 0's stack.
    assert_eq!(
        m.call(1, MonitorCall::Kill { domain: mid }),
        Err(Status::Denied)
    );
    // Unwind fully; now it can.
    m.call(0, MonitorCall::Return).unwrap();
    m.call(0, MonitorCall::Return).unwrap();
    m.call(1, MonitorCall::Kill { domain: mid }).unwrap();
}
