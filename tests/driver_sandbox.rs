//! C11 — kernel compartments for untrusted drivers, integrated with the
//! guest OS: the kernel survives driver bugs, user processes keep
//! working, and repeated crashes can be handled by recycling the sandbox.

use tyche_bench::boot;
use tyche_guest::driver::{BuggyDriver, DriverHost, DriverRequest, DriverResponse, XorBlockDriver};
use tyche_guest::{GuestOs, SysResult, Syscall};

const KERNEL_STATE: u64 = 0x8_0000;
const WINDOW: (u64, u64) = (0x30_0000, 0x30_1000);
const SCRATCH: (u64, u64) = (0x31_0000, 0x31_4000);

#[test]
fn kernel_and_processes_survive_driver_crash() {
    let mut m = boot();
    let end = m.machine.domain_ram.end.as_u64();
    let mut os = GuestOs::new((0, end), 0, 0x10_0000);
    let pid = os.spawn(0x10_0000).unwrap();
    let addr = match os.syscall(&mut m, pid, Syscall::Alloc { len: 32 }) {
        SysResult::Addr(a) => a,
        other => panic!("{other:?}"),
    };
    os.syscall(
        &mut m,
        pid,
        Syscall::Write {
            addr,
            data: b"app data".to_vec(),
        },
    );
    m.dom_write(0, KERNEL_STATE, b"scheduler queue").unwrap();

    let host = DriverHost::sandboxed(&mut m, 0, SCRATCH, WINDOW).unwrap();
    let mut buggy = BuggyDriver {
        wild_target: KERNEL_STATE,
    };
    let resp = host
        .dispatch(
            &mut m,
            0,
            &mut buggy,
            DriverRequest {
                op: 666,
                addr: WINDOW.0,
                len: 8,
            },
        )
        .unwrap();
    assert_eq!(resp, DriverResponse::Crashed);

    // Kernel metadata intact; the process continues unharmed.
    let mut state = [0u8; 15];
    m.dom_read(0, KERNEL_STATE, &mut state).unwrap();
    assert_eq!(&state, b"scheduler queue");
    assert_eq!(
        os.syscall(&mut m, pid, Syscall::Read { addr, len: 8 }),
        SysResult::Bytes(b"app data".to_vec())
    );
    assert!(os.schedule().is_some(), "scheduler still runs");
}

#[test]
fn crashed_driver_can_be_recycled() {
    // After a crash the kernel destroys the compartment (zeroing driver
    // state) and builds a fresh one — crash-and-restart à la Nooks.
    let mut m = boot();
    let host = DriverHost::sandboxed(&mut m, 0, SCRATCH, WINDOW).unwrap();
    let mut buggy = BuggyDriver {
        wild_target: KERNEL_STATE,
    };
    let resp = host
        .dispatch(
            &mut m,
            0,
            &mut buggy,
            DriverRequest {
                op: 666,
                addr: WINDOW.0,
                len: 8,
            },
        )
        .unwrap();
    assert_eq!(resp, DriverResponse::Crashed);
    if let DriverHost::Sandboxed(sb) = host {
        sb.destroy(&mut m, 0).unwrap();
    }
    // Fresh compartment, same addresses, working driver.
    let host2 = DriverHost::sandboxed(&mut m, 0, SCRATCH, WINDOW).unwrap();
    m.dom_write(0, WINDOW.0, b"ab").unwrap();
    let mut good = XorBlockDriver { key: 0x01 };
    let resp = host2
        .dispatch(
            &mut m,
            0,
            &mut good,
            DriverRequest {
                op: 1,
                addr: WINDOW.0,
                len: 2,
            },
        )
        .unwrap();
    assert_eq!(resp, DriverResponse::Done);
    let mut out = [0u8; 2];
    m.dom_read(0, WINDOW.0, &mut out).unwrap();
    assert_eq!(out, [b'a' ^ 1, b'b' ^ 1]);
}

#[test]
fn driver_cannot_read_process_memory() {
    // Even a merely *curious* driver sees nothing beyond its window: the
    // compartment's blast radius and its visibility are the same set.
    let mut m = boot();
    let end = m.machine.domain_ram.end.as_u64();
    let mut os = GuestOs::new((0, end), 0, 0x10_0000);
    let pid = os.spawn(0x10_0000).unwrap();
    let addr = match os.syscall(&mut m, pid, Syscall::Alloc { len: 16 }) {
        SysResult::Addr(a) => a,
        other => panic!("{other:?}"),
    };
    os.syscall(
        &mut m,
        pid,
        Syscall::Write {
            addr,
            data: b"private".to_vec(),
        },
    );
    let host = DriverHost::sandboxed(&mut m, 0, SCRATCH, WINDOW).unwrap();

    struct SnoopingDriver {
        target: u64,
        got: Option<Vec<u8>>,
    }
    impl tyche_guest::Driver for SnoopingDriver {
        fn handle(
            &mut self,
            mem: &mut dyn tyche_guest::driver::DriverMemory,
            _req: DriverRequest,
        ) -> Result<(), tyche_monitor::Fault> {
            let mut buf = vec![0u8; 7];
            mem.read(self.target, &mut buf)?;
            self.got = Some(buf);
            Ok(())
        }
    }
    let mut snoop = SnoopingDriver {
        target: addr,
        got: None,
    };
    let resp = host
        .dispatch(
            &mut m,
            0,
            &mut snoop,
            DriverRequest {
                op: 2,
                addr: WINDOW.0,
                len: 0,
            },
        )
        .unwrap();
    assert_eq!(resp, DriverResponse::Crashed, "the read faulted");
    assert!(snoop.got.is_none(), "nothing was exfiltrated");
}
