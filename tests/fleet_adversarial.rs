//! The adversarial cross-machine suite: every frame-tamper class dies
//! at the receiving channel with the exact frame index recorded, and a
//! byzantine machine never gets a channel in the first place.
//!
//! Each tamper case is pinned from both sides: the conforming flow is
//! accepted first (so a rejection can't be hiding a broken happy path),
//! then the seeded violation is asserted by reason *and* frame index,
//! and the teardown's consequences (sticky quarantine, refused sends)
//! are checked. The replay test at the bottom pins the whole transport:
//! a seeded 3-machine fleet under injected NIC drop/dup faults run
//! twice produces bit-identical per-machine trace chains and equal
//! engine states.

use tyche_core::channel::ViolationReason;
use tyche_crypto::{hash, Digest};
use tyche_fleet::{Fleet, FleetConfig, FleetError, FRAME_OVERHEAD};
use tyche_hw::faults::{FaultPlan, FaultSite};
use tyche_hw::nic::Frame;
use tyche_monitor::attest::VerifyError;

/// A two-machine fleet with the 0↔1 channel up.
fn pair_fleet(seed: u64) -> Fleet {
    let mut fleet = Fleet::new(&FleetConfig {
        machines: 2,
        seed,
        ..FleetConfig::default()
    })
    .expect("fleet boots");
    assert_eq!(fleet.establish_all(), 1);
    fleet
}

/// Pulls the next raw frame out of machine `at`'s NIC queue — the
/// tamper tests' stand-in for an attacker with link access.
fn intercept(fleet: &mut Fleet, at: usize) -> Frame {
    fleet
        .machine_mut(at)
        .expect("machine")
        .monitor
        .machine
        .nic_recv(0)
        .expect("a frame in flight")
}

/// Asserts `res` is a channel violation with exactly `reason` at
/// exactly `frame_index`.
#[track_caller]
fn assert_violation<T: std::fmt::Debug>(
    res: Result<T, FleetError>,
    reason: ViolationReason,
    frame_index: u64,
) {
    match res {
        Err(FleetError::Channel(v)) => {
            assert_eq!(v.reason, reason);
            assert_eq!(v.frame_index, frame_index);
        }
        other => panic!("expected {reason} violation, got {other:?}"),
    }
}

#[test]
fn flipped_mac_byte_is_rejected_at_the_exact_frame() {
    let mut fleet = pair_fleet(101);
    // Conforming side: two clean frames land with ascending sequences.
    for seq in 0..2u64 {
        assert_eq!(fleet.send(0, 1, 0, b"clean").unwrap(), seq);
        let d = fleet.deliver(1, 0).unwrap().expect("delivery");
        assert_eq!((d.from, d.seq), (0, seq));
    }
    // Violation side: flip one MAC byte of the third frame in flight.
    fleet.send(0, 1, 0, b"tampered").unwrap();
    let mut frame = intercept(&mut fleet, 1);
    *frame.payload.last_mut().unwrap() ^= 0x01;
    fleet.inject(1, frame).unwrap();
    assert_violation(fleet.deliver(1, 0), ViolationReason::BadMac, 2);
    // Teardown is sticky: the peer is quarantined and the next clean
    // frame from it is itself a violation at the next index.
    assert!(fleet.machine(1).unwrap().channels.is_quarantined(0));
    fleet.send(0, 1, 0, b"after").unwrap();
    assert_violation(fleet.deliver(1, 0), ViolationReason::NoChannel, 3);
}

#[test]
fn replayed_frame_is_rejected_at_the_exact_frame() {
    let mut fleet = pair_fleet(102);
    fleet.send(0, 1, 0, b"once").unwrap();
    let frame = intercept(&mut fleet, 1);
    // Conforming side: the original frame is accepted.
    fleet.inject(1, frame.clone()).unwrap();
    assert_eq!(fleet.deliver(1, 0).unwrap().expect("delivery").seq, 0);
    // Violation side: the identical frame again is a replay.
    fleet.inject(1, frame).unwrap();
    assert_violation(fleet.deliver(1, 0), ViolationReason::Replay, 1);
    assert!(fleet.machine(1).unwrap().channels.is_quarantined(0));
}

#[test]
fn reordered_sequence_is_rejected_at_the_exact_frame() {
    let mut fleet = pair_fleet(103);
    // Conforming side: in-order delivery of two frames.
    fleet.send(0, 1, 0, b"s0").unwrap();
    fleet.send(0, 1, 0, b"s1").unwrap();
    assert_eq!(fleet.deliver(1, 0).unwrap().expect("s0").seq, 0);
    assert_eq!(fleet.deliver(1, 0).unwrap().expect("s1").seq, 1);
    // Violation side: swap the next two frames on the link. The
    // higher sequence arrives first — a gap, rejected immediately.
    fleet.send(0, 1, 0, b"s2").unwrap();
    fleet.send(0, 1, 0, b"s3").unwrap();
    let f2 = intercept(&mut fleet, 1);
    let f3 = intercept(&mut fleet, 1);
    fleet.inject(1, f3).unwrap();
    fleet.inject(1, f2).unwrap();
    assert_violation(fleet.deliver(1, 0), ViolationReason::Reorder, 2);
    // The in-order original behind it is now traffic on a torn-down
    // channel, counted at the next index.
    assert_violation(fleet.deliver(1, 0), ViolationReason::NoChannel, 3);
}

#[test]
fn truncated_payload_is_rejected_at_the_exact_frame() {
    let mut fleet = pair_fleet(104);
    // Conforming side: a full-size frame lands.
    fleet.send(0, 1, 0, b"whole").unwrap();
    assert_eq!(fleet.deliver(1, 0).unwrap().expect("delivery").seq, 0);
    // Violation side: cut the frame below the header+tag minimum.
    fleet.send(0, 1, 0, b"cut me").unwrap();
    let mut frame = intercept(&mut fleet, 1);
    frame.payload.truncate(FRAME_OVERHEAD - 1);
    fleet.inject(1, frame).unwrap();
    assert_violation(fleet.deliver(1, 0), ViolationReason::Truncated, 1);
    assert!(fleet.machine(1).unwrap().channels.is_quarantined(0));
}

#[test]
fn stale_epoch_frame_is_rejected_after_reattestation() {
    let mut fleet = pair_fleet(105);
    // Conforming side, epoch 1: one clean delivery.
    fleet.send(0, 1, 0, b"epoch1").unwrap();
    assert_eq!(fleet.deliver(1, 0).unwrap().expect("delivery").seq, 0);
    // Capture an epoch-1 frame in flight, then re-key the pair.
    fleet.send(0, 1, 0, b"held back").unwrap();
    let stale = intercept(&mut fleet, 1);
    fleet.attest_pair(0, 1).expect("re-attestation");
    assert_eq!(fleet.machine(1).unwrap().channels.epoch(0), 2);
    // Conforming side, epoch 2: sequences restarted, frames land.
    assert_eq!(fleet.send(0, 1, 0, b"epoch2").unwrap(), 0);
    assert_eq!(fleet.deliver(1, 0).unwrap().expect("delivery").seq, 0);
    // Violation side: the held-back epoch-1 frame is stale — its MAC
    // still verifies under the retained old key, so the rejection is
    // diagnosed as a stale epoch, not a forgery.
    fleet.inject(1, stale).unwrap();
    assert_violation(fleet.deliver(1, 0), ViolationReason::StaleEpoch, 2);
}

#[test]
fn byzantine_monitor_never_gets_a_channel() {
    let mut fleet = Fleet::new(&FleetConfig {
        machines: 3,
        seed: 106,
        byzantine: Some(2),
        ..FleetConfig::default()
    })
    .expect("fleet boots");
    // Only the honest pair comes up; both honest machines quarantine
    // the byzantine one during the failed handshakes.
    assert_eq!(fleet.establish_all(), 1);
    for honest in [0usize, 1] {
        assert!(fleet.machine(honest).unwrap().channels.is_quarantined(2));
        match fleet.send(honest, 2, 0, b"no") {
            Err(FleetError::Refused(ViolationReason::NoChannel)) => {}
            other => panic!("send to byzantine peer: {other:?}"),
        }
    }
    // The honest channel still works.
    fleet.send(0, 1, 0, b"healthy").unwrap();
    assert_eq!(fleet.deliver(1, 0).unwrap().expect("delivery").seq, 0);
    // Raw byzantine spray is rejected and counted, never accepted.
    fleet.send_raw(2, 0, 0, vec![0xbb; 72]).unwrap();
    let (accepted, rejected) = fleet.pump(0, 0);
    assert!(accepted.is_empty());
    assert_eq!(rejected.len(), 1);
}

#[test]
fn forged_quote_fails_verification_and_quarantines_forever() {
    let mut fleet = pair_fleet(107);
    // Tear the channel state back down via a forged re-attestation:
    // machine 1 presents a quote whose PCR has been rewritten.
    let res = fleet.attest_pair_with(0, 1, |q| {
        q.pcr_values[0] = hash(b"forged measurement");
    });
    match res {
        Err(FleetError::Attestation(VerifyError::BadQuote)) => {}
        other => panic!("forged quote: {other:?}"),
    }
    assert!(fleet.machine(0).unwrap().channels.is_quarantined(1));
    // Quarantine is sticky: even an honest retry is refused.
    match fleet.attest_pair(0, 1) {
        Err(FleetError::Refused(ViolationReason::NoChannel)) => {}
        other => panic!("post-forgery retry: {other:?}"),
    }
}

/// One deterministic fleet run: 3 machines, traced, NIC drop and dup
/// faults armed on the receiving side, a fixed 18-request schedule over
/// the ordered pairs. Returns each machine's trace chain, engine state,
/// and violation count.
fn seeded_run(seed: u64) -> (Vec<Digest>, Vec<tyche_core::engine::CapEngine>, u64) {
    let mut fleet = Fleet::new(&FleetConfig {
        machines: 3,
        seed,
        ..FleetConfig::default()
    })
    .expect("fleet boots");
    fleet.enable_tracing();
    for (m, site, skip) in [(1usize, FaultSite::NicDrop, 2), (2, FaultSite::NicDup, 5)] {
        fleet
            .machine_mut(m)
            .unwrap()
            .monitor
            .machine
            .faults
            .arm(FaultPlan::after(site, skip, 1));
    }
    assert_eq!(fleet.establish_all(), 3);
    let pairs = [(0usize, 1usize), (1, 2), (2, 0), (1, 0), (2, 1), (0, 2)];
    let mut violations = 0u64;
    for step in 0..18usize {
        let (a, b) = pairs[step % pairs.len()];
        let _ = fleet.send(a, b, step % 2, &[seed as u8, step as u8]);
        let (_, rejected) = fleet.pump(b, step % 2);
        violations += rejected.len() as u64;
    }
    let mut chains = Vec::new();
    let mut engines = Vec::new();
    for i in 0..fleet.len() {
        let m = fleet.machine(i).unwrap();
        chains.push(m.monitor.trace().drain().chain());
        engines.push(m.monitor.engine.clone());
    }
    (chains, engines, violations)
}

#[test]
fn faulted_fleet_replays_bit_identically() {
    let (chains_a, engines_a, violations_a) = seeded_run(0xf1ee7);
    let (chains_b, engines_b, violations_b) = seeded_run(0xf1ee7);
    // The faults actually bit: at least the dropped frame's sequence
    // gap surfaced as a violation.
    assert!(violations_a > 0, "armed NIC faults must cause violations");
    assert_eq!(violations_a, violations_b);
    // Bit-identical trace chains and equal engine states, per machine.
    // (A different seed changes the key material but not the event
    // structure — traces record peers, sequences, and epochs, never
    // secrets, so the chains are a pure function of the schedule.)
    assert_eq!(chains_a, chains_b);
    assert_eq!(engines_a, engines_b);
}
