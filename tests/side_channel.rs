//! C3 — flush-on-transition policies actually close the modeled cache
//! side channel (§4.1), and exclusive-core policies are expressible.

use tyche_bench::{boot, spawn_sealed};
use tyche_core::prelude::*;
use tyche_monitor::abi::MonitorCall;

/// Returns how many of the victim's cache lines survive a return to the
/// attacker under `policy`.
fn residue_after_exit(policy: RevocationPolicy, lines: u64) -> usize {
    let mut m = boot();
    let os = m.engine.root().unwrap();
    let (victim, _) = spawn_sealed(&mut m, 0, 0x10_0000, 0x8000, &[0], SealPolicy::strict());
    let gate = m.engine.make_transition(os, victim, policy).unwrap();
    m.sync_effects().unwrap();
    m.call(0, MonitorCall::Enter { cap: gate }).unwrap();
    for i in 0..lines {
        // Secret-dependent line touches.
        m.dom_write(0, 0x10_0000 + i * 64, &[1]).unwrap();
    }
    m.call(0, MonitorCall::Return).unwrap();
    let tag = m.x86_backend().unwrap().ept_root(victim).unwrap().as_u64();
    m.machine.cache.resident_lines_of(tag)
}

#[test]
fn without_flush_the_channel_exists() {
    // The attacker observes exactly how many lines the victim touched —
    // a classic occupancy channel.
    assert_eq!(residue_after_exit(RevocationPolicy::NONE, 0), 0);
    let r8 = residue_after_exit(RevocationPolicy::NONE, 8);
    let r32 = residue_after_exit(RevocationPolicy::NONE, 32);
    assert!(
        r8 >= 8 && r32 >= 32,
        "residue grows with secret-dependent accesses"
    );
    assert!(r32 > r8, "the attacker can distinguish victim behaviours");
}

#[test]
fn flush_policy_closes_the_channel() {
    for lines in [1u64, 8, 32, 64] {
        assert_eq!(
            residue_after_exit(RevocationPolicy::OBFUSCATE, lines),
            0,
            "no victim residue after a flushing transition"
        );
    }
}

#[test]
fn tlb_residue_also_cleared() {
    let mut m = boot();
    let os = m.engine.root().unwrap();
    let (victim, _) = spawn_sealed(&mut m, 0, 0x10_0000, 0x8000, &[0], SealPolicy::strict());
    let gate = m
        .engine
        .make_transition(os, victim, RevocationPolicy::OBFUSCATE)
        .unwrap();
    m.sync_effects().unwrap();
    m.call(0, MonitorCall::Enter { cap: gate }).unwrap();
    for i in 0..4u64 {
        m.dom_write(0, 0x10_0000 + i * 0x1000, &[1]).unwrap();
    }
    assert!(!m.machine.tlb.is_empty());
    m.call(0, MonitorCall::Return).unwrap();
    let tag = m.x86_backend().unwrap().ept_root(victim).unwrap().as_u64();
    // No victim-tagged translations survive.
    assert_eq!(m.machine.tlb.lookup(tag, 0x10_0000, 0b001), None);
}

#[test]
fn exclusive_core_policy_expressible() {
    // §4.1: "policies that mitigate side-channel attacks, e.g., by
    // ensuring exclusive access to a CPU core". Grant (not share) a core:
    // the refcount over the core is 1 and the OS cannot run there... which
    // the engine's core-ownership check enforces at every transition.
    let mut m = boot();
    let mut client = libtyche::TycheClient::new(&mut m, 0);
    let (d, _gate) = client.create_domain().unwrap();
    let page = client.carve(0x10_0000, 0x10_1000).unwrap();
    client
        .grant(page, d, Rights::RWX, RevocationPolicy::NONE)
        .unwrap();
    let core3 = {
        let me = client.whoami();
        client
            .monitor
            .engine
            .caps_of(me)
            .iter()
            .find(|c| c.active && matches!(c.resource, Resource::CpuCore(3)))
            .map(|c| c.id)
            .unwrap()
    };
    client
        .grant(core3, d, Rights::USE, RevocationPolicy::NONE)
        .unwrap();
    client.set_entry(d, 0x10_0000).unwrap();
    client.seal(d, SealPolicy::strict()).unwrap();
    let os = m.engine.root().unwrap();
    assert!(m.engine.owns_core(d, 3));
    assert!(
        !m.engine.owns_core(os, 3),
        "exclusive: the OS gave the core away entirely"
    );
    // The enumeration (and thus attestation) shows the core at refcount 1.
    let entry = m
        .engine
        .enumerate(d)
        .unwrap()
        .into_iter()
        .find(|r| matches!(r.resource, Resource::CpuCore(3)))
        .unwrap();
    assert_eq!(entry.refcount.max, 1);
}
