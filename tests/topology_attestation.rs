//! §4.2 extension: multi-domain topology attestation — "extend
//! attestation to multi-domain deployments with the insurance that all
//! communication paths are secured and attested". The customer verifies
//! the whole Figure 2 deployment in one shot, and every way the topology
//! can silently differ from the declared one is caught.

use tyche_bench::scenarios::{self, layout};
use tyche_monitor::attest::{TopologyError, TopologySpec, Verifier, VerifyError};
use tyche_monitor::boot::{expected_monitor_pcr, MONITOR_VERSION};

const QN: [u8; 32] = [1u8; 32];
const RN: [u8; 32] = [2u8; 32];

/// Members: 0 = crypto engine, 1 = app.
fn fig2_spec() -> TopologySpec {
    TopologySpec {
        member_measurements: vec![None, None],
        channels: vec![
            (layout::APP_CRYPTO.0, layout::APP_CRYPTO.1, vec![0, 1]),
            // app<->gpu and net involve non-member parties (the GPU
            // domain and the provider); declare them as app channels with
            // one external leg each: the spec lists only member indices,
            // so their refcount 2 is member + 1 external — we model that
            // by declaring them as single-member channels with an
            // expected refcount of 2 via the member set {1} ∪ external.
            // For this test we declare them exactly and put the external
            // party in via a 2-member set including a pseudo-slot; the
            // cleaner encoding is to attest those parties too, which the
            // `gpu_in_the_member_set` test does.
        ],
    }
}

fn verifier_for(m: &tyche_monitor::Monitor) -> Verifier {
    Verifier {
        tpm_key: m.machine.tpm.attestation_key(),
        expected_monitor_pcr: expected_monitor_pcr(MONITOR_VERSION),
        monitor_key: m.report_key(),
    }
}

#[test]
fn undeclared_sharing_detected() {
    // The honest Fig. 2 app has three shared windows (crypto, gpu, net);
    // a spec declaring only the crypto channel must reject it — which is
    // the point: nothing shared escapes the declaration.
    let mut f = scenarios::fig2();
    let verifier = verifier_for(&f.monitor);
    let quote = f.monitor.machine_quote(QN).expect("quote");
    let crypto_r = f.monitor.attest_domain(f.crypto, RN).unwrap();
    let app_r = f.monitor.attest_domain(f.app, RN).unwrap();
    let err = verifier
        .verify_topology(&quote, &QN, &[crypto_r, app_r], &RN, &fig2_spec())
        .unwrap_err();
    assert!(
        matches!(err, TopologyError::UndeclaredSharing { member: 1, .. }),
        "the app's gpu/net windows are undeclared: {err:?}"
    );
}

#[test]
fn full_member_set_verifies() {
    // Attest all four parties (crypto, app, gpu domain, provider-side
    // net is provider's own; we attest gpu instead) and declare every
    // channel: the topology verifies.
    let mut f = scenarios::fig2();
    let verifier = verifier_for(&f.monitor);
    let quote = f.monitor.machine_quote(QN).expect("quote");
    let crypto_r = f.monitor.attest_domain(f.crypto, RN).unwrap();
    let app_r = f.monitor.attest_domain(f.app, RN).unwrap();
    let gpu_r = f.monitor.attest_domain(f.gpu_domain, RN).unwrap();

    // NET is shared with the (unattested) provider, so no spec over
    // members {crypto, app, gpu} can declare it member-complete. Exclude
    // the app's NET window by treating provider as member 3? The
    // provider is not sealed, so it cannot be attested — instead the
    // verifier declares NET as a channel of {app} + accepts refcount 2
    // only if it names the provider explicitly out of band. Here we
    // check the strict failure first:
    let spec = TopologySpec {
        member_measurements: vec![None, None, None],
        channels: vec![
            (layout::APP_CRYPTO.0, layout::APP_CRYPTO.1, vec![0, 1]),
            (layout::APP_GPU.0, layout::APP_GPU.1, vec![1, 2]),
        ],
    };
    let err = verifier
        .verify_topology(
            &quote,
            &QN,
            &[crypto_r.clone(), app_r.clone(), gpu_r.clone()],
            &RN,
            &spec,
        )
        .unwrap_err();
    assert!(
        matches!(err, TopologyError::UndeclaredSharing { member: 1, start, .. }
        if start == layout::NET.0)
    );

    // Declaring NET as app+provider requires a 2-member refcount; the
    // verifier models the provider as a declared-but-unattested leg by
    // listing the app twice... the honest encoding: declare NET with the
    // app and expect refcount 2 — supported by adding the provider as a
    // *declared external* via a second index pointing at the app's own
    // slot is wrong. The supported pattern: the deployment moves NET
    // into a sealed "net proxy" domain, or the verifier accepts the app
    // report's NET refcount via the single-report check. We do the
    // latter:
    let spec_ok = TopologySpec {
        member_measurements: vec![None, None, None],
        channels: vec![
            (layout::APP_CRYPTO.0, layout::APP_CRYPTO.1, vec![0, 1]),
            (layout::APP_GPU.0, layout::APP_GPU.1, vec![1, 2]),
            (layout::NET.0, layout::NET.1, vec![1]), // declared; 1 member...
        ],
    };
    // ...which fails the outsider check (refcount 2 > 1 member) — and
    // that is CORRECT: the provider *is* an outsider on NET. The
    // verifier knowingly accepts by checking the app report directly.
    let err = verifier
        .verify_topology(
            &quote,
            &QN,
            &[crypto_r.clone(), app_r.clone(), gpu_r.clone()],
            &RN,
            &spec_ok,
        )
        .unwrap_err();
    assert!(matches!(
        err,
        TopologyError::OutsiderOnChannel {
            expected: 1,
            got: 2,
            ..
        }
    ));

    // The fully-verifiable core of the deployment: crypto + app + gpu
    // with the NET window carved out of the app's attested holdings
    // entirely — rebuild the deployment without a NET share.
    let mut f2 = scenarios::fig2_without_net();
    let verifier2 = verifier_for(&f2.monitor);
    let quote2 = f2.monitor.machine_quote(QN).expect("quote");
    let crypto2 = f2.monitor.attest_domain(f2.crypto, RN).unwrap();
    let app2 = f2.monitor.attest_domain(f2.app, RN).unwrap();
    let gpu2 = f2.monitor.attest_domain(f2.gpu_domain, RN).unwrap();
    let spec2 = TopologySpec {
        member_measurements: vec![None, None, None],
        channels: vec![
            (layout::APP_CRYPTO.0, layout::APP_CRYPTO.1, vec![0, 1]),
            (layout::APP_GPU.0, layout::APP_GPU.1, vec![1, 2]),
        ],
    };
    let attested = verifier2
        .verify_topology(&quote2, &QN, &[crypto2, app2, gpu2], &RN, &spec2)
        .expect("fully-attested topology verifies");
    assert_eq!(attested.len(), 3);
}

#[test]
fn missing_channel_detected() {
    // The spec declares a channel the deployment never built.
    let mut f = scenarios::fig2_without_net();
    let verifier = verifier_for(&f.monitor);
    let quote = f.monitor.machine_quote(QN).expect("quote");
    let crypto_r = f.monitor.attest_domain(f.crypto, RN).unwrap();
    let app_r = f.monitor.attest_domain(f.app, RN).unwrap();
    let gpu_r = f.monitor.attest_domain(f.gpu_domain, RN).unwrap();
    let spec = TopologySpec {
        member_measurements: vec![None, None, None],
        channels: vec![
            (layout::APP_CRYPTO.0, layout::APP_CRYPTO.1, vec![0, 1]),
            (layout::APP_GPU.0, layout::APP_GPU.1, vec![1, 2]),
            (0x77_0000, 0x77_1000, vec![0, 1]), // never built
        ],
    };
    let err = verifier
        .verify_topology(&quote, &QN, &[crypto_r, app_r, gpu_r], &RN, &spec)
        .unwrap_err();
    assert!(matches!(
        err,
        TopologyError::MissingChannel {
            member: 0,
            start: 0x77_0000
        }
    ));
}

#[test]
fn member_substitution_detected() {
    // An attacker swaps in a different (honestly-attested!) domain for
    // the crypto engine: the pinned measurement catches it.
    let mut f = scenarios::fig2_without_net();
    let crypto_measure = f
        .monitor
        .engine
        .domain(f.crypto)
        .unwrap()
        .measurement
        .unwrap();
    let verifier = verifier_for(&f.monitor);
    let quote = f.monitor.machine_quote(QN).expect("quote");
    // The impostor: the GPU domain's report in the crypto slot.
    let impostor = f.monitor.attest_domain(f.gpu_domain, RN).unwrap();
    let app_r = f.monitor.attest_domain(f.app, RN).unwrap();
    let gpu_r = f.monitor.attest_domain(f.gpu_domain, RN).unwrap();
    let spec = TopologySpec {
        member_measurements: vec![Some(crypto_measure), None, None],
        channels: vec![
            (layout::APP_CRYPTO.0, layout::APP_CRYPTO.1, vec![0, 1]),
            (layout::APP_GPU.0, layout::APP_GPU.1, vec![1, 2]),
        ],
    };
    let err = verifier
        .verify_topology(&quote, &QN, &[impostor, app_r, gpu_r], &RN, &spec)
        .unwrap_err();
    assert!(matches!(
        err,
        TopologyError::Member(0, VerifyError::WrongDomainMeasurement { .. })
    ));
}

#[test]
fn member_count_checked() {
    let mut f = scenarios::fig2_without_net();
    let verifier = verifier_for(&f.monitor);
    let quote = f.monitor.machine_quote(QN).expect("quote");
    let crypto_r = f.monitor.attest_domain(f.crypto, RN).unwrap();
    let spec = TopologySpec {
        member_measurements: vec![None, None],
        channels: vec![],
    };
    let err = verifier
        .verify_topology(&quote, &QN, &[crypto_r], &RN, &spec)
        .unwrap_err();
    assert_eq!(
        err,
        TopologyError::WrongMemberCount {
            got: 1,
            expected: 2
        }
    );
}
