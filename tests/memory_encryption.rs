//! §4.2 extension: "building physical attack resistance with multi-key
//! memory encryption technologies". An encrypted confidential VM's RAM
//! is ciphertext to a physical attacker (cold boot / DRAM interposer),
//! plaintext to the guest, and keys are per-domain.

use tyche_bench::boot;
use tyche_core::prelude::*;
use tyche_hw::PhysAddr;
use tyche_monitor::Status;

const GUEST_RAM: (u64, u64) = (0x40_0000, 0x44_0000);

fn launch_encrypted(m: &mut tyche_monitor::Monitor) -> libtyche::ConfidentialVm {
    m.dom_write(0, GUEST_RAM.0, b"guest kernel image").unwrap();
    libtyche::ConfidentialVm::launch_encrypted(
        m,
        0,
        GUEST_RAM,
        &[0],
        GUEST_RAM.0,
        &[(GUEST_RAM.0, GUEST_RAM.0 + 0x1000)],
    )
    .unwrap()
}

/// Reads raw DRAM — the physical attacker's view (no controller).
fn cold_boot_read(m: &tyche_monitor::Monitor, addr: u64, len: usize) -> Vec<u8> {
    let mut buf = vec![0u8; len];
    m.machine.mem.read(PhysAddr::new(addr), &mut buf).unwrap();
    buf
}

#[test]
fn cold_boot_sees_ciphertext_guest_sees_plaintext() {
    let mut m = boot();
    let vm = launch_encrypted(&mut m);
    // The pre-loaded image was retagged with content preserved: the guest
    // reads it fine...
    vm.enter(&mut m, 0).unwrap();
    let mut img = [0u8; 18];
    m.dom_read(0, GUEST_RAM.0, &mut img).unwrap();
    assert_eq!(&img, b"guest kernel image");
    // ...and writes secrets that also land encrypted.
    m.dom_write(0, GUEST_RAM.0 + 0x2000, b"runtime secret")
        .unwrap();
    libtyche::ConfidentialVm::exit(&mut m, 0).unwrap();

    // Cold-boot attack: raw DRAM shows neither the image nor the secret.
    assert_ne!(
        cold_boot_read(&m, GUEST_RAM.0, 18),
        b"guest kernel image".to_vec()
    );
    assert_ne!(
        cold_boot_read(&m, GUEST_RAM.0 + 0x2000, 14),
        b"runtime secret".to_vec()
    );
    // Non-zero ciphertext (not just scrubbed).
    assert_ne!(cold_boot_read(&m, GUEST_RAM.0 + 0x2000, 14), vec![0u8; 14]);
    // Unencrypted OS memory is still plaintext at the DRAM level.
    m.dom_write(0, 0x10_0000, b"os plaintext").unwrap();
    assert_eq!(cold_boot_read(&m, 0x10_0000, 12), b"os plaintext".to_vec());
}

#[test]
fn two_encrypted_vms_use_distinct_keys() {
    let mut m = boot();
    m.dom_write(0, 0x40_0000, b"same image bytes").unwrap();
    m.dom_write(0, 0x50_0000, b"same image bytes").unwrap();
    let _a = libtyche::ConfidentialVm::launch_encrypted(
        &mut m,
        0,
        (0x40_0000, 0x42_0000),
        &[0],
        0x40_0000,
        &[],
    )
    .unwrap();
    let _b = libtyche::ConfidentialVm::launch_encrypted(
        &mut m,
        0,
        (0x50_0000, 0x52_0000),
        &[0],
        0x50_0000,
        &[],
    )
    .unwrap();
    let ca = cold_boot_read(&m, 0x40_0000, 16);
    let cb = cold_boot_read(&m, 0x50_0000, 16);
    assert_ne!(ca, b"same image bytes".to_vec());
    assert_ne!(cb, b"same image bytes".to_vec());
    assert_ne!(ca, cb, "multi-key: per-domain ciphertexts differ");
}

#[test]
fn teardown_leaves_no_ciphertext_residue() {
    // Destroy = zero + flush; the zero path also clears the page tags, so
    // the returned pages read as plain zeros for the provider, not as
    // keystream garbage.
    let mut m = boot();
    let vm = launch_encrypted(&mut m);
    vm.enter(&mut m, 0).unwrap();
    m.dom_write(0, GUEST_RAM.0 + 0x3000, b"to be destroyed")
        .unwrap();
    libtyche::ConfidentialVm::exit(&mut m, 0).unwrap();
    vm.destroy(&mut m, 0).unwrap();
    // Provider view through the CPU: zeros.
    let mut buf = [0u8; 15];
    m.dom_read(0, GUEST_RAM.0 + 0x3000, &mut buf).unwrap();
    assert_eq!(buf, [0u8; 15]);
    // Physical view: also zeros (tags dropped with the scrub).
    assert_eq!(cold_boot_read(&m, GUEST_RAM.0 + 0x3000, 15), vec![0u8; 15]);
    assert_eq!(
        m.machine.mktme.protected_pages(),
        0,
        "no stray tagged pages"
    );
}

#[test]
fn only_the_manager_enables_encryption() {
    let mut m = boot();
    let vm = launch_encrypted(&mut m);
    // Another (sealed, unrelated) domain cannot flip encryption on the VM.
    let (_other, gate) =
        tyche_bench::spawn_sealed(&mut m, 0, 0x60_0000, 0x1000, &[0], SealPolicy::strict());
    m.call(0, tyche_monitor::abi::MonitorCall::Enter { cap: gate })
        .unwrap();
    assert_eq!(
        m.enable_memory_encryption(0, vm.domain),
        Err(Status::Denied)
    );
    m.call(0, tyche_monitor::abi::MonitorCall::Return).unwrap();
}

#[test]
fn unsupported_on_riscv() {
    let mut m = tyche_monitor::boot_riscv(tyche_monitor::BootConfig::default());
    let os = m.engine.root().unwrap();
    let (d, _) = m.engine.create_domain(os).unwrap();
    m.sync_effects().unwrap();
    assert_eq!(
        m.enable_memory_encryption(0, d),
        Err(Status::BackendFailure)
    );
}
