//! C7 — the PMP backend: fixed segments force layout discipline (§4),
//! the monitor validates layouts, and a rejected layout leaves the
//! system consistent.

use tyche_core::prelude::*;
use tyche_monitor::abi::MonitorCall;
use tyche_monitor::{boot_riscv, BootConfig, Monitor, Status};

fn ram_cap(m: &Monitor) -> CapId {
    let os = m.engine.root().unwrap();
    m.engine
        .caps_of(os)
        .iter()
        .find(|c| c.active && c.is_memory())
        .map(|c| c.id)
        .unwrap()
}

#[test]
fn fragmentation_frontier_is_exactly_available_entries() {
    let mut m = boot_riscv(BootConfig::default());
    let os = m.engine.root().unwrap();
    let (child, _) = m.engine.create_domain(os).unwrap();
    m.sync_effects().unwrap();
    let available = m.riscv_backend().unwrap().available_entries();
    assert_eq!(
        available, 14,
        "16 entries minus the 2-entry locked monitor guard"
    );
    let ram = ram_cap(&m);
    let mut accepted = 0;
    for i in 0..available + 3 {
        let s = 0x10_0000 + (i as u64) * 0x4000; // discontiguous pages: 1 NAPOT entry each
        let r = m.call(
            0,
            MonitorCall::Share {
                cap: ram,
                target: child,
                sub: Some((s, s + 0x1000)),
                rights: Rights::RO,
                policy: RevocationPolicy::NONE,
            },
        );
        if r.is_ok() {
            accepted += 1;
        } else {
            assert_eq!(r, Err(Status::BackendFailure));
        }
    }
    assert_eq!(accepted, available);
}

#[test]
fn contiguous_layouts_are_cheap() {
    // The same (much larger) amount of memory in one contiguous region
    // costs one segment: the "careful memory layout" the paper prescribes.
    let mut m = boot_riscv(BootConfig::default());
    let os = m.engine.root().unwrap();
    let (child, _) = m.engine.create_domain(os).unwrap();
    m.sync_effects().unwrap();
    let ram = ram_cap(&m);
    m.call(
        0,
        MonitorCall::Share {
            cap: ram,
            target: child,
            sub: Some((0x10_0000, 0x80_0000)), // 7 MiB, one segment
            rights: Rights::RO,
            policy: RevocationPolicy::NONE,
        },
    )
    .unwrap();
    assert_eq!(m.riscv_backend().unwrap().layout(child).unwrap().len(), 1);
}

#[test]
fn rejected_layout_leaves_consistent_state() {
    let mut m = boot_riscv(BootConfig::default());
    let os = m.engine.root().unwrap();
    let (child, _) = m.engine.create_domain(os).unwrap();
    m.sync_effects().unwrap();
    let ram = ram_cap(&m);
    // Fill to the frontier, then push one more.
    for i in 0..15u64 {
        let s = 0x10_0000 + i * 0x4000;
        let _ = m.call(
            0,
            MonitorCall::Share {
                cap: ram,
                target: child,
                sub: Some((s, s + 0x1000)),
                rights: Rights::RO,
                policy: RevocationPolicy::NONE,
            },
        );
    }
    // Engine and backend agree on what exists; the auditor is clean; and
    // the backend layout matches the engine's page view exactly.
    assert!(tyche_core::audit::audit(&m.engine).is_empty());
    let engine_pages = m
        .engine
        .caps_of(child)
        .iter()
        .filter(|c| c.is_memory())
        .count();
    assert_eq!(engine_pages, 14);
    let layout = m.riscv_backend().unwrap().layout(child).unwrap();
    assert_eq!(layout.len(), 14);
    // Revoking a fragment frees an entry and a new share succeeds again.
    let some_frag = m
        .engine
        .caps_of(child)
        .iter()
        .find(|c| c.is_memory())
        .map(|c| c.id)
        .unwrap();
    m.call(0, MonitorCall::Revoke { cap: some_frag }).unwrap();
    let s = 0x90_0000u64;
    m.call(
        0,
        MonitorCall::Share {
            cap: ram,
            target: child,
            sub: Some((s, s + 0x1000)),
            rights: Rights::RO,
            policy: RevocationPolicy::NONE,
        },
    )
    .unwrap();
}

#[test]
fn adjacent_fragments_coalesce() {
    // The backend coalesces same-rights adjacent pages, so defragmenting
    // a layout recovers entries — the optimization the layout discipline
    // enables.
    let mut m = boot_riscv(BootConfig::default());
    let os = m.engine.root().unwrap();
    let (child, _) = m.engine.create_domain(os).unwrap();
    m.sync_effects().unwrap();
    let ram = ram_cap(&m);
    // 20 *adjacent* single-page shares: they merge into ONE segment, so
    // all succeed — contrast with the discontiguous case.
    for i in 0..20u64 {
        let s = 0x10_0000 + i * 0x1000;
        m.call(
            0,
            MonitorCall::Share {
                cap: ram,
                target: child,
                sub: Some((s, s + 0x1000)),
                rights: Rights::RO,
                policy: RevocationPolicy::NONE,
            },
        )
        .unwrap();
    }
    assert_eq!(m.riscv_backend().unwrap().layout(child).unwrap().len(), 1);
}

#[test]
fn pmp_enforces_after_transition() {
    // End-to-end on RISC-V: enter the child and verify its PMP view.
    let mut m = boot_riscv(BootConfig::default());
    let os = m.engine.root().unwrap();
    let (child, gate) = m.engine.create_domain(os).unwrap();
    m.sync_effects().unwrap();
    let ram = ram_cap(&m);
    m.call(
        0,
        MonitorCall::Share {
            cap: ram,
            target: child,
            sub: Some((0x10_0000, 0x10_4000)),
            rights: Rights::RWX,
            policy: RevocationPolicy::NONE,
        },
    )
    .unwrap();
    let core0 = m
        .engine
        .caps_of(os)
        .iter()
        .find(|c| c.active && matches!(c.resource, Resource::CpuCore(0)))
        .map(|c| c.id)
        .unwrap();
    m.call(
        0,
        MonitorCall::Share {
            cap: core0,
            target: child,
            sub: None,
            rights: Rights::USE,
            policy: RevocationPolicy::NONE,
        },
    )
    .unwrap();
    m.call(
        0,
        MonitorCall::SetEntry {
            domain: child,
            entry: 0x10_0000,
        },
    )
    .unwrap();
    m.call(
        0,
        MonitorCall::Seal {
            domain: child,
            allow_outward: false,
            allow_children: false,
        },
    )
    .unwrap();
    m.call(0, MonitorCall::Enter { cap: gate }).unwrap();
    assert!(
        m.dom_read(0, 0x10_2000, &mut [0u8; 4]).is_ok(),
        "inside the shared window"
    );
    assert!(
        m.dom_read(0, 0x20_0000, &mut [0u8; 4]).is_err(),
        "outside: PMP fault"
    );
    m.call(0, MonitorCall::Return).unwrap();
    assert!(
        m.dom_read(0, 0x20_0000, &mut [0u8; 4]).is_ok(),
        "the OS view is restored"
    );
}
