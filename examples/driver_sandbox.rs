//! §4.2's kernel story: the guest OS loads an untrusted third-party
//! driver. Run direct, a driver bug corrupts the kernel; run in a Tyche
//! kernel compartment, the same bug faults harmlessly.
//!
//! Run with: `cargo run -p tyche-bench --example driver_sandbox`

use tyche_guest::driver::{BuggyDriver, DriverHost, DriverRequest, DriverResponse, XorBlockDriver};
use tyche_guest::{GuestOs, SysResult, Syscall};
use tyche_monitor::{boot_x86, BootConfig};

const KERNEL_STATE: u64 = 0x8_0000;
const WINDOW: (u64, u64) = (0x30_0000, 0x30_1000);
const SCRATCH: (u64, u64) = (0x31_0000, 0x31_4000);

fn main() {
    let mut m = boot_x86(BootConfig::default());
    let end = m.machine.domain_ram.end.as_u64();

    // Boot the guest OS inside the initial domain and run a process, to
    // show the kernel is a live system, not a prop.
    let mut os = GuestOs::new((0, end), 0, 0x10_0000);
    let pid = os.spawn(0x10_0000).expect("spawn");
    let addr = match os.syscall(&mut m, pid, Syscall::Alloc { len: 32 }) {
        SysResult::Addr(a) => a,
        other => panic!("{other:?}"),
    };
    os.syscall(
        &mut m,
        pid,
        Syscall::Write {
            addr,
            data: b"user process data".to_vec(),
        },
    );
    println!("guest OS up; process {pid:?} running at {addr:#x}");

    // Kernel state the driver must never touch.
    m.dom_write(0, KERNEL_STATE, b"kernel page tables")
        .expect("kernel state");
    m.dom_write(0, WINDOW.0, b"disk block 0")
        .expect("stage request");

    // --- Act 1: direct dispatch. ---
    println!("\n[direct mode]");
    let direct = DriverHost::Direct;
    let mut good = XorBlockDriver { key: 0x42 };
    let r = direct
        .dispatch(
            &mut m,
            0,
            &mut good,
            DriverRequest {
                op: 1,
                addr: WINDOW.0,
                len: 12,
            },
        )
        .expect("dispatch");
    println!("well-behaved driver: {r:?}");

    let mut buggy = BuggyDriver {
        wild_target: KERNEL_STATE,
    };
    let r = direct
        .dispatch(
            &mut m,
            0,
            &mut buggy,
            DriverRequest {
                op: 666,
                addr: WINDOW.0,
                len: 12,
            },
        )
        .expect("dispatch");
    let mut state = [0u8; 18];
    m.dom_read(0, KERNEL_STATE, &mut state).expect("read state");
    println!(
        "buggy driver: {r:?}; kernel state = {:?}",
        std::str::from_utf8(&state).unwrap_or("<binary>")
    );
    assert_eq!(
        &state[..10],
        b"CORRUPTION",
        "direct mode: the kernel just died"
    );

    // --- Act 2: the same driver code, sandboxed. ---
    println!("\n[sandboxed mode]");
    m.dom_write(0, KERNEL_STATE, b"kernel page tables")
        .expect("restore");
    let host = DriverHost::sandboxed(&mut m, 0, SCRATCH, WINDOW).expect("sandbox");
    let r = host
        .dispatch(
            &mut m,
            0,
            &mut good,
            DriverRequest {
                op: 1,
                addr: WINDOW.0,
                len: 12,
            },
        )
        .expect("dispatch");
    println!("well-behaved driver: {r:?}");

    let r = host
        .dispatch(
            &mut m,
            0,
            &mut buggy,
            DriverRequest {
                op: 666,
                addr: WINDOW.0,
                len: 12,
            },
        )
        .expect("dispatch");
    let mut state = [0u8; 18];
    m.dom_read(0, KERNEL_STATE, &mut state).expect("read state");
    println!(
        "buggy driver: {r:?}; kernel state = {:?}",
        std::str::from_utf8(&state).unwrap()
    );
    assert_eq!(r, DriverResponse::Crashed);
    assert_eq!(
        &state, b"kernel page tables",
        "sandboxed mode: kernel intact"
    );

    // The user process never noticed.
    let check = os.syscall(&mut m, pid, Syscall::Read { addr, len: 17 });
    println!(
        "\nuser process still reads its data: {:?}",
        matches!(check, SysResult::Bytes(_))
    );
}
