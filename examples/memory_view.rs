//! Figure 4 as a living table: build the paper's deployment, print the
//! domain-to-region map with reference counts, then watch the counts
//! change as sharing is revoked.
//!
//! Run with: `cargo run -p tyche-bench --example memory_view`

use tyche_bench::scenarios::{self, layout};
use tyche_bench::Table;
use tyche_core::prelude::*;

fn print_view(m: &tyche_monitor::Monitor, when: &str) {
    let rows = scenarios::fig4_view(
        m,
        &[
            layout::CRYPTO,
            layout::APP,
            layout::APP_CRYPTO,
            layout::APP_GPU,
            layout::NET,
        ],
    );
    let names = [
        "crypto confidential",
        "app confidential",
        "app<->crypto",
        "app<->gpu",
        "net buffer",
    ];
    let mut t = Table::new(
        &format!("Figure 4 memory view — {when}"),
        &["region", "range", "domains", "refcount"],
    );
    for (row, name) in rows.iter().zip(names.iter()) {
        t.row(&[
            (*name).into(),
            format!("[{:#x},{:#x})", row.region.0, row.region.1),
            format!("{:?}", row.domains),
            row.refcount.to_string(),
        ]);
    }
    t.print();
}

fn main() {
    let mut f = scenarios::fig2();
    print_view(&f.monitor, "after deployment (matches the paper's figure)");

    // The paper's point: reference counts are live, monitor-maintained
    // facts. Kill the app enclave and watch every window it touched drop
    // to refcount 1 (and its confidential memory return, zeroed, to the
    // provider).
    let os = f.provider;
    let app = f.app;
    f.monitor.engine.kill(os, app).expect("kill app");
    f.monitor.sync_effects().expect("sync");
    print_view(&f.monitor, "after the app enclave is killed");

    let rc_net = f
        .monitor
        .engine
        .refcount_mem(MemRegion::new(layout::NET.0, layout::NET.1));
    let rc_win = f
        .monitor
        .engine
        .refcount_mem(MemRegion::new(layout::APP_CRYPTO.0, layout::APP_CRYPTO.1));
    println!("\nnet buffer refcount {rc_net} (provider only)");
    println!(
        "app<->crypto refcount {rc_win}: the app's granted window RETURNED to the provider \
         (grants are revocable), so the provider now shares a window with the crypto engine!"
    );
    assert_eq!(rc_net, 1);
    assert_eq!(rc_win, 2, "provider + crypto engine");

    // This is exactly what re-attestation is for: the crypto engine's
    // report no longer shows an enclave-exclusive channel, so a customer
    // re-checking before sending more data walks away.
    let report = f
        .monitor
        .attest_domain(f.crypto, [3u8; 32])
        .expect("re-attest");
    let still_private =
        report
            .report
            .check_sharing(&[(layout::APP_CRYPTO.0, layout::APP_CRYPTO.1, 2)])
            && f.monitor
                .engine
                .active_mem_coverage()
                .iter()
                .filter(|(_, r)| {
                    r.overlaps(&MemRegion::new(layout::APP_CRYPTO.0, layout::APP_CRYPTO.1))
                })
                .all(|(d, _)| *d != f.provider);
    println!("customer re-verification of the crypto channel: accepted = {still_private}");
    assert!(!still_private, "re-attestation exposes the topology change");
    assert!(tyche_core::audit::audit(&f.monitor.engine).is_empty());
}
