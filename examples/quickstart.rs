//! Quickstart: boot the monitor, carve an enclave out of the OS, prove
//! the OS can no longer read it, attest it, and tear it down.
//!
//! Run with: `cargo run -p tyche-bench --example quickstart`

use tyche_core::prelude::*;
use tyche_monitor::attest::Verifier;
use tyche_monitor::boot::{expected_monitor_pcr, MONITOR_VERSION};
use tyche_monitor::{boot_x86, BootConfig};

fn main() {
    // 1. Measured boot: the TPM records which monitor controls the
    //    machine; the initial domain (the "OS") owns all resources.
    let mut m = boot_x86(BootConfig::default());
    let os = m.engine.root().expect("booted");
    println!("booted monitor {MONITOR_VERSION}; initial domain = {os}");

    // 2. The OS writes a secret, then decides to protect it: it creates a
    //    domain, grants it the page (losing its own access — grant is an
    //    exclusive, revocable transfer), and seals it.
    m.dom_write(0, 0x10_0000, b"secret key material")
        .expect("write");
    let mut client = libtyche::TycheClient::new(&mut m, 0);
    let (enclave, gate) = client.create_domain().expect("create domain");
    let page = client.carve(0x10_0000, 0x10_1000).expect("carve page");
    client
        .record_content(enclave, 0x10_0000, 0x10_1000)
        .expect("measure");
    client
        .grant(page, enclave, Rights::RW, RevocationPolicy::OBFUSCATE)
        .expect("grant");
    let core0 = client
        .monitor
        .engine
        .caps_of(os)
        .iter()
        .find(|c| c.active && matches!(c.resource, Resource::CpuCore(0)))
        .map(|c| c.id)
        .expect("core cap");
    client
        .share(core0, enclave, None, Rights::USE, RevocationPolicy::NONE)
        .expect("share core");
    client.set_entry(enclave, 0x10_0000).expect("entry");
    let measurement = client.seal(enclave, SealPolicy::strict()).expect("seal");
    println!("sealed {enclave}; measurement = {measurement}");

    // 3. The hardware now refuses the OS — the monitor, not the OS, holds
    //    the executive power over isolation.
    let denied = m.dom_read(0, 0x10_0000, &mut [0u8; 1]).is_err();
    println!("OS reads enclave page -> denied = {denied}");
    assert!(denied);

    // 4. The OS can still *schedule* the enclave (it kept the transition
    //    capability), and the enclave sees its own memory.
    let mut client = libtyche::TycheClient::new(&mut m, 0);
    client.enter(gate).expect("enter");
    let mut buf = [0u8; 19];
    client.read(0x10_0000, &mut buf).expect("enclave read");
    println!(
        "enclave reads its page -> {:?}",
        std::str::from_utf8(&buf).unwrap()
    );
    client.ret().expect("return");

    // 5. A remote verifier checks the whole chain: TPM quote -> expected
    //    monitor -> monitor-signed domain report -> exclusive refcounts.
    let verifier = Verifier {
        tpm_key: m.machine.tpm.attestation_key(),
        expected_monitor_pcr: expected_monitor_pcr(MONITOR_VERSION),
        monitor_key: m.report_key(),
    };
    let qn = [1u8; 32];
    let rn = [2u8; 32];
    let quote = m.machine_quote(qn).expect("quote");
    let report = m.attest_domain(enclave, rn).expect("attest");
    let attested = verifier
        .verify(&quote, &qn, &report, &rn, Some(measurement))
        .expect("attestation chain verifies");
    println!(
        "remote verifier: domain {} measurement ok, exclusive = {}",
        attested.domain,
        attested.sharing_is_exactly(&[])
    );

    // 6. Revocation: the OS takes the page back; the obfuscating policy
    //    zeroes it first, so nothing leaks backward.
    let granted = m
        .engine
        .caps_of(enclave)
        .iter()
        .find(|c| c.is_memory())
        .map(|c| c.id)
        .expect("granted cap");
    let mut client = libtyche::TycheClient::new(&mut m, 0);
    client.revoke(granted).expect("revoke");
    let mut buf = [0u8; 19];
    m.dom_read(0, 0x10_0000, &mut buf).expect("OS reads again");
    println!(
        "after revocation the OS sees: {buf:?} (zeroed = {})",
        buf == [0u8; 19]
    );
    assert_eq!(buf, [0u8; 19]);
}
