//! §4.2's nesting story: an enclave maps libtyche, spawns a nested
//! enclave from its own memory, and opens a secured channel on an
//! exclusively-owned page — none of which SGX can express.
//!
//! Run with: `cargo run -p tyche-bench --example nested_enclaves`

use tyche_baselines::sgx::{HostPid, SgxError, SgxMachine};
use tyche_core::prelude::*;
use tyche_elf::image::{ElfImage, ElfMachine, Segment, SegmentFlags};
use tyche_elf::manifest::Manifest;
use tyche_monitor::{boot_x86, BootConfig};

fn main() {
    // --- The SGX model first: nesting is structurally impossible. ---
    let mut sgx = SgxMachine::new(10_000);
    let result = sgx.ecreate(
        HostPid(1),
        (0x10_0000, 0x20_0000),
        16,
        /*from_enclave=*/ true,
    );
    println!("SGX: enclave calls ECREATE -> {result:?}");
    assert_eq!(result.unwrap_err(), SgxError::NestingUnsupported);

    // --- Tyche: the outer enclave, sealed `nestable`. ---
    let mut m = boot_x86(BootConfig::default());
    let outer_img = ElfImage::new(0x10_0000, ElfMachine::X86_64).with_segment(Segment {
        vaddr: 0x10_0000,
        memsz: 0x8_0000,
        flags: SegmentFlags::RW,
        data: b"outer enclave image".to_vec(),
    });
    let outer = libtyche::Enclave::load(&mut m, 0, outer_img, Manifest::enclave_default(1), true)
        .expect("load outer");
    println!(
        "\nTyche: outer enclave {} sealed (nestable), measurement {}",
        outer.domain(),
        outer.measurement()
    );

    // Enter the outer enclave; from inside, spawn a nested enclave out of
    // our own exclusively-owned pages, with a channel page shared between
    // the two at construction (so it is part of the attested config).
    outer.enter(&mut m, 0).expect("enter outer");
    let inner_img = ElfImage::new(0x14_0000, ElfMachine::X86_64).with_segment(Segment::new(
        0x14_0000,
        SegmentFlags::RW,
        b"inner enclave".to_vec(),
    ));
    let (inner, channels) = libtyche::Enclave::load_with_channels(
        &mut m,
        0,
        inner_img,
        Manifest::enclave_default(1),
        false,
        &[(0x16_0000, 0x16_1000)],
    )
    .expect("load inner");
    let chan = channels[0];
    println!(
        "nested enclave {} created from inside {}",
        inner.domain(),
        outer.domain()
    );
    println!(
        "channel [{:#x},{:#x}) refcount = {}",
        chan.start,
        chan.end,
        m.engine.refcount_mem(MemRegion::new(chan.start, chan.end))
    );
    assert_eq!(
        m.engine.refcount_mem(MemRegion::new(chan.start, chan.end)),
        2
    );

    // Ping-pong over the channel: outer writes, inner reads + replies.
    m.dom_write(0, chan.start, b"ping").expect("outer writes");
    inner.enter(&mut m, 0).expect("enter inner");
    let mut msg = [0u8; 4];
    m.dom_read(0, chan.start, &mut msg).expect("inner reads");
    assert_eq!(&msg, b"ping");
    m.dom_write(0, chan.start, b"pong").expect("inner replies");
    libtyche::Enclave::exit(&mut m, 0).expect("exit inner");
    let mut reply = [0u8; 4];
    m.dom_read(0, chan.start, &mut reply)
        .expect("outer reads reply");
    println!(
        "channel ping-pong: outer got {:?}",
        std::str::from_utf8(&reply).unwrap()
    );
    libtyche::Enclave::exit(&mut m, 0).expect("exit outer");

    // The host OS sees none of it.
    let os_sees_inner = m.dom_read(0, 0x14_0000, &mut [0u8; 1]).is_ok();
    let os_sees_chan = m.dom_read(0, chan.start, &mut [0u8; 1]).is_ok();
    println!("\nhost OS reads inner enclave = {os_sees_inner}, channel = {os_sees_chan}");
    assert!(!os_sees_inner && !os_sees_chan);

    // And the whole nest unwinds from the top: revoking the outer
    // enclave's grant cascades through the nested enclave too.
    let os = m.engine.root().expect("root");
    let outer_grant = m
        .engine
        .caps_of(outer.domain())
        .iter()
        .filter(|c| c.is_memory())
        .map(|c| c.id)
        .next();
    if let Some(g) = outer_grant {
        m.engine.revoke(os, g).expect("revoke outer grant");
        m.sync_effects().expect("sync");
    }
    let inner_caps = m.engine.caps_of(inner.domain()).len();
    println!("after revoking the outer grant, inner enclave holds {inner_caps} memory caps");
    assert!(tyche_core::audit::audit(&m.engine).is_empty());
}
