//! §4.2's distributed story: two machines, a TEE on each, mutual remote
//! attestation, and one-sided RDMA writes that cross an untrusted wire
//! encrypted and authenticated — with every checkpoint printed.
//!
//! Run with: `cargo run -p tyche-bench --example attested_rdma`

use libtyche::rdma::{RdmaConnection, RdmaNic, Wire};
use tyche_bench::spawn_sealed;
use tyche_core::prelude::*;
use tyche_monitor::attest::Verifier;
use tyche_monitor::boot::{expected_monitor_pcr, MONITOR_VERSION};
use tyche_monitor::{boot_x86, BootConfig};

const TEE_MEM: (u64, u64) = (0x10_0000, 0x10_4000);

fn main() {
    // Two independent machines, each booting the measured monitor and
    // carving out one TEE.
    let mut ma = boot_x86(BootConfig::default());
    let mut mb = boot_x86(BootConfig::default());
    let (tee_a, gate_a) = spawn_sealed(
        &mut ma,
        0,
        TEE_MEM.0,
        TEE_MEM.1 - TEE_MEM.0,
        &[0],
        SealPolicy::strict(),
    );
    let (tee_b, gate_b) = spawn_sealed(
        &mut mb,
        0,
        TEE_MEM.0,
        TEE_MEM.1 - TEE_MEM.0,
        &[0],
        SealPolicy::strict(),
    );
    println!("machine A: TEE {tee_a}; machine B: TEE {tee_b}");

    // Mutual attestation: A verifies B's chain (quote -> monitor ->
    // report); the channel key binds to both attested configurations.
    let qn = [1u8; 32];
    let rn = [2u8; 32];
    let quote_b = mb.machine_quote(qn).expect("quote");
    let report_b = mb.attest_domain(tee_b, rn).expect("report B");
    let report_a = ma.attest_domain(tee_a, rn).expect("report A");
    let verifier = Verifier {
        tpm_key: mb.machine.tpm.attestation_key(),
        expected_monitor_pcr: expected_monitor_pcr(MONITOR_VERSION),
        monitor_key: mb.report_key(),
    };
    let mut conn =
        RdmaConnection::establish(&verifier, &quote_b, &qn, &report_b, &rn, &report_a, None)
            .expect("machine B attests clean");
    println!("mutual attestation ok; channel key derived from both report digests");

    // TEE B registers a memory region for remote writes. The monitor
    // validates it is exclusively owned (refcount 1) — a shared window
    // would be rejected.
    let mut nic_b = RdmaNic::new();
    let mut client = libtyche::TycheClient::new(&mut mb, 0);
    client.enter(gate_b).expect("enter B");
    let rkey = nic_b
        .register_mr(&mut mb, 0, TEE_MEM.0 + 0x1000, TEE_MEM.0 + 0x2000, true)
        .expect("register MR");
    libtyche::TycheClient::new(&mut mb, 0).ret().expect("ret B");
    println!("TEE B registered exclusive MR {rkey:?}");

    // TEE A pushes a secret across the wire.
    let mut wire = Wire::new();
    let mut client = libtyche::TycheClient::new(&mut ma, 0);
    client.enter(gate_a).expect("enter A");
    client
        .write(TEE_MEM.0 + 0x100, b"inter-machine secret")
        .expect("stage");
    conn.rdma_write(
        &mut ma,
        0,
        TEE_MEM.0 + 0x100,
        20,
        &mut wire,
        &mut mb,
        &nic_b,
        rkey,
        0,
    )
    .expect("rdma write");
    libtyche::TycheClient::new(&mut ma, 0).ret().expect("ret A");

    // TEE B reads it; the eavesdropper and B's host OS get nothing.
    let mut client = libtyche::TycheClient::new(&mut mb, 0);
    client.enter(gate_b).expect("enter B");
    let mut got = [0u8; 20];
    client
        .read(TEE_MEM.0 + 0x1000, &mut got)
        .expect("B reads MR");
    libtyche::TycheClient::new(&mut mb, 0).ret().expect("ret B");
    println!(
        "delivered to TEE B: {:?}",
        std::str::from_utf8(&got).expect("utf8")
    );
    assert_eq!(&got, b"inter-machine secret");
    println!(
        "wire frames captured: {}; plaintext on the wire: {}",
        wire.frames.len(),
        wire.leaks(b"inter-machine secret")
    );
    assert!(!wire.leaks(b"inter-machine secret"));
    let host_reads = mb.dom_read(0, TEE_MEM.0 + 0x1000, &mut [0u8; 1]).is_ok();
    println!("machine B's host OS reads the MR: {host_reads}");
    assert!(!host_reads);

    // And the delivery-time guard: if B's topology changes (the TEE dies),
    // in-flight writes are refused rather than delivered to whoever
    // inherited the pages.
    let os_b = mb.engine.root().expect("root");
    mb.engine.kill(os_b, tee_b).expect("kill TEE B");
    mb.sync_effects().expect("sync");
    let mut client = libtyche::TycheClient::new(&mut ma, 0);
    client.enter(gate_a).expect("enter A");
    let refused = conn
        .rdma_write(
            &mut ma,
            0,
            TEE_MEM.0 + 0x100,
            4,
            &mut wire,
            &mut mb,
            &nic_b,
            rkey,
            0,
        )
        .is_err();
    libtyche::TycheClient::new(&mut ma, 0).ret().expect("ret A");
    println!("TEE B destroyed; late write refused: {refused}");
    assert!(refused);
}
