//! Figure 2 end to end: confidential processing of customer data through
//! an untrusted SaaS application, with a crypto-engine enclave, an
//! isolated GPU, and attested controlled sharing.
//!
//! Run with: `cargo run -p tyche-bench --example confidential_saas`

use tyche_bench::scenarios::{self, layout};

fn main() {
    // The cloud provider deploys the SaaS stack: app enclave, crypto
    // engine enclave, GPU I/O domain, and the shared windows between
    // them. The provider itself keeps access only to the NET buffer.
    let mut f = scenarios::fig2();
    println!("deployment:");
    println!("  provider (untrusted) = {}", f.provider);
    println!("  SaaS app enclave     = {}", f.app);
    println!("  crypto engine        = {}", f.crypto);
    println!("  GPU I/O domain       = {}", f.gpu_domain);

    // The customer, remotely, verifies the machine runs the expected
    // monitor and that the sharing topology is exactly as promised:
    // everything exclusive except the declared refcount-2 windows.
    let accepted = scenarios::fig2_customer_verifies(&mut f);
    println!("\ncustomer attestation: accepted = {accepted}");
    assert!(accepted, "customer would walk away otherwise");

    // Satisfied, the customer provisions a key and submits data. The
    // pipeline: app stages data -> GPU transforms it (DMA through the
    // I/O-MMU, confined to its window) -> crypto engine encrypts ->
    // ciphertext lands in the untrusted NET buffer.
    let key = 0x0123_4567_89ab_cdefu64;
    let data = *b"medical records, 32 bytes long!!";
    let ciphertext = scenarios::fig2_run_pipeline(&mut f, key, &data);
    println!(
        "\npipeline ran; provider-visible ciphertext = {:02x?}...",
        &ciphertext[..8]
    );

    // The customer decrypts and checks the result.
    let expected = scenarios::fig2_expected(key, &data);
    println!("customer decrypt matches = {}", ciphertext == expected);
    assert_eq!(ciphertext, expected.to_vec());

    // Meanwhile the provider's view: it can schedule everything, but read
    // nothing confidential.
    let m = &mut f.monitor;
    let key_leak = m
        .dom_read(0, layout::CRYPTO.0 + 0x2000, &mut [0u8; 8])
        .is_ok();
    let data_leak = m.dom_read(0, layout::APP.0 + 0x1000, &mut [0u8; 4]).is_ok();
    let window_leak = m.dom_read(0, layout::APP_CRYPTO.0, &mut [0u8; 4]).is_ok();
    println!(
        "\nprovider reads: key={key_leak} input={data_leak} app<->crypto window={window_leak}"
    );
    assert!(!key_leak && !data_leak && !window_leak);

    // And the Figure 4 view, straight from monitor state:
    let rows = scenarios::fig4_view(
        &f.monitor,
        &[
            layout::CRYPTO,
            layout::APP,
            layout::APP_CRYPTO,
            layout::APP_GPU,
            layout::NET,
        ],
    );
    println!("\nmemory view (Figure 4):");
    for row in rows {
        println!(
            "  [{:#x},{:#x})  refcount={}  domains={:?}",
            row.region.0, row.region.1, row.refcount, row.domains
        );
    }
}
