//! A minimal, std-only stand-in for the `proptest` crate.
//!
//! The workspace must build with `--offline` and no registry, so this
//! shim provides exactly the API surface the repo's property tests use:
//! the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`,
//! [`prop_oneof!`], [`strategy::Just`], [`any`](strategy::any), range
//! and tuple strategies, [`collection::vec`], [`option::of`],
//! [`bool::weighted`], the `prop_assert*` macros, and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from the real crate: case generation is a deterministic
//! splitmix64 stream seeded from the test name (runs are reproducible
//! across machines), and shrinking is a greedy bounded walk over
//! [`strategy::Strategy::shrink`] candidates rather than the real
//! crate's value trees. The candidate order is part of the contract:
//! it is a pure function of the failing value (ranges halve toward
//! their start; tuples exhaust component 0 before component 1), never
//! of addresses, hashes, or iteration order, so the minimal
//! counterexample a failure reports is bit-identical across processes
//! and machines. The assertion macros early-return a
//! [`test_runner::TestCaseError`] from the generated closure, exactly
//! like the real macros.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Deterministic pseudo-random generation for test cases.
pub mod rng {
    /// A splitmix64 generator: tiny, fast, and good enough to drive
    /// randomized tests deterministically.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; returns 0 when `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Configuration and the per-test case runner.
pub mod test_runner {
    use super::rng::TestRng;

    /// Mirrors `proptest::test_runner::ProptestConfig`: the knobs the
    /// repo actually uses (case count).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// `prop_assume!` rejected the input; another case is drawn.
        Reject(String),
    }

    impl TestCaseError {
        /// A failing case.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }

        /// A rejected (assumption-violating) case.
        pub fn reject(msg: String) -> Self {
            TestCaseError::Reject(msg)
        }
    }

    fn fnv1a(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Runs `case` until `config.cases` cases pass, panicking on the
    /// first failure. Rejections draw a replacement case, bounded so a
    /// vacuous assumption cannot loop forever.
    ///
    /// # Panics
    ///
    /// Panics when a case fails or when too many cases are rejected.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name);
        let mut passed: u32 = 0;
        let mut rejected: u32 = 0;
        let max_rejects = config.cases.saturating_mul(10).max(1000);
        let mut draw: u64 = 0;
        while passed < config.cases {
            let mut rng = TestRng::new(base ^ draw.wrapping_mul(0x2545_f491_4f6c_dd1d));
            draw += 1;
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "proptest '{name}': too many rejected cases ({rejected})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' failed (case {draw}, seed {base:#x}): {msg}")
                }
            }
        }
    }

    /// The attempt budget for one shrink: enough to walk any plausible
    /// halving chain to its floor, small enough that a slow test body
    /// cannot stall a failure report.
    pub const SHRINK_BUDGET: usize = 512;

    /// Greedily minimizes `value` against `still_fails`: candidates from
    /// [`Strategy::shrink`](crate::strategy::Strategy::shrink) are tried
    /// in order, the walk restarts from the first one that still fails,
    /// and it stops when a full candidate pass survives or `budget`
    /// attempts are spent. Returns the minimal failing value and the
    /// number of accepted shrink steps. Deterministic: the result is a
    /// pure function of the starting value and the predicate.
    pub fn minimize<S, F>(
        strat: &S,
        mut value: S::Value,
        mut still_fails: F,
        mut budget: usize,
    ) -> (S::Value, usize)
    where
        S: crate::strategy::Strategy,
        S::Value: Clone,
        F: FnMut(&S::Value) -> bool,
    {
        let mut steps = 0;
        'walk: loop {
            for cand in strat.shrink(&value) {
                if budget == 0 {
                    break 'walk;
                }
                budget -= 1;
                if still_fails(&cand) {
                    value = cand;
                    steps += 1;
                    continue 'walk;
                }
            }
            break;
        }
        (value, steps)
    }

    /// Like [`run`], but generation goes through one `strat` value per
    /// case (the [`proptest!`](crate::proptest) macro packs every
    /// parameter into a tuple strategy, drawn in declaration order so
    /// the RNG stream matches the old per-parameter expansion). On the
    /// first failure the input is shrunk via [`minimize`] before the
    /// panic reports it.
    ///
    /// # Panics
    ///
    /// Panics when a case fails (reporting the shrunk minimal input) or
    /// when too many cases are rejected.
    pub fn run_strategy<S, F>(config: &ProptestConfig, name: &str, strat: &S, mut body: F)
    where
        S: crate::strategy::Strategy,
        S::Value: Clone,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name);
        let mut passed: u32 = 0;
        let mut rejected: u32 = 0;
        let max_rejects = config.cases.saturating_mul(10).max(1000);
        let mut draw: u64 = 0;
        while passed < config.cases {
            let mut rng = TestRng::new(base ^ draw.wrapping_mul(0x2545_f491_4f6c_dd1d));
            draw += 1;
            let value = strat.generate(&mut rng);
            match body(value.clone()) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "proptest '{name}': too many rejected cases ({rejected})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    // A candidate only replaces the current input when
                    // it fails the same way the original did: a hard
                    // assertion failure. Rejections and passes both
                    // count as "survived".
                    let (min, steps) = minimize(
                        strat,
                        value,
                        |cand| matches!(body(cand.clone()), Err(TestCaseError::Fail(_))),
                        SHRINK_BUDGET,
                    );
                    let min_msg = match body(min.clone()) {
                        Err(TestCaseError::Fail(m)) => m,
                        _ => msg,
                    };
                    panic!(
                        "proptest '{name}' failed (case {draw}, seed {base:#x}): {min_msg}; \
                         shrunk to minimal input {min:?} in {steps} steps"
                    )
                }
            }
        }
    }
}

/// Strategies: composable descriptions of how to generate values.
pub mod strategy {
    use super::rng::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// A value generator. The subset of `proptest::strategy::Strategy`
    /// the repo uses: `generate` (internal) and `prop_map`.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Simplification candidates for `value`, in the exact order the
        /// runner must try them. The order is a pure function of
        /// `value` — no addresses, no hashing, no RNG — so a shrink
        /// that starts from the same failing input lands on the same
        /// minimal counterexample in every process. Strategies without
        /// a meaningful notion of "simpler" return nothing.
        fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
            Vec::new()
        }

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical full-range strategy (`any::<T>()`).
    pub trait Arbitrary: Debug + Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arb_int {
        ($($t:ty),+) => {
            $(impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            })+
        };
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    macro_rules! range_strategy {
        ($($t:ty),+) => {
            $(impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.below(span) as $t
                }

                /// Successive halvings of the distance to `start`,
                /// ending at `start` itself.
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    let mut out = Vec::new();
                    let mut cur = *value;
                    while cur > self.start {
                        cur = self.start + (cur - self.start) / 2;
                        out.push(cur);
                    }
                    out
                }
            })+
        };
    }
    range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($S:ident . $idx:tt),+))+) => {
            $(impl<$($S: Strategy),+> Strategy for ($($S,)+)
            where
                $($S::Value: Clone),+
            {
                type Value = ($($S::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }

                /// Component 0's candidates (other components held
                /// fixed), then component 1's, and so on — a stable
                /// lexicographic-by-position order, pinned by the shim's
                /// regression tests.
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let mut out = Vec::new();
                    $(
                        for cand in self.$idx.shrink(&value.$idx) {
                            let mut next = value.clone();
                            next.$idx = cand;
                            out.push(next);
                        }
                    )+
                    out
                }
            })+
        };
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }

    /// A uniform choice among boxed alternative strategies — what
    /// [`prop_oneof!`](crate::prop_oneof) builds.
    pub struct Union<V> {
        arms: Vec<Box<dyn Strategy<Value = V>>>,
    }

    impl<V: Debug> Union<V> {
        /// Builds a union; panics later rather than now on empty arms.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
            Union { arms }
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    /// Boxes a strategy for use in a [`Union`]; exists so the
    /// `prop_oneof!` macro can unify arm types through inference.
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }
}

/// Collection strategies.
pub mod collection {
    use super::rng::TestRng;
    use super::strategy::Strategy;

    /// A size specification: a fixed length or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        end_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                end_excl: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                end_excl: r.end.max(r.start + 1),
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end_excl - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates a `Vec` of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::rng::TestRng;
    use super::strategy::Strategy;

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `None` or `Some(inner)`, each half the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// `bool` strategies.
pub mod bool {
    use super::rng::TestRng;
    use super::strategy::Strategy;

    /// The strategy returned by [`weighted`].
    #[derive(Clone, Copy, Debug)]
    pub struct Weighted(f64);

    impl Strategy for Weighted {
        type Value = core::primitive::bool;

        fn generate(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.unit_f64() < self.0
        }
    }

    /// `true` with probability `p`.
    pub fn weighted(p: f64) -> Weighted {
        Weighted(p)
    }
}

/// The glob-import surface tests use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)`
/// becomes a normal test that draws inputs and runs the body per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not for direct use.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            // All parameters pack into one tuple strategy: components
            // generate in declaration order (the RNG stream is the same
            // as the old per-parameter expansion), and a failing case
            // shrinks as a unit with the tuple's pinned candidate
            // order.
            let __strat = ($($strat,)+);
            $crate::test_runner::run_strategy(&config, stringify!($name), &__strat, |__vals| {
                let ($($pat,)+) = __vals;
                $body
                Ok(())
            });
        }
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
}

/// A uniform choice among the given strategies (all producing the same
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// Fails the current case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, "assert_eq failed: {:?} != {:?}", __l, __r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assert_eq failed: {:?} != {:?}: {}",
            __l,
            __r,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assert_ne failed: both {:?}", __l);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assert_ne failed: both {:?}: {}",
            __l,
            format!($($fmt)+)
        );
    }};
}

/// Rejects the current case (draws a replacement) when the condition is
/// false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism() {
        let mut a = crate::rng::TestRng::new(7);
        let mut b = crate::rng::TestRng::new(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::rng::TestRng::new(1);
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let u = (0usize..8).generate(&mut rng);
            assert!(u < 8);
        }
    }

    #[test]
    fn range_shrink_halves_toward_start() {
        // Pinned: successive halvings of the distance to `start`,
        // ending at `start` itself. Any change here breaks recorded
        // minimal counterexamples, so this is a regression contract.
        assert_eq!((3u64..17).shrink(&16), vec![9, 6, 4, 3]);
        assert_eq!((0u8..100).shrink(&37), vec![18, 9, 4, 2, 1, 0]);
        assert_eq!((5usize..9).shrink(&5), Vec::<usize>::new());
    }

    #[test]
    fn tuple_shrink_order_is_pinned() {
        // Pinned, cross-process-stable order: component 0's candidates
        // exhaust first (others held fixed), then component 1's. The
        // order is a pure function of the failing value — re-running
        // the same failure anywhere reproduces this exact sequence.
        let strat = (0u64..100, 0u8..10);
        assert_eq!(
            strat.shrink(&(37, 5)),
            vec![
                (18, 5),
                (9, 5),
                (4, 5),
                (2, 5),
                (1, 5),
                (0, 5),
                (37, 2),
                (37, 1),
                (37, 0),
            ]
        );
        // A component already at its floor contributes no candidates.
        assert_eq!(strat.shrink(&(0, 3)), vec![(0, 1), (0, 0)]);
        assert_eq!(strat.shrink(&(0, 0)), Vec::<(u64, u8)>::new());
    }

    #[test]
    fn minimize_walks_greedily_to_a_stable_floor() {
        // Greedy halving from 600 against "fails iff >= 17" visits
        // 300, 150, 75, 37, 18 and stops (every candidate of 18 is
        // below the threshold). The floor and step count are exact.
        let strat = (0u64..1000,);
        let (min, steps) =
            crate::test_runner::minimize(&strat, (600,), |v| v.0 >= 17, 512);
        assert_eq!(min, (18,));
        assert_eq!(steps, 5);
        // A later component shrinks only after the first is done.
        let pair = (0u64..1000, 0u64..1000);
        let (min, _) =
            crate::test_runner::minimize(&pair, (600, 601), |v| v.0 >= 17 && v.1 >= 33, 512);
        assert_eq!(min, (18, 37));
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = crate::rng::TestRng::new(2);
        for _ in 0..200 {
            let v = crate::collection::vec(0u8..10, 1..5).generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_wires_strategies(x in 0u64..100, flag in any::<bool>(), v in prop::collection::vec(0u8..4, 0..6)) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 6);
            let _ = flag;
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0u8..4).prop_map(|x| x as u64),
            Just(99u64),
        ]) {
            prop_assert!(v < 4 || v == 99, "got {v}");
        }

        // The failure path reports a shrunk input: whatever case first
        // trips the assertion, the irrelevant second parameter always
        // minimizes to its floor before the panic fires.
        #[test]
        #[should_panic(expected = "shrunk to minimal input")]
        fn failures_report_shrunk_inputs(x in 0u64..1000, y in 0u8..10) {
            let _ = y;
            prop_assert!(x < 17, "x too big");
        }
    }
}
