//! A minimal, std-only stand-in for the `criterion` benchmark harness.
//!
//! The workspace must build with `--offline` and no registry, so this
//! shim provides the API surface the repo's benches use —
//! [`criterion_group!`], [`criterion_main!`], [`Criterion`],
//! [`BenchmarkId`], [`BatchSize`], `benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `iter`, and `iter_batched` —
//! with a simple adaptive wall-clock timer instead of criterion's
//! statistical machinery. Results print as `name ... time/iter`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so benches may use `criterion::black_box`.
pub use std::hint::black_box;

/// Target measurement time per benchmark. Small: the shim exists to keep
/// benches compiling and runnable, not to produce publication numbers.
const TARGET: Duration = Duration::from_millis(100);

/// How per-iteration setup cost is amortized; accepted for API
/// compatibility, the shim always runs setup outside the timed section.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: large batches in real criterion.
    SmallInput,
    /// Large inputs: small batches.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark identifier with a function name and a parameter, printed
/// as `name/param`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// Only a parameter (grouped under the group name).
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Drives the timed closure; handed to `bench_function` callbacks.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// Times `routine`, adaptively doubling the iteration count until
    /// the measurement window is filled.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let took = start.elapsed();
            self.iters_done += n;
            self.elapsed += took;
            if self.elapsed >= TARGET || n >= (1 << 24) {
                break;
            }
            n = n.saturating_mul(2);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup runs outside
    /// the timed section.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters_done += 1;
            if self.elapsed >= TARGET || self.iters_done >= (1 << 20) {
                break;
            }
        }
    }

    fn report(&self, label: &str) {
        if self.iters_done == 0 {
            println!("{label:<50} ... no iterations");
            return;
        }
        let per = self.elapsed.as_nanos() / self.iters_done as u128;
        println!("{label:<50} ... {per} ns/iter ({} iters)", self.iters_done);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's timer is adaptive.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        if self.criterion.matches(&label) {
            let mut b = Bencher::new();
            f(&mut b);
            b.report(&label);
        }
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().id);
        if self.criterion.matches(&label) {
            let mut b = Bencher::new();
            f(&mut b, input);
            b.report(&label);
        }
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Builds a driver honoring a substring filter from the command
    /// line (`cargo bench -- <filter>`).
    pub fn from_args() -> Self {
        // cargo passes flags like `--bench`; anything not flag-shaped is
        // a name filter.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Criterion { filter }
    }

    fn matches(&self, label: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| label.contains(f))
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if self.matches(name) {
            let mut b = Bencher::new();
            f(&mut b);
            b.report(name);
        }
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher::new();
        b.iter(|| 1 + 1);
        assert!(b.iters_done > 0);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn filter_matches_substrings() {
        let c = Criterion {
            filter: Some("engine".into()),
        };
        assert!(c.matches("engine_ops/share/10"));
        assert!(!c.matches("attest/quote"));
        let all = Criterion { filter: None };
        assert!(all.matches("anything"));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("share", 10).id, "share/10");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }
}
