//! Property test: the PMP unit agrees with a naive reference
//! implementation of the privileged-spec matching rules on random entry
//! configurations and random accesses.

use proptest::prelude::*;
use tyche_hw::addr::PhysAddr;
use tyche_hw::riscv::pmp::{napot_addr, AddressMode, PmpAccess, PmpEntry, PmpUnit, PMP_ENTRIES};

#[derive(Clone, Debug)]
struct EntrySpec {
    idx: usize,
    mode: u8, // 0 off, 1 tor, 2 na4, 3 napot
    base_page: u64,
    size_pow: u32,
    r: bool,
    w: bool,
    x: bool,
    l: bool,
}

fn entry_strategy() -> impl Strategy<Value = EntrySpec> {
    (
        0usize..PMP_ENTRIES,
        0u8..4,
        0u64..256,
        3u32..16,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        // Locked entries would poison later writes in confusing ways for
        // the reference; keep lock rare.
        prop::bool::weighted(0.1),
    )
        .prop_map(|(idx, mode, base_page, size_pow, r, w, x, l)| EntrySpec {
            idx,
            mode,
            base_page,
            size_pow,
            r,
            w,
            x,
            l,
        })
}

/// Builds the concrete PmpEntry for a spec.
fn build(spec: &EntrySpec) -> PmpEntry {
    let size = 1u64 << spec.size_pow;
    let base = spec.base_page * size; // naturally aligned for NAPOT
    let (a, addr) = match spec.mode {
        0 => (AddressMode::Off, base >> 2),
        1 => (AddressMode::Tor, (base + size) >> 2),
        2 => (AddressMode::Na4, base >> 2),
        _ => (AddressMode::Napot, napot_addr(base, size.max(8))),
    };
    PmpEntry {
        r: spec.r,
        w: spec.w,
        x: spec.x,
        a,
        l: spec.l,
        addr,
    }
}

/// Reference implementation: decode every entry's region, find the
/// lowest-numbered entry overlapping the access, apply the spec rules.
fn reference_check(
    entries: &[PmpEntry; PMP_ENTRIES],
    m_mode: bool,
    addr: u64,
    len: u64,
    access: PmpAccess,
) -> bool {
    let start = addr;
    let end = addr.saturating_add(len.max(1));
    for i in 0..PMP_ENTRIES {
        let prev = if i == 0 { 0 } else { entries[i - 1].addr };
        let Some((base, size)) = entries[i].region(prev) else {
            continue;
        };
        let rtop = base.saturating_add(size);
        if !(start < rtop && base < end) {
            continue;
        }
        if !(base <= start && end <= rtop) {
            return false; // partial match
        }
        let e = &entries[i];
        if m_mode && !e.l {
            return true;
        }
        return match access {
            PmpAccess::Read => e.r,
            PmpAccess::Write => e.w,
            PmpAccess::Exec => e.x,
        };
    }
    m_mode
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn pmp_matches_reference(
        specs in proptest::collection::vec(entry_strategy(), 0..12),
        accesses in proptest::collection::vec(
            (0u64..(1 << 22), 1u64..64, 0u8..3, any::<bool>()), 16),
    ) {
        let mut unit = PmpUnit::new();
        let mut entries = [PmpEntry::default(); PMP_ENTRIES];
        for spec in &specs {
            let e = build(spec);
            // Mirror the unit's lock semantics in the reference: a write
            // only lands if the unit accepted it.
            if unit.set(spec.idx, e) {
                entries[spec.idx] = e;
            }
        }
        for (addr, len, acc, m_mode) in accesses {
            let access = match acc {
                0 => PmpAccess::Read,
                1 => PmpAccess::Write,
                _ => PmpAccess::Exec,
            };
            let got = unit.check(m_mode, PhysAddr::new(addr), len, access).is_ok();
            let want = reference_check(&entries, m_mode, addr, len, access);
            prop_assert_eq!(got, want,
                "addr={:#x} len={} {:?} m={} entries={:?}", addr, len, access, m_mode, entries);
        }
    }
}
