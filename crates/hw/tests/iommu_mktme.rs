//! Edge and fault-path coverage for the I/O-MMU and the memory
//! encryption controller — the two hardware units whose failure modes
//! sit between "DMA silently corrupts an enclave" and "a cold-boot
//! attacker reads a secret".
//!
//! The inline unit tests in `iommu.rs` / `mktme.rs` cover the happy
//! paths; this suite drives the injected-fault paths (via the
//! [`Faults`] handle built into [`PhysMem`]), the partial-progress
//! behaviour of multi-page DMA, the panic contracts, and the
//! interaction between the two units (device DMA to an encrypted page
//! sees ciphertext — the mktme scope note made executable).

use tyche_hw::addr::{GuestPhysAddr, PhysAddr, PhysRange, PAGE_SIZE};
use tyche_hw::faults::{FaultPlan, FaultSite};
use tyche_hw::iommu::{DeviceId, Iommu};
use tyche_hw::mem::{FrameAllocator, MemError, PhysMem};
use tyche_hw::mktme::{MemCrypt, KEYID_PLAIN};
use tyche_hw::x86::ept::{Ept, EptFlags};

fn setup() -> (PhysMem, FrameAllocator, Iommu) {
    (
        PhysMem::new(256 * PAGE_SIZE),
        FrameAllocator::new(PhysRange::from_len(PhysAddr::new(0x40000), 128 * PAGE_SIZE)),
        Iommu::new(),
    )
}

/// Maps `gpa -> hpa` RW for a fresh device and returns it attached.
fn attach_mapped(
    mem: &mut PhysMem,
    alloc: &mut FrameAllocator,
    iommu: &mut Iommu,
    id: u16,
    gpa: u64,
    hpa: u64,
) -> DeviceId {
    let ept = Ept::new(mem, alloc).unwrap();
    ept.map(
        mem,
        alloc,
        GuestPhysAddr::new(gpa),
        PhysAddr::new(hpa),
        EptFlags::RW,
    )
    .unwrap();
    let dev = DeviceId(id);
    iommu.attach(dev, ept.root());
    dev
}

// ---------------------------------------------------------------------
// I/O-MMU fault paths
// ---------------------------------------------------------------------

#[test]
fn injected_walk_abort_blocks_dma_once_and_is_logged() {
    let (mut mem, mut alloc, mut iommu) = setup();
    let dev = attach_mapped(&mut mem, &mut alloc, &mut iommu, 0x0100, 0x1000, 0x9000);
    mem.write(PhysAddr::new(0x9000), b"payload").unwrap();

    // The walk aborts at the translation root: the transaction fails,
    // the fault is visible to the monitor, and nothing was transferred.
    mem.faults().arm(FaultPlan::once(FaultSite::EptWalk));
    let mut out = [0u8; 7];
    let fault = iommu
        .dma_read(&mem, dev, GuestPhysAddr::new(0x1000), &mut out)
        .unwrap_err();
    assert!(!fault.write);
    assert_eq!(fault.device, dev);
    assert_eq!(iommu.take_faults(), vec![fault], "walk aborts are logged");
    assert_eq!(out, [0u8; 7], "no partial transfer");

    // One-shot plan: the retry succeeds untouched.
    iommu
        .dma_read(&mem, dev, GuestPhysAddr::new(0x1000), &mut out)
        .unwrap();
    assert_eq!(&out, b"payload");
    assert_eq!(mem.faults().fired(), 1);
}

#[test]
fn injected_table_read_fault_surfaces_as_translation_fault() {
    let (mut mem, mut alloc, mut iommu) = setup();
    let dev = attach_mapped(&mut mem, &mut alloc, &mut iommu, 0x0200, 0x1000, 0x9000);

    // The *first* physical read during the DMA is a page-table fetch, so
    // a one-shot MemRead plan lands mid-walk: the walk collapses into an
    // EPT violation and the fault is logged like any translation miss.
    mem.faults().arm(FaultPlan::once(FaultSite::MemRead));
    let mut out = [0u8; 4];
    assert!(iommu
        .dma_read(&mem, dev, GuestPhysAddr::new(0x1000), &mut out)
        .is_err());
    assert_eq!(iommu.take_faults().len(), 1);
    // Recovery after the one-shot.
    iommu
        .dma_read(&mem, dev, GuestPhysAddr::new(0x1000), &mut out)
        .unwrap();
}

#[test]
fn injected_payload_write_fault_is_returned_but_not_logged() {
    let (mut mem, mut alloc, mut iommu) = setup();
    let dev = attach_mapped(&mut mem, &mut alloc, &mut iommu, 0x0300, 0x1000, 0x9000);

    // Translation only *reads* tables, so a MemWrite plan skips the walk
    // and fires exactly at the payload store: translation succeeded, the
    // DRAM transaction itself failed. The caller gets the fault, but the
    // monitor-visible log stays empty — only *translation* failures are
    // remapping faults. Documented behaviour, pinned here.
    mem.faults().arm(FaultPlan::once(FaultSite::MemWrite));
    let fault = iommu
        .dma_write(&mut mem, dev, GuestPhysAddr::new(0x1000), b"dma")
        .unwrap_err();
    assert!(fault.write);
    assert_eq!(fault.device, dev);
    assert!(
        iommu.take_faults().is_empty(),
        "post-translation DRAM errors are not remapping faults"
    );

    // Retry lands.
    iommu
        .dma_write(&mut mem, dev, GuestPhysAddr::new(0x1000), b"dma")
        .unwrap();
    let mut out = [0u8; 3];
    iommu
        .dma_read(&mem, dev, GuestPhysAddr::new(0x1000), &mut out)
        .unwrap();
    assert_eq!(&out, b"dma");
}

#[test]
fn cross_page_dma_stops_at_the_unmapped_page_with_partial_progress() {
    let (mut mem, mut alloc, mut iommu) = setup();
    // Only the first guest page is mapped; the transfer straddles into
    // the void. The model commits page-granular chunks, so the mapped
    // prefix lands before the fault — DMA is not transactional.
    let dev = attach_mapped(&mut mem, &mut alloc, &mut iommu, 0x0400, 0x1000, 0x9000);
    let data = vec![0x5au8; 64];
    let start = GuestPhysAddr::new(0x1000 + PAGE_SIZE - 32);
    let fault = iommu.dma_write(&mut mem, dev, start, &data).unwrap_err();
    assert!(fault.write);
    assert_eq!(fault.addr, GuestPhysAddr::new(0x2000), "faulting page pinned");
    assert_eq!(iommu.take_faults().len(), 1);

    let mut prefix = [0u8; 32];
    mem.read(PhysAddr::new(0x9000 + PAGE_SIZE - 32), &mut prefix)
        .unwrap();
    assert_eq!(prefix, [0x5au8; 32], "mapped prefix was committed");
}

// ---------------------------------------------------------------------
// MemCrypt fault paths and panic contracts
// ---------------------------------------------------------------------

#[test]
fn retag_read_fault_leaves_tag_and_contents_untouched() {
    let mut mem = PhysMem::new(64 * PAGE_SIZE);
    let mut mc = MemCrypt::new_with_seed(7);
    let page = PhysAddr::new(0x3000);
    mc.write(&mut mem, page, b"stable").unwrap();
    let k = mc.new_key();

    mem.faults().arm(FaultPlan::once(FaultSite::MemRead));
    match mc.retag(&mut mem, page, k) {
        Err(MemError::Injected { addr }) => assert_eq!(addr, page),
        other => panic!("expected injected read fault, got {other:?}"),
    }
    assert_eq!(mc.key_of(page), KEYID_PLAIN, "tag unchanged on failure");
    let mut raw = [0u8; 6];
    mem.read(page, &mut raw).unwrap();
    assert_eq!(&raw, b"stable", "contents unchanged on failure");

    // The retry re-encrypts and the data still round-trips.
    mc.retag(&mut mem, page, k).unwrap();
    let mut through = [0u8; 6];
    mc.read(&mem, page, &mut through).unwrap();
    assert_eq!(&through, b"stable");
}

#[test]
fn retag_write_fault_fails_before_the_tag_flips() {
    let mut mem = PhysMem::new(64 * PAGE_SIZE);
    let mut mc = MemCrypt::new_with_seed(7);
    let page = PhysAddr::new(0x4000);
    let k1 = mc.new_key();
    mc.retag(&mut mem, page, k1).unwrap();
    mc.write(&mut mem, page, b"ciphered").unwrap();
    let k2 = mc.new_key();

    // The re-encrypted page bounces off DRAM: the tag must stay k1,
    // because flipping it without the write would leave the page
    // decrypting under a key it was never encrypted with.
    mem.faults().arm(FaultPlan::once(FaultSite::MemWrite));
    assert!(matches!(
        mc.retag(&mut mem, page, k2),
        Err(MemError::Injected { .. })
    ));
    assert_eq!(mc.key_of(page), k1, "tag and ciphertext stay consistent");
    let mut through = [0u8; 8];
    mc.read(&mem, page, &mut through).unwrap();
    assert_eq!(&through, b"ciphered", "old key still decrypts");
}

#[test]
#[should_panic(expected = "retag requires a page base")]
fn retag_rejects_unaligned_base() {
    let mut mem = PhysMem::new(64 * PAGE_SIZE);
    let mut mc = MemCrypt::new_with_seed(7);
    let _ = mc.retag(&mut mem, PhysAddr::new(0x3008), KEYID_PLAIN);
}

#[test]
#[should_panic(expected = "force_tag requires a page base")]
fn force_tag_rejects_unaligned_base() {
    let mut mc = MemCrypt::new_with_seed(7);
    mc.force_tag(PhysAddr::new(0x3008), KEYID_PLAIN);
}

#[test]
#[should_panic(expected = "unprogrammed key")]
fn force_tag_rejects_unknown_key() {
    let mut mc = MemCrypt::new_with_seed(7);
    mc.force_tag(PhysAddr::new(0x3000), 42);
}

#[test]
fn force_tag_after_scrub_leaves_no_recoverable_secret() {
    // The zero-on-revocation handoff: the old owner's page is scrubbed,
    // then force-tagged to the new owner without a re-encryption pass.
    let mut mem = PhysMem::new(64 * PAGE_SIZE);
    let mut mc = MemCrypt::new_with_seed(7);
    let page = PhysAddr::new(0x5000);
    let k_old = mc.new_key();
    mc.retag(&mut mem, page, k_old).unwrap();
    mc.write(&mut mem, page, b"old owner secret").unwrap();

    mem.zero_range(PhysRange::from_len(page, PAGE_SIZE)).unwrap();
    let k_new = mc.new_key();
    mc.force_tag(page, k_new);

    // Physical view: zeros — the ciphertext is gone, not re-wrapped.
    let mut raw = [0u8; 16];
    mem.read(page, &mut raw).unwrap();
    assert_eq!(raw, [0u8; 16], "scrub survived the handoff");
    // New owner's view: keystream noise, not the secret.
    let mut through = [0u8; 16];
    mc.read(&mem, page, &mut through).unwrap();
    assert_ne!(&through, b"old owner secret");
    assert_eq!(mc.key_of(page), k_new);
}

// ---------------------------------------------------------------------
// Interaction: device DMA vs encrypted pages
// ---------------------------------------------------------------------

#[test]
fn device_dma_to_encrypted_page_reads_ciphertext() {
    // The mktme scope note, executable: plain I/O-MMU DMA does not go
    // through the memory controller (pre-TDX-IO hardware), so a device
    // granted a window over an encrypted page sees ciphertext — the
    // encryption holds even against a device the I/O-MMU trusts.
    let (mut mem, mut alloc, mut iommu) = setup();
    let mut mc = MemCrypt::new_with_seed(7);
    let dev = attach_mapped(&mut mem, &mut alloc, &mut iommu, 0x0500, 0x1000, 0x9000);

    let page = PhysAddr::new(0x9000);
    let k = mc.new_key();
    mc.retag(&mut mem, page, k).unwrap();
    mc.write(&mut mem, page, b"enclave secret").unwrap();

    let mut via_cpu = [0u8; 14];
    mc.read(&mem, page, &mut via_cpu).unwrap();
    assert_eq!(&via_cpu, b"enclave secret", "CPU path decrypts");

    let mut via_dma = [0u8; 14];
    iommu
        .dma_read(&mem, dev, GuestPhysAddr::new(0x1000), &mut via_dma)
        .unwrap();
    assert_ne!(&via_dma, b"enclave secret", "device path sees ciphertext");

    // And a device *write* lands as ciphertext-from-the-CPU's-view: the
    // controller "decrypts" whatever the device stored, so the device
    // cannot forge chosen plaintext into the enclave either.
    iommu
        .dma_write(&mut mem, dev, GuestPhysAddr::new(0x1000), b"forged content")
        .unwrap();
    let mut seen = [0u8; 14];
    mc.read(&mem, page, &mut seen).unwrap();
    assert_ne!(&seen, b"forged content", "no chosen-plaintext injection");
}
