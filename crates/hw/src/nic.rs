//! The modeled trusted NIC: the fleet's only inter-machine transport.
//!
//! Following the TNIC line of work, the NIC is the one piece of network
//! hardware the fleet trusts: it timestamps and orders frames, but the
//! *wire* between two NICs is attacker-controlled. That split is modeled
//! directly. [`Nic::send`] charges the sending core the descriptor +
//! per-byte pipeline cost and stamps the frame with the sender's clock;
//! [`Nic::enqueue`] is the untrusted delivery path into the receiver's
//! bounded in-order queue, where the seeded fault injector may drop,
//! duplicate, reorder, or corrupt the frame (sites `NicDrop`/`NicDup`/
//! `NicReorder`/`NicCorrupt`, reusing the countdown-plan machinery from
//! [`crate::faults`]); [`Nic::recv`] pops in order, advances the
//! receiving core's clock past the send timestamp (machines are loosely
//! time-synchronized through the fabric, exactly like cross-core IPIs in
//! [`crate::machine::Machine::shootdown`]), and charges the receive cost.
//!
//! Nothing here authenticates payloads: MACs, sequence numbers, and key
//! epochs are the fleet layer's job (`tyche-fleet`), precisely so the
//! adversarial tests can show the *channel* — not the transport —
//! rejecting every tampered frame.

use std::collections::VecDeque;

use tyche_core::trace::{EventKind, TraceSink};

use crate::cycles::{CostModel, PerCoreClocks};
use crate::faults::{FaultSite, Faults};

/// Default bounded queue depth, in frames.
pub const DEFAULT_QUEUE_FRAMES: usize = 64;

/// One frame in flight between two machines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// The sending machine's fleet id.
    pub src: u64,
    /// The destination machine's fleet id.
    pub dst: u64,
    /// Opaque payload (the fleet layer's MACed channel frame).
    pub payload: Vec<u8>,
    /// The sender-core cycle timestamp when the NIC accepted the frame.
    pub sent_at: u64,
}

/// The receiver's bounded queue had no room for a delivered frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueFull;

/// Delivery counters, for reporting and test assertions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NicStats {
    /// Frames accepted from the local cores for transmission.
    pub sent: u64,
    /// Frames handed to a local core by [`Nic::recv`].
    pub received: u64,
    /// Frames lost in flight (`NicDrop` fired).
    pub dropped: u64,
    /// Extra copies enqueued (`NicDup` fired).
    pub duplicated: u64,
    /// Frames that jumped the queue (`NicReorder` fired).
    pub reordered: u64,
    /// Frames with a payload byte flipped in flight (`NicCorrupt` fired).
    pub corrupted: u64,
    /// Frames (or duplicate copies) refused because the queue was full.
    pub overflowed: u64,
}

/// One machine's trusted NIC: an outbound MAC/DMA pipeline plus a
/// bounded, in-order inbound queue.
///
/// Owned by [`crate::machine::Machine`]; the fault injector and trace
/// sink are the machine-wide handles, wired by `Machine::new`.
#[derive(Debug, Default)]
pub struct Nic {
    machine_id: u64,
    capacity: usize,
    inbox: VecDeque<Frame>,
    faults: Faults,
    trace: TraceSink,
    stats: NicStats,
}

impl Nic {
    /// Creates a NIC with an inbound queue of `capacity` frames.
    pub fn new(capacity: usize) -> Self {
        Nic {
            capacity: capacity.max(1),
            ..Nic::default()
        }
    }

    /// Sets the owning machine's fleet id (stamped into outbound frames).
    pub fn set_machine_id(&mut self, id: u64) {
        self.machine_id = id;
    }

    /// The owning machine's fleet id.
    pub fn machine_id(&self) -> u64 {
        self.machine_id
    }

    /// Attaches the machine-wide fault injector (done by `Machine::new`).
    pub fn set_faults(&mut self, faults: Faults) {
        self.faults = faults;
    }

    /// Attaches the machine-wide trace sink (done by `Machine::new`).
    pub fn set_trace(&mut self, trace: TraceSink) {
        self.trace = trace;
    }

    /// Delivery counters since construction.
    pub fn stats(&self) -> NicStats {
        self.stats
    }

    /// Frames currently queued for delivery.
    pub fn pending(&self) -> usize {
        self.inbox.len()
    }

    /// A local core posts one frame for `dst`. Charges the per-frame
    /// descriptor cost plus the per-byte pipeline cost to `core`, emits a
    /// [`EventKind::NicSend`] event, and returns the stamped frame for the
    /// fabric (the fleet) to carry to the destination NIC.
    pub fn send(
        &mut self,
        core: usize,
        clocks: &PerCoreClocks,
        cost: &CostModel,
        dst: u64,
        payload: Vec<u8>,
    ) -> Frame {
        let bytes = payload.len() as u64;
        clocks.charge(core, cost.nic_send + bytes * cost.nic_byte);
        self.trace
            .emit(core as u32, EventKind::NicSend { to: dst, bytes });
        self.stats.sent += 1;
        Frame {
            src: self.machine_id,
            dst,
            payload,
            sent_at: clocks.now(core),
        }
    }

    /// The untrusted wire delivers `frame` into this NIC's bounded queue.
    ///
    /// The seeded fault plans are consulted here, one countdown visit per
    /// site per frame, in a fixed order: drop (frame lost), corrupt (one
    /// payload byte flipped), dup (a second copy enqueued behind the
    /// first), reorder (the frame jumps to the queue head). A full queue
    /// refuses the frame with [`QueueFull`]; a dropped frame is *not* an
    /// error — the wire owes nobody delivery.
    pub fn enqueue(&mut self, mut frame: Frame) -> Result<(), QueueFull> {
        if self.faults.fire(FaultSite::NicDrop) {
            self.stats.dropped += 1;
            return Ok(());
        }
        if self.faults.fire(FaultSite::NicCorrupt) {
            let mid = frame.payload.len() / 2;
            if let Some(byte) = frame.payload.get_mut(mid) {
                *byte ^= 0x80;
            }
            self.stats.corrupted += 1;
        }
        let dup = self.faults.fire(FaultSite::NicDup);
        let reorder = self.faults.fire(FaultSite::NicReorder);
        if self.inbox.len() >= self.capacity {
            self.stats.overflowed += 1;
            return Err(QueueFull);
        }
        if reorder {
            self.stats.reordered += 1;
            self.inbox.push_front(frame.clone());
        } else {
            self.inbox.push_back(frame.clone());
        }
        if dup {
            if self.inbox.len() < self.capacity {
                self.stats.duplicated += 1;
                self.inbox.push_back(frame);
            } else {
                self.stats.overflowed += 1;
            }
        }
        Ok(())
    }

    /// A local core polls the queue. Pops the head frame in order,
    /// advances `core`'s clock past the frame's send timestamp (the
    /// cross-machine analogue of the IPI `advance_to` handoff), charges
    /// the per-frame + per-byte receive cost, and emits
    /// [`EventKind::NicRecv`]. Returns `None` on an empty queue.
    pub fn recv(&mut self, core: usize, clocks: &PerCoreClocks, cost: &CostModel) -> Option<Frame> {
        let frame = self.inbox.pop_front()?;
        clocks.advance_to(core, frame.sent_at);
        let bytes = frame.payload.len() as u64;
        clocks.charge(core, cost.nic_recv + bytes * cost.nic_byte);
        self.trace
            .emit(core as u32, EventKind::NicRecv { from: frame.src, bytes });
        self.stats.received += 1;
        Some(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;

    fn rig() -> (Nic, PerCoreClocks, CostModel) {
        let mut nic = Nic::new(4);
        nic.set_machine_id(7);
        (nic, PerCoreClocks::new(2), CostModel::default_model())
    }

    #[test]
    fn send_charges_and_stamps() {
        let (mut nic, clocks, cost) = rig();
        let f = nic.send(0, &clocks, &cost, 3, vec![0xaa; 10]);
        assert_eq!(f.src, 7);
        assert_eq!(f.dst, 3);
        let expect = cost.nic_send + 10 * cost.nic_byte;
        assert_eq!(clocks.now(0), expect);
        assert_eq!(f.sent_at, expect);
        assert_eq!(nic.stats().sent, 1);
    }

    #[test]
    fn queue_is_fifo_and_bounded() {
        let (mut nic, clocks, cost) = rig();
        for i in 0..4u8 {
            let f = nic.send(0, &clocks, &cost, 7, vec![i]);
            nic.enqueue(f).unwrap();
        }
        let extra = nic.send(0, &clocks, &cost, 7, vec![99]);
        assert_eq!(nic.enqueue(extra), Err(QueueFull));
        assert_eq!(nic.stats().overflowed, 1);
        let order: Vec<u8> = (0..4)
            .map(|_| nic.recv(1, &clocks, &cost).unwrap().payload[0])
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert!(nic.recv(1, &clocks, &cost).is_none());
    }

    #[test]
    fn recv_advances_past_send_timestamp() {
        let (mut nic, clocks, cost) = rig();
        let f = nic.send(0, &clocks, &cost, 7, vec![1, 2, 3]);
        let sent_at = f.sent_at;
        nic.enqueue(f).unwrap();
        let got = nic.recv(1, &clocks, &cost).unwrap();
        assert_eq!(got.payload, vec![1, 2, 3]);
        assert_eq!(clocks.now(1), sent_at + cost.nic_recv + 3 * cost.nic_byte);
    }

    #[test]
    fn drop_dup_reorder_corrupt_fault_paths() {
        let (mut nic, clocks, cost) = rig();
        let faults = Faults::new();
        nic.set_faults(faults.clone());

        // Drop: the first delivery vanishes.
        faults.arm(FaultPlan::once(FaultSite::NicDrop));
        let f = nic.send(0, &clocks, &cost, 7, vec![1]);
        nic.enqueue(f).unwrap();
        assert_eq!(nic.pending(), 0);
        assert_eq!(nic.stats().dropped, 1);

        // Dup: one send, two queued copies.
        faults.arm(FaultPlan::once(FaultSite::NicDup));
        let f = nic.send(0, &clocks, &cost, 7, vec![2]);
        nic.enqueue(f).unwrap();
        assert_eq!(nic.pending(), 2);
        assert_eq!(nic.stats().duplicated, 1);

        // Reorder: the next frame jumps both queued copies.
        faults.arm(FaultPlan::once(FaultSite::NicReorder));
        let f = nic.send(0, &clocks, &cost, 7, vec![3]);
        nic.enqueue(f).unwrap();
        assert_eq!(nic.recv(1, &clocks, &cost).unwrap().payload, vec![3]);

        // Corrupt: byte at len/2 is flipped with the documented mask.
        faults.arm(FaultPlan::once(FaultSite::NicCorrupt));
        let f = nic.send(0, &clocks, &cost, 7, vec![0, 0, 0, 0]);
        nic.enqueue(f).unwrap();
        // Drain the two dup'd copies first (FIFO behind the reordered one).
        assert_eq!(nic.recv(1, &clocks, &cost).unwrap().payload, vec![2]);
        assert_eq!(nic.recv(1, &clocks, &cost).unwrap().payload, vec![2]);
        let corrupted = nic.recv(1, &clocks, &cost).unwrap();
        assert_eq!(corrupted.payload, vec![0, 0, 0x80, 0]);
        assert_eq!(nic.stats().corrupted, 1);
    }

    #[test]
    fn fault_plans_replay_identically() {
        let run = || {
            let (mut nic, clocks, cost) = rig();
            let faults = Faults::new();
            nic.set_faults(faults.clone());
            faults.arm(FaultPlan::after(FaultSite::NicDrop, 2, 1));
            faults.arm(FaultPlan::after(FaultSite::NicDup, 0, 2));
            let mut seen = Vec::new();
            for i in 0..6u8 {
                let f = nic.send(0, &clocks, &cost, 7, vec![i]);
                let _ = nic.enqueue(f);
                while let Some(got) = nic.recv(1, &clocks, &cost) {
                    seen.push(got.payload[0]);
                }
            }
            (seen, nic.stats())
        };
        assert_eq!(run(), run());
    }
}
