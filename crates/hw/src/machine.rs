//! The assembled simulated machine.
//!
//! A [`Machine`] owns everything below the monitor: physical memory and its
//! frame allocator, the cycle counter and cost model, the cache/TLB models,
//! the TPM, the I/O-MMU, and a set of DMA devices. CPU state (vCPUs /
//! harts) is owned by the monitor layer, which borrows a [`Platform`] view
//! for each architectural operation.

use crate::addr::{PhysAddr, PhysRange, PAGE_SIZE};
use crate::cache::{Cache, Tlb};
use crate::cycles::{CostModel, CycleCounter};
use crate::iommu::Iommu;
use crate::irq::IrqController;
use crate::mem::{FrameAllocator, PhysMem};
use crate::mktme::MemCrypt;
use crate::tpm::Tpm;

/// A borrowed view of the machine's shared fabric, passed to every vCPU and
/// device operation. Keeping it a struct of references avoids five-argument
/// functions while leaving [`Machine`] a plain owner.
pub struct Platform<'a> {
    /// Physical memory.
    pub mem: &'a mut PhysMem,
    /// Translation cache.
    pub tlb: &'a mut Tlb,
    /// Data cache residency model.
    pub cache: &'a mut Cache,
    /// Simulated cycle counter.
    pub cycles: &'a CycleCounter,
    /// Cycle cost calibration.
    pub cost: &'a CostModel,
    /// The memory-encryption controller (all CPU/device paths go
    /// through it; raw `mem` access models a physical attacker).
    pub mktme: &'a mut MemCrypt,
}

/// Configuration for building a [`Machine`].
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Installed RAM in bytes (page-aligned).
    pub ram_bytes: u64,
    /// Number of CPU cores.
    pub cores: usize,
    /// Bytes at the top of RAM reserved for the monitor and its translation
    /// table frames. The rest belongs to the initial domain.
    pub monitor_reserved: u64,
    /// Cost model calibration.
    pub cost: CostModel,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            ram_bytes: 64 * 1024 * 1024,
            cores: 4,
            monitor_reserved: 16 * 1024 * 1024,
            cost: CostModel::default_model(),
        }
    }
}

/// The simulated machine.
pub struct Machine {
    /// Physical memory.
    pub mem: PhysMem,
    /// Frame allocator over the monitor-reserved region (translation
    /// tables, EPTP lists, monitor metadata).
    pub monitor_frames: FrameAllocator,
    /// The RAM range available to domains (everything below the reserved
    /// region).
    pub domain_ram: PhysRange,
    /// Number of CPU cores.
    pub cores: usize,
    /// Cycle counter.
    pub cycles: CycleCounter,
    /// Cost model.
    pub cost: CostModel,
    /// TLB model (shared; entries are tagged per EPT root).
    pub tlb: Tlb,
    /// L1-like cache model.
    pub cache: Cache,
    /// The TPM root of trust.
    pub tpm: Tpm,
    /// The I/O-MMU.
    pub iommu: Iommu,
    /// The memory-encryption controller.
    pub mktme: MemCrypt,
    /// The interrupt remapping controller.
    pub irq: IrqController,
}

impl Machine {
    /// Builds a machine from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the reservation exceeds RAM or sizes are unaligned.
    pub fn new(config: MachineConfig) -> Self {
        assert!(
            config.ram_bytes.is_multiple_of(PAGE_SIZE),
            "RAM must be page-aligned"
        );
        assert!(
            config.monitor_reserved.is_multiple_of(PAGE_SIZE),
            "reservation must be page-aligned"
        );
        assert!(
            config.monitor_reserved < config.ram_bytes,
            "reservation exceeds RAM"
        );
        assert!(config.cores > 0, "need at least one core");
        let mem = PhysMem::new(config.ram_bytes);
        let reserve_base = config.ram_bytes - config.monitor_reserved;
        let monitor_frames = FrameAllocator::new(PhysRange::new(
            PhysAddr::new(reserve_base),
            PhysAddr::new(config.ram_bytes),
        ));
        Machine {
            mem,
            monitor_frames,
            domain_ram: PhysRange::new(PhysAddr::new(0), PhysAddr::new(reserve_base)),
            cores: config.cores,
            cycles: CycleCounter::new(),
            cost: config.cost,
            tlb: Tlb::new(),
            cache: Cache::default_l1(),
            tpm: Tpm::new_with_seed(0x7c7e_5eed),
            iommu: Iommu::new(),
            mktme: MemCrypt::new_with_seed(0x7c7e_5eed),
            irq: IrqController::new(),
        }
    }

    /// Builds the default machine (64 MiB RAM, 4 cores).
    pub fn default_machine() -> Self {
        Machine::new(MachineConfig::default())
    }

    /// Borrows the shared-fabric view used by vCPU and device operations.
    pub fn platform(&mut self) -> Platform<'_> {
        Platform {
            mem: &mut self.mem,
            tlb: &mut self.tlb,
            cache: &mut self.cache,
            cycles: &self.cycles,
            cost: &self.cost,
            mktme: &mut self.mktme,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_machine_layout() {
        let m = Machine::default_machine();
        assert_eq!(m.mem.size(), 64 * 1024 * 1024);
        assert_eq!(m.domain_ram.start, PhysAddr::new(0));
        assert_eq!(m.domain_ram.len(), 48 * 1024 * 1024);
        assert!(m.monitor_frames.capacity() > 0);
        assert_eq!(m.cores, 4);
    }

    #[test]
    #[should_panic(expected = "reservation exceeds RAM")]
    fn oversized_reservation_panics() {
        Machine::new(MachineConfig {
            ram_bytes: 1024 * 1024,
            monitor_reserved: 2 * 1024 * 1024,
            ..MachineConfig::default()
        });
    }

    #[test]
    fn platform_view_reaches_memory() {
        let mut m = Machine::default_machine();
        let plat = m.platform();
        plat.mem.write_u8(PhysAddr::new(0x100), 7).unwrap();
        assert_eq!(m.mem.read_u8(PhysAddr::new(0x100)).unwrap(), 7);
    }
}
