//! The assembled simulated machine.
//!
//! A [`Machine`] owns everything below the monitor: physical memory and its
//! frame allocator, the cycle counter and cost model, the cache/TLB models,
//! the TPM, the I/O-MMU, and a set of DMA devices. CPU state (vCPUs /
//! harts) is owned by the monitor layer, which borrows a [`Platform`] view
//! for each architectural operation.

use std::sync::Arc;

use tyche_core::metrics::Metrics;
use tyche_core::trace::{EventKind, TraceSink};

use crate::addr::{PhysAddr, PhysRange, PAGE_SIZE};
use crate::cache::{Cache, Tlb};
use crate::cycles::{CostModel, CycleCounter, PerCoreClocks};
use crate::faults::Faults;
use crate::iommu::Iommu;
use crate::irq::IrqController;
use crate::mem::{FrameAllocator, PhysMem};
use crate::mktme::MemCrypt;
use crate::nic::{Frame, Nic, QueueFull};
use crate::tpm::Tpm;

/// A borrowed view of the machine's shared fabric, passed to every vCPU and
/// device operation. Keeping it a struct of references avoids five-argument
/// functions while leaving [`Machine`] a plain owner.
pub struct Platform<'a> {
    /// Physical memory.
    pub mem: &'a mut PhysMem,
    /// Translation cache.
    pub tlb: &'a mut Tlb,
    /// Data cache residency model.
    pub cache: &'a mut Cache,
    /// Simulated cycle counter.
    pub cycles: &'a CycleCounter,
    /// Cycle cost calibration.
    pub cost: &'a CostModel,
    /// The memory-encryption controller (all CPU/device paths go
    /// through it; raw `mem` access models a physical attacker).
    pub mktme: &'a mut MemCrypt,
}

/// Configuration for building a [`Machine`].
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Installed RAM in bytes (page-aligned).
    pub ram_bytes: u64,
    /// Number of CPU cores.
    pub cores: usize,
    /// Bytes at the top of RAM reserved for the monitor and its translation
    /// table frames. The rest belongs to the initial domain.
    pub monitor_reserved: u64,
    /// Cost model calibration.
    pub cost: CostModel,
    /// Seed for the TPM's DRBG and attestation-key derivation (and the
    /// memory-encryption controller's key schedule). Every machine in a
    /// fleet must get a distinct seed, or "independent" TPMs would share
    /// attestation keys and nonce streams.
    pub tpm_seed: u64,
    /// This machine's fleet id, stamped into outbound NIC frames.
    pub machine_id: u64,
    /// Depth of the NIC's bounded inbound queue, in frames.
    pub nic_queue_frames: usize,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            ram_bytes: 64 * 1024 * 1024,
            cores: 4,
            monitor_reserved: 16 * 1024 * 1024,
            cost: CostModel::default_model(),
            tpm_seed: 0x7c7e_5eed,
            machine_id: 0,
            nic_queue_frames: crate::nic::DEFAULT_QUEUE_FRAMES,
        }
    }
}

/// The simulated machine.
pub struct Machine {
    /// Physical memory.
    pub mem: PhysMem,
    /// Frame allocator over the monitor-reserved region (translation
    /// tables, EPTP lists, monitor metadata).
    pub monitor_frames: FrameAllocator,
    /// The RAM range available to domains (everything below the reserved
    /// region).
    pub domain_ram: PhysRange,
    /// Number of CPU cores.
    pub cores: usize,
    /// Cycle counter (machine-global; single-threaded drivers charge
    /// here, and the SMP front-end uses it to measure per-call deltas).
    pub cycles: CycleCounter,
    /// Per-core simulated clocks for SMP timing. Behind an `Arc` so the
    /// concurrent monitor's worker threads can charge their core without
    /// holding any machine lock.
    pub core_clocks: Arc<PerCoreClocks>,
    /// Cost model.
    pub cost: CostModel,
    /// TLB model (shared; entries are tagged per EPT root).
    pub tlb: Tlb,
    /// L1-like cache model.
    pub cache: Cache,
    /// The TPM root of trust.
    pub tpm: Tpm,
    /// The I/O-MMU.
    pub iommu: Iommu,
    /// The memory-encryption controller.
    pub mktme: MemCrypt,
    /// The interrupt remapping controller.
    pub irq: IrqController,
    /// The trusted NIC (cross-machine transport; see [`crate::nic`]).
    pub nic: Nic,
    /// Master handle to the fault injector shared by memory, the
    /// interrupt controller, and the TPM. Arm plans here; the units
    /// consult the same shared plan list.
    pub faults: Faults,
    /// Master handle to the machine-wide trace sink. Disabled by
    /// default; `enable` it here and every layer (engine, monitor,
    /// hardware units) records into the same log.
    pub trace: TraceSink,
    /// Master handle to the machine-wide metrics registry (the IRQ
    /// controller and the monitor count into clones of this).
    pub metrics: Metrics,
}

impl Machine {
    /// Builds a machine from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the reservation exceeds RAM or sizes are unaligned.
    pub fn new(config: MachineConfig) -> Self {
        assert!(
            config.ram_bytes.is_multiple_of(PAGE_SIZE),
            "RAM must be page-aligned"
        );
        assert!(
            config.monitor_reserved.is_multiple_of(PAGE_SIZE),
            "reservation must be page-aligned"
        );
        assert!(
            config.monitor_reserved < config.ram_bytes,
            "reservation exceeds RAM"
        );
        assert!(config.cores > 0, "need at least one core");
        let trace = TraceSink::new();
        let metrics = Metrics::new();
        let faults = Faults::new();
        faults.set_trace(trace.clone());
        let mut mem = PhysMem::new(config.ram_bytes);
        mem.set_faults(faults.clone());
        let mut tpm = Tpm::new_with_seed(config.tpm_seed);
        tpm.set_faults(faults.clone());
        let mut irq = IrqController::new();
        irq.set_faults(faults.clone());
        irq.set_metrics(metrics.clone());
        let mut nic = Nic::new(config.nic_queue_frames);
        nic.set_machine_id(config.machine_id);
        nic.set_faults(faults.clone());
        nic.set_trace(trace.clone());
        let reserve_base = config.ram_bytes - config.monitor_reserved;
        let monitor_frames = FrameAllocator::new(PhysRange::new(
            PhysAddr::new(reserve_base),
            PhysAddr::new(config.ram_bytes),
        ));
        Machine {
            mem,
            monitor_frames,
            domain_ram: PhysRange::new(PhysAddr::new(0), PhysAddr::new(reserve_base)),
            cores: config.cores,
            cycles: CycleCounter::new(),
            core_clocks: Arc::new(PerCoreClocks::new(config.cores)),
            cost: config.cost,
            tlb: Tlb::new(),
            cache: Cache::default_l1(),
            tpm,
            iommu: Iommu::new(),
            mktme: MemCrypt::new_with_seed(config.tpm_seed),
            irq,
            nic,
            faults,
            trace,
            metrics,
        }
    }

    /// Builds the default machine (64 MiB RAM, 4 cores).
    pub fn default_machine() -> Self {
        Machine::new(MachineConfig::default())
    }

    /// Charges a cross-core TLB shootdown initiated by `from` against the
    /// cores in `targets`, using the per-core clocks.
    ///
    /// The initiator pays `ipi_send` per target (ICR writes are serial);
    /// each target core's clock advances to the point the IPI was sent,
    /// then pays delivery plus a local TLB flush. Returns the number of
    /// remote cores actually charged (`from` and out-of-range ids are
    /// skipped: a core never IPIs itself for its own flush).
    pub fn shootdown(&self, from: usize, targets: &[usize]) -> usize {
        let mut charged = 0;
        for &t in targets {
            if t == from || t >= self.core_clocks.cores() {
                continue;
            }
            self.core_clocks.charge(from, self.cost.ipi_send);
            let sent_at = self.core_clocks.now(from);
            self.core_clocks.advance_to(t, sent_at);
            self.core_clocks
                .charge(t, self.cost.ipi_deliver + self.cost.tlb_flush);
            self.trace
                .emit(from as u32, EventKind::Ipi { to: t as u64 });
            charged += 1;
        }
        charged
    }

    /// Posts one NIC frame for machine `dst` from `core`, charging the
    /// send costs against this machine's per-core clocks. The returned
    /// frame is carried by the fleet fabric to the destination NIC's
    /// [`Machine::nic_enqueue`].
    pub fn nic_send(&mut self, core: usize, dst: u64, payload: Vec<u8>) -> Frame {
        self.nic
            .send(core, &self.core_clocks, &self.cost, dst, payload)
    }

    /// Delivers `frame` from the untrusted wire into this machine's NIC
    /// queue (fault plans for the NIC sites are consulted here).
    pub fn nic_enqueue(&mut self, frame: Frame) -> Result<(), QueueFull> {
        self.nic.enqueue(frame)
    }

    /// Polls this machine's NIC queue from `core`, charging receive costs
    /// and advancing `core`'s clock past the frame's send timestamp.
    pub fn nic_recv(&mut self, core: usize) -> Option<Frame> {
        self.nic.recv(core, &self.core_clocks, &self.cost)
    }

    /// Borrows the shared-fabric view used by vCPU and device operations.
    pub fn platform(&mut self) -> Platform<'_> {
        Platform {
            mem: &mut self.mem,
            tlb: &mut self.tlb,
            cache: &mut self.cache,
            cycles: &self.cycles,
            cost: &self.cost,
            mktme: &mut self.mktme,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_machine_layout() {
        let m = Machine::default_machine();
        assert_eq!(m.mem.size(), 64 * 1024 * 1024);
        assert_eq!(m.domain_ram.start, PhysAddr::new(0));
        assert_eq!(m.domain_ram.len(), 48 * 1024 * 1024);
        assert!(m.monitor_frames.capacity() > 0);
        assert_eq!(m.cores, 4);
    }

    #[test]
    #[should_panic(expected = "reservation exceeds RAM")]
    fn oversized_reservation_panics() {
        Machine::new(MachineConfig {
            ram_bytes: 1024 * 1024,
            monitor_reserved: 2 * 1024 * 1024,
            ..MachineConfig::default()
        });
    }

    #[test]
    fn shootdown_charges_ipi_model() {
        let m = Machine::default_machine();
        let cost = m.cost;
        // Core 0 shoots down cores 1 and 3; core 0 itself and an
        // out-of-range core are skipped.
        let charged = m.shootdown(0, &[1, 0, 3, 99]);
        assert_eq!(charged, 2);
        assert_eq!(m.core_clocks.now(0), 2 * cost.ipi_send);
        // Target 1 was idle: its clock jumps to the send point, then pays
        // delivery + flush.
        assert_eq!(
            m.core_clocks.now(1),
            cost.ipi_send + cost.ipi_deliver + cost.tlb_flush
        );
        assert_eq!(
            m.core_clocks.now(3),
            2 * cost.ipi_send + cost.ipi_deliver + cost.tlb_flush
        );
        assert_eq!(m.core_clocks.now(2), 0);
    }

    #[test]
    fn shootdown_busy_target_not_rewound() {
        let m = Machine::default_machine();
        // A target already past the send point keeps its own clock and
        // just pays delivery + flush on top.
        m.core_clocks.charge(1, 1_000_000);
        m.shootdown(0, &[1]);
        assert_eq!(
            m.core_clocks.now(1),
            1_000_000 + m.cost.ipi_deliver + m.cost.tlb_flush
        );
    }

    #[test]
    fn fault_injector_is_shared_machine_wide() {
        use crate::faults::{FaultPlan, FaultSite};
        let m = Machine::default_machine();
        m.faults.arm(FaultPlan::once(FaultSite::MemRead));
        assert!(
            m.mem.read_u8(PhysAddr::new(0)).is_err(),
            "plan armed on the machine handle fires in memory"
        );
        m.mem.read_u8(PhysAddr::new(0)).unwrap();
    }

    #[test]
    fn platform_view_reaches_memory() {
        let mut m = Machine::default_machine();
        let plat = m.platform();
        plat.mem.write_u8(PhysAddr::new(0x100), 7).unwrap();
        assert_eq!(m.mem.read_u8(PhysAddr::new(0x100)).unwrap(), 7);
    }
}
