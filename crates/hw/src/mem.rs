//! Simulated physical memory and a frame allocator.
//!
//! All bytes in the machine live here. Translation structures (EPT tables,
//! I/O-MMU tables) are allocated *inside* this memory and walked by reading
//! it, exactly as hardware walks DRAM — that keeps the monitor's programming
//! model honest.

use crate::addr::{PhysAddr, PhysRange, PAGE_SIZE};
use crate::faults::{FaultSite, Faults};

/// Errors raised by physical memory accesses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemError {
    /// The access touches bytes beyond the installed RAM.
    OutOfBounds {
        /// Address of the first offending byte.
        addr: PhysAddr,
        /// Length of the attempted access.
        len: u64,
    },
    /// No free frames remain.
    OutOfFrames,
    /// An injected hardware fault (uncorrectable memory error).
    Injected {
        /// Address of the failed access.
        addr: PhysAddr,
    },
}

impl core::fmt::Display for MemError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MemError::OutOfBounds { addr, len } => {
                write!(f, "physical access out of bounds: {addr} + {len}")
            }
            MemError::OutOfFrames => f.write_str("physical frame allocator exhausted"),
            MemError::Injected { addr } => {
                write!(f, "injected uncorrectable memory error at {addr}")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Byte-addressable simulated RAM.
#[derive(Clone)]
pub struct PhysMem {
    bytes: Vec<u8>,
    /// Fault injector consulted on every access; inert by default.
    faults: Faults,
}

impl PhysMem {
    /// Creates `size` bytes of zeroed RAM; `size` must be page-aligned.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a multiple of the page size.
    pub fn new(size: u64) -> Self {
        assert!(
            size.is_multiple_of(PAGE_SIZE),
            "RAM size must be page-aligned"
        );
        PhysMem {
            bytes: vec![0u8; size as usize],
            faults: Faults::new(),
        }
    }

    /// Installed RAM size in bytes.
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Attaches a shared fault injector (done once by `Machine::new`).
    pub fn set_faults(&mut self, faults: Faults) {
        self.faults = faults;
    }

    /// The fault injector consulted by this memory (shared machine-wide;
    /// the EPT walker fires its walk-abort site through this handle).
    pub fn faults(&self) -> &Faults {
        &self.faults
    }

    /// Bounds-checks an access.
    fn check(&self, addr: PhysAddr, len: u64) -> Result<(usize, usize), MemError> {
        let start = addr.as_u64();
        let end = start
            .checked_add(len)
            .ok_or(MemError::OutOfBounds { addr, len })?;
        if end > self.size() {
            return Err(MemError::OutOfBounds { addr, len });
        }
        Ok((start as usize, end as usize))
    }

    /// Reads `out.len()` bytes starting at `addr`.
    pub fn read(&self, addr: PhysAddr, out: &mut [u8]) -> Result<(), MemError> {
        if self.faults.fire(FaultSite::MemRead) {
            return Err(MemError::Injected { addr });
        }
        let (s, e) = self.check(addr, out.len() as u64)?;
        out.copy_from_slice(&self.bytes[s..e]);
        Ok(())
    }

    /// Writes `data` starting at `addr`.
    pub fn write(&mut self, addr: PhysAddr, data: &[u8]) -> Result<(), MemError> {
        if self.faults.fire(FaultSite::MemWrite) {
            return Err(MemError::Injected { addr });
        }
        let (s, e) = self.check(addr, data.len() as u64)?;
        self.bytes[s..e].copy_from_slice(data);
        Ok(())
    }

    /// Reads a little-endian `u64` (the width of a page-table entry).
    pub fn read_u64(&self, addr: PhysAddr) -> Result<u64, MemError> {
        let mut b = [0u8; 8];
        self.read(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: PhysAddr, v: u64) -> Result<(), MemError> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Reads a single byte.
    pub fn read_u8(&self, addr: PhysAddr) -> Result<u8, MemError> {
        let mut b = [0u8; 1];
        self.read(addr, &mut b)?;
        Ok(b[0])
    }

    /// Writes a single byte.
    pub fn write_u8(&mut self, addr: PhysAddr, v: u8) -> Result<(), MemError> {
        self.write(addr, &[v])
    }

    /// Zeroes a byte range — the "zero on revocation" clean-up primitive.
    pub fn zero_range(&mut self, range: PhysRange) -> Result<(), MemError> {
        if self.faults.fire(FaultSite::MemWrite) {
            return Err(MemError::Injected { addr: range.start });
        }
        let (s, e) = self.check(range.start, range.len())?;
        self.bytes[s..e].fill(0);
        Ok(())
    }

    /// Borrows a range immutably (for measurement).
    pub fn slice(&self, range: PhysRange) -> Result<&[u8], MemError> {
        if self.faults.fire(FaultSite::MemRead) {
            return Err(MemError::Injected { addr: range.start });
        }
        let (s, e) = self.check(range.start, range.len())?;
        Ok(&self.bytes[s..e])
    }
}

/// A bump-with-free-list physical frame allocator.
///
/// The monitor and the initial domain both allocate frames from here; a
/// production system would use the firmware memory map instead.
#[derive(Clone)]
pub struct FrameAllocator {
    /// Region the allocator hands out frames from.
    region: PhysRange,
    /// Next never-allocated frame.
    next: PhysAddr,
    /// Frames returned to the allocator.
    free: Vec<PhysAddr>,
    /// Number of frames currently handed out.
    outstanding: u64,
}

impl FrameAllocator {
    /// Creates an allocator over `region`, which must be page-aligned.
    ///
    /// # Panics
    ///
    /// Panics if the region bounds are not page-aligned.
    pub fn new(region: PhysRange) -> Self {
        assert!(
            region.start.is_page_aligned() && region.end.is_page_aligned(),
            "allocator region must be page-aligned"
        );
        FrameAllocator {
            region,
            next: region.start,
            free: Vec::new(),
            outstanding: 0,
        }
    }

    /// Allocates one zero-initialized-by-caller frame.
    pub fn alloc(&mut self) -> Result<PhysAddr, MemError> {
        self.outstanding += 1;
        if let Some(f) = self.free.pop() {
            return Ok(f);
        }
        if self.next >= self.region.end {
            self.outstanding -= 1;
            return Err(MemError::OutOfFrames);
        }
        let f = self.next;
        self.next = PhysAddr::new(self.next.as_u64() + PAGE_SIZE);
        Ok(f)
    }

    /// Allocates a frame and zeroes it in `mem`.
    pub fn alloc_zeroed(&mut self, mem: &mut PhysMem) -> Result<PhysAddr, MemError> {
        let f = self.alloc()?;
        mem.zero_range(PhysRange::from_len(f, PAGE_SIZE))?;
        Ok(f)
    }

    /// Returns a frame to the allocator.
    ///
    /// # Panics
    ///
    /// Panics if the frame is outside the allocator's region or unaligned —
    /// both indicate a monitor bug, not a recoverable condition.
    pub fn free(&mut self, frame: PhysAddr) {
        assert!(frame.is_page_aligned(), "freeing unaligned frame {frame}");
        assert!(self.region.contains(frame), "freeing foreign frame {frame}");
        self.outstanding = self.outstanding.saturating_sub(1);
        self.free.push(frame);
    }

    /// Frames currently handed out.
    pub fn outstanding(&self) -> u64 {
        self.outstanding
    }

    /// Total frames the region can ever provide.
    pub fn capacity(&self) -> u64 {
        self.region.len() / PAGE_SIZE
    }

    /// Frames still available (never-used plus freed).
    pub fn available(&self) -> u64 {
        (self.region.end.as_u64() - self.next.as_u64()) / PAGE_SIZE + self.free.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> PhysMem {
        PhysMem::new(64 * PAGE_SIZE)
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = mem();
        m.write(PhysAddr::new(100), b"hello").unwrap();
        let mut out = [0u8; 5];
        m.read(PhysAddr::new(100), &mut out).unwrap();
        assert_eq!(&out, b"hello");
    }

    #[test]
    fn u64_roundtrip_little_endian() {
        let mut m = mem();
        m.write_u64(PhysAddr::new(8), 0x0123_4567_89ab_cdef)
            .unwrap();
        assert_eq!(m.read_u64(PhysAddr::new(8)).unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(
            m.read_u8(PhysAddr::new(8)).unwrap(),
            0xef,
            "little-endian layout"
        );
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut m = mem();
        let end = m.size();
        assert!(matches!(
            m.write(PhysAddr::new(end - 2), b"abc"),
            Err(MemError::OutOfBounds { .. })
        ));
        let mut out = [0u8; 1];
        assert!(m.read(PhysAddr::new(end), &mut out).is_err());
        // Address arithmetic overflow must not panic.
        assert!(m.read_u64(PhysAddr::new(u64::MAX - 3)).is_err());
    }

    #[test]
    fn boundary_arithmetic_near_u64_max_is_checked() {
        let mut m = mem();
        // End-of-range computation at the very top of the address space:
        // start + len wraps for every len > 0, and len == 0 still lands
        // beyond installed RAM. All must be errors, never panics.
        let top = PhysAddr::new(u64::MAX);
        let mut out = [0u8; 1];
        assert!(matches!(
            m.read(top, &mut out),
            Err(MemError::OutOfBounds { .. })
        ));
        assert!(matches!(
            m.write(top, &[0u8; 8]),
            Err(MemError::OutOfBounds { .. })
        ));
        assert!(m.read_u64(top).is_err());
        assert!(m.write_u64(top, 7).is_err());
        assert!(m.read_u8(top).is_err());
        assert!(m.write_u8(top, 7).is_err());
        // Maximum-length access from address 0 overflows usize/RAM checks.
        assert!(m.read(PhysAddr::new(0), &mut out).is_ok());
        assert!(matches!(
            m.write(PhysAddr::new(1), &[0u8; 16]).and_then(|_| {
                let r = PhysRange::new(PhysAddr::new(u64::MAX - PAGE_SIZE), PhysAddr::new(u64::MAX));
                m.zero_range(r)
            }),
            Err(MemError::OutOfBounds { .. })
        ));
        assert!(m
            .slice(PhysRange::new(
                PhysAddr::new(u64::MAX - 1),
                PhysAddr::new(u64::MAX)
            ))
            .is_err());
    }

    #[test]
    fn injected_faults_are_checked_and_one_shot() {
        use crate::faults::{FaultPlan, FaultSite};
        let mut m = mem();
        m.write(PhysAddr::new(0), b"ok").unwrap();
        m.faults().arm(FaultPlan::once(FaultSite::MemRead));
        let mut out = [0u8; 2];
        assert!(matches!(
            m.read(PhysAddr::new(0), &mut out),
            Err(MemError::Injected { .. })
        ));
        m.read(PhysAddr::new(0), &mut out).unwrap();
        assert_eq!(&out, b"ok", "memory intact after the injected error");
        m.faults().arm(FaultPlan::once(FaultSite::MemWrite));
        assert!(matches!(
            m.write(PhysAddr::new(0), b"x"),
            Err(MemError::Injected { .. })
        ));
        m.write(PhysAddr::new(0), b"x").unwrap();
        assert_eq!(m.faults().fired(), 2);
    }

    #[test]
    fn zero_range_clears() {
        let mut m = mem();
        m.write(PhysAddr::new(0x1000), &[0xff; 32]).unwrap();
        m.zero_range(PhysRange::from_len(PhysAddr::new(0x1000), 16))
            .unwrap();
        let mut out = [0u8; 32];
        m.read(PhysAddr::new(0x1000), &mut out).unwrap();
        assert_eq!(&out[..16], &[0u8; 16]);
        assert_eq!(&out[16..], &[0xffu8; 16]);
    }

    #[test]
    fn allocator_unique_frames() {
        let mut a = FrameAllocator::new(PhysRange::from_len(PhysAddr::new(0x10000), 8 * PAGE_SIZE));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..8 {
            let f = a.alloc().unwrap();
            assert!(f.is_page_aligned());
            assert!(seen.insert(f), "duplicate frame {f}");
        }
        assert!(matches!(a.alloc(), Err(MemError::OutOfFrames)));
        assert_eq!(a.outstanding(), 8);
    }

    #[test]
    fn allocator_reuses_freed() {
        let mut a = FrameAllocator::new(PhysRange::from_len(PhysAddr::new(0), 2 * PAGE_SIZE));
        let f1 = a.alloc().unwrap();
        let _f2 = a.alloc().unwrap();
        a.free(f1);
        assert_eq!(a.available(), 1);
        assert_eq!(a.alloc().unwrap(), f1);
    }

    #[test]
    #[should_panic(expected = "foreign frame")]
    fn allocator_rejects_foreign_free() {
        let mut a = FrameAllocator::new(PhysRange::from_len(PhysAddr::new(0), PAGE_SIZE));
        a.free(PhysAddr::new(0x100000));
    }

    #[test]
    fn alloc_zeroed_clears_recycled_frame() {
        let mut m = mem();
        let mut a = FrameAllocator::new(PhysRange::from_len(PhysAddr::new(0), 2 * PAGE_SIZE));
        let f = a.alloc().unwrap();
        m.write(f, &[0xaa; 64]).unwrap();
        a.free(f);
        let f2 = a.alloc_zeroed(&mut m).unwrap();
        assert_eq!(f, f2);
        assert_eq!(m.read_u8(f2).unwrap(), 0);
    }
}
