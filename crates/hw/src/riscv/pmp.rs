//! Physical Memory Protection, per the RISC-V privileged specification.
//!
//! Modeled behaviours that the monitor relies on:
//!
//! - a fixed bank of [`PMP_ENTRIES`] entries (16, the common silicon
//!   configuration) — the scarcity the paper's PMP backend must manage;
//! - address modes OFF / TOR / NA4 / NAPOT with the spec's encodings;
//! - *priority*: the lowest-numbered matching entry decides, regardless of
//!   later entries;
//! - accesses that only partially match an entry fail;
//! - S/U-mode accesses with no matching entry fail; M-mode accesses with no
//!   matching entry succeed;
//! - the lock bit `L`: a locked entry applies to M-mode too and its CSRs
//!   ignore writes until reset.

use crate::addr::PhysAddr;

/// Number of PMP entries in the modeled hart.
pub const PMP_ENTRIES: usize = 16;

/// The `A` field of a pmpcfg byte: how `pmpaddr` encodes a region.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AddressMode {
    /// Entry disabled.
    #[default]
    Off,
    /// Top-of-range: matches `[pmpaddr[i-1] << 2, pmpaddr[i] << 2)`.
    Tor,
    /// Naturally aligned four-byte region.
    Na4,
    /// Naturally aligned power-of-two region (size ≥ 8 bytes).
    Napot,
}

/// The kind of access being checked.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PmpAccess {
    /// Load.
    Read,
    /// Store.
    Write,
    /// Instruction fetch.
    Exec,
}

/// One PMP entry: configuration byte fields plus the address CSR.
#[derive(Clone, Copy, Debug, Default)]
pub struct PmpEntry {
    /// Read permission.
    pub r: bool,
    /// Write permission.
    pub w: bool,
    /// Execute permission.
    pub x: bool,
    /// Address-matching mode.
    pub a: AddressMode,
    /// Lock bit: applies to M-mode and freezes the entry.
    pub l: bool,
    /// The raw `pmpaddr` CSR value (physical address >> 2, possibly with
    /// NAPOT size encoding in the low bits).
    pub addr: u64,
}

impl PmpEntry {
    /// Decodes the byte range this entry covers, given the previous
    /// entry's `pmpaddr` (needed for TOR). Returns `(base, len)` or `None`
    /// when the entry is off or encodes an empty range.
    pub fn region(&self, prev_addr: u64) -> Option<(u64, u64)> {
        match self.a {
            AddressMode::Off => None,
            AddressMode::Tor => {
                let base = prev_addr << 2;
                let top = self.addr << 2;
                (top > base).then(|| (base, top - base))
            }
            AddressMode::Na4 => Some((self.addr << 2, 4)),
            AddressMode::Napot => {
                // addr = (base >> 2) | ((size/8) - 1): trailing ones give
                // the size.
                let ones = self.addr.trailing_ones() as u64;
                if ones >= 62 {
                    return None; // unrepresentable in the model
                }
                let size = 8u64 << ones;
                let base = (self.addr & !((1u64 << (ones + 1)) - 1)) << 2;
                Some((base, size))
            }
        }
    }

    /// True when this entry's permissions allow `access`.
    fn allows(&self, access: PmpAccess) -> bool {
        match access {
            PmpAccess::Read => self.r,
            PmpAccess::Write => self.w,
            PmpAccess::Exec => self.x,
        }
    }
}

/// Encodes a NAPOT `pmpaddr` value for a naturally-aligned region.
///
/// # Panics
///
/// Panics if `size` is not a power of two ≥ 8 or `base` is not aligned to
/// `size`.
pub fn napot_addr(base: u64, size: u64) -> u64 {
    assert!(
        size.is_power_of_two() && size >= 8,
        "NAPOT size must be a power of two >= 8"
    );
    assert!(
        base.is_multiple_of(size),
        "NAPOT base must be aligned to its size"
    );
    (base >> 2) | ((size / 8) - 1)
}

/// A PMP access fault (reported to M-mode as an access exception).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PmpFault {
    /// Faulting physical address.
    pub addr: PhysAddr,
    /// The attempted access.
    pub access: PmpAccess,
}

/// The PMP unit of one hart.
#[derive(Clone, Debug, Default)]
pub struct PmpUnit {
    entries: [PmpEntry; PMP_ENTRIES],
}

impl PmpUnit {
    /// Creates a PMP unit with all entries off.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes entry `i`. Writes to locked entries are ignored, as the spec
    /// requires (they stay in force until hart reset).
    ///
    /// Returns `true` when the write took effect.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set(&mut self, i: usize, entry: PmpEntry) -> bool {
        assert!(i < PMP_ENTRIES, "PMP index {i} out of range");
        if self.entries[i].l {
            return false;
        }
        // A locked TOR entry also locks the *previous* pmpaddr register.
        if i + 1 < PMP_ENTRIES
            && self.entries[i + 1].l
            && self.entries[i + 1].a == AddressMode::Tor
            && entry.addr != self.entries[i].addr
        {
            return false;
        }
        self.entries[i] = entry;
        true
    }

    /// Reads entry `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> PmpEntry {
        assert!(i < PMP_ENTRIES, "PMP index {i} out of range");
        self.entries[i]
    }

    /// Clears all non-locked entries (what the monitor does on a domain
    /// switch before installing the next domain's layout).
    pub fn clear_unlocked(&mut self) {
        for i in 0..PMP_ENTRIES {
            if !self.entries[i].l {
                self.entries[i] = PmpEntry::default();
            }
        }
    }

    /// Number of entries currently off (available for a domain layout).
    pub fn free_entries(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.a == AddressMode::Off && !e.l)
            .count()
    }

    /// Checks an access of `len` bytes at `addr` from privilege `machine
    /// mode?` (`m_mode`).
    ///
    /// Per the spec: the lowest-numbered entry matching the access decides;
    /// a partial match faults; no match faults in S/U and succeeds in M.
    pub fn check(
        &self,
        m_mode: bool,
        addr: PhysAddr,
        len: u64,
        access: PmpAccess,
    ) -> Result<(), PmpFault> {
        let start = addr.as_u64();
        let end = start.saturating_add(len.max(1));
        let fault = PmpFault { addr, access };
        for i in 0..PMP_ENTRIES {
            let prev = if i == 0 { 0 } else { self.entries[i - 1].addr };
            let Some((base, size)) = self.entries[i].region(prev) else {
                continue;
            };
            let rtop = base.saturating_add(size);
            let overlaps = start < rtop && base < end;
            if !overlaps {
                continue;
            }
            let fully_inside = base <= start && end <= rtop;
            if !fully_inside {
                return Err(fault); // partial match always faults
            }
            let e = &self.entries[i];
            // M-mode bypasses non-locked entries.
            if m_mode && !e.l {
                return Ok(());
            }
            return if e.allows(access) { Ok(()) } else { Err(fault) };
        }
        if m_mode {
            Ok(())
        } else {
            Err(fault)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn napot_entry(base: u64, size: u64, r: bool, w: bool, x: bool) -> PmpEntry {
        PmpEntry {
            r,
            w,
            x,
            a: AddressMode::Napot,
            l: false,
            addr: napot_addr(base, size),
        }
    }

    #[test]
    fn napot_encoding_roundtrip() {
        let e = napot_entry(0x8000_0000, 0x1000, true, true, false);
        assert_eq!(e.region(0), Some((0x8000_0000, 0x1000)));
        let tiny = napot_entry(0x100, 8, true, false, false);
        assert_eq!(tiny.region(0), Some((0x100, 8)));
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn napot_misaligned_panics() {
        napot_addr(0x1004, 0x1000);
    }

    #[test]
    fn na4_and_tor_regions() {
        let na4 = PmpEntry {
            r: true,
            a: AddressMode::Na4,
            addr: 0x100 >> 2,
            ..Default::default()
        };
        assert_eq!(na4.region(0), Some((0x100, 4)));
        let tor = PmpEntry {
            r: true,
            a: AddressMode::Tor,
            addr: 0x2000 >> 2,
            ..Default::default()
        };
        assert_eq!(tor.region(0x1000 >> 2), Some((0x1000, 0x1000)));
        // Empty TOR range.
        assert_eq!(tor.region(0x3000 >> 2), None);
    }

    #[test]
    fn smode_default_deny() {
        let pmp = PmpUnit::new();
        assert!(pmp
            .check(false, PhysAddr::new(0x1000), 4, PmpAccess::Read)
            .is_err());
        // M-mode default allow.
        assert!(pmp
            .check(true, PhysAddr::new(0x1000), 4, PmpAccess::Read)
            .is_ok());
    }

    #[test]
    fn smode_allowed_inside_region() {
        let mut pmp = PmpUnit::new();
        pmp.set(0, napot_entry(0x8000_0000, 0x10000, true, true, false));
        assert!(pmp
            .check(false, PhysAddr::new(0x8000_0100), 8, PmpAccess::Read)
            .is_ok());
        assert!(pmp
            .check(false, PhysAddr::new(0x8000_0100), 8, PmpAccess::Write)
            .is_ok());
        assert!(pmp
            .check(false, PhysAddr::new(0x8000_0100), 8, PmpAccess::Exec)
            .is_err());
        // Outside the region: fault.
        assert!(pmp
            .check(false, PhysAddr::new(0x8001_0000), 8, PmpAccess::Read)
            .is_err());
    }

    #[test]
    fn priority_lowest_entry_wins() {
        let mut pmp = PmpUnit::new();
        // Entry 0: small no-access hole; entry 1: big RW region over it.
        pmp.set(0, napot_entry(0x8000_1000, 0x1000, false, false, false));
        pmp.set(1, napot_entry(0x8000_0000, 0x10000, true, true, false));
        assert!(pmp
            .check(false, PhysAddr::new(0x8000_0000), 8, PmpAccess::Read)
            .is_ok());
        // Inside the hole, entry 0 matches first and denies.
        assert!(pmp
            .check(false, PhysAddr::new(0x8000_1000), 8, PmpAccess::Read)
            .is_err());
        // Reversing the order would hide the hole behind the allow rule.
        let mut rev = PmpUnit::new();
        rev.set(0, napot_entry(0x8000_0000, 0x10000, true, true, false));
        rev.set(1, napot_entry(0x8000_1000, 0x1000, false, false, false));
        assert!(rev
            .check(false, PhysAddr::new(0x8000_1000), 8, PmpAccess::Read)
            .is_ok());
    }

    #[test]
    fn partial_match_faults() {
        let mut pmp = PmpUnit::new();
        pmp.set(0, napot_entry(0x1000, 0x1000, true, true, true));
        // Access straddling the end of the region.
        assert!(pmp
            .check(false, PhysAddr::new(0x1ffc), 8, PmpAccess::Read)
            .is_err());
        // Even in M-mode a partial match faults.
        assert!(pmp
            .check(true, PhysAddr::new(0x1ffc), 8, PmpAccess::Read)
            .is_err());
    }

    #[test]
    fn locked_entry_applies_to_mmode_and_resists_writes() {
        let mut pmp = PmpUnit::new();
        let mut e = napot_entry(0x0, 0x1000, true, false, false);
        e.l = true;
        assert!(pmp.set(0, e));
        // M-mode write into the locked read-only region faults: this is how
        // the monitor protects itself from... itself (and from a takeover).
        assert!(pmp
            .check(true, PhysAddr::new(0x100), 4, PmpAccess::Write)
            .is_err());
        assert!(pmp
            .check(true, PhysAddr::new(0x100), 4, PmpAccess::Read)
            .is_ok());
        // Writes to the locked entry are ignored.
        assert!(!pmp.set(0, napot_entry(0x0, 0x1000, true, true, true)));
        assert!(!pmp.get(0).w, "locked entry unchanged");
    }

    #[test]
    fn clear_unlocked_preserves_locked() {
        let mut pmp = PmpUnit::new();
        let mut locked = napot_entry(0, 0x1000, true, false, false);
        locked.l = true;
        pmp.set(0, locked);
        pmp.set(1, napot_entry(0x2000, 0x1000, true, true, false));
        assert_eq!(pmp.free_entries(), 14);
        pmp.clear_unlocked();
        assert_eq!(pmp.free_entries(), 15);
        assert!(pmp.get(0).l);
        assert_eq!(pmp.get(1).a, AddressMode::Off);
    }

    #[test]
    fn tor_chain_layout() {
        // A classic monitor layout: [0, monitor_end) locked no-access from
        // S-mode, then TOR segments for the domain.
        let mut pmp = PmpUnit::new();
        let guard = PmpEntry {
            r: false,
            w: false,
            x: false,
            a: AddressMode::Tor,
            l: true,
            addr: 0x10_0000 >> 2,
        };
        assert!(pmp.set(0, guard));
        // Domain segment [0x10_0000, 0x40_0000) RWX via TOR entry 1.
        pmp.set(
            1,
            PmpEntry {
                r: true,
                w: true,
                x: true,
                a: AddressMode::Tor,
                addr: 0x40_0000 >> 2,
                ..Default::default()
            },
        );
        assert!(
            pmp.check(false, PhysAddr::new(0x1000), 4, PmpAccess::Read)
                .is_err(),
            "monitor hidden"
        );
        assert!(pmp
            .check(false, PhysAddr::new(0x20_0000), 4, PmpAccess::Exec)
            .is_ok());
        assert!(pmp
            .check(false, PhysAddr::new(0x50_0000), 4, PmpAccess::Read)
            .is_err());
    }

    #[test]
    fn zero_length_access_checked_as_one_byte() {
        let mut pmp = PmpUnit::new();
        pmp.set(0, napot_entry(0x1000, 0x1000, true, false, false));
        assert!(pmp
            .check(false, PhysAddr::new(0x1000), 0, PmpAccess::Read)
            .is_ok());
        assert!(pmp
            .check(false, PhysAddr::new(0x3000), 0, PmpAccess::Read)
            .is_err());
    }
}
