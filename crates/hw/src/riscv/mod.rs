//! RISC-V machine-mode model: PMP and the trap interface.
//!
//! §3.3/§4 of the paper: on RISC-V, Tyche runs in machine mode — "the most
//! privileged programmable execution level" — and protects physical memory
//! with PMP, which "only supports a fixed number of segments, which
//! requires a careful memory layout of trust domains and validation by the
//! monitor". This module models PMP exactly as the privileged spec defines
//! it (entry formats, priority, lock bits) and the M/S/U trap interface the
//! monitor call path uses.

pub mod hart;
pub mod pmp;

pub use hart::{Hart, PrivMode, Trap};
pub use pmp::{AddressMode, PmpEntry, PmpFault, PmpUnit, PMP_ENTRIES};
