//! A RISC-V hart: privilege modes, traps, and PMP-checked memory access.
//!
//! The monitor runs in M-mode; domains run in S/U-mode. An `ecall` from
//! S/U-mode traps into M-mode — that is the RISC-V analogue of VMCALL and
//! the monitor's direct communication channel (§3.3). All S/U memory
//! accesses are checked against the hart's PMP unit; the RISC-V backend
//! identity-maps domains in physical memory, which is why the paper calls
//! for "a careful memory layout of trust domains".

use crate::addr::PhysAddr;
use crate::machine::Platform;
use crate::riscv::pmp::{PmpAccess, PmpFault, PmpUnit};

/// RISC-V privilege modes (subset: no H extension).
#[derive(Clone, Copy, PartialEq, Eq, Debug, PartialOrd, Ord)]
pub enum PrivMode {
    /// User mode.
    User,
    /// Supervisor mode.
    Supervisor,
    /// Machine mode — where the monitor lives.
    Machine,
}

/// A trap delivered to M-mode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Trap {
    /// Environment call from S/U-mode: `a7` holds the function id, `a0..a5`
    /// the arguments (SBI-style calling convention).
    Ecall {
        /// Function identifier (register a7).
        fid: u64,
        /// Arguments (registers a0..a5).
        args: [u64; 6],
    },
    /// PMP access fault.
    AccessFault(PmpFault),
}

/// One hart (hardware thread).
#[derive(Clone, Debug)]
pub struct Hart {
    /// Hart id.
    pub id: usize,
    /// Current privilege mode.
    pub mode: PrivMode,
    /// Program counter (used by the monitor to set domain entry points).
    pub pc: u64,
    /// The PMP unit guarding this hart's accesses.
    pub pmp: PmpUnit,
    /// Domain tag for cache/TLB accounting (monitor-assigned).
    pub domain_tag: u64,
}

impl Hart {
    /// Creates a hart in M-mode (reset state).
    pub fn new(id: usize) -> Self {
        Hart {
            id,
            mode: PrivMode::Machine,
            pc: 0,
            pmp: PmpUnit::new(),
            domain_tag: 0,
        }
    }

    /// True when the hart is in machine mode.
    pub fn in_mmode(&self) -> bool {
        self.mode == PrivMode::Machine
    }

    /// Executes `ecall`: traps to M-mode and returns the trap the monitor
    /// dispatches. Charges the trap round-trip cost.
    pub fn ecall(&mut self, plat: &mut Platform<'_>, fid: u64, args: [u64; 6]) -> Trap {
        plat.cycles.charge(plat.cost.mmode_trap_roundtrip);
        self.mode = PrivMode::Machine;
        Trap::Ecall { fid, args }
    }

    /// Returns from M-mode to `mode` at `pc` (an `mret`).
    pub fn mret(&mut self, mode: PrivMode, pc: u64) {
        assert!(mode != PrivMode::Machine, "mret must lower privilege");
        self.mode = mode;
        self.pc = pc;
    }

    /// An injected PMP-check abort: the fault hardware would deliver on
    /// an internal PMP unit error, regardless of the programmed entries.
    fn injected_pmp_fault(
        &self,
        plat: &mut Platform<'_>,
        addr: PhysAddr,
        access: PmpAccess,
    ) -> Result<(), Trap> {
        if plat.mem.faults().fire(crate::faults::FaultSite::PmpWalk) {
            return Err(self.fault(plat, PmpFault { addr, access }));
        }
        Ok(())
    }

    /// PMP-checked load.
    pub fn read(
        &self,
        plat: &mut Platform<'_>,
        addr: PhysAddr,
        out: &mut [u8],
    ) -> Result<(), Trap> {
        self.injected_pmp_fault(plat, addr, PmpAccess::Read)?;
        self.pmp
            .check(self.in_mmode(), addr, out.len() as u64, PmpAccess::Read)
            .map_err(|f| self.fault(plat, f))?;
        plat.cache.access(self.domain_tag, addr);
        plat.mktme.read(plat.mem, addr, out).map_err(|_| {
            Trap::AccessFault(PmpFault {
                addr,
                access: PmpAccess::Read,
            })
        })
    }

    /// PMP-checked store.
    pub fn write(&self, plat: &mut Platform<'_>, addr: PhysAddr, data: &[u8]) -> Result<(), Trap> {
        self.injected_pmp_fault(plat, addr, PmpAccess::Write)?;
        self.pmp
            .check(self.in_mmode(), addr, data.len() as u64, PmpAccess::Write)
            .map_err(|f| self.fault(plat, f))?;
        plat.cache.access(self.domain_tag, addr);
        plat.mktme.write(plat.mem, addr, data).map_err(|_| {
            Trap::AccessFault(PmpFault {
                addr,
                access: PmpAccess::Write,
            })
        })
    }

    /// PMP-checked instruction fetch (permission check only).
    pub fn fetch(&self, plat: &mut Platform<'_>, addr: PhysAddr) -> Result<(), Trap> {
        self.injected_pmp_fault(plat, addr, PmpAccess::Exec)?;
        self.pmp
            .check(self.in_mmode(), addr, 4, PmpAccess::Exec)
            .map_err(|f| self.fault(plat, f))?;
        Ok(())
    }

    /// Charges the trap cost for a PMP fault and wraps it.
    fn fault(&self, plat: &mut Platform<'_>, f: PmpFault) -> Trap {
        plat.cycles.charge(plat.cost.mmode_trap_roundtrip);
        Trap::AccessFault(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::riscv::pmp::{napot_addr, AddressMode, PmpEntry};

    fn rw_entry(base: u64, size: u64) -> PmpEntry {
        PmpEntry {
            r: true,
            w: true,
            x: false,
            a: AddressMode::Napot,
            l: false,
            addr: napot_addr(base, size),
        }
    }

    #[test]
    fn smode_confined_by_pmp() {
        let mut m = Machine::default_machine();
        let mut hart = Hart::new(0);
        hart.pmp.set(0, rw_entry(0x10000, 0x1000));
        hart.mret(PrivMode::Supervisor, 0x10000);
        assert_eq!(hart.mode, PrivMode::Supervisor);

        hart.write(&mut m.platform(), PhysAddr::new(0x10010), b"ok")
            .unwrap();
        let mut out = [0u8; 2];
        hart.read(&mut m.platform(), PhysAddr::new(0x10010), &mut out)
            .unwrap();
        assert_eq!(&out, b"ok");

        let err = hart
            .write(&mut m.platform(), PhysAddr::new(0x20000), b"no")
            .unwrap_err();
        assert!(matches!(err, Trap::AccessFault(f) if f.access == PmpAccess::Write));
    }

    #[test]
    fn mmode_unrestricted_by_unlocked_entries() {
        let mut m = Machine::default_machine();
        let hart = Hart::new(0); // reset state: M-mode
        hart.write(&mut m.platform(), PhysAddr::new(0x100), b"m")
            .unwrap();
    }

    #[test]
    fn ecall_raises_to_mmode_and_charges() {
        let mut m = Machine::default_machine();
        let mut hart = Hart::new(0);
        hart.mret(PrivMode::User, 0x1000);
        let before = m.cycles.now();
        let trap = hart.ecall(&mut m.platform(), 7, [1, 2, 3, 4, 5, 6]);
        assert_eq!(
            trap,
            Trap::Ecall {
                fid: 7,
                args: [1, 2, 3, 4, 5, 6]
            }
        );
        assert!(hart.in_mmode());
        assert_eq!(m.cycles.since(before), m.cost.mmode_trap_roundtrip);
    }

    #[test]
    fn injected_pmp_abort_traps_even_inside_window() {
        use crate::faults::{FaultPlan, FaultSite};
        let mut m = Machine::default_machine();
        let mut hart = Hart::new(0);
        hart.pmp.set(0, rw_entry(0x10000, 0x1000));
        hart.mret(PrivMode::Supervisor, 0x10000);
        m.faults.arm(FaultPlan::once(FaultSite::PmpWalk));
        let err = hart
            .write(&mut m.platform(), PhysAddr::new(0x10010), b"ok")
            .unwrap_err();
        assert!(matches!(err, Trap::AccessFault(_)), "checked trap");
        // One-shot: the same access then succeeds.
        hart.write(&mut m.platform(), PhysAddr::new(0x10010), b"ok")
            .unwrap();
    }

    #[test]
    #[should_panic(expected = "lower privilege")]
    fn mret_to_mmode_panics() {
        Hart::new(0).mret(PrivMode::Machine, 0);
    }

    #[test]
    fn fetch_requires_exec() {
        let mut m = Machine::default_machine();
        let mut hart = Hart::new(0);
        hart.pmp.set(0, rw_entry(0x10000, 0x1000)); // rw-, no exec
        hart.mret(PrivMode::Supervisor, 0x10000);
        assert!(hart
            .fetch(&mut m.platform(), PhysAddr::new(0x10000))
            .is_err());
        let mut xe = rw_entry(0x20000, 0x1000);
        xe.x = true;
        hart.pmp.set(1, xe);
        assert!(hart
            .fetch(&mut m.platform(), PhysAddr::new(0x20000))
            .is_ok());
    }
}
