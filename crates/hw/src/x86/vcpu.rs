//! The virtual CPU: guest memory accesses, VMCALL exits, VMFUNC switches.
//!
//! The simulation does not emulate an instruction set. "Guest code" in
//! tests and examples is Rust code that drives a [`VCpu`]: every load/store
//! goes through [`VCpu::read`]/[`VCpu::write`] (which translate via the
//! active EPT, consult the TLB, and touch the cache model), and every call
//! to the monitor goes through [`VCpu::vmcall`] (which produces the vm exit
//! the monitor dispatches on). This preserves the property that matters:
//! *no access reaches physical memory except through hardware structures
//! the monitor programmed*.

use crate::addr::GuestPhysAddr;
use crate::cache::LINE_SIZE;
use crate::machine::Platform;
use crate::x86::ept::{Access, Ept, EptViolation};
use crate::x86::vmcs::Vmcs;

/// Exit reason numbers (subset of SDM Appendix C).
pub mod exit_reason {
    /// VMCALL executed.
    pub const VMCALL: u32 = 18;
    /// EPT violation.
    pub const EPT_VIOLATION: u32 = 48;
    /// HLT executed.
    pub const HLT: u32 = 12;
}

/// A vm exit delivered to the monitor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VmExit {
    /// The guest invoked the monitor (VMCALL): `leaf` selects the API
    /// operation, `args` carry operands.
    Vmcall {
        /// API operation selector (guest rax).
        leaf: u64,
        /// Operands (guest rcx, rdx, rbx, rsi, rdi, r8).
        args: [u64; 6],
    },
    /// The guest touched memory its EPT does not permit.
    EptViolation(EptViolation),
    /// The guest halted.
    Hlt,
    /// An unrecoverable guest error (e.g. VMFUNC with an invalid index and
    /// no handler).
    TripleFault,
}

/// A virtual CPU bound to one hardware core of the simulated machine.
#[derive(Clone, Debug)]
pub struct VCpu {
    /// Hardware core this vCPU runs on.
    pub core: usize,
    /// The active control structure.
    pub vmcs: Vmcs,
}

impl VCpu {
    /// Creates a vCPU on `core` with the given VMCS.
    pub fn new(core: usize, vmcs: Vmcs) -> Self {
        VCpu { core, vmcs }
    }

    /// Tag used for TLB/cache ownership: the active EPT root, which is
    /// unique per trust domain.
    fn tag(&self) -> u64 {
        self.vmcs.eptp.as_u64()
    }

    /// Translates one guest-physical address, charging TLB/page-walk
    /// cycles and filling the TLB.
    fn translate(
        &self,
        plat: &mut Platform<'_>,
        gpa: GuestPhysAddr,
        access: Access,
    ) -> Result<crate::addr::PhysAddr, VmExit> {
        let page = gpa.page_base().as_u64();
        // TLB entries carry the permission bits the original walk
        // verified, so a hit implies the access is allowed; an entry
        // lacking the needed bit misses and falls through to a fresh walk
        // (which faults on a real violation). The monitor must still
        // flush on permission *downgrades*, like INVEPT.
        let need: u8 = match access {
            Access::Read => 0b001,
            Access::Write => 0b010,
            Access::Exec => 0b100,
        };
        if let Some(frame) = plat.tlb.lookup(self.tag(), page, need) {
            plat.cycles.charge(plat.cost.tlb_hit);
            let hpa = crate::addr::PhysAddr::new(frame + gpa.page_offset());
            plat.cache.access(self.tag(), hpa);
            return Ok(hpa);
        }
        let ept = Ept::from_root(self.vmcs.eptp);
        match ept.translate(plat.mem, gpa, access) {
            Ok((hpa, walked)) => {
                plat.cycles
                    .charge(plat.cost.page_walk_level * walked as u64);
                plat.tlb
                    .insert(self.tag(), page, hpa.page_base().as_u64(), need);
                plat.cache.access(self.tag(), hpa);
                Ok(hpa)
            }
            Err(v) => {
                // The violation is a vm exit: charge the round trip and
                // record exit info.
                plat.cycles.charge(plat.cost.vmexit_roundtrip);
                Err(VmExit::EptViolation(v))
            }
        }
    }

    /// Guest load: reads `out.len()` bytes from guest-physical `gpa`.
    ///
    /// Accesses that cross page boundaries are split per page, as hardware
    /// splits them per translation.
    pub fn read(
        &self,
        plat: &mut Platform<'_>,
        gpa: GuestPhysAddr,
        out: &mut [u8],
    ) -> Result<(), VmExit> {
        let mut off = 0u64;
        while off < out.len() as u64 {
            let cur = GuestPhysAddr::new(gpa.as_u64() + off);
            let in_page = (crate::addr::PAGE_SIZE - cur.page_offset()).min(out.len() as u64 - off);
            let hpa = self.translate(plat, cur, Access::Read)?;
            // Touch every cache line covered by the access.
            let mut line = hpa.as_u64() & !(LINE_SIZE - 1);
            while line < hpa.as_u64() + in_page {
                plat.cache
                    .access(self.tag(), crate::addr::PhysAddr::new(line));
                line += LINE_SIZE;
            }
            plat.mktme
                .read(
                    plat.mem,
                    hpa,
                    &mut out[off as usize..(off + in_page) as usize],
                )
                .map_err(|_| VmExit::TripleFault)?;
            off += in_page;
        }
        Ok(())
    }

    /// Guest store: writes `data` at guest-physical `gpa`.
    pub fn write(
        &self,
        plat: &mut Platform<'_>,
        gpa: GuestPhysAddr,
        data: &[u8],
    ) -> Result<(), VmExit> {
        let mut off = 0u64;
        while off < data.len() as u64 {
            let cur = GuestPhysAddr::new(gpa.as_u64() + off);
            let in_page = (crate::addr::PAGE_SIZE - cur.page_offset()).min(data.len() as u64 - off);
            let hpa = self.translate(plat, cur, Access::Write)?;
            let mut line = hpa.as_u64() & !(LINE_SIZE - 1);
            while line < hpa.as_u64() + in_page {
                plat.cache
                    .access(self.tag(), crate::addr::PhysAddr::new(line));
                line += LINE_SIZE;
            }
            plat.mktme
                .write(plat.mem, hpa, &data[off as usize..(off + in_page) as usize])
                .map_err(|_| VmExit::TripleFault)?;
            off += in_page;
        }
        Ok(())
    }

    /// Guest instruction fetch at `gpa` (execute permission check only).
    pub fn fetch(&self, plat: &mut Platform<'_>, gpa: GuestPhysAddr) -> Result<(), VmExit> {
        self.translate(plat, gpa, Access::Exec).map(|_| ())
    }

    /// Guest `u64` load.
    pub fn read_u64(&self, plat: &mut Platform<'_>, gpa: GuestPhysAddr) -> Result<u64, VmExit> {
        let mut b = [0u8; 8];
        self.read(plat, gpa, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Guest `u64` store.
    pub fn write_u64(
        &self,
        plat: &mut Platform<'_>,
        gpa: GuestPhysAddr,
        v: u64,
    ) -> Result<(), VmExit> {
        self.write(plat, gpa, &v.to_le_bytes())
    }

    /// Executes VMCALL: loads `leaf`/`args` into guest registers, charges
    /// the exit cost, and returns the exit the monitor will dispatch.
    pub fn vmcall(&mut self, plat: &mut Platform<'_>, leaf: u64, args: [u64; 6]) -> VmExit {
        use crate::x86::vmcs::gpr;
        let r = &mut self.vmcs.guest.regs;
        r[gpr::RAX] = leaf;
        r[gpr::RCX] = args[0];
        r[gpr::RDX] = args[1];
        r[gpr::RBX] = args[2];
        r[gpr::RSI] = args[3];
        r[gpr::RDI] = args[4];
        r[gpr::R8] = args[5];
        self.vmcs.exit.reason = exit_reason::VMCALL;
        plat.cycles.charge(plat.cost.vmexit_roundtrip);
        VmExit::Vmcall { leaf, args }
    }

    /// Executes `VMFUNC` leaf 0 (EPTP switching).
    ///
    /// Reads slot `index` of the EPTP list page and, when valid, installs
    /// it as the active EPT root *without a vm exit* — this is the paper's
    /// ~100-cycle fast transition path. An invalid index or a disabled list
    /// causes a vm exit ([`VmExit::TripleFault`] models the resulting
    /// failure since we give the guest no recovery path).
    pub fn vmfunc_switch(&mut self, plat: &mut Platform<'_>, index: u64) -> Result<(), VmExit> {
        let list = match self.vmcs.eptp_list {
            Some(l) => l,
            None => return Err(VmExit::TripleFault),
        };
        if index >= 512 {
            return Err(VmExit::TripleFault);
        }
        let entry = plat
            .mem
            .read_u64(crate::addr::PhysAddr::new(list.as_u64() + index * 8))
            .map_err(|_| VmExit::TripleFault)?;
        if entry == 0 {
            return Err(VmExit::TripleFault);
        }
        plat.cycles.charge(plat.cost.vmfunc_switch);
        self.vmcs.eptp = crate::addr::PhysAddr::new(entry & 0x000f_ffff_ffff_f000);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{PhysAddr, PhysRange, PAGE_SIZE};
    use crate::cache::{Cache, Tlb};
    use crate::cycles::{CostModel, CycleCounter};
    use crate::mem::{FrameAllocator, PhysMem};
    use crate::x86::ept::EptFlags;

    struct Fixture {
        mem: PhysMem,
        alloc: FrameAllocator,
        tlb: Tlb,
        cache: Cache,
        cycles: CycleCounter,
        cost: CostModel,
        mktme: crate::mktme::MemCrypt,
    }

    impl Fixture {
        fn new() -> Self {
            Fixture {
                mem: PhysMem::new(1024 * PAGE_SIZE),
                alloc: FrameAllocator::new(PhysRange::from_len(
                    PhysAddr::new(0x100000),
                    512 * PAGE_SIZE,
                )),
                tlb: Tlb::new(),
                cache: Cache::default_l1(),
                cycles: CycleCounter::new(),
                cost: CostModel::default_model(),
                mktme: crate::mktme::MemCrypt::new_with_seed(0),
            }
        }

        fn plat(&mut self) -> Platform<'_> {
            Platform {
                mem: &mut self.mem,
                tlb: &mut self.tlb,
                cache: &mut self.cache,
                cycles: &self.cycles,
                cost: &self.cost,
                mktme: &mut self.mktme,
            }
        }
    }

    fn vcpu_with_mapping(fx: &mut Fixture, gpa: u64, hpa: u64, flags: EptFlags) -> VCpu {
        let ept = Ept::new(&mut fx.mem, &mut fx.alloc).unwrap();
        ept.map(
            &mut fx.mem,
            &mut fx.alloc,
            GuestPhysAddr::new(gpa),
            PhysAddr::new(hpa),
            flags,
        )
        .unwrap();
        VCpu::new(0, Vmcs::new(ept.root()))
    }

    #[test]
    fn guest_read_write_through_ept() {
        let mut fx = Fixture::new();
        let vcpu = vcpu_with_mapping(&mut fx, 0x4000, 0x8000, EptFlags::RW);
        vcpu.write(&mut fx.plat(), GuestPhysAddr::new(0x4010), b"tyche")
            .unwrap();
        let mut out = [0u8; 5];
        vcpu.read(&mut fx.plat(), GuestPhysAddr::new(0x4010), &mut out)
            .unwrap();
        assert_eq!(&out, b"tyche");
        // The bytes physically landed at the mapped frame.
        assert_eq!(fx.mem.read_u8(PhysAddr::new(0x8010)).unwrap(), b't');
    }

    #[test]
    fn violation_is_an_exit() {
        let mut fx = Fixture::new();
        let vcpu = vcpu_with_mapping(&mut fx, 0x4000, 0x8000, EptFlags::RO);
        let err = vcpu
            .write(&mut fx.plat(), GuestPhysAddr::new(0x4000), b"x")
            .unwrap_err();
        match err {
            VmExit::EptViolation(v) => {
                assert_eq!(v.gpa, GuestPhysAddr::new(0x4000));
                assert_eq!(v.access, Access::Write);
            }
            other => panic!("expected EPT violation, got {other:?}"),
        }
        // Unmapped address also exits.
        let mut b = [0u8; 1];
        assert!(matches!(
            vcpu.read(&mut fx.plat(), GuestPhysAddr::new(0xdead000), &mut b),
            Err(VmExit::EptViolation(_))
        ));
    }

    #[test]
    fn cross_page_access_requires_both_mappings() {
        let mut fx = Fixture::new();
        let ept = Ept::new(&mut fx.mem, &mut fx.alloc).unwrap();
        ept.map(
            &mut fx.mem,
            &mut fx.alloc,
            GuestPhysAddr::new(0x4000),
            PhysAddr::new(0x8000),
            EptFlags::RW,
        )
        .unwrap();
        let vcpu = VCpu::new(0, Vmcs::new(ept.root()));
        // Write straddling 0x4ffe..0x5002: second page unmapped -> exit.
        let err = vcpu
            .write(&mut fx.plat(), GuestPhysAddr::new(0x4ffe), &[1, 2, 3, 4])
            .unwrap_err();
        assert!(matches!(err, VmExit::EptViolation(v) if v.gpa.page_base().as_u64() == 0x5000));
        // Map the second page and the same write succeeds across frames.
        ept.map(
            &mut fx.mem,
            &mut fx.alloc,
            GuestPhysAddr::new(0x5000),
            PhysAddr::new(0xa000),
            EptFlags::RW,
        )
        .unwrap();
        vcpu.write(&mut fx.plat(), GuestPhysAddr::new(0x4ffe), &[1, 2, 3, 4])
            .unwrap();
        assert_eq!(fx.mem.read_u8(PhysAddr::new(0x8ffe)).unwrap(), 1);
        assert_eq!(fx.mem.read_u8(PhysAddr::new(0xa001)).unwrap(), 4);
    }

    #[test]
    fn tlb_caches_translations() {
        let mut fx = Fixture::new();
        let vcpu = vcpu_with_mapping(&mut fx, 0x4000, 0x8000, EptFlags::RW);
        let mut b = [0u8; 1];
        vcpu.read(&mut fx.plat(), GuestPhysAddr::new(0x4000), &mut b)
            .unwrap();
        let misses = fx.tlb.misses;
        vcpu.read(&mut fx.plat(), GuestPhysAddr::new(0x4008), &mut b)
            .unwrap();
        assert_eq!(fx.tlb.misses, misses, "second access hits the TLB");
        assert!(fx.tlb.hits >= 1);
    }

    #[test]
    fn vmcall_charges_exit_and_marshals() {
        let mut fx = Fixture::new();
        let mut vcpu = vcpu_with_mapping(&mut fx, 0x4000, 0x8000, EptFlags::RW);
        let before = fx.cycles.now();
        let exit = vcpu.vmcall(&mut fx.plat(), 42, [1, 2, 3, 4, 5, 6]);
        assert_eq!(
            exit,
            VmExit::Vmcall {
                leaf: 42,
                args: [1, 2, 3, 4, 5, 6]
            }
        );
        assert_eq!(fx.cycles.since(before), fx.cost.vmexit_roundtrip);
        assert_eq!(vcpu.vmcs.exit.reason, exit_reason::VMCALL);
    }

    #[test]
    fn vmfunc_switches_without_exit_cost() {
        let mut fx = Fixture::new();
        // Two EPTs mapping the same GPA to different frames.
        let ept_a = Ept::new(&mut fx.mem, &mut fx.alloc).unwrap();
        let ept_b = Ept::new(&mut fx.mem, &mut fx.alloc).unwrap();
        let gpa = GuestPhysAddr::new(0x4000);
        ept_a
            .map(
                &mut fx.mem,
                &mut fx.alloc,
                gpa,
                PhysAddr::new(0x8000),
                EptFlags::RW,
            )
            .unwrap();
        ept_b
            .map(
                &mut fx.mem,
                &mut fx.alloc,
                gpa,
                PhysAddr::new(0x9000),
                EptFlags::RW,
            )
            .unwrap();
        fx.mem.write_u8(PhysAddr::new(0x8000), 0xaa).unwrap();
        fx.mem.write_u8(PhysAddr::new(0x9000), 0xbb).unwrap();
        // EPTP list page with both roots.
        let list = fx.alloc.alloc_zeroed(&mut fx.mem).unwrap();
        fx.mem.write_u64(list, ept_a.root().as_u64() | 0x6).unwrap();
        fx.mem
            .write_u64(
                PhysAddr::new(list.as_u64() + 8),
                ept_b.root().as_u64() | 0x6,
            )
            .unwrap();

        let mut vmcs = Vmcs::new(ept_a.root());
        vmcs.eptp_list = Some(list);
        let mut vcpu = VCpu::new(0, vmcs);

        let mut b = [0u8; 1];
        vcpu.read(&mut fx.plat(), gpa, &mut b).unwrap();
        assert_eq!(b[0], 0xaa);

        let before = fx.cycles.now();
        vcpu.vmfunc_switch(&mut fx.plat(), 1).unwrap();
        assert_eq!(
            fx.cycles.since(before),
            fx.cost.vmfunc_switch,
            "no exit charged"
        );

        vcpu.read(&mut fx.plat(), gpa, &mut b).unwrap();
        assert_eq!(b[0], 0xbb, "same GPA now reaches the other domain's frame");
    }

    #[test]
    fn vmfunc_invalid_index_faults() {
        let mut fx = Fixture::new();
        let mut vcpu = vcpu_with_mapping(&mut fx, 0x4000, 0x8000, EptFlags::RW);
        // No list configured.
        assert_eq!(
            vcpu.vmfunc_switch(&mut fx.plat(), 0),
            Err(VmExit::TripleFault)
        );
        // List configured but slot empty / out of range.
        let list = fx.alloc.alloc_zeroed(&mut fx.mem).unwrap();
        vcpu.vmcs.eptp_list = Some(list);
        assert_eq!(
            vcpu.vmfunc_switch(&mut fx.plat(), 3),
            Err(VmExit::TripleFault)
        );
        assert_eq!(
            vcpu.vmfunc_switch(&mut fx.plat(), 512),
            Err(VmExit::TripleFault)
        );
    }

    #[test]
    fn exec_permission_checked_on_fetch() {
        let mut fx = Fixture::new();
        let vcpu = vcpu_with_mapping(&mut fx, 0x4000, 0x8000, EptFlags::RW);
        assert!(matches!(
            vcpu.fetch(&mut fx.plat(), GuestPhysAddr::new(0x4000)),
            Err(VmExit::EptViolation(v)) if v.access == Access::Exec
        ));
        let vcpu2 = vcpu_with_mapping(&mut fx, 0x6000, 0xc000, EptFlags::RX);
        assert!(vcpu2
            .fetch(&mut fx.plat(), GuestPhysAddr::new(0x6000))
            .is_ok());
    }

    #[test]
    fn u64_roundtrip() {
        let mut fx = Fixture::new();
        let vcpu = vcpu_with_mapping(&mut fx, 0x4000, 0x8000, EptFlags::RW);
        vcpu.write_u64(
            &mut fx.plat(),
            GuestPhysAddr::new(0x4100),
            0xdead_beef_cafe_f00d,
        )
        .unwrap();
        assert_eq!(
            vcpu.read_u64(&mut fx.plat(), GuestPhysAddr::new(0x4100))
                .unwrap(),
            0xdead_beef_cafe_f00d
        );
    }
}
