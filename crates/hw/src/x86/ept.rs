//! Extended Page Tables: a real 4-level radix walker over simulated RAM.
//!
//! The tables live *inside* [`crate::mem::PhysMem`] and are walked by
//! reading 8-byte entries, exactly as the hardware page-miss handler walks
//! DRAM. The monitor programs mappings through [`Ept::map`] and the vCPU
//! translates through [`Ept::translate`], so a wrong entry written by the
//! monitor produces a wrong translation — the model cannot "cheat".
//!
//! Entry layout follows the Intel SDM (Vol. 3C, §28.3): bits 0..2 are
//! read/write/execute permissions, bit 7 selects a large page at non-leaf
//! levels, bits 12..52 hold the physical frame number.

use crate::addr::{GuestPhysAddr, PhysAddr, PAGE_SIZE};
use crate::mem::{FrameAllocator, MemError, PhysMem};

/// Permission bits of an EPT entry (SDM bit positions).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct EptFlags(pub u64);

impl EptFlags {
    /// Read permission (bit 0).
    pub const READ: u64 = 1 << 0;
    /// Write permission (bit 1).
    pub const WRITE: u64 = 1 << 1;
    /// Execute permission (bit 2).
    pub const EXEC: u64 = 1 << 2;
    /// Large-page bit (bit 7) — set on a level-2 entry mapping 2 MiB.
    pub const LARGE: u64 = 1 << 7;

    /// Read-only mapping.
    pub const RO: EptFlags = EptFlags(Self::READ);
    /// Read-write mapping.
    pub const RW: EptFlags = EptFlags(Self::READ | Self::WRITE);
    /// Read-execute mapping.
    pub const RX: EptFlags = EptFlags(Self::READ | Self::EXEC);
    /// Read-write-execute mapping.
    pub const RWX: EptFlags = EptFlags(Self::READ | Self::WRITE | Self::EXEC);

    /// True when no access is permitted (the SDM "not present" encoding:
    /// all of R/W/X clear).
    pub fn is_none(self) -> bool {
        self.0 & (Self::READ | Self::WRITE | Self::EXEC) == 0
    }

    /// True when these flags allow `access`.
    pub fn allows(self, access: Access) -> bool {
        match access {
            Access::Read => self.0 & Self::READ != 0,
            Access::Write => self.0 & Self::WRITE != 0,
            Access::Exec => self.0 & Self::EXEC != 0,
        }
    }
}

impl core::fmt::Debug for EptFlags {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let r = if self.0 & Self::READ != 0 { "r" } else { "-" };
        let w = if self.0 & Self::WRITE != 0 { "w" } else { "-" };
        let x = if self.0 & Self::EXEC != 0 { "x" } else { "-" };
        write!(f, "EptFlags({r}{w}{x})")
    }
}

/// The kind of memory access being translated.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Access {
    /// A data read.
    Read,
    /// A data write.
    Write,
    /// An instruction fetch.
    Exec,
}

/// An EPT violation: the hardware event delivered to the monitor when a
/// domain touches memory it has no right to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EptViolation {
    /// Faulting guest-physical address.
    pub gpa: GuestPhysAddr,
    /// The attempted access.
    pub access: Access,
    /// Depth at which the walk stopped (4 = PML4 missing, 1 = leaf denied).
    pub level: u8,
}

/// Errors from programming the EPT (not from translating through it).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EptError {
    /// Underlying physical memory error (table frame out of bounds, OOM).
    Mem(MemError),
    /// Attempted to map an unaligned address.
    Unaligned,
    /// Attempted to map over an existing incompatible mapping.
    AlreadyMapped {
        /// The guest page that is already mapped.
        gpa: GuestPhysAddr,
    },
    /// Attempted to unmap or re-protect a page that is not mapped.
    NotMapped {
        /// The guest page that has no mapping.
        gpa: GuestPhysAddr,
    },
}

impl From<MemError> for EptError {
    fn from(e: MemError) -> Self {
        EptError::Mem(e)
    }
}

impl core::fmt::Display for EptError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EptError::Mem(e) => write!(f, "EPT memory error: {e}"),
            EptError::Unaligned => f.write_str("EPT mapping requires page alignment"),
            EptError::AlreadyMapped { gpa } => write!(f, "guest page {gpa} already mapped"),
            EptError::NotMapped { gpa } => write!(f, "guest page {gpa} not mapped"),
        }
    }
}

impl std::error::Error for EptError {}

const ENTRIES: u64 = 512;
const ADDR_MASK: u64 = 0x000f_ffff_ffff_f000;

/// A 4-level extended page table rooted at a physical frame.
///
/// One `Ept` per trust domain; the root physical address is what gets loaded
/// into the VMCS EPTP field (or an EPTP-list slot for VMFUNC).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ept {
    root: PhysAddr,
}

impl Ept {
    /// Allocates an empty EPT (one zeroed root frame).
    pub fn new(mem: &mut PhysMem, alloc: &mut FrameAllocator) -> Result<Self, EptError> {
        let root = alloc.alloc_zeroed(mem)?;
        Ok(Ept { root })
    }

    /// Wraps an existing root frame (used when loading an EPTP value).
    pub fn from_root(root: PhysAddr) -> Self {
        Ept { root }
    }

    /// The root frame — the EPTP value modulo the low control bits.
    pub fn root(&self) -> PhysAddr {
        self.root
    }

    /// Index of the entry for `gpa` at `level` (4 = PML4 ... 1 = PT).
    fn index(gpa: GuestPhysAddr, level: u8) -> u64 {
        (gpa.as_u64() >> (12 + 9 * (level as u64 - 1))) & (ENTRIES - 1)
    }

    /// Maps the 4-KiB guest page at `gpa` to host frame `hpa` with `flags`.
    ///
    /// Intermediate table frames are allocated on demand. Remapping an
    /// already-mapped page is an error; the monitor must unmap first (this
    /// mirrors the discipline the capability engine needs).
    pub fn map(
        &self,
        mem: &mut PhysMem,
        alloc: &mut FrameAllocator,
        gpa: GuestPhysAddr,
        hpa: PhysAddr,
        flags: EptFlags,
    ) -> Result<(), EptError> {
        if !gpa.is_page_aligned() || !hpa.is_page_aligned() {
            return Err(EptError::Unaligned);
        }
        let mut table = self.root;
        for level in (2..=4u8).rev() {
            let entry_addr = PhysAddr::new(table.as_u64() + Self::index(gpa, level) * 8);
            let entry = mem.read_u64(entry_addr)?;
            if EptFlags(entry).is_none() {
                let frame = alloc.alloc_zeroed(mem)?;
                // Non-leaf entries carry RWX so permissions are decided at
                // the leaf, matching how the monitor programs real EPTs.
                let new_entry = (frame.as_u64() & ADDR_MASK) | EptFlags::RWX.0;
                mem.write_u64(entry_addr, new_entry)?;
                table = frame;
            } else {
                table = PhysAddr::new(entry & ADDR_MASK);
            }
        }
        let leaf_addr = PhysAddr::new(table.as_u64() + Self::index(gpa, 1) * 8);
        let existing = mem.read_u64(leaf_addr)?;
        if !EptFlags(existing).is_none() {
            return Err(EptError::AlreadyMapped {
                gpa: gpa.page_base(),
            });
        }
        mem.write_u64(leaf_addr, (hpa.as_u64() & ADDR_MASK) | (flags.0 & 0x7))?;
        Ok(())
    }

    /// Maps a contiguous guest range to a contiguous host range.
    pub fn map_range(
        &self,
        mem: &mut PhysMem,
        alloc: &mut FrameAllocator,
        gpa: GuestPhysAddr,
        hpa: PhysAddr,
        len: u64,
        flags: EptFlags,
    ) -> Result<(), EptError> {
        if !len.is_multiple_of(PAGE_SIZE) {
            return Err(EptError::Unaligned);
        }
        for off in (0..len).step_by(PAGE_SIZE as usize) {
            self.map(
                mem,
                alloc,
                GuestPhysAddr::new(gpa.as_u64() + off),
                PhysAddr::new(hpa.as_u64() + off),
                flags,
            )?;
        }
        Ok(())
    }

    /// Finds the leaf entry address for `gpa`, if the walk reaches level 1.
    fn leaf_entry_addr(
        &self,
        mem: &PhysMem,
        gpa: GuestPhysAddr,
    ) -> Result<Option<PhysAddr>, EptError> {
        let mut table = self.root;
        for level in (2..=4u8).rev() {
            let entry_addr = PhysAddr::new(table.as_u64() + Self::index(gpa, level) * 8);
            let entry = mem.read_u64(entry_addr)?;
            if EptFlags(entry).is_none() {
                return Ok(None);
            }
            table = PhysAddr::new(entry & ADDR_MASK);
        }
        Ok(Some(PhysAddr::new(
            table.as_u64() + Self::index(gpa, 1) * 8,
        )))
    }

    /// Removes the mapping for the guest page at `gpa`.
    pub fn unmap(&self, mem: &mut PhysMem, gpa: GuestPhysAddr) -> Result<(), EptError> {
        let leaf = self.leaf_entry_addr(mem, gpa)?.ok_or(EptError::NotMapped {
            gpa: gpa.page_base(),
        })?;
        if EptFlags(mem.read_u64(leaf)?).is_none() {
            return Err(EptError::NotMapped {
                gpa: gpa.page_base(),
            });
        }
        mem.write_u64(leaf, 0)?;
        Ok(())
    }

    /// Unmaps a contiguous guest range.
    pub fn unmap_range(
        &self,
        mem: &mut PhysMem,
        gpa: GuestPhysAddr,
        len: u64,
    ) -> Result<(), EptError> {
        for off in (0..len).step_by(PAGE_SIZE as usize) {
            self.unmap(mem, GuestPhysAddr::new(gpa.as_u64() + off))?;
        }
        Ok(())
    }

    /// Rewrites the permissions of an existing mapping (e.g. downgrade to
    /// read-only when a region becomes shared immutable).
    pub fn protect(
        &self,
        mem: &mut PhysMem,
        gpa: GuestPhysAddr,
        flags: EptFlags,
    ) -> Result<(), EptError> {
        let leaf = self.leaf_entry_addr(mem, gpa)?.ok_or(EptError::NotMapped {
            gpa: gpa.page_base(),
        })?;
        let entry = mem.read_u64(leaf)?;
        if EptFlags(entry).is_none() {
            return Err(EptError::NotMapped {
                gpa: gpa.page_base(),
            });
        }
        mem.write_u64(leaf, (entry & ADDR_MASK) | (flags.0 & 0x7))?;
        Ok(())
    }

    /// Translates `gpa` for `access`, returning the host-physical address.
    ///
    /// Also returns the number of table levels walked so the caller can
    /// charge page-walk cycles. Fails with the [`EptViolation`] the real
    /// hardware would deliver as a vm exit.
    pub fn translate(
        &self,
        mem: &PhysMem,
        gpa: GuestPhysAddr,
        access: Access,
    ) -> Result<(PhysAddr, u8), EptViolation> {
        // An injected walk abort surfaces as the violation hardware
        // delivers on an uncorrectable table-fetch error: root level,
        // nothing walked. (Injected memory-read faults during the walk
        // itself are caught by the `read_u64` arms below.)
        if mem.faults().fire(crate::faults::FaultSite::EptWalk) {
            return Err(EptViolation {
                gpa,
                access,
                level: 4,
            });
        }
        let mut table = self.root;
        let mut walked = 0u8;
        for level in (2..=4u8).rev() {
            let entry_addr = PhysAddr::new(table.as_u64() + Self::index(gpa, level) * 8);
            let entry = match mem.read_u64(entry_addr) {
                Ok(e) => e,
                Err(_) => return Err(EptViolation { gpa, access, level }),
            };
            walked += 1;
            if EptFlags(entry).is_none() {
                return Err(EptViolation { gpa, access, level });
            }
            table = PhysAddr::new(entry & ADDR_MASK);
        }
        let leaf_addr = PhysAddr::new(table.as_u64() + Self::index(gpa, 1) * 8);
        let entry = match mem.read_u64(leaf_addr) {
            Ok(e) => e,
            Err(_) => {
                return Err(EptViolation {
                    gpa,
                    access,
                    level: 1,
                })
            }
        };
        walked += 1;
        let flags = EptFlags(entry);
        if flags.is_none() || !flags.allows(access) {
            return Err(EptViolation {
                gpa,
                access,
                level: 1,
            });
        }
        let frame = PhysAddr::new(entry & ADDR_MASK);
        Ok((PhysAddr::new(frame.as_u64() + gpa.page_offset()), walked))
    }

    /// Enumerates all present leaf mappings as `(gpa, hpa, flags)` triples.
    ///
    /// Used by the monitor's attestation path to cross-check hardware state
    /// against the capability engine's view.
    pub fn mappings(
        &self,
        mem: &PhysMem,
    ) -> Result<Vec<(GuestPhysAddr, PhysAddr, EptFlags)>, EptError> {
        let mut out = Vec::new();
        self.walk_table(mem, self.root, 4, 0, &mut out)?;
        Ok(out)
    }

    /// Enumerates every table frame of this EPT (root included), so a
    /// backend can return them to the frame allocator when the owning
    /// domain is destroyed.
    pub fn table_frames(&self, mem: &PhysMem) -> Result<Vec<PhysAddr>, EptError> {
        let mut out = vec![self.root];
        let mut stack = vec![(self.root, 4u8)];
        while let Some((table, level)) = stack.pop() {
            if level == 1 {
                continue;
            }
            for i in 0..ENTRIES {
                let entry = mem.read_u64(PhysAddr::new(table.as_u64() + i * 8))?;
                if EptFlags(entry).is_none() {
                    continue;
                }
                let next = PhysAddr::new(entry & ADDR_MASK);
                out.push(next);
                stack.push((next, level - 1));
            }
        }
        Ok(out)
    }

    fn walk_table(
        &self,
        mem: &PhysMem,
        table: PhysAddr,
        level: u8,
        gpa_prefix: u64,
        out: &mut Vec<(GuestPhysAddr, PhysAddr, EptFlags)>,
    ) -> Result<(), EptError> {
        for i in 0..ENTRIES {
            let entry = mem.read_u64(PhysAddr::new(table.as_u64() + i * 8))?;
            let flags = EptFlags(entry);
            if flags.is_none() {
                continue;
            }
            let gpa = gpa_prefix | (i << (12 + 9 * (level as u64 - 1)));
            let next = PhysAddr::new(entry & ADDR_MASK);
            if level == 1 {
                out.push((GuestPhysAddr::new(gpa), next, EptFlags(entry & 0x7)));
            } else {
                self.walk_table(mem, next, level - 1, gpa, out)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PhysRange;

    fn setup() -> (PhysMem, FrameAllocator) {
        let mem = PhysMem::new(512 * PAGE_SIZE);
        let alloc = FrameAllocator::new(PhysRange::from_len(PhysAddr::new(0), 256 * PAGE_SIZE));
        (mem, alloc)
    }

    #[test]
    fn map_translate_roundtrip() {
        let (mut mem, mut alloc) = setup();
        let ept = Ept::new(&mut mem, &mut alloc).unwrap();
        let gpa = GuestPhysAddr::new(0x40_0000);
        let hpa = PhysAddr::new(0x10_0000);
        ept.map(&mut mem, &mut alloc, gpa, hpa, EptFlags::RW)
            .unwrap();
        let (t, walked) = ept.translate(&mem, gpa, Access::Read).unwrap();
        assert_eq!(t, hpa);
        assert_eq!(walked, 4, "full 4-level walk");
        // Offsets within the page are preserved.
        let (t2, _) = ept
            .translate(
                &mem,
                GuestPhysAddr::new(gpa.as_u64() + 0x123),
                Access::Write,
            )
            .unwrap();
        assert_eq!(t2, PhysAddr::new(hpa.as_u64() + 0x123));
    }

    #[test]
    fn permissions_enforced() {
        let (mut mem, mut alloc) = setup();
        let ept = Ept::new(&mut mem, &mut alloc).unwrap();
        let gpa = GuestPhysAddr::new(0x1000);
        ept.map(
            &mut mem,
            &mut alloc,
            gpa,
            PhysAddr::new(0x2000),
            EptFlags::RO,
        )
        .unwrap();
        assert!(ept.translate(&mem, gpa, Access::Read).is_ok());
        let v = ept.translate(&mem, gpa, Access::Write).unwrap_err();
        assert_eq!(v.access, Access::Write);
        assert_eq!(v.level, 1, "permission fault at the leaf");
        assert!(ept.translate(&mem, gpa, Access::Exec).is_err());
    }

    #[test]
    fn injected_walk_abort_faults_at_root() {
        use crate::faults::{FaultPlan, FaultSite};
        let (mut mem, mut alloc) = setup();
        let ept = Ept::new(&mut mem, &mut alloc).unwrap();
        let gpa = GuestPhysAddr::new(0x40_0000);
        ept.map(&mut mem, &mut alloc, gpa, PhysAddr::new(0x10_0000), EptFlags::RW)
            .unwrap();
        mem.faults().arm(FaultPlan::once(FaultSite::EptWalk));
        let v = ept.translate(&mem, gpa, Access::Read).unwrap_err();
        assert_eq!(v.level, 4, "aborts before walking");
        // One-shot: the mapping is intact and translates again.
        assert!(ept.translate(&mem, gpa, Access::Read).is_ok());
        // A memory-read fault mid-walk is also a violation, not a panic.
        mem.faults().arm(FaultPlan::once(FaultSite::MemRead));
        assert!(ept.translate(&mem, gpa, Access::Read).is_err());
        assert!(ept.translate(&mem, gpa, Access::Read).is_ok());
    }

    #[test]
    fn unmapped_faults_at_top() {
        let (mut mem, mut alloc) = setup();
        let ept = Ept::new(&mut mem, &mut alloc).unwrap();
        let v = ept
            .translate(&mem, GuestPhysAddr::new(0x5000), Access::Read)
            .unwrap_err();
        assert_eq!(v.level, 4, "empty PML4 entry");
    }

    #[test]
    fn double_map_rejected_unmap_allows_remap() {
        let (mut mem, mut alloc) = setup();
        let ept = Ept::new(&mut mem, &mut alloc).unwrap();
        let gpa = GuestPhysAddr::new(0x1000);
        ept.map(
            &mut mem,
            &mut alloc,
            gpa,
            PhysAddr::new(0x2000),
            EptFlags::RW,
        )
        .unwrap();
        assert!(matches!(
            ept.map(
                &mut mem,
                &mut alloc,
                gpa,
                PhysAddr::new(0x3000),
                EptFlags::RW
            ),
            Err(EptError::AlreadyMapped { .. })
        ));
        ept.unmap(&mut mem, gpa).unwrap();
        assert!(ept.translate(&mem, gpa, Access::Read).is_err());
        ept.map(
            &mut mem,
            &mut alloc,
            gpa,
            PhysAddr::new(0x3000),
            EptFlags::RW,
        )
        .unwrap();
        assert_eq!(
            ept.translate(&mem, gpa, Access::Read).unwrap().0,
            PhysAddr::new(0x3000)
        );
    }

    #[test]
    fn unmap_unmapped_is_error() {
        let (mut mem, mut alloc) = setup();
        let ept = Ept::new(&mut mem, &mut alloc).unwrap();
        assert!(matches!(
            ept.unmap(&mut mem, GuestPhysAddr::new(0x9000)),
            Err(EptError::NotMapped { .. })
        ));
    }

    #[test]
    fn protect_downgrades() {
        let (mut mem, mut alloc) = setup();
        let ept = Ept::new(&mut mem, &mut alloc).unwrap();
        let gpa = GuestPhysAddr::new(0x1000);
        ept.map(
            &mut mem,
            &mut alloc,
            gpa,
            PhysAddr::new(0x2000),
            EptFlags::RWX,
        )
        .unwrap();
        ept.protect(&mut mem, gpa, EptFlags::RO).unwrap();
        assert!(ept.translate(&mem, gpa, Access::Read).is_ok());
        assert!(ept.translate(&mem, gpa, Access::Write).is_err());
    }

    #[test]
    fn unaligned_rejected() {
        let (mut mem, mut alloc) = setup();
        let ept = Ept::new(&mut mem, &mut alloc).unwrap();
        assert!(matches!(
            ept.map(
                &mut mem,
                &mut alloc,
                GuestPhysAddr::new(0x1001),
                PhysAddr::new(0x2000),
                EptFlags::RW
            ),
            Err(EptError::Unaligned)
        ));
    }

    #[test]
    fn two_epts_are_independent() {
        // The heart of domain isolation: same GPA, different domains,
        // different frames.
        let (mut mem, mut alloc) = setup();
        let a = Ept::new(&mut mem, &mut alloc).unwrap();
        let b = Ept::new(&mut mem, &mut alloc).unwrap();
        let gpa = GuestPhysAddr::new(0x1000);
        a.map(
            &mut mem,
            &mut alloc,
            gpa,
            PhysAddr::new(0x10000),
            EptFlags::RW,
        )
        .unwrap();
        b.map(
            &mut mem,
            &mut alloc,
            gpa,
            PhysAddr::new(0x20000),
            EptFlags::RO,
        )
        .unwrap();
        assert_eq!(
            a.translate(&mem, gpa, Access::Read).unwrap().0,
            PhysAddr::new(0x10000)
        );
        assert_eq!(
            b.translate(&mem, gpa, Access::Read).unwrap().0,
            PhysAddr::new(0x20000)
        );
        assert!(b.translate(&mem, gpa, Access::Write).is_err());
        assert!(a.translate(&mem, gpa, Access::Write).is_ok());
    }

    #[test]
    fn sparse_addresses_use_distinct_top_entries() {
        let (mut mem, mut alloc) = setup();
        let ept = Ept::new(&mut mem, &mut alloc).unwrap();
        // Two GPAs differing in PML4 index (bit 39).
        let g1 = GuestPhysAddr::new(0x0000_0000_1000);
        let g2 = GuestPhysAddr::new(0x80_0000_0000 + 0x1000);
        ept.map(
            &mut mem,
            &mut alloc,
            g1,
            PhysAddr::new(0x3000),
            EptFlags::RW,
        )
        .unwrap();
        ept.map(
            &mut mem,
            &mut alloc,
            g2,
            PhysAddr::new(0x4000),
            EptFlags::RW,
        )
        .unwrap();
        assert_eq!(
            ept.translate(&mem, g1, Access::Read).unwrap().0,
            PhysAddr::new(0x3000)
        );
        assert_eq!(
            ept.translate(&mem, g2, Access::Read).unwrap().0,
            PhysAddr::new(0x4000)
        );
    }

    #[test]
    fn mappings_enumeration_matches() {
        let (mut mem, mut alloc) = setup();
        let ept = Ept::new(&mut mem, &mut alloc).unwrap();
        let pairs = [
            (0x1000u64, 0x10000u64, EptFlags::RW),
            (0x2000, 0x20000, EptFlags::RO),
            (0x40_0000, 0x30000, EptFlags::RX),
        ];
        for (g, h, f) in pairs {
            ept.map(
                &mut mem,
                &mut alloc,
                GuestPhysAddr::new(g),
                PhysAddr::new(h),
                f,
            )
            .unwrap();
        }
        let mut got = ept.mappings(&mem).unwrap();
        got.sort_by_key(|(g, _, _)| g.as_u64());
        assert_eq!(got.len(), 3);
        for ((g, h, f), (eg, eh, ef)) in got.iter().zip(pairs.iter()) {
            assert_eq!(g.as_u64(), *eg);
            assert_eq!(h.as_u64(), *eh);
            assert_eq!(f.0, ef.0);
        }
    }

    #[test]
    fn map_range_covers_every_page() {
        let (mut mem, mut alloc) = setup();
        let ept = Ept::new(&mut mem, &mut alloc).unwrap();
        ept.map_range(
            &mut mem,
            &mut alloc,
            GuestPhysAddr::new(0x10000),
            PhysAddr::new(0x80000),
            4 * PAGE_SIZE,
            EptFlags::RW,
        )
        .unwrap();
        for i in 0..4u64 {
            let (t, _) = ept
                .translate(
                    &mem,
                    GuestPhysAddr::new(0x10000 + i * PAGE_SIZE),
                    Access::Read,
                )
                .unwrap();
            assert_eq!(t.as_u64(), 0x80000 + i * PAGE_SIZE);
        }
        assert!(ept
            .translate(
                &mem,
                GuestPhysAddr::new(0x10000 + 4 * PAGE_SIZE),
                Access::Read
            )
            .is_err());
    }
}
