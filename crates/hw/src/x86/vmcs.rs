//! A VMCS model: the per-vCPU control structure the monitor programs.
//!
//! Only the fields the isolation monitor actually touches are modeled:
//! guest register state, the EPT pointer, the VMFUNC controls (EPTP list),
//! and the exit-information fields.

use crate::addr::PhysAddr;

/// Number of general-purpose registers tracked (rax..r15).
pub const GPR_COUNT: usize = 16;

/// Symbolic GPR indices for readability at call sites.
pub mod gpr {
    /// rax — VMCALL leaf / return value.
    pub const RAX: usize = 0;
    /// rcx — first argument.
    pub const RCX: usize = 1;
    /// rdx — second argument.
    pub const RDX: usize = 2;
    /// rbx — third argument.
    pub const RBX: usize = 3;
    /// rsp — stack pointer.
    pub const RSP: usize = 4;
    /// rbp.
    pub const RBP: usize = 5;
    /// rsi — fourth argument.
    pub const RSI: usize = 6;
    /// rdi — fifth argument.
    pub const RDI: usize = 7;
    /// r8 — sixth argument.
    pub const R8: usize = 8;
    /// r9 — seventh argument.
    pub const R9: usize = 9;
}

/// Guest register state saved/loaded on VM transitions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GuestState {
    /// Instruction pointer.
    pub rip: u64,
    /// General-purpose registers, indexed by [`gpr`] constants.
    pub regs: [u64; GPR_COUNT],
    /// Current privilege ring the guest believes it runs in (0..3).
    pub ring: u8,
}

/// The virtual-machine control structure for one vCPU.
#[derive(Clone, Debug)]
pub struct Vmcs {
    /// Guest state loaded on VM entry.
    pub guest: GuestState,
    /// Active EPT root ("EPTP" without the low control bits).
    pub eptp: PhysAddr,
    /// Physical address of the 512-slot EPTP list page, when VMFUNC leaf 0
    /// is enabled (`None` disables VMFUNC).
    pub eptp_list: Option<PhysAddr>,
    /// Exit information, valid after a vm exit.
    pub exit: ExitInfo,
    /// Identifier of the domain this VMCS currently runs (monitor-assigned,
    /// mirrored here so the TLB/cache models can tag state).
    pub domain_tag: u64,
}

/// Exit-information fields (a compressed VMCS exit-info block).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExitInfo {
    /// Basic exit reason number (SDM Appendix C values where modeled).
    pub reason: u32,
    /// Exit qualification (fault GPA for EPT violations).
    pub qualification: u64,
}

impl Vmcs {
    /// Creates a VMCS with zeroed guest state and the given EPT root.
    pub fn new(eptp: PhysAddr) -> Self {
        Vmcs {
            guest: GuestState::default(),
            eptp,
            eptp_list: None,
            exit: ExitInfo::default(),
            domain_tag: 0,
        }
    }

    /// Reads the VMCALL argument registers `(rax, rcx, rdx, rbx, rsi, rdi, r8)`.
    pub fn vmcall_args(&self) -> (u64, [u64; 6]) {
        let r = &self.guest.regs;
        (
            r[gpr::RAX],
            [
                r[gpr::RCX],
                r[gpr::RDX],
                r[gpr::RBX],
                r[gpr::RSI],
                r[gpr::RDI],
                r[gpr::R8],
            ],
        )
    }

    /// Writes a VMCALL result back into guest registers: status in rax,
    /// values in rcx/rdx/rbx.
    pub fn set_vmcall_result(&mut self, status: u64, values: [u64; 3]) {
        self.guest.regs[gpr::RAX] = status;
        self.guest.regs[gpr::RCX] = values[0];
        self.guest.regs[gpr::RDX] = values[1];
        self.guest.regs[gpr::RBX] = values[2];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vmcall_arg_marshalling() {
        let mut v = Vmcs::new(PhysAddr::new(0x1000));
        v.guest.regs[gpr::RAX] = 7;
        v.guest.regs[gpr::RCX] = 1;
        v.guest.regs[gpr::RDX] = 2;
        v.guest.regs[gpr::RBX] = 3;
        v.guest.regs[gpr::RSI] = 4;
        v.guest.regs[gpr::RDI] = 5;
        v.guest.regs[gpr::R8] = 6;
        let (leaf, args) = v.vmcall_args();
        assert_eq!(leaf, 7);
        assert_eq!(args, [1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn vmcall_result_marshalling() {
        let mut v = Vmcs::new(PhysAddr::new(0));
        v.set_vmcall_result(0, [10, 20, 30]);
        assert_eq!(v.guest.regs[gpr::RAX], 0);
        assert_eq!(v.guest.regs[gpr::RCX], 10);
        assert_eq!(v.guest.regs[gpr::RDX], 20);
        assert_eq!(v.guest.regs[gpr::RBX], 30);
    }

    #[test]
    fn defaults() {
        let v = Vmcs::new(PhysAddr::new(0x2000));
        assert_eq!(v.eptp, PhysAddr::new(0x2000));
        assert!(v.eptp_list.is_none());
        assert_eq!(v.guest.ring, 0);
    }
}
