//! Intel VT-x model: EPT, VMCS, vCPU exits, VMFUNC.
//!
//! §3.3 of the paper: on x86 the monitor enforces memory access control
//! through "a second level of page tables" (EPT) and gets "a direct
//! communication channel" via VMCALL. §4.1 additionally uses the VMFUNC
//! EPTP-switch fast path for ~100-cycle domain transitions. This module
//! models those three mechanisms plus the vm-exit interface that connects
//! them to the monitor.

pub mod ept;
pub mod vcpu;
pub mod vmcs;

pub use ept::{Access, Ept, EptError, EptFlags, EptViolation};
pub use vcpu::{VCpu, VmExit};
pub use vmcs::Vmcs;
