//! Micro-architectural residue: a set-associative cache and a TLB model.
//!
//! §4.1 of the paper: capabilities can attach "revocation policies that
//! flush micro-architectural state (caches) during a transition" to mitigate
//! side channels. For that claim to be testable, the simulation must have
//! observable micro-architectural state: this module models which physical
//! lines are resident in cache and which translations are cached in the TLB,
//! each tagged with the domain that brought them in. A PRIME+PROBE-style
//! test can then check whether a victim's lines survive a transition.

use crate::addr::PhysAddr;
use std::collections::HashMap;

/// Cache line size in bytes.
pub const LINE_SIZE: u64 = 64;

/// A cached line: which domain touched it last.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct LineState {
    owner_domain: u64,
}

/// A physically-tagged set-associative cache model.
///
/// Tracks residency only (no data — the data lives in [`crate::mem`]); that
/// is all a cache side channel needs.
#[derive(Clone, Debug)]
pub struct Cache {
    sets: Vec<Vec<(u64, LineState)>>, // per set: (tag, state), LRU order front=oldest
    ways: usize,
    set_bits: u32,
    /// Total hits observed (for bench reporting).
    pub hits: u64,
    /// Total misses observed.
    pub misses: u64,
}

impl Cache {
    /// Creates a cache with `sets` sets (power of two) and `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or either parameter is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(
            sets.is_power_of_two() && sets > 0,
            "sets must be a power of two"
        );
        assert!(ways > 0, "ways must be nonzero");
        Cache {
            sets: vec![Vec::new(); sets],
            ways,
            set_bits: sets.trailing_zeros(),
            hits: 0,
            misses: 0,
        }
    }

    /// A small L1-like default: 64 sets x 8 ways x 64B = 32 KiB.
    pub fn default_l1() -> Self {
        Cache::new(64, 8)
    }

    fn index(&self, addr: PhysAddr) -> (usize, u64) {
        let line = addr.as_u64() / LINE_SIZE;
        let set = (line & ((1u64 << self.set_bits) - 1)) as usize;
        let tag = line >> self.set_bits;
        (set, tag)
    }

    /// Simulates an access by `domain` to `addr`; returns `true` on hit.
    pub fn access(&mut self, domain: u64, addr: PhysAddr) -> bool {
        let (set, tag) = self.index(addr);
        let ways = self.ways;
        let lines = &mut self.sets[set];
        if let Some(pos) = lines.iter().position(|(t, _)| *t == tag) {
            // Refresh LRU position and ownership.
            let mut entry = lines.remove(pos);
            entry.1.owner_domain = domain;
            lines.push(entry);
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if lines.len() == ways {
            lines.remove(0); // evict LRU
        }
        lines.push((
            tag,
            LineState {
                owner_domain: domain,
            },
        ));
        false
    }

    /// True when the line containing `addr` is resident.
    pub fn probe(&self, addr: PhysAddr) -> bool {
        let (set, tag) = self.index(addr);
        self.sets[set].iter().any(|(t, _)| *t == tag)
    }

    /// Number of resident lines brought in (or last touched) by `domain`.
    pub fn resident_lines_of(&self, domain: u64) -> usize {
        self.sets
            .iter()
            .flat_map(|s| s.iter())
            .filter(|(_, st)| st.owner_domain == domain)
            .count()
    }

    /// Total resident lines.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Flushes the whole cache; returns the number of lines flushed (the
    /// cost model charges per line).
    pub fn flush_all(&mut self) -> usize {
        let n = self.resident_lines();
        for s in &mut self.sets {
            s.clear();
        }
        n
    }

    /// Flushes only the lines owned by `domain` (a selective-flush policy).
    pub fn flush_domain(&mut self, domain: u64) -> usize {
        let mut n = 0;
        for s in &mut self.sets {
            let before = s.len();
            s.retain(|(_, st)| st.owner_domain != domain);
            n += before - s.len();
        }
        n
    }
}

/// A TLB model: caches guest-page → host-frame translations per domain,
/// *with* the permission bits the walk verified — exactly like hardware,
/// where a TLB entry formed by a read does not authorize a write.
#[derive(Clone, Debug, Default)]
pub struct Tlb {
    /// (domain, guest page base) -> (host frame base, verified perms).
    entries: HashMap<(u64, u64), (u64, u8)>,
    /// Hits observed.
    pub hits: u64,
    /// Misses observed.
    pub misses: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a cached translation that permits all bits in `need`
    /// (bit 0 = read, bit 1 = write, bit 2 = execute). An entry lacking
    /// the needed permission is a miss: the access must re-walk the
    /// tables, which will enforce the real permissions.
    pub fn lookup(&mut self, domain: u64, guest_page: u64, need: u8) -> Option<u64> {
        match self.entries.get(&(domain, guest_page)) {
            Some(&(f, perms)) if perms & need == need => {
                self.hits += 1;
                Some(f)
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Installs a translation after a walk that verified `perms` bits.
    /// Permissions accumulate: a later write-walk upgrades a read entry.
    pub fn insert(&mut self, domain: u64, guest_page: u64, host_frame: u64, perms: u8) {
        let e = self
            .entries
            .entry((domain, guest_page))
            .or_insert((host_frame, 0));
        e.0 = host_frame;
        e.1 |= perms;
    }

    /// Flushes every entry (INVEPT global).
    pub fn flush_all(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        n
    }

    /// Flushes one domain's entries (INVEPT single-context).
    pub fn flush_domain(&mut self, domain: u64) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(d, _), _| *d != domain);
        before - self.entries.len()
    }

    /// Number of cached translations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no translations are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut c = Cache::default_l1();
        let a = PhysAddr::new(0x1000);
        assert!(!c.access(1, a));
        assert!(c.access(1, a));
        assert_eq!((c.hits, c.misses), (1, 1));
        assert!(c.probe(a));
    }

    #[test]
    fn same_line_different_offsets() {
        let mut c = Cache::default_l1();
        assert!(!c.access(1, PhysAddr::new(0x1000)));
        assert!(c.access(1, PhysAddr::new(0x103f)), "same 64B line");
        assert!(!c.access(1, PhysAddr::new(0x1040)), "next line");
    }

    #[test]
    fn lru_eviction() {
        let mut c = Cache::new(1, 2); // one set, two ways
        let a = PhysAddr::new(0);
        let b = PhysAddr::new(64);
        let d = PhysAddr::new(128);
        c.access(1, a);
        c.access(1, b);
        c.access(1, a); // refresh a; b becomes LRU
        c.access(1, d); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn flush_all_clears_everything() {
        let mut c = Cache::default_l1();
        for i in 0..100u64 {
            c.access(1, PhysAddr::new(i * 64));
        }
        let n = c.flush_all();
        assert!(n > 0);
        assert_eq!(c.resident_lines(), 0);
        assert!(!c.probe(PhysAddr::new(0)));
    }

    #[test]
    fn selective_flush_only_hits_target_domain() {
        let mut c = Cache::default_l1();
        c.access(1, PhysAddr::new(0));
        c.access(2, PhysAddr::new(4096));
        let n = c.flush_domain(1);
        assert_eq!(n, 1);
        assert!(!c.probe(PhysAddr::new(0)));
        assert!(c.probe(PhysAddr::new(4096)));
    }

    #[test]
    fn prime_probe_side_channel_exists_without_flush() {
        // The attack the flush policy defends against must exist in the
        // model: attacker primes, victim evicts some attacker lines,
        // attacker probes and sees which sets the victim touched.
        let mut c = Cache::new(4, 1); // tiny direct-mapped cache
                                      // Attacker (domain 1) primes all four sets.
        for i in 0..4u64 {
            c.access(1, PhysAddr::new(i * 64));
        }
        // Victim (domain 2) touches set 2 only.
        c.access(2, PhysAddr::new(2 * 64 + 1024)); // maps to set 2, different tag
                                                   // Attacker probes: set 2 must now miss.
        assert!(c.probe(PhysAddr::new(0)));
        assert!(c.probe(PhysAddr::new(64)));
        assert!(
            !c.probe(PhysAddr::new(2 * 64)),
            "victim evicted the primed line"
        );
        assert!(c.probe(PhysAddr::new(3 * 64)));
    }

    #[test]
    fn tlb_hit_miss_and_flush() {
        let mut t = Tlb::new();
        assert_eq!(t.lookup(1, 0x10, 1), None);
        t.insert(1, 0x10, 0x99, 1);
        assert_eq!(t.lookup(1, 0x10, 1), Some(0x99));
        assert_eq!(t.lookup(2, 0x10, 1), None, "translations are per-domain");
        t.insert(2, 0x20, 0x77, 1);
        assert_eq!(t.flush_domain(1), 1);
        assert_eq!(t.lookup(1, 0x10, 1), None);
        assert_eq!(t.lookup(2, 0x20, 1), Some(0x77));
        assert_eq!(t.flush_all(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn tlb_entries_carry_permissions() {
        // A read-formed entry must not authorize a write — the flaw the
        // backend-equivalence test caught in an earlier permission-less
        // TLB model.
        let mut t = Tlb::new();
        t.insert(1, 0x10, 0x99, 0b001); // read-verified only
        assert_eq!(t.lookup(1, 0x10, 0b001), Some(0x99), "read hits");
        assert_eq!(t.lookup(1, 0x10, 0b010), None, "write misses -> re-walk");
        // A later write-walk upgrades the entry.
        t.insert(1, 0x10, 0x99, 0b010);
        assert_eq!(t.lookup(1, 0x10, 0b010), Some(0x99));
        assert_eq!(t.lookup(1, 0x10, 0b011), Some(0x99), "accumulated perms");
    }
}
