//! Multi-key memory encryption (MKTME/SEV-class), for physical-attack
//! resistance (§4.2: "building physical attack resistance with multi-key
//! memory encryption technologies").
//!
//! The model: the memory controller holds a key table; every physical
//! page carries a key id. CPU/device accesses go *through* the controller
//! ([`MemCrypt::read`] / [`MemCrypt::write`]), which transparently
//! decrypts/encrypts with the page's key — software above never sees
//! ciphertext. A *physical* attacker (cold boot, DRAM interposer) reads
//! raw [`crate::mem::PhysMem`] bytes and sees ciphertext for every page
//! tagged with a non-zero key.
//!
//! Retagging a page ([`MemCrypt::retag`]) re-encrypts its contents under
//! the new key, preserving data across ownership changes — the TDX
//! page-migration behaviour. Key id 0 means plaintext.
//!
//! **Scope note:** CPU accesses (vCPU, hart) go through this controller;
//! plain I/O-MMU device DMA does not, matching pre-TDX-IO hardware where
//! device DMA to encrypted pages reads ciphertext. Encrypted domains in
//! this reproduction therefore do not share device windows (the RDMA
//! path in `libtyche::rdma` is the exception: it models a trusted
//! device path and routes through the controller explicitly).
//!
//! The cipher is a per-location ChaCha20 keystream XOR (key = page key,
//! nonce = page number, counter = line offset): deterministic per
//! location like AES-XTS, so reads after writes round-trip without
//! stored IVs.

use crate::addr::{PhysAddr, PAGE_SIZE};
use crate::mem::{MemError, PhysMem};
use std::collections::HashMap;
use tyche_crypto::chacha;

/// The plaintext key id.
pub const KEYID_PLAIN: u64 = 0;

/// The memory-encryption controller.
pub struct MemCrypt {
    keys: HashMap<u64, [u8; 32]>,
    /// Physical page base → key id (absent = plaintext).
    page_key: HashMap<u64, u64>,
    next_keyid: u64,
    rng: tyche_crypto::ChaChaRng,
}

impl MemCrypt {
    /// Creates a controller with no programmed keys (everything
    /// plaintext), seeded deterministically for reproducible tests.
    pub fn new_with_seed(seed: u64) -> Self {
        MemCrypt {
            keys: HashMap::new(),
            page_key: HashMap::new(),
            next_keyid: 1,
            rng: tyche_crypto::ChaChaRng::from_seed(seed ^ 0x6d6b746d65),
        }
    }

    /// Allocates a fresh key; returns its id.
    pub fn new_key(&mut self) -> u64 {
        let id = self.next_keyid;
        self.next_keyid += 1;
        self.keys.insert(id, self.rng.next_bytes32());
        id
    }

    /// The key id currently tagging `page` (page-aligned base).
    pub fn key_of(&self, page: PhysAddr) -> u64 {
        *self
            .page_key
            .get(&page.page_base().as_u64())
            .unwrap_or(&KEYID_PLAIN)
    }

    /// Keystream bytes for the page under `keyid`, covering the whole
    /// page (zeroes for the plaintext key).
    fn keystream(&self, keyid: u64, page: u64) -> Vec<u8> {
        let mut ks = vec![0u8; PAGE_SIZE as usize];
        if keyid == KEYID_PLAIN {
            return ks;
        }
        let key = self.keys.get(&keyid).expect("programmed key");
        let mut nonce = [0u8; 12];
        nonce[..8].copy_from_slice(&page.to_le_bytes());
        for (i, chunk) in ks.chunks_mut(64).enumerate() {
            let block = chacha::block(key, i as u32, &nonce);
            chunk.copy_from_slice(&block[..chunk.len()]);
        }
        ks
    }

    /// Retags `page` to `keyid`, re-encrypting its contents so data
    /// survives the ownership change.
    ///
    /// # Panics
    ///
    /// Panics on an unknown key id or unaligned page — monitor bugs.
    pub fn retag(&mut self, mem: &mut PhysMem, page: PhysAddr, keyid: u64) -> Result<(), MemError> {
        assert!(page.is_page_aligned(), "retag requires a page base");
        assert!(
            keyid == KEYID_PLAIN || self.keys.contains_key(&keyid),
            "retag to unprogrammed key {keyid}"
        );
        let old = self.key_of(page);
        if old == keyid {
            return Ok(());
        }
        let pnum = page.as_u64() / PAGE_SIZE;
        let old_ks = self.keystream(old, pnum);
        let new_ks = self.keystream(keyid, pnum);
        let mut buf = vec![0u8; PAGE_SIZE as usize];
        mem.read(page, &mut buf)?;
        for i in 0..buf.len() {
            buf[i] ^= old_ks[i] ^ new_ks[i];
        }
        mem.write(page, &buf)?;
        if keyid == KEYID_PLAIN {
            self.page_key.remove(&page.as_u64());
        } else {
            self.page_key.insert(page.as_u64(), keyid);
        }
        Ok(())
    }

    /// Controller read: what the CPU sees (decrypted).
    pub fn read(&self, mem: &PhysMem, addr: PhysAddr, out: &mut [u8]) -> Result<(), MemError> {
        mem.read(addr, out)?;
        self.apply_keystream(addr, out);
        Ok(())
    }

    /// Controller write: encrypts on the way to DRAM.
    pub fn write(&self, mem: &mut PhysMem, addr: PhysAddr, data: &[u8]) -> Result<(), MemError> {
        let mut buf = data.to_vec();
        self.apply_keystream(addr, &mut buf);
        mem.write(addr, &buf)
    }

    /// XORs the per-page keystream over `buf` starting at `addr`
    /// (page-split aware; plaintext pages are untouched).
    fn apply_keystream(&self, addr: PhysAddr, buf: &mut [u8]) {
        let mut off = 0usize;
        while off < buf.len() {
            let cur = PhysAddr::new(addr.as_u64() + off as u64);
            let page = cur.page_base();
            let in_page = ((PAGE_SIZE - cur.page_offset()) as usize).min(buf.len() - off);
            let keyid = self.key_of(page);
            if keyid != KEYID_PLAIN {
                let ks = self.keystream(keyid, page.as_u64() / PAGE_SIZE);
                let start = cur.page_offset() as usize;
                for i in 0..in_page {
                    buf[off + i] ^= ks[start + i];
                }
            }
            off += in_page;
        }
    }

    /// Sets `page`'s tag *without* transforming contents. Only valid when
    /// the contents were just destroyed anyway (the zero-on-revocation
    /// path): retagging a scrubbed page must not "decrypt" the zeros into
    /// garbage.
    ///
    /// # Panics
    ///
    /// Panics on an unknown key id or unaligned page.
    pub fn force_tag(&mut self, page: PhysAddr, keyid: u64) {
        assert!(page.is_page_aligned(), "force_tag requires a page base");
        assert!(
            keyid == KEYID_PLAIN || self.keys.contains_key(&keyid),
            "force_tag to unprogrammed key {keyid}"
        );
        if keyid == KEYID_PLAIN {
            self.page_key.remove(&page.as_u64());
        } else {
            self.page_key.insert(page.as_u64(), keyid);
        }
    }

    /// Number of pages currently tagged with non-plaintext keys.
    pub fn protected_pages(&self) -> usize {
        self.page_key.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PhysMem, MemCrypt) {
        (PhysMem::new(64 * PAGE_SIZE), MemCrypt::new_with_seed(7))
    }

    #[test]
    fn plaintext_by_default() {
        let (mut mem, mc) = setup();
        mc.write(&mut mem, PhysAddr::new(0x1000), b"clear").unwrap();
        let mut raw = [0u8; 5];
        mem.read(PhysAddr::new(0x1000), &mut raw).unwrap();
        assert_eq!(&raw, b"clear", "keyid 0 = no encryption");
    }

    #[test]
    fn controller_roundtrip_physical_ciphertext() {
        let (mut mem, mut mc) = setup();
        let k = mc.new_key();
        let page = PhysAddr::new(0x2000);
        mc.retag(&mut mem, page, k).unwrap();
        mc.write(&mut mem, PhysAddr::new(0x2010), b"guest secret")
            .unwrap();
        // Through the controller: plaintext.
        let mut through = [0u8; 12];
        mc.read(&mem, PhysAddr::new(0x2010), &mut through).unwrap();
        assert_eq!(&through, b"guest secret");
        // Cold-boot view: ciphertext.
        let mut raw = [0u8; 12];
        mem.read(PhysAddr::new(0x2010), &mut raw).unwrap();
        assert_ne!(&raw, b"guest secret");
        assert_eq!(mc.protected_pages(), 1);
    }

    #[test]
    fn retag_preserves_contents() {
        let (mut mem, mut mc) = setup();
        let page = PhysAddr::new(0x3000);
        mc.write(&mut mem, page, b"survives retags").unwrap();
        let k1 = mc.new_key();
        mc.retag(&mut mem, page, k1).unwrap();
        let k2 = mc.new_key();
        mc.retag(&mut mem, page, k2).unwrap();
        mc.retag(&mut mem, page, KEYID_PLAIN).unwrap();
        let mut raw = [0u8; 15];
        mem.read(page, &mut raw).unwrap();
        assert_eq!(
            &raw, b"survives retags",
            "plain -> k1 -> k2 -> plain round trip"
        );
    }

    #[test]
    fn keys_are_independent() {
        let (mut mem, mut mc) = setup();
        let k1 = mc.new_key();
        let k2 = mc.new_key();
        mc.retag(&mut mem, PhysAddr::new(0x4000), k1).unwrap();
        mc.retag(&mut mem, PhysAddr::new(0x5000), k2).unwrap();
        mc.write(&mut mem, PhysAddr::new(0x4000), b"same bytes")
            .unwrap();
        mc.write(&mut mem, PhysAddr::new(0x5000), b"same bytes")
            .unwrap();
        let mut c1 = [0u8; 10];
        let mut c2 = [0u8; 10];
        mem.read(PhysAddr::new(0x4000), &mut c1).unwrap();
        mem.read(PhysAddr::new(0x5000), &mut c2).unwrap();
        assert_ne!(c1, c2, "different keys produce different ciphertexts");
    }

    #[test]
    fn cross_page_access_spans_keys() {
        let (mut mem, mut mc) = setup();
        let k = mc.new_key();
        mc.retag(&mut mem, PhysAddr::new(0x1000), k).unwrap();
        // Page 0x2000 stays plaintext; write straddles the boundary.
        let data = vec![0xabu8; 64];
        mc.write(&mut mem, PhysAddr::new(0x1fe0), &data).unwrap();
        let mut through = vec![0u8; 64];
        mc.read(&mem, PhysAddr::new(0x1fe0), &mut through).unwrap();
        assert_eq!(through, data);
        // First half physically scrambled, second half plaintext.
        let mut raw = vec![0u8; 64];
        mem.read(PhysAddr::new(0x1fe0), &mut raw).unwrap();
        assert_ne!(&raw[..32], &data[..32]);
        assert_eq!(&raw[32..], &data[32..]);
    }

    #[test]
    #[should_panic(expected = "unprogrammed key")]
    fn retag_to_unknown_key_panics() {
        let (mut mem, mut mc) = setup();
        mc.retag(&mut mem, PhysAddr::new(0x1000), 99).unwrap();
    }

    #[test]
    fn deterministic_per_location() {
        // Same data at the same location encrypts identically (XTS-like),
        // but differently at a different page.
        let (mut mem, mut mc) = setup();
        let k = mc.new_key();
        mc.retag(&mut mem, PhysAddr::new(0x1000), k).unwrap();
        mc.retag(&mut mem, PhysAddr::new(0x2000), k).unwrap();
        mc.write(&mut mem, PhysAddr::new(0x1000), b"dup").unwrap();
        mc.write(&mut mem, PhysAddr::new(0x2000), b"dup").unwrap();
        let mut a = [0u8; 3];
        let mut b = [0u8; 3];
        mem.read(PhysAddr::new(0x1000), &mut a).unwrap();
        mem.read(PhysAddr::new(0x2000), &mut b).unwrap();
        assert_ne!(a, b, "location-tweaked keystream");
    }
}
