//! An I/O-MMU model (VT-d-style DMA remapping).
//!
//! §3.3 of the paper: devices "can be partitioned using SR-IOV and isolated
//! using I/O-MMUs". The model keeps a context table mapping a device id
//! (source-id, i.e. PCI BDF) to a second-level translation root — the same
//! EPT page-table format the CPU side uses — and checks every DMA through
//! it. A device with no context entry has no bus access at all.

use crate::addr::{GuestPhysAddr, PhysAddr};
use crate::mem::PhysMem;
use crate::x86::ept::{Access, Ept, EptViolation};
use std::collections::HashMap;

/// A PCI-like device identifier (bus/device/function flattened).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u16);

impl core::fmt::Debug for DeviceId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "DeviceId({:#06x})", self.0)
    }
}

/// A blocked DMA transaction, reported to the monitor as a fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DmaFault {
    /// The device that issued the transaction.
    pub device: DeviceId,
    /// The faulting device-visible address.
    pub addr: GuestPhysAddr,
    /// Whether the transaction was a write.
    pub write: bool,
}

/// The I/O-MMU: context table plus fault log.
#[derive(Default)]
pub struct Iommu {
    /// Device → translation root (EPT-format table).
    contexts: HashMap<DeviceId, PhysAddr>,
    /// Faults recorded for monitor inspection.
    faults: Vec<DmaFault>,
}

impl Iommu {
    /// Creates an I/O-MMU with an empty context table: all DMA blocked.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or replaces) the translation root for `device`.
    pub fn attach(&mut self, device: DeviceId, root: PhysAddr) {
        self.contexts.insert(device, root);
    }

    /// Removes `device`'s context entry, blocking all its DMA.
    pub fn detach(&mut self, device: DeviceId) {
        self.contexts.remove(&device);
    }

    /// The translation root currently assigned to `device`.
    pub fn context_of(&self, device: DeviceId) -> Option<PhysAddr> {
        self.contexts.get(&device).copied()
    }

    /// Translates a device address for a DMA transaction.
    fn translate(
        &mut self,
        mem: &PhysMem,
        device: DeviceId,
        addr: GuestPhysAddr,
        write: bool,
    ) -> Result<PhysAddr, DmaFault> {
        let root = match self.contexts.get(&device) {
            Some(r) => *r,
            None => {
                let fault = DmaFault {
                    device,
                    addr,
                    write,
                };
                self.faults.push(fault);
                return Err(fault);
            }
        };
        let access = if write { Access::Write } else { Access::Read };
        match Ept::from_root(root).translate(mem, addr, access) {
            Ok((hpa, _)) => Ok(hpa),
            Err(EptViolation { .. }) => {
                let fault = DmaFault {
                    device,
                    addr,
                    write,
                };
                self.faults.push(fault);
                Err(fault)
            }
        }
    }

    /// Performs a DMA read on behalf of `device`.
    pub fn dma_read(
        &mut self,
        mem: &PhysMem,
        device: DeviceId,
        addr: GuestPhysAddr,
        out: &mut [u8],
    ) -> Result<(), DmaFault> {
        let mut off = 0u64;
        while off < out.len() as u64 {
            let cur = GuestPhysAddr::new(addr.as_u64() + off);
            let in_page = (crate::addr::PAGE_SIZE - cur.page_offset()).min(out.len() as u64 - off);
            let hpa = self.translate(mem, device, cur, false)?;
            mem.read(hpa, &mut out[off as usize..(off + in_page) as usize])
                .map_err(|_| DmaFault {
                    device,
                    addr: cur,
                    write: false,
                })?;
            off += in_page;
        }
        Ok(())
    }

    /// Performs a DMA write on behalf of `device`.
    pub fn dma_write(
        &mut self,
        mem: &mut PhysMem,
        device: DeviceId,
        addr: GuestPhysAddr,
        data: &[u8],
    ) -> Result<(), DmaFault> {
        let mut off = 0u64;
        while off < data.len() as u64 {
            let cur = GuestPhysAddr::new(addr.as_u64() + off);
            let in_page = (crate::addr::PAGE_SIZE - cur.page_offset()).min(data.len() as u64 - off);
            let hpa = self.translate(mem, device, cur, true)?;
            mem.write(hpa, &data[off as usize..(off + in_page) as usize])
                .map_err(|_| DmaFault {
                    device,
                    addr: cur,
                    write: true,
                })?;
            off += in_page;
        }
        Ok(())
    }

    /// Drains the recorded fault log.
    pub fn take_faults(&mut self) -> Vec<DmaFault> {
        std::mem::take(&mut self.faults)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{PhysRange, PAGE_SIZE};
    use crate::mem::FrameAllocator;
    use crate::x86::ept::EptFlags;

    fn setup() -> (PhysMem, FrameAllocator, Iommu) {
        (
            PhysMem::new(256 * PAGE_SIZE),
            FrameAllocator::new(PhysRange::from_len(PhysAddr::new(0x40000), 128 * PAGE_SIZE)),
            Iommu::new(),
        )
    }

    #[test]
    fn unattached_device_is_blocked() {
        let (mut mem, _, mut iommu) = setup();
        let dev = DeviceId(0x0100);
        let mut buf = [0u8; 4];
        assert!(iommu
            .dma_read(&mem, dev, GuestPhysAddr::new(0x1000), &mut buf)
            .is_err());
        assert!(iommu
            .dma_write(&mut mem, dev, GuestPhysAddr::new(0x1000), &[1])
            .is_err());
        assert_eq!(iommu.take_faults().len(), 2);
    }

    #[test]
    fn attached_device_translates() {
        let (mut mem, mut alloc, mut iommu) = setup();
        let ept = Ept::new(&mut mem, &mut alloc).unwrap();
        ept.map(
            &mut mem,
            &mut alloc,
            GuestPhysAddr::new(0x1000),
            PhysAddr::new(0x9000),
            EptFlags::RW,
        )
        .unwrap();
        let dev = DeviceId(0x0200);
        iommu.attach(dev, ept.root());
        iommu
            .dma_write(&mut mem, dev, GuestPhysAddr::new(0x1004), b"dma!")
            .unwrap();
        assert_eq!(mem.read_u8(PhysAddr::new(0x9004)).unwrap(), b'd');
        let mut out = [0u8; 4];
        iommu
            .dma_read(&mem, dev, GuestPhysAddr::new(0x1004), &mut out)
            .unwrap();
        assert_eq!(&out, b"dma!");
    }

    #[test]
    fn read_only_window_blocks_writes() {
        let (mut mem, mut alloc, mut iommu) = setup();
        let ept = Ept::new(&mut mem, &mut alloc).unwrap();
        ept.map(
            &mut mem,
            &mut alloc,
            GuestPhysAddr::new(0x1000),
            PhysAddr::new(0x9000),
            EptFlags::RO,
        )
        .unwrap();
        let dev = DeviceId(0x0300);
        iommu.attach(dev, ept.root());
        let mut out = [0u8; 1];
        assert!(iommu
            .dma_read(&mem, dev, GuestPhysAddr::new(0x1000), &mut out)
            .is_ok());
        let fault = iommu
            .dma_write(&mut mem, dev, GuestPhysAddr::new(0x1000), &[0xff])
            .unwrap_err();
        assert!(fault.write);
        assert_eq!(fault.device, dev);
    }

    #[test]
    fn detach_revokes_access() {
        let (mut mem, mut alloc, mut iommu) = setup();
        let ept = Ept::new(&mut mem, &mut alloc).unwrap();
        ept.map(
            &mut mem,
            &mut alloc,
            GuestPhysAddr::new(0x1000),
            PhysAddr::new(0x9000),
            EptFlags::RW,
        )
        .unwrap();
        let dev = DeviceId(0x0400);
        iommu.attach(dev, ept.root());
        assert!(iommu
            .dma_write(&mut mem, dev, GuestPhysAddr::new(0x1000), &[1])
            .is_ok());
        iommu.detach(dev);
        assert!(iommu
            .dma_write(&mut mem, dev, GuestPhysAddr::new(0x1000), &[1])
            .is_err());
    }

    #[test]
    fn devices_have_independent_views() {
        let (mut mem, mut alloc, mut iommu) = setup();
        let ept_a = Ept::new(&mut mem, &mut alloc).unwrap();
        let ept_b = Ept::new(&mut mem, &mut alloc).unwrap();
        ept_a
            .map(
                &mut mem,
                &mut alloc,
                GuestPhysAddr::new(0),
                PhysAddr::new(0x9000),
                EptFlags::RW,
            )
            .unwrap();
        ept_b
            .map(
                &mut mem,
                &mut alloc,
                GuestPhysAddr::new(0),
                PhysAddr::new(0xa000),
                EptFlags::RW,
            )
            .unwrap();
        let da = DeviceId(1);
        let db = DeviceId(2);
        iommu.attach(da, ept_a.root());
        iommu.attach(db, ept_b.root());
        iommu
            .dma_write(&mut mem, da, GuestPhysAddr::new(0), &[0xaa])
            .unwrap();
        iommu
            .dma_write(&mut mem, db, GuestPhysAddr::new(0), &[0xbb])
            .unwrap();
        assert_eq!(mem.read_u8(PhysAddr::new(0x9000)).unwrap(), 0xaa);
        assert_eq!(mem.read_u8(PhysAddr::new(0xa000)).unwrap(), 0xbb);
    }

    #[test]
    fn cross_page_dma() {
        let (mut mem, mut alloc, mut iommu) = setup();
        let ept = Ept::new(&mut mem, &mut alloc).unwrap();
        ept.map_range(
            &mut mem,
            &mut alloc,
            GuestPhysAddr::new(0x1000),
            PhysAddr::new(0x8000),
            2 * PAGE_SIZE,
            EptFlags::RW,
        )
        .unwrap();
        let dev = DeviceId(9);
        iommu.attach(dev, ept.root());
        let data = vec![0x5a; 6000];
        iommu
            .dma_write(&mut mem, dev, GuestPhysAddr::new(0x1100), &data)
            .unwrap();
        let mut out = vec![0u8; 6000];
        iommu
            .dma_read(&mem, dev, GuestPhysAddr::new(0x1100), &mut out)
            .unwrap();
        assert_eq!(data, out);
    }
}
