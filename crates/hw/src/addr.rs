//! Physical and guest-physical addressing.
//!
//! The monitor reasons exclusively about *physical* names (§3.2 of the
//! paper: "policies operate on physical name spaces"), so the address types
//! here are deliberately minimal: a host-physical address, a guest-physical
//! address, and page/alignment helpers.

/// The architectural page size used throughout the simulation (4 KiB).
pub const PAGE_SIZE: u64 = 4096;

/// A host-physical address in the simulated machine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

impl PhysAddr {
    /// Constructs a physical address.
    pub const fn new(addr: u64) -> Self {
        PhysAddr(addr)
    }

    /// Returns the raw address value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Rounds down to the containing page boundary.
    pub const fn page_base(self) -> PhysAddr {
        PhysAddr(self.0 & !(PAGE_SIZE - 1))
    }

    /// Byte offset within the containing page.
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// True when the address is page-aligned.
    pub const fn is_page_aligned(self) -> bool {
        self.0.is_multiple_of(PAGE_SIZE)
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, delta: u64) -> Option<PhysAddr> {
        self.0.checked_add(delta).map(PhysAddr)
    }
}

impl core::fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "PhysAddr({:#x})", self.0)
    }
}

impl core::fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A guest-physical address — what a domain believes is physical memory,
/// translated by EPT (x86) or checked by PMP (RISC-V, identity-mapped).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct GuestPhysAddr(pub u64);

impl GuestPhysAddr {
    /// Constructs a guest-physical address.
    pub const fn new(addr: u64) -> Self {
        GuestPhysAddr(addr)
    }

    /// Returns the raw address value.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Rounds down to the containing page boundary.
    pub const fn page_base(self) -> GuestPhysAddr {
        GuestPhysAddr(self.0 & !(PAGE_SIZE - 1))
    }

    /// Byte offset within the containing page.
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }

    /// True when the address is page-aligned.
    pub const fn is_page_aligned(self) -> bool {
        self.0.is_multiple_of(PAGE_SIZE)
    }
}

impl core::fmt::Debug for GuestPhysAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "GuestPhysAddr({:#x})", self.0)
    }
}

impl core::fmt::Display for GuestPhysAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Aligns `v` up to the next multiple of `align` (a power of two).
///
/// # Panics
///
/// Panics if `align` is not a power of two or the result overflows.
pub fn align_up(v: u64, align: u64) -> u64 {
    assert!(align.is_power_of_two(), "alignment must be a power of two");
    v.checked_add(align - 1).expect("align_up overflow") & !(align - 1)
}

/// Aligns `v` down to a multiple of `align` (a power of two).
///
/// # Panics
///
/// Panics if `align` is not a power of two.
pub fn align_down(v: u64, align: u64) -> u64 {
    assert!(align.is_power_of_two(), "alignment must be a power of two");
    v & !(align - 1)
}

/// A half-open physical address range `[start, end)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhysRange {
    /// Inclusive start.
    pub start: PhysAddr,
    /// Exclusive end.
    pub end: PhysAddr,
}

impl PhysRange {
    /// Constructs a range; `start` must not exceed `end`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: PhysAddr, end: PhysAddr) -> Self {
        assert!(start <= end, "inverted range {start}..{end}");
        PhysRange { start, end }
    }

    /// Constructs a range from a start and a byte length.
    pub fn from_len(start: PhysAddr, len: u64) -> Self {
        let end = start.checked_add(len).expect("range end overflow");
        PhysRange { start, end }
    }

    /// Overflow-checked [`from_len`](Self::from_len): `None` when
    /// `start + len` would wrap. Use this for untrusted lengths.
    pub fn checked_from_len(start: PhysAddr, len: u64) -> Option<Self> {
        let end = start.checked_add(len)?;
        Some(PhysRange { start, end })
    }

    /// Range length in bytes.
    pub fn len(&self) -> u64 {
        self.end.0 - self.start.0
    }

    /// True when the range is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// True when `addr` falls inside the range.
    pub fn contains(&self, addr: PhysAddr) -> bool {
        self.start <= addr && addr < self.end
    }

    /// True when `other` is fully inside this range.
    pub fn contains_range(&self, other: &PhysRange) -> bool {
        other.is_empty() || (self.start <= other.start && other.end <= self.end)
    }

    /// True when the ranges share at least one byte.
    pub fn overlaps(&self, other: &PhysRange) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Iterates the page-aligned base addresses covered by the range.
    ///
    /// The range must be page-aligned at both ends.
    ///
    /// # Panics
    ///
    /// Panics if either bound is not page-aligned.
    pub fn pages(&self) -> impl Iterator<Item = PhysAddr> + '_ {
        assert!(
            self.start.is_page_aligned() && self.end.is_page_aligned(),
            "unaligned page range"
        );
        (self.start.0..self.end.0)
            .step_by(PAGE_SIZE as usize)
            .map(PhysAddr)
    }
}

impl core::fmt::Debug for PhysRange {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{:#x}, {:#x})", self.start.0, self.end.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_math() {
        let a = PhysAddr::new(0x1234);
        assert_eq!(a.page_base(), PhysAddr::new(0x1000));
        assert_eq!(a.page_offset(), 0x234);
        assert!(!a.is_page_aligned());
        assert!(PhysAddr::new(0x2000).is_page_aligned());
    }

    #[test]
    fn align_helpers() {
        assert_eq!(align_up(0, 4096), 0);
        assert_eq!(align_up(1, 4096), 4096);
        assert_eq!(align_up(4096, 4096), 4096);
        assert_eq!(align_down(4097, 4096), 4096);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn align_rejects_non_pow2() {
        align_up(5, 3);
    }

    #[test]
    fn range_relations() {
        let r = PhysRange::from_len(PhysAddr::new(0x1000), 0x2000);
        assert_eq!(r.len(), 0x2000);
        assert!(r.contains(PhysAddr::new(0x1000)));
        assert!(r.contains(PhysAddr::new(0x2fff)));
        assert!(!r.contains(PhysAddr::new(0x3000)));
        let inner = PhysRange::from_len(PhysAddr::new(0x1800), 0x100);
        assert!(r.contains_range(&inner));
        assert!(r.overlaps(&inner));
        let disjoint = PhysRange::from_len(PhysAddr::new(0x3000), 0x1000);
        assert!(!r.overlaps(&disjoint));
        let touching = PhysRange::from_len(PhysAddr::new(0x3000), 0);
        assert!(touching.is_empty());
        assert!(r.contains_range(&touching));
    }

    #[test]
    fn range_pages_iteration() {
        let r = PhysRange::from_len(PhysAddr::new(0x1000), 0x3000);
        let pages: Vec<_> = r.pages().collect();
        assert_eq!(
            pages,
            vec![
                PhysAddr::new(0x1000),
                PhysAddr::new(0x2000),
                PhysAddr::new(0x3000)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_range_panics() {
        PhysRange::new(PhysAddr::new(0x2000), PhysAddr::new(0x1000));
    }

    #[test]
    #[should_panic(expected = "range end overflow")]
    fn from_len_overflow_panics_rather_than_wrapping() {
        PhysRange::from_len(PhysAddr::new(u64::MAX), 1);
    }

    #[test]
    fn checked_from_len_at_u64_max() {
        // End-of-range computation at the top of the address space: the
        // checked constructor refuses to wrap instead of producing an
        // inverted range.
        assert!(PhysRange::checked_from_len(PhysAddr::new(u64::MAX), 1).is_none());
        // The exclusive end makes a page butting against u64::MAX + 1
        // unrepresentable too — refused, not wrapped.
        assert!(PhysRange::checked_from_len(PhysAddr::new(u64::MAX - 4095), 4096).is_none());
        assert!(PhysRange::checked_from_len(PhysAddr::new(u64::MAX - 4096), 4096).is_some());
        let r = PhysRange::checked_from_len(PhysAddr::new(u64::MAX - 4096), 4096).unwrap();
        assert_eq!(r.len(), 4096);
        assert!(r.contains(PhysAddr::new(u64::MAX - 1)));
        assert!(!r.contains(PhysAddr::new(u64::MAX)));
        // Zero-length at the very top is representable and empty.
        let z = PhysRange::checked_from_len(PhysAddr::new(u64::MAX), 0).unwrap();
        assert!(z.is_empty());
    }

    #[test]
    fn checked_add_at_u64_max() {
        assert_eq!(PhysAddr::new(u64::MAX).checked_add(1), None);
        assert_eq!(
            PhysAddr::new(u64::MAX - 1).checked_add(1),
            Some(PhysAddr::new(u64::MAX))
        );
    }

    #[test]
    fn top_of_address_space_range_relations() {
        // Walk-termination shape: iteration bounds and overlap tests at
        // the last representable page must not wrap.
        let top_page = PhysRange::new(PhysAddr::new(u64::MAX - 0xFFF), PhysAddr::new(u64::MAX));
        assert_eq!(top_page.len(), 0xFFF);
        let below = PhysRange::new(PhysAddr::new(0), PhysAddr::new(0x1000));
        assert!(!top_page.overlaps(&below));
        assert!(top_page.overlaps(&top_page));
        assert!(top_page.contains_range(&top_page));
    }

    #[test]
    #[should_panic(expected = "align_up overflow")]
    fn align_up_overflow_panics_rather_than_wrapping() {
        align_up(u64::MAX, 4096);
    }
}
