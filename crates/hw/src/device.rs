//! DMA-capable devices: a GPU-like accelerator and a copy engine.
//!
//! Figure 2 of the paper isolates a GPU as an "I/O domain running on
//! devices with restricted access to main memory". These device models
//! issue *all* memory traffic through the [`crate::iommu::Iommu`], so the
//! monitor's device policy (which translation root a device id is attached
//! to) is the only thing deciding what they can reach.

use crate::addr::GuestPhysAddr;
use crate::iommu::{DeviceId, DmaFault, Iommu};
use crate::mem::PhysMem;

/// A compute-kernel descriptor handed to the GPU doorbell.
#[derive(Clone, Copy, Debug)]
pub struct KernelDesc {
    /// Device-visible address of the input buffer.
    pub input: GuestPhysAddr,
    /// Device-visible address of the output buffer.
    pub output: GuestPhysAddr,
    /// Buffer length in bytes.
    pub len: u64,
}

/// A GPU-like accelerator.
///
/// Its "kernel" is a fixed byte-wise transform (rotate-and-xor) — enough to
/// verify end-to-end that data flowed through the device and nowhere else.
pub struct Gpu {
    /// The device's bus identity, checked by the I/O-MMU.
    pub id: DeviceId,
    /// Kernels completed (doorbell count).
    pub completed: u64,
}

impl Gpu {
    /// Creates a GPU with bus id `id`.
    pub fn new(id: DeviceId) -> Self {
        Gpu { id, completed: 0 }
    }

    /// The GPU's byte transform.
    pub fn transform(b: u8) -> u8 {
        b.rotate_left(3) ^ 0x5a
    }

    /// Rings the doorbell: reads `desc.len` bytes from `desc.input`,
    /// applies the transform, writes to `desc.output`. Every byte moves by
    /// DMA through the I/O-MMU.
    pub fn run_kernel(
        &mut self,
        iommu: &mut Iommu,
        mem: &mut PhysMem,
        desc: KernelDesc,
    ) -> Result<(), DmaFault> {
        let mut buf = vec![0u8; desc.len as usize];
        iommu.dma_read(mem, self.id, desc.input, &mut buf)?;
        for b in buf.iter_mut() {
            *b = Self::transform(*b);
        }
        iommu.dma_write(mem, self.id, desc.output, &buf)?;
        self.completed += 1;
        Ok(())
    }
}

/// A simple DMA copy engine (models an NIC/storage controller's data
/// mover). Used by tests that need a second, differently-privileged device.
pub struct CopyEngine {
    /// The device's bus identity.
    pub id: DeviceId,
}

impl CopyEngine {
    /// Creates a copy engine with bus id `id`.
    pub fn new(id: DeviceId) -> Self {
        CopyEngine { id }
    }

    /// Copies `len` bytes from `src` to `dst` (device-visible addresses).
    pub fn copy(
        &self,
        iommu: &mut Iommu,
        mem: &mut PhysMem,
        src: GuestPhysAddr,
        dst: GuestPhysAddr,
        len: u64,
    ) -> Result<(), DmaFault> {
        let mut buf = vec![0u8; len as usize];
        iommu.dma_read(mem, self.id, src, &mut buf)?;
        iommu.dma_write(mem, self.id, dst, &buf)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{PhysAddr, PhysRange, PAGE_SIZE};
    use crate::mem::FrameAllocator;
    use crate::x86::ept::{Ept, EptFlags};

    fn setup() -> (PhysMem, FrameAllocator, Iommu) {
        (
            PhysMem::new(256 * PAGE_SIZE),
            FrameAllocator::new(PhysRange::from_len(PhysAddr::new(0x40000), 128 * PAGE_SIZE)),
            Iommu::new(),
        )
    }

    #[test]
    fn gpu_kernel_transforms_through_iommu() {
        let (mut mem, mut alloc, mut iommu) = setup();
        let ept = Ept::new(&mut mem, &mut alloc).unwrap();
        // Device sees input at 0x0, output at 0x1000.
        ept.map(
            &mut mem,
            &mut alloc,
            GuestPhysAddr::new(0),
            PhysAddr::new(0x10000),
            EptFlags::RO,
        )
        .unwrap();
        ept.map(
            &mut mem,
            &mut alloc,
            GuestPhysAddr::new(0x1000),
            PhysAddr::new(0x11000),
            EptFlags::RW,
        )
        .unwrap();
        let mut gpu = Gpu::new(DeviceId(7));
        iommu.attach(gpu.id, ept.root());
        mem.write(PhysAddr::new(0x10000), b"abcd").unwrap();
        gpu.run_kernel(
            &mut iommu,
            &mut mem,
            KernelDesc {
                input: GuestPhysAddr::new(0),
                output: GuestPhysAddr::new(0x1000),
                len: 4,
            },
        )
        .unwrap();
        let mut out = [0u8; 4];
        mem.read(PhysAddr::new(0x11000), &mut out).unwrap();
        let expect: Vec<u8> = b"abcd".iter().map(|&b| Gpu::transform(b)).collect();
        assert_eq!(&out[..], &expect[..]);
        assert_eq!(gpu.completed, 1);
    }

    #[test]
    fn gpu_cannot_escape_its_window() {
        let (mut mem, mut alloc, mut iommu) = setup();
        let ept = Ept::new(&mut mem, &mut alloc).unwrap();
        ept.map(
            &mut mem,
            &mut alloc,
            GuestPhysAddr::new(0),
            PhysAddr::new(0x10000),
            EptFlags::RW,
        )
        .unwrap();
        let mut gpu = Gpu::new(DeviceId(8));
        iommu.attach(gpu.id, ept.root());
        // Output outside the mapped window -> DMA fault, kernel aborted.
        let err = gpu
            .run_kernel(
                &mut iommu,
                &mut mem,
                KernelDesc {
                    input: GuestPhysAddr::new(0),
                    output: GuestPhysAddr::new(0x9000_0000),
                    len: 16,
                },
            )
            .unwrap_err();
        assert!(err.write);
        assert_eq!(gpu.completed, 0);
    }

    #[test]
    fn copy_engine_moves_bytes() {
        let (mut mem, mut alloc, mut iommu) = setup();
        let ept = Ept::new(&mut mem, &mut alloc).unwrap();
        ept.map_range(
            &mut mem,
            &mut alloc,
            GuestPhysAddr::new(0),
            PhysAddr::new(0x20000),
            2 * PAGE_SIZE,
            EptFlags::RW,
        )
        .unwrap();
        let ce = CopyEngine::new(DeviceId(9));
        iommu.attach(ce.id, ept.root());
        mem.write(PhysAddr::new(0x20000), b"payload").unwrap();
        ce.copy(
            &mut iommu,
            &mut mem,
            GuestPhysAddr::new(0),
            GuestPhysAddr::new(0x1000),
            7,
        )
        .unwrap();
        let mut out = [0u8; 7];
        mem.read(PhysAddr::new(0x21000), &mut out).unwrap();
        assert_eq!(&out, b"payload");
    }
}
