//! A TPM-like hardware root of trust and measured boot.
//!
//! §3.4 of the paper: "a hardware root of trust, such as an
//! industry-standard TPM, measures the machine's boot-process and provides
//! a signed remotely-verifiable attestation that the machine is under the
//! complete control of a specific monitor implementation." This module
//! models the pieces that protocol needs: a PCR bank with extend-only
//! semantics, quote generation over a selection of PCRs and a verifier
//! nonce, and an endorsement key whose verifying half a remote party holds.

use crate::addr::PhysRange;
use crate::faults::{FaultSite, Faults};
use crate::mem::{MemError, PhysMem};
use tyche_crypto::sign::{Signature, SigningKey, VerifyingKey};
use tyche_crypto::{hash_parts, ChaChaRng, Digest};

/// Number of platform configuration registers, as in TPM 2.0.
pub const PCR_COUNT: usize = 24;

/// Why a TPM operation failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TpmError {
    /// The quote engine failed (injected hardware fault).
    QuoteFailed,
    /// The DRBG refused to produce entropy (injected exhaustion).
    EntropyExhausted,
    /// A selected PCR index is out of range.
    BadPcr(usize),
}

impl core::fmt::Display for TpmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TpmError::QuoteFailed => f.write_str("TPM quote engine failure"),
            TpmError::EntropyExhausted => f.write_str("TPM DRBG entropy exhausted"),
            TpmError::BadPcr(i) => write!(f, "PCR index {i} out of range"),
        }
    }
}

impl std::error::Error for TpmError {}

/// PCR index conventionally used for the monitor binary measurement (the
/// TXT "measured launch environment" register).
pub const PCR_MONITOR: usize = 17;

/// PCR index used for the monitor's configuration (cost model, platform).
pub const PCR_CONFIG: usize = 18;

/// A quote: signed evidence of PCR contents at a point in time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Quote {
    /// Which PCRs were quoted, in index order.
    pub pcr_selection: Vec<usize>,
    /// The quoted PCR values, parallel to `pcr_selection`.
    pub pcr_values: Vec<Digest>,
    /// The verifier-supplied anti-replay nonce.
    pub nonce: [u8; 32],
    /// Signature over the canonical serialization of the above.
    pub signature: Signature,
}

impl Quote {
    /// Canonical byte serialization covered by the signature.
    fn message(pcr_selection: &[usize], pcr_values: &[Digest], nonce: &[u8; 32]) -> Vec<u8> {
        let mut msg = Vec::with_capacity(16 + pcr_selection.len() * 40 + 32);
        msg.extend_from_slice(b"tpm-quote-v1");
        msg.extend_from_slice(&(pcr_selection.len() as u32).to_le_bytes());
        for (idx, val) in pcr_selection.iter().zip(pcr_values.iter()) {
            msg.extend_from_slice(&(*idx as u32).to_le_bytes());
            msg.extend_from_slice(val.as_bytes());
        }
        msg.extend_from_slice(nonce);
        msg
    }

    /// Verifies the quote signature and freshness against `nonce`.
    pub fn verify(&self, key: &VerifyingKey, nonce: &[u8; 32]) -> bool {
        if &self.nonce != nonce || self.pcr_selection.len() != self.pcr_values.len() {
            return false;
        }
        let msg = Self::message(&self.pcr_selection, &self.pcr_values, &self.nonce);
        key.verify(&msg, &self.signature)
    }

    /// Returns the quoted value of `pcr`, if it was in the selection.
    pub fn pcr(&self, pcr: usize) -> Option<Digest> {
        self.pcr_selection
            .iter()
            .position(|&i| i == pcr)
            .map(|p| self.pcr_values[p])
    }
}

/// The TPM model.
pub struct Tpm {
    pcrs: [Digest; PCR_COUNT],
    /// Endorsement/attestation signing key (MAC-based; see DESIGN.md).
    ak: SigningKey,
    /// Deterministic entropy source for nonces and derived keys.
    rng: ChaChaRng,
    /// Event log: every extend recorded as `(pcr, description, digest)`.
    log: Vec<(usize, String, Digest)>,
    /// Fault injector; inert by default.
    faults: Faults,
}

impl Tpm {
    /// Creates a TPM whose endorsement seed derives from `seed`
    /// (deterministic so experiments are reproducible).
    pub fn new_with_seed(seed: u64) -> Self {
        let mut rng = ChaChaRng::from_seed(seed);
        let ek_seed = rng.next_bytes32();
        Tpm {
            pcrs: [Digest::ZERO; PCR_COUNT],
            ak: SigningKey::derive(&ek_seed, "tpm-attestation-key"),
            rng,
            log: Vec::new(),
            faults: Faults::new(),
        }
    }

    /// Attaches a shared fault injector (done once by `Machine::new`).
    pub fn set_faults(&mut self, faults: Faults) {
        self.faults = faults;
    }

    /// The verifying key a remote party uses to check quotes. Distributing
    /// this key models the TPM-vendor certificate chain.
    pub fn attestation_key(&self) -> VerifyingKey {
        self.ak.verifying_key()
    }

    /// Extends `pcr` with `measurement`: `PCR ← H(PCR || measurement)`.
    ///
    /// # Panics
    ///
    /// Panics if `pcr` is out of range.
    pub fn extend(&mut self, pcr: usize, description: &str, measurement: Digest) {
        assert!(pcr < PCR_COUNT, "PCR index {pcr} out of range");
        self.pcrs[pcr] = hash_parts(&[self.pcrs[pcr].as_bytes(), measurement.as_bytes()]);
        self.log.push((pcr, description.to_string(), measurement));
    }

    /// Reads the current value of `pcr`.
    ///
    /// # Panics
    ///
    /// Panics if `pcr` is out of range.
    pub fn read_pcr(&self, pcr: usize) -> Digest {
        assert!(pcr < PCR_COUNT, "PCR index {pcr} out of range");
        self.pcrs[pcr]
    }

    /// The extend event log (for auditing which measurements produced the
    /// PCR values).
    pub fn event_log(&self) -> &[(usize, String, Digest)] {
        &self.log
    }

    /// Produces a signed quote over `pcr_selection` with the verifier's
    /// `nonce`.
    ///
    /// Fails on an out-of-range PCR index or an injected quote-engine
    /// fault ([`FaultSite::TpmQuote`]) — both are checked errors the
    /// attestation path must surface, never panics.
    pub fn quote(&self, pcr_selection: &[usize], nonce: [u8; 32]) -> Result<Quote, TpmError> {
        if self.faults.fire(FaultSite::TpmQuote) {
            return Err(TpmError::QuoteFailed);
        }
        if let Some(&bad) = pcr_selection.iter().find(|&&i| i >= PCR_COUNT) {
            return Err(TpmError::BadPcr(bad));
        }
        let pcr_values: Vec<Digest> = pcr_selection.iter().map(|&i| self.read_pcr(i)).collect();
        let msg = Quote::message(pcr_selection, &pcr_values, &nonce);
        Ok(Quote {
            pcr_selection: pcr_selection.to_vec(),
            pcr_values,
            nonce,
            signature: self.ak.sign(&msg),
        })
    }

    /// Draws a fresh nonce (also usable by local verifiers in tests).
    ///
    /// Fails on injected DRBG entropy exhaustion
    /// ([`FaultSite::DrbgEntropy`]).
    pub fn fresh_nonce(&mut self) -> Result<[u8; 32], TpmError> {
        if self.faults.fire(FaultSite::DrbgEntropy) {
            return Err(TpmError::EntropyExhausted);
        }
        Ok(self.rng.next_bytes32())
    }
}

/// Replays an event log against reset PCRs and checks it reproduces
/// `expected` for each quoted register — how a verifier validates that a
/// quote corresponds to a specific boot sequence.
pub fn replay_log(log: &[(usize, String, Digest)], expected: &[(usize, Digest)]) -> bool {
    let mut pcrs = [Digest::ZERO; PCR_COUNT];
    for (pcr, _, m) in log {
        if *pcr >= PCR_COUNT {
            return false;
        }
        pcrs[*pcr] = hash_parts(&[pcrs[*pcr].as_bytes(), m.as_bytes()]);
    }
    expected
        .iter()
        .all(|(pcr, want)| *pcr < PCR_COUNT && pcrs[*pcr] == *want)
}

/// Measures a physical memory range (e.g. the loaded monitor image) —
/// the measured-boot step TXT performs before handing control to the
/// monitor.
///
/// # Panics
///
/// Panics when the range is not backed by RAM or the read faults; only
/// for boot-time ranges the caller controls. Runtime callers measuring
/// caller-supplied ranges must use [`try_measure_range`].
pub fn measure_range(mem: &PhysMem, range: PhysRange) -> Digest {
    try_measure_range(mem, range).expect("measured range must be in RAM")
}

/// Fallible [`measure_range`]: surfaces an out-of-RAM range or an
/// injected DRAM fault as the [`MemError`] instead of panicking.
pub fn try_measure_range(mem: &PhysMem, range: PhysRange) -> Result<Digest, MemError> {
    Ok(tyche_crypto::hash(mem.slice(range)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{PhysAddr, PAGE_SIZE};

    #[test]
    fn extend_is_order_sensitive_and_irreversible() {
        let mut a = Tpm::new_with_seed(1);
        let mut b = Tpm::new_with_seed(1);
        let m1 = tyche_crypto::hash(b"stage1");
        let m2 = tyche_crypto::hash(b"stage2");
        a.extend(0, "s1", m1);
        a.extend(0, "s2", m2);
        b.extend(0, "s2", m2);
        b.extend(0, "s1", m1);
        assert_ne!(a.read_pcr(0), b.read_pcr(0), "order matters");
        assert_ne!(a.read_pcr(0), m2, "cannot set a PCR directly");
    }

    #[test]
    fn quote_verifies_with_correct_nonce_only() {
        let mut tpm = Tpm::new_with_seed(2);
        tpm.extend(PCR_MONITOR, "monitor", tyche_crypto::hash(b"monitor-image"));
        let nonce = tpm.fresh_nonce().unwrap();
        let quote = tpm.quote(&[PCR_MONITOR], nonce).unwrap();
        let vk = tpm.attestation_key();
        assert!(quote.verify(&vk, &nonce));
        let other_nonce = tpm.fresh_nonce().unwrap();
        assert!(!quote.verify(&vk, &other_nonce), "replay rejected");
    }

    #[test]
    fn tampered_quote_rejected() {
        let mut tpm = Tpm::new_with_seed(3);
        tpm.extend(PCR_MONITOR, "monitor", tyche_crypto::hash(b"image"));
        let nonce = [9u8; 32];
        let mut quote = tpm.quote(&[PCR_MONITOR], nonce).unwrap();
        let vk = tpm.attestation_key();
        quote.pcr_values[0] = tyche_crypto::hash(b"evil-image");
        assert!(!quote.verify(&vk, &nonce));
    }

    #[test]
    fn quote_from_different_tpm_rejected() {
        let mut tpm = Tpm::new_with_seed(4);
        let mut rogue = Tpm::new_with_seed(5);
        tpm.extend(PCR_MONITOR, "m", tyche_crypto::hash(b"image"));
        rogue.extend(PCR_MONITOR, "m", tyche_crypto::hash(b"image"));
        let nonce = [1u8; 32];
        let quote = rogue.quote(&[PCR_MONITOR], nonce).unwrap();
        assert!(!quote.verify(&tpm.attestation_key(), &nonce));
    }

    #[test]
    fn pcr_lookup_in_quote() {
        let mut tpm = Tpm::new_with_seed(6);
        tpm.extend(2, "x", tyche_crypto::hash(b"x"));
        let quote = tpm.quote(&[0, 2], [0u8; 32]).unwrap();
        assert_eq!(quote.pcr(2), Some(tpm.read_pcr(2)));
        assert_eq!(quote.pcr(0), Some(Digest::ZERO));
        assert_eq!(quote.pcr(5), None);
    }

    #[test]
    fn log_replay_reproduces_pcrs() {
        let mut tpm = Tpm::new_with_seed(7);
        tpm.extend(PCR_MONITOR, "a", tyche_crypto::hash(b"a"));
        tpm.extend(PCR_MONITOR, "b", tyche_crypto::hash(b"b"));
        tpm.extend(PCR_CONFIG, "cfg", tyche_crypto::hash(b"cfg"));
        assert!(replay_log(
            tpm.event_log(),
            &[
                (PCR_MONITOR, tpm.read_pcr(PCR_MONITOR)),
                (PCR_CONFIG, tpm.read_pcr(PCR_CONFIG))
            ]
        ));
        // A forged log does not replay.
        let forged = vec![(PCR_MONITOR, "a".to_string(), tyche_crypto::hash(b"evil"))];
        assert!(!replay_log(
            &forged,
            &[(PCR_MONITOR, tpm.read_pcr(PCR_MONITOR))]
        ));
    }

    #[test]
    fn measure_range_hashes_memory() {
        let mut mem = PhysMem::new(4 * PAGE_SIZE);
        mem.write(PhysAddr::new(0x1000), b"monitor code").unwrap();
        let r = PhysRange::from_len(PhysAddr::new(0x1000), PAGE_SIZE);
        let d1 = measure_range(&mem, r);
        mem.write_u8(PhysAddr::new(0x1005), b'X').unwrap();
        let d2 = measure_range(&mem, r);
        assert_ne!(d1, d2, "any byte change changes the measurement");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn extend_rejects_bad_pcr() {
        Tpm::new_with_seed(0).extend(PCR_COUNT, "bad", Digest::ZERO);
    }

    #[test]
    fn quote_rejects_bad_pcr_selection() {
        let tpm = Tpm::new_with_seed(8);
        assert_eq!(
            tpm.quote(&[0, PCR_COUNT], [0u8; 32]),
            Err(TpmError::BadPcr(PCR_COUNT))
        );
    }

    #[test]
    fn injected_quote_and_entropy_faults_are_checked() {
        use crate::faults::{FaultPlan, FaultSite, Faults};
        let mut tpm = Tpm::new_with_seed(9);
        let faults = Faults::new();
        tpm.set_faults(faults.clone());
        faults.arm(FaultPlan::once(FaultSite::TpmQuote));
        assert_eq!(
            tpm.quote(&[PCR_MONITOR], [0u8; 32]).unwrap_err(),
            TpmError::QuoteFailed
        );
        // Spent: the quote engine recovers.
        let q = tpm.quote(&[PCR_MONITOR], [0u8; 32]).unwrap();
        assert!(q.verify(&tpm.attestation_key(), &[0u8; 32]));
        faults.arm(FaultPlan::once(FaultSite::DrbgEntropy));
        assert_eq!(tpm.fresh_nonce().unwrap_err(), TpmError::EntropyExhausted);
        // Determinism: the failed draw consumed no RNG state, so the next
        // nonce equals what an uninjected TPM at the same point produces.
        let mut twin = Tpm::new_with_seed(9);
        assert_eq!(tpm.fresh_nonce().unwrap(), twin.fresh_nonce().unwrap());
    }
}
