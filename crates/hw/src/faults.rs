//! Deterministic, seeded fault injection for the simulated hardware.
//!
//! Robustness testing needs hardware that fails on demand — but *exactly*
//! reproducibly, so a failing fuzz run can be replayed from its seed. A
//! [`FaultPlan`] arms one fault **site** with a countdown: skip the first
//! `skip` visits, then fire `count` times, then go quiet. No randomness is
//! consulted at check time; the only nondeterminism allowed into a run is
//! the seed that generated the plans. The injector itself lives behind a
//! shared, clonable handle ([`Faults`]) threaded through [`PhysMem`], the
//! interrupt controller, and the TPM so every architectural path — EPT
//! walks, PMP checks, DMA, IPIs, quotes — reaches the same plan list.
//!
//! The hot-path cost when nothing is armed is a single relaxed atomic
//! load, so the injector can stay compiled into the benchmarks.
//!
//! [`PhysMem`]: crate::mem::PhysMem

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use tyche_core::trace::{EventKind, TraceSink};

/// Where a fault can be injected.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FaultSite {
    /// A physical memory read fails (DRAM uncorrectable error).
    MemRead,
    /// A physical memory write fails.
    MemWrite,
    /// A raised interrupt is silently dropped before remapping.
    IpiDrop,
    /// A raised interrupt is delivered twice (spurious duplication).
    IpiDup,
    /// An EPT translation aborts at the walk root.
    EptWalk,
    /// A PMP check aborts regardless of the programmed entries.
    PmpWalk,
    /// The TPM's DRBG refuses to produce entropy.
    DrbgEntropy,
    /// The TPM fails to produce a quote.
    TpmQuote,
    /// A NIC frame is silently dropped before enqueue.
    NicDrop,
    /// A NIC frame is delivered twice (duplicate enqueue).
    NicDup,
    /// A NIC frame jumps ahead of the frames already queued.
    NicReorder,
    /// A NIC frame has one payload byte flipped in flight.
    NicCorrupt,
}

impl FaultSite {
    /// Stable numeric code carried by [`EventKind::FaultFired`] trace
    /// events (declaration order, 1-based).
    pub fn code(self) -> u8 {
        match self {
            FaultSite::MemRead => 1,
            FaultSite::MemWrite => 2,
            FaultSite::IpiDrop => 3,
            FaultSite::IpiDup => 4,
            FaultSite::EptWalk => 5,
            FaultSite::PmpWalk => 6,
            FaultSite::DrbgEntropy => 7,
            FaultSite::TpmQuote => 8,
            FaultSite::NicDrop => 9,
            FaultSite::NicDup => 10,
            FaultSite::NicReorder => 11,
            FaultSite::NicCorrupt => 12,
        }
    }
}

impl core::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            FaultSite::MemRead => "mem-read",
            FaultSite::MemWrite => "mem-write",
            FaultSite::IpiDrop => "ipi-drop",
            FaultSite::IpiDup => "ipi-dup",
            FaultSite::EptWalk => "ept-walk",
            FaultSite::PmpWalk => "pmp-walk",
            FaultSite::DrbgEntropy => "drbg-entropy",
            FaultSite::TpmQuote => "tpm-quote",
            FaultSite::NicDrop => "nic-drop",
            FaultSite::NicDup => "nic-dup",
            FaultSite::NicReorder => "nic-reorder",
            FaultSite::NicCorrupt => "nic-corrupt",
        };
        f.write_str(s)
    }
}

/// One armed fault: skip the first `skip` visits to `site`, then fire on
/// the next `count` visits.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultPlan {
    /// The site this plan triggers at.
    pub site: FaultSite,
    /// Visits to let through before firing.
    pub skip: u64,
    /// Number of consecutive visits that then fire.
    pub count: u64,
}

impl FaultPlan {
    /// A plan that fires on the very next visit to `site`, once.
    pub fn once(site: FaultSite) -> Self {
        FaultPlan {
            site,
            skip: 0,
            count: 1,
        }
    }

    /// A plan that fires `count` times after skipping `skip` visits.
    pub fn after(site: FaultSite, skip: u64, count: u64) -> Self {
        FaultPlan { site, skip, count }
    }
}

#[derive(Debug, Default)]
struct State {
    plans: Vec<FaultPlan>,
    /// Total faults fired per run, for reporting.
    fired: u64,
    /// Observability sink; every fired fault is recorded as a
    /// `FaultFired` trace event. Inert by default.
    trace: TraceSink,
}

/// Shared handle to the machine's fault injector.
///
/// Cloning shares the underlying plan list (all hardware units on one
/// machine see the same plans). The default handle is inert.
#[derive(Clone, Debug, Default)]
pub struct Faults {
    /// Fast-path gate: false whenever no plan can still fire.
    armed: Arc<AtomicBool>,
    state: Arc<Mutex<State>>,
}

impl Faults {
    /// Creates an inert injector (no plans armed).
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // A panic while holding this lock (only possible from another
        // injector call, none of which panic) must not wedge the machine.
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attaches the machine-wide trace sink (done once by `Machine::new`;
    /// shared through the state so existing clones see it too).
    pub fn set_trace(&self, trace: TraceSink) {
        self.lock().trace = trace;
    }

    /// Arms `plan`. Plans on the same site are consulted in arming order;
    /// the first with remaining skip-or-count budget decides the visit.
    pub fn arm(&self, plan: FaultPlan) {
        let mut st = self.lock();
        st.plans.push(plan);
        self.armed.store(true, Ordering::Release);
    }

    /// Disarms everything and zeroes the fired counter.
    pub fn clear(&self) {
        let mut st = self.lock();
        st.plans.clear();
        st.fired = 0;
        self.armed.store(false, Ordering::Release);
    }

    /// A hardware unit visits `site`; returns true when the visit must
    /// fault. Deterministic: purely a countdown over the armed plans.
    pub fn fire(&self, site: FaultSite) -> bool {
        if !self.armed.load(Ordering::Acquire) {
            return false;
        }
        let mut st = self.lock();
        let mut hit = false;
        for plan in st.plans.iter_mut() {
            // Spent plans never block a later plan on the same site.
            if plan.site != site || (plan.skip == 0 && plan.count == 0) {
                continue;
            }
            if plan.skip > 0 {
                plan.skip -= 1;
                break;
            }
            if plan.count > 0 {
                plan.count -= 1;
                hit = true;
            }
            break;
        }
        if hit {
            st.fired += 1;
            st.trace
                .emit_engine(EventKind::FaultFired { site: site.code() });
        }
        if st.plans.iter().all(|p| p.count == 0) {
            self.armed.store(false, Ordering::Release);
        }
        hit
    }

    /// Total faults fired since the last [`clear`](Self::clear).
    pub fn fired(&self) -> u64 {
        self.lock().fired
    }

    /// True when at least one plan can still fire.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_by_default() {
        let f = Faults::new();
        assert!(!f.is_armed());
        assert!(!f.fire(FaultSite::MemRead));
        assert_eq!(f.fired(), 0);
    }

    #[test]
    fn once_fires_exactly_once() {
        let f = Faults::new();
        f.arm(FaultPlan::once(FaultSite::MemWrite));
        assert!(!f.fire(FaultSite::MemRead), "other sites unaffected");
        assert!(f.fire(FaultSite::MemWrite));
        assert!(!f.fire(FaultSite::MemWrite), "exhausted");
        assert!(!f.is_armed(), "auto-disarms when spent");
        assert_eq!(f.fired(), 1);
    }

    #[test]
    fn skip_then_burst() {
        let f = Faults::new();
        f.arm(FaultPlan::after(FaultSite::EptWalk, 2, 3));
        let hits: Vec<bool> = (0..6).map(|_| f.fire(FaultSite::EptWalk)).collect();
        assert_eq!(hits, [false, false, true, true, true, false]);
        assert_eq!(f.fired(), 3);
    }

    #[test]
    fn clones_share_plans() {
        let f = Faults::new();
        let g = f.clone();
        f.arm(FaultPlan::once(FaultSite::TpmQuote));
        assert!(g.fire(FaultSite::TpmQuote), "armed via the other handle");
        assert_eq!(f.fired(), 1);
    }

    #[test]
    fn clear_disarms() {
        let f = Faults::new();
        f.arm(FaultPlan::after(FaultSite::IpiDrop, 0, 100));
        assert!(f.fire(FaultSite::IpiDrop));
        f.clear();
        assert!(!f.fire(FaultSite::IpiDrop));
        assert_eq!(f.fired(), 0);
    }

    #[test]
    fn identical_plans_replay_identically() {
        let run = || {
            let f = Faults::new();
            f.arm(FaultPlan::after(FaultSite::MemRead, 1, 2));
            f.arm(FaultPlan::after(FaultSite::MemRead, 5, 1));
            (0..12)
                .map(|_| f.fire(FaultSite::MemRead))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
