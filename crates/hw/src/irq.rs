//! Interrupt remapping (VT-d IR-style).
//!
//! §4.1 of the paper: capabilities should extend to "cross-domain
//! interrupt routing ... and hardware interrupt routing via remapping".
//! This controller models the hardware half: a remapping table maps an
//! interrupt vector to a *routing key* (the monitor uses one key per
//! trust domain), and raised vectors land in the routed key's pending
//! queue. Unrouted vectors are dropped and counted — the observable
//! signal that the paper wants for "exposing denial of service attacks".

use crate::faults::{FaultSite, Faults};
use std::collections::{HashMap, VecDeque};
use tyche_core::metrics::{Counter, Metrics};

/// Maximum vector number (x86 IDT size).
pub const MAX_VECTOR: u32 = 256;

/// The interrupt remapping controller.
#[derive(Debug, Default)]
pub struct IrqController {
    /// vector → routing key.
    remap: HashMap<u32, u64>,
    /// routing key → pending vectors (FIFO).
    pending: HashMap<u64, VecDeque<u32>>,
    /// Counter registry (`irq.*` counters). A standalone controller gets
    /// its own registry; `Machine::new` installs the machine-wide one.
    metrics: Metrics,
    /// Fault injector; inert by default.
    faults: Faults,
}

impl IrqController {
    /// Creates a controller with an empty remap table: every interrupt is
    /// dropped until the monitor routes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Routes `vector` to `key` (overwrites any previous route).
    ///
    /// # Panics
    ///
    /// Panics on a vector ≥ [`MAX_VECTOR`] — monitor bug.
    pub fn route(&mut self, vector: u32, key: u64) {
        assert!(vector < MAX_VECTOR, "vector {vector} out of range");
        self.remap.insert(vector, key);
    }

    /// Removes `vector`'s route; subsequent raises are dropped.
    pub fn unroute(&mut self, vector: u32) {
        self.remap.remove(&vector);
    }

    /// Current route of `vector`.
    pub fn route_of(&self, vector: u32) -> Option<u64> {
        self.remap.get(&vector).copied()
    }

    /// Attaches a shared fault injector (done once by `Machine::new`).
    pub fn set_faults(&mut self, faults: Faults) {
        self.faults = faults;
    }

    /// Attaches the machine-wide metrics registry (done once by
    /// `Machine::new`); the controller counts into `irq.*` there.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = metrics;
    }

    /// The registry this controller counts into.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Vectors raised with no route (dropped).
    #[deprecated(note = "read `Counter::IrqSpurious` from the machine's metrics registry")]
    pub fn spurious(&self) -> u64 {
        self.metrics.get(Counter::IrqSpurious)
    }

    /// Total vectors raised.
    #[deprecated(note = "read `Counter::IrqRaised` from the machine's metrics registry")]
    pub fn raised(&self) -> u64 {
        self.metrics.get(Counter::IrqRaised)
    }

    /// Interrupts lost to injected faults.
    #[deprecated(note = "read `Counter::IrqInjectedDrops` from the machine's metrics registry")]
    pub fn injected_drops(&self) -> u64 {
        self.metrics.get(Counter::IrqInjectedDrops)
    }

    /// Interrupts duplicated by injected faults.
    #[deprecated(note = "read `Counter::IrqInjectedDups` from the machine's metrics registry")]
    pub fn injected_dups(&self) -> u64 {
        self.metrics.get(Counter::IrqInjectedDups)
    }

    /// A device (or timer) raises `vector`; returns the routed key, or
    /// `None` when the interrupt was dropped.
    ///
    /// An injected [`FaultSite::IpiDrop`] loses the interrupt before
    /// remapping (counted in `injected_drops`); an injected
    /// [`FaultSite::IpiDup`] enqueues it twice (counted in
    /// `injected_dups`) — both are observable, checked degradations, not
    /// silent state corruption.
    pub fn raise(&mut self, vector: u32) -> Option<u64> {
        self.metrics.bump(Counter::IrqRaised);
        if self.faults.fire(FaultSite::IpiDrop) {
            self.metrics.bump(Counter::IrqInjectedDrops);
            self.metrics.bump(Counter::IrqSpurious);
            return None;
        }
        let dup = self.faults.fire(FaultSite::IpiDup);
        match self.remap.get(&vector) {
            Some(&key) => {
                self.pending.entry(key).or_default().push_back(vector);
                if dup {
                    self.metrics.bump(Counter::IrqInjectedDups);
                    self.pending.entry(key).or_default().push_back(vector);
                }
                Some(key)
            }
            None => {
                self.metrics.bump(Counter::IrqSpurious);
                None
            }
        }
    }

    /// Drains all pending vectors for `key`, in arrival order.
    pub fn drain(&mut self, key: u64) -> Vec<u32> {
        self.pending
            .remove(&key)
            .map(|q| q.into_iter().collect())
            .unwrap_or_default()
    }

    /// Pending count for `key` without draining.
    pub fn pending_count(&self, key: u64) -> usize {
        self.pending.get(&key).map(|q| q.len()).unwrap_or(0)
    }

    /// Drops all state associated with `key` (domain teardown).
    pub fn purge_key(&mut self, key: u64) {
        self.remap.retain(|_, k| *k != key);
        self.pending.remove(&key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routed_interrupts_queue_in_order() {
        let mut c = IrqController::new();
        c.route(32, 7);
        c.route(33, 7);
        assert_eq!(c.raise(32), Some(7));
        assert_eq!(c.raise(33), Some(7));
        assert_eq!(c.raise(32), Some(7));
        assert_eq!(c.drain(7), vec![32, 33, 32]);
        assert_eq!(c.drain(7), Vec::<u32>::new(), "drained");
    }

    #[test]
    fn unrouted_vectors_drop_and_count() {
        let mut c = IrqController::new();
        assert_eq!(c.raise(40), None);
        assert_eq!(c.metrics().get(Counter::IrqSpurious), 1);
        c.route(40, 1);
        assert_eq!(c.raise(40), Some(1));
        c.unroute(40);
        assert_eq!(c.raise(40), None);
        assert_eq!(c.metrics().get(Counter::IrqSpurious), 2);
        assert_eq!(c.metrics().get(Counter::IrqRaised), 3);
        assert_eq!(c.pending_count(1), 1, "earlier delivery still pending");
    }

    #[test]
    fn reroute_moves_delivery() {
        let mut c = IrqController::new();
        c.route(50, 1);
        c.raise(50);
        c.route(50, 2); // monitor revoked + re-granted the vector
        c.raise(50);
        assert_eq!(c.drain(1), vec![50]);
        assert_eq!(c.drain(2), vec![50]);
    }

    #[test]
    fn purge_clears_routes_and_queue() {
        let mut c = IrqController::new();
        c.route(60, 9);
        c.route(61, 9);
        c.raise(60);
        c.purge_key(9);
        assert_eq!(c.pending_count(9), 0);
        assert_eq!(c.raise(60), None, "routes gone");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_vector_panics() {
        IrqController::new().route(256, 0);
    }

    #[test]
    fn injected_drop_and_dup_are_counted() {
        use crate::faults::{FaultPlan, FaultSite, Faults};
        let mut c = IrqController::new();
        let faults = Faults::new();
        c.set_faults(faults.clone());
        c.route(32, 7);
        faults.arm(FaultPlan::once(FaultSite::IpiDrop));
        assert_eq!(c.raise(32), None, "dropped by injection");
        assert_eq!(c.metrics().get(Counter::IrqInjectedDrops), 1);
        assert_eq!(c.pending_count(7), 0);
        faults.arm(FaultPlan::once(FaultSite::IpiDup));
        assert_eq!(c.raise(32), Some(7));
        assert_eq!(c.metrics().get(Counter::IrqInjectedDups), 1);
        assert_eq!(c.drain(7), vec![32, 32], "delivered twice");
        // Injector spent: normal delivery resumes.
        assert_eq!(c.raise(32), Some(7));
        assert_eq!(c.drain(7), vec![32]);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_accessors_mirror_the_registry() {
        let mut c = IrqController::new();
        c.route(32, 7);
        c.raise(32);
        c.raise(99);
        assert_eq!(c.raised(), 2);
        assert_eq!(c.spurious(), 1);
        assert_eq!(c.injected_drops(), 0);
        assert_eq!(c.injected_dups(), 0);
    }

    #[test]
    fn shared_registry_counts_machine_wide() {
        let shared = Metrics::new();
        let mut c = IrqController::new();
        c.set_metrics(shared.clone());
        c.raise(5);
        assert_eq!(shared.get(Counter::IrqSpurious), 1, "visible via the clone");
    }
}
