//! Interrupt remapping (VT-d IR-style).
//!
//! §4.1 of the paper: capabilities should extend to "cross-domain
//! interrupt routing ... and hardware interrupt routing via remapping".
//! This controller models the hardware half: a remapping table maps an
//! interrupt vector to a *routing key* (the monitor uses one key per
//! trust domain), and raised vectors land in the routed key's pending
//! queue. Unrouted vectors are dropped and counted — the observable
//! signal that the paper wants for "exposing denial of service attacks".

use crate::faults::{FaultSite, Faults};
use std::collections::{HashMap, VecDeque};

/// Maximum vector number (x86 IDT size).
pub const MAX_VECTOR: u32 = 256;

/// The interrupt remapping controller.
#[derive(Debug, Default)]
pub struct IrqController {
    /// vector → routing key.
    remap: HashMap<u32, u64>,
    /// routing key → pending vectors (FIFO).
    pending: HashMap<u64, VecDeque<u32>>,
    /// Vectors raised with no route (dropped).
    pub spurious: u64,
    /// Total raised.
    pub raised: u64,
    /// Interrupts lost to injected faults.
    pub injected_drops: u64,
    /// Interrupts duplicated by injected faults.
    pub injected_dups: u64,
    /// Fault injector; inert by default.
    faults: Faults,
}

impl IrqController {
    /// Creates a controller with an empty remap table: every interrupt is
    /// dropped until the monitor routes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Routes `vector` to `key` (overwrites any previous route).
    ///
    /// # Panics
    ///
    /// Panics on a vector ≥ [`MAX_VECTOR`] — monitor bug.
    pub fn route(&mut self, vector: u32, key: u64) {
        assert!(vector < MAX_VECTOR, "vector {vector} out of range");
        self.remap.insert(vector, key);
    }

    /// Removes `vector`'s route; subsequent raises are dropped.
    pub fn unroute(&mut self, vector: u32) {
        self.remap.remove(&vector);
    }

    /// Current route of `vector`.
    pub fn route_of(&self, vector: u32) -> Option<u64> {
        self.remap.get(&vector).copied()
    }

    /// Attaches a shared fault injector (done once by `Machine::new`).
    pub fn set_faults(&mut self, faults: Faults) {
        self.faults = faults;
    }

    /// A device (or timer) raises `vector`; returns the routed key, or
    /// `None` when the interrupt was dropped.
    ///
    /// An injected [`FaultSite::IpiDrop`] loses the interrupt before
    /// remapping (counted in `injected_drops`); an injected
    /// [`FaultSite::IpiDup`] enqueues it twice (counted in
    /// `injected_dups`) — both are observable, checked degradations, not
    /// silent state corruption.
    pub fn raise(&mut self, vector: u32) -> Option<u64> {
        self.raised += 1;
        if self.faults.fire(FaultSite::IpiDrop) {
            self.injected_drops += 1;
            self.spurious += 1;
            return None;
        }
        let dup = self.faults.fire(FaultSite::IpiDup);
        match self.remap.get(&vector) {
            Some(&key) => {
                self.pending.entry(key).or_default().push_back(vector);
                if dup {
                    self.injected_dups += 1;
                    self.pending.entry(key).or_default().push_back(vector);
                }
                Some(key)
            }
            None => {
                self.spurious += 1;
                None
            }
        }
    }

    /// Drains all pending vectors for `key`, in arrival order.
    pub fn drain(&mut self, key: u64) -> Vec<u32> {
        self.pending
            .remove(&key)
            .map(|q| q.into_iter().collect())
            .unwrap_or_default()
    }

    /// Pending count for `key` without draining.
    pub fn pending_count(&self, key: u64) -> usize {
        self.pending.get(&key).map(|q| q.len()).unwrap_or(0)
    }

    /// Drops all state associated with `key` (domain teardown).
    pub fn purge_key(&mut self, key: u64) {
        self.remap.retain(|_, k| *k != key);
        self.pending.remove(&key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routed_interrupts_queue_in_order() {
        let mut c = IrqController::new();
        c.route(32, 7);
        c.route(33, 7);
        assert_eq!(c.raise(32), Some(7));
        assert_eq!(c.raise(33), Some(7));
        assert_eq!(c.raise(32), Some(7));
        assert_eq!(c.drain(7), vec![32, 33, 32]);
        assert_eq!(c.drain(7), Vec::<u32>::new(), "drained");
    }

    #[test]
    fn unrouted_vectors_drop_and_count() {
        let mut c = IrqController::new();
        assert_eq!(c.raise(40), None);
        assert_eq!(c.spurious, 1);
        c.route(40, 1);
        assert_eq!(c.raise(40), Some(1));
        c.unroute(40);
        assert_eq!(c.raise(40), None);
        assert_eq!(c.spurious, 2);
        assert_eq!(c.pending_count(1), 1, "earlier delivery still pending");
    }

    #[test]
    fn reroute_moves_delivery() {
        let mut c = IrqController::new();
        c.route(50, 1);
        c.raise(50);
        c.route(50, 2); // monitor revoked + re-granted the vector
        c.raise(50);
        assert_eq!(c.drain(1), vec![50]);
        assert_eq!(c.drain(2), vec![50]);
    }

    #[test]
    fn purge_clears_routes_and_queue() {
        let mut c = IrqController::new();
        c.route(60, 9);
        c.route(61, 9);
        c.raise(60);
        c.purge_key(9);
        assert_eq!(c.pending_count(9), 0);
        assert_eq!(c.raise(60), None, "routes gone");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_vector_panics() {
        IrqController::new().route(256, 0);
    }

    #[test]
    fn injected_drop_and_dup_are_counted() {
        use crate::faults::{FaultPlan, FaultSite, Faults};
        let mut c = IrqController::new();
        let faults = Faults::new();
        c.set_faults(faults.clone());
        c.route(32, 7);
        faults.arm(FaultPlan::once(FaultSite::IpiDrop));
        assert_eq!(c.raise(32), None, "dropped by injection");
        assert_eq!(c.injected_drops, 1);
        assert_eq!(c.pending_count(7), 0);
        faults.arm(FaultPlan::once(FaultSite::IpiDup));
        assert_eq!(c.raise(32), Some(7));
        assert_eq!(c.injected_dups, 1);
        assert_eq!(c.drain(7), vec![32, 32], "delivered twice");
        // Injector spent: normal delivery resumes.
        assert_eq!(c.raise(32), Some(7));
        assert_eq!(c.drain(7), vec![32]);
    }
}
