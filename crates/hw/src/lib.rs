//! Simulated commodity hardware for the Tyche reproduction.
//!
//! The real Tyche boots bare-metal and programs Intel VT-x / I/O-MMU (x86)
//! or machine-mode PMP (RISC-V) to enforce isolation. This crate is a
//! faithful software model of exactly the hardware surface the monitor
//! touches:
//!
//! - [`mem`]: byte-addressable physical memory with a frame allocator.
//! - [`x86`]: VT-x model — VMCS, vm-exit dispatch, a real 4-level EPT
//!   walker operating on simulated physical memory, and the EPTP-list
//!   VMFUNC fast-switch path.
//! - [`iommu`]: an I/O-MMU with per-device context entries sharing the EPT
//!   page-table format, checked on every device DMA.
//! - [`device`]: DMA-capable devices (a GPU-like accelerator and a crypto
//!   engine) used by the Figure 2 scenario.
//! - [`riscv`]: machine-mode + PMP model with the spec's priority matching
//!   and a fixed number of entries (the constraint §4 of the paper calls
//!   out).
//! - [`tpm`]: a TPM-like root of trust — PCR bank, extend semantics, signed
//!   quotes — plus measured boot.
//! - [`cache`]: micro-architectural residue (cache + TLB) so that
//!   flush-on-transition revocation policies have observable effect.
//! - [`cycles`]: the cycle-cost model used to report simulated costs for
//!   transitions and exits.
//! - [`machine`]: the assembled machine (memory + CPUs + devices + TPM).
//! - [`nic`]: the modeled trusted NIC — cycle-charged send/recv, bounded
//!   in-order queues, and an attacker-controlled wire where the seeded
//!   fault plans may drop/dup/reorder/corrupt frames.
//! - [`faults`]: deterministic, seeded fault injection threaded through
//!   memory, the walkers, the interrupt controller, the TPM, and the NIC.
//!
//! The model's contract: the monitor code that runs on top of it consumes
//! *events* (vm exits, traps) and programs *structures* (EPT entries, PMP
//! registers, context tables) with the same bit layouts and matching rules
//! as the real hardware, so the monitor logic is transplantable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod cache;
pub mod cycles;
pub mod device;
pub mod faults;
pub mod iommu;
pub mod irq;
pub mod machine;
pub mod mem;
pub mod mktme;
pub mod nic;
pub mod riscv;
pub mod sriov;
pub mod tpm;
pub mod x86;

pub use addr::{PhysAddr, PAGE_SIZE};
pub use faults::{FaultPlan, FaultSite, Faults};
pub use machine::Machine;
