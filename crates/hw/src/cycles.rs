//! The simulated cycle-cost model.
//!
//! The paper's only hard performance number is "fast (100 cycles) domain
//! transitions using VMFUNC" (§4.1). We cannot measure real silicon, so the
//! simulation charges each architectural event a cycle cost taken from
//! published measurements of the corresponding hardware operation, and
//! experiments report *simulated cycles* next to host wall-time. The
//! constants live in one place so the ablation benches can vary them.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cycle costs of architectural events, loosely calibrated to published
/// numbers for recent Intel server parts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// A VM exit + VM entry round trip (VMCALL, EPT violation, ...).
    pub vmexit_roundtrip: u64,
    /// A VMFUNC EPTP switch (no exit). The paper's "100 cycles".
    pub vmfunc_switch: u64,
    /// One page-table / EPT level walked on a TLB miss.
    pub page_walk_level: u64,
    /// A TLB hit.
    pub tlb_hit: u64,
    /// Full TLB flush (INVEPT-style).
    pub tlb_flush: u64,
    /// Flushing one cache line (CLFLUSH).
    pub cacheline_flush: u64,
    /// Writing back and invalidating the whole L1/L2 (WBINVD-ish), charged
    /// per resident line by the cache model.
    pub cache_flush_base: u64,
    /// A RISC-V M-mode trap round trip (ecall + mret).
    pub mmode_trap_roundtrip: u64,
    /// Reprogramming one PMP entry (CSR write + fence).
    pub pmp_write: u64,
    /// Zeroing one page of memory.
    pub zero_page: u64,
    /// Hashing one page of memory (measurement).
    pub hash_page: u64,
    /// A bare function call/return inside one domain (baseline for
    /// comparisons).
    pub fn_call: u64,
    /// OS process creation (fork+exec-lite) for the process baseline.
    pub process_create: u64,
    /// OS context switch between processes.
    pub context_switch: u64,
    /// A cross-process IPC message (pipe-style round trip).
    pub ipc_roundtrip: u64,
    /// Sending one IPI from the initiating core (ICR write + fabric
    /// latency charged to the sender).
    pub ipi_send: u64,
    /// Receiving an IPI on the target core (interrupt delivery + handler
    /// entry/exit, before any flush work the handler performs).
    pub ipi_deliver: u64,
    /// Hand-off of a contended in-monitor lock between cores (cacheline
    /// transfer + wakeup); charged once per acquisition that had to wait.
    pub lock_handoff: u64,
    /// Writing one entry into a per-core submission ring (slot store +
    /// producer-index publish, both core-local).
    pub ring_enqueue: u64,
    /// Dispatching one ring entry inside a drained batch (slot read +
    /// call decode on the serving side; the trap crossing itself is paid
    /// once per batch, not per entry).
    pub ring_dispatch: u64,
    /// Posting one frame to the trusted NIC (descriptor write, doorbell,
    /// on-NIC MAC engine latency, charged to the sending core). Per
    /// frame; the payload additionally costs [`nic_byte`](Self::nic_byte)
    /// per byte on both sides.
    pub nic_send: u64,
    /// Receiving one frame from the trusted NIC (completion poll + MAC
    /// check + descriptor recycle, charged to the receiving core).
    pub nic_recv: u64,
    /// Copying + MACing one payload byte through the NIC pipeline
    /// (charged per byte on top of the per-frame costs).
    pub nic_byte: u64,
}

impl CostModel {
    /// The default calibration used by all experiments.
    pub const fn default_model() -> Self {
        CostModel {
            vmexit_roundtrip: 1200,
            vmfunc_switch: 109,
            page_walk_level: 30,
            tlb_hit: 1,
            tlb_flush: 500,
            cacheline_flush: 45,
            cache_flush_base: 400,
            mmode_trap_roundtrip: 700,
            pmp_write: 40,
            zero_page: 250,
            hash_page: 4000,
            fn_call: 5,
            process_create: 250_000,
            context_switch: 3000,
            ipc_roundtrip: 8000,
            ipi_send: 1000,
            ipi_deliver: 700,
            lock_handoff: 60,
            ring_enqueue: 40,
            ring_dispatch: 25,
            nic_send: 1600,
            nic_recv: 1100,
            nic_byte: 2,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::default_model()
    }
}

/// A monotonically increasing simulated cycle counter.
///
/// Shared by everything running on one simulated machine; atomic so that
/// multi-threaded test drivers can charge cycles without holding the machine
/// lock.
#[derive(Debug, Default)]
pub struct CycleCounter {
    cycles: AtomicU64,
}

impl CycleCounter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `n` cycles.
    pub fn charge(&self, n: u64) {
        self.cycles.fetch_add(n, Ordering::Relaxed);
    }

    /// Reads the current cycle count.
    pub fn now(&self) -> u64 {
        self.cycles.load(Ordering::Relaxed)
    }

    /// Convenience: cycles elapsed since `start`.
    pub fn since(&self, start: u64) -> u64 {
        self.now().saturating_sub(start)
    }

    /// Advances the counter to at least `t` (discrete-event style: "this
    /// core is busy until simulated time `t`"). Never moves backwards, so
    /// concurrent advances from racing threads are safe and the final
    /// value is the max over all of them.
    pub fn advance_to(&self, t: u64) {
        self.cycles.fetch_max(t, Ordering::Relaxed);
    }
}

/// Per-core simulated clocks for an SMP machine.
///
/// Each core owns an independent [`CycleCounter`]; the monitor charges
/// work to the core that performs it, serialization points advance the
/// waiting core past the lock holder via [`CycleCounter::advance_to`],
/// and the *makespan* (max over cores) is the SMP wall-clock analogue.
/// All counters are atomic, so worker threads charge their own core
/// without any shared lock.
#[derive(Debug)]
pub struct PerCoreClocks {
    clocks: Vec<CycleCounter>,
}

impl PerCoreClocks {
    /// Creates `cores` clocks, all at zero.
    pub fn new(cores: usize) -> Self {
        Self {
            clocks: (0..cores).map(|_| CycleCounter::new()).collect(),
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.clocks.len()
    }

    /// Charges `n` cycles to `core`. Out-of-range cores are ignored (the
    /// monitor validates core ids at its call boundary; the clock model
    /// must not panic on behalf of a buggy driver).
    pub fn charge(&self, core: usize, n: u64) {
        if let Some(c) = self.clocks.get(core) {
            c.charge(n);
        }
    }

    /// Reads `core`'s clock (0 for out-of-range cores).
    pub fn now(&self, core: usize) -> u64 {
        self.clocks.get(core).map_or(0, CycleCounter::now)
    }

    /// Advances `core`'s clock to at least `t`.
    pub fn advance_to(&self, core: usize, t: u64) {
        if let Some(c) = self.clocks.get(core) {
            c.advance_to(t);
        }
    }

    /// The makespan: the maximum clock over all cores. This is the
    /// simulated elapsed time of the whole machine.
    pub fn max_now(&self) -> u64 {
        self.clocks.iter().map(CycleCounter::now).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = CycleCounter::new();
        assert_eq!(c.now(), 0);
        c.charge(100);
        c.charge(9);
        assert_eq!(c.now(), 109);
        assert_eq!(c.since(100), 9);
    }

    #[test]
    fn default_model_orderings() {
        // The relationships the paper relies on must hold in the model:
        let m = CostModel::default_model();
        assert!(
            m.vmfunc_switch < m.vmexit_roundtrip / 10,
            "VMFUNC ~10x+ cheaper than an exit"
        );
        assert!(
            m.process_create > 100 * m.vmexit_roundtrip,
            "process creation is heavyweight"
        );
        assert!(m.tlb_hit < m.page_walk_level);
        assert!((50..=200).contains(&m.vmfunc_switch), "paper: ~100 cycles");
        // IPI costs: delivery rides the same interrupt machinery as a trap
        // entry, and a full remote shootdown (send + deliver + flush) must
        // stay more expensive than a local flush, or coalescing would be
        // pointless in the model.
        assert!(m.ipi_send + m.ipi_deliver + m.tlb_flush > m.tlb_flush);
        assert!(m.lock_handoff < m.vmfunc_switch);
        // Ring costs: enqueue + dispatch for one entry must be far below
        // a trap round trip, or batching mutating hypercalls through a
        // doorbell ring could never amortize the crossing.
        assert!(
            m.ring_enqueue + m.ring_dispatch < m.vmexit_roundtrip / 10,
            "ring overhead per entry must be <10% of a trap"
        );
        assert!(m.ring_dispatch < m.ring_enqueue + m.lock_handoff);
        assert!(m.ring_enqueue < m.vmfunc_switch, "enqueue is core-local");
        // NIC costs: a cross-machine frame must be pricier than an IPI
        // (it leaves the coherence fabric and passes a MAC engine) but a
        // small attested request must stay below a process-IPC round trip
        // per direction, or the fleet model could never beat the process
        // baseline the paper argues against.
        assert!(m.nic_send > m.ipi_send, "NIC send costlier than an IPI");
        assert!(m.nic_recv > m.ipi_deliver);
        assert!(
            m.nic_send + m.nic_recv + 64 * m.nic_byte < m.ipc_roundtrip,
            "a 64-byte frame one-way must undercut an IPC round trip"
        );
        assert!(m.nic_byte < m.tlb_hit + m.page_walk_level);
    }

    #[test]
    fn advance_to_is_monotone_max() {
        let c = CycleCounter::new();
        c.charge(50);
        c.advance_to(40); // behind: no-op
        assert_eq!(c.now(), 50);
        c.advance_to(120);
        assert_eq!(c.now(), 120);
    }

    #[test]
    fn per_core_clocks_independent() {
        let clocks = PerCoreClocks::new(4);
        assert_eq!(clocks.cores(), 4);
        clocks.charge(0, 100);
        clocks.charge(2, 300);
        clocks.advance_to(1, 250);
        assert_eq!(clocks.now(0), 100);
        assert_eq!(clocks.now(1), 250);
        assert_eq!(clocks.now(2), 300);
        assert_eq!(clocks.now(3), 0);
        assert_eq!(clocks.max_now(), 300);
        // Out-of-range cores are silently ignored, never panic.
        clocks.charge(99, 1);
        clocks.advance_to(99, 1);
        assert_eq!(clocks.now(99), 0);
        assert_eq!(clocks.max_now(), 300);
    }
}
