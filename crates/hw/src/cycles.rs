//! The simulated cycle-cost model.
//!
//! The paper's only hard performance number is "fast (100 cycles) domain
//! transitions using VMFUNC" (§4.1). We cannot measure real silicon, so the
//! simulation charges each architectural event a cycle cost taken from
//! published measurements of the corresponding hardware operation, and
//! experiments report *simulated cycles* next to host wall-time. The
//! constants live in one place so the ablation benches can vary them.

use std::sync::atomic::{AtomicU64, Ordering};

/// Cycle costs of architectural events, loosely calibrated to published
/// numbers for recent Intel server parts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// A VM exit + VM entry round trip (VMCALL, EPT violation, ...).
    pub vmexit_roundtrip: u64,
    /// A VMFUNC EPTP switch (no exit). The paper's "100 cycles".
    pub vmfunc_switch: u64,
    /// One page-table / EPT level walked on a TLB miss.
    pub page_walk_level: u64,
    /// A TLB hit.
    pub tlb_hit: u64,
    /// Full TLB flush (INVEPT-style).
    pub tlb_flush: u64,
    /// Flushing one cache line (CLFLUSH).
    pub cacheline_flush: u64,
    /// Writing back and invalidating the whole L1/L2 (WBINVD-ish), charged
    /// per resident line by the cache model.
    pub cache_flush_base: u64,
    /// A RISC-V M-mode trap round trip (ecall + mret).
    pub mmode_trap_roundtrip: u64,
    /// Reprogramming one PMP entry (CSR write + fence).
    pub pmp_write: u64,
    /// Zeroing one page of memory.
    pub zero_page: u64,
    /// Hashing one page of memory (measurement).
    pub hash_page: u64,
    /// A bare function call/return inside one domain (baseline for
    /// comparisons).
    pub fn_call: u64,
    /// OS process creation (fork+exec-lite) for the process baseline.
    pub process_create: u64,
    /// OS context switch between processes.
    pub context_switch: u64,
    /// A cross-process IPC message (pipe-style round trip).
    pub ipc_roundtrip: u64,
}

impl CostModel {
    /// The default calibration used by all experiments.
    pub const fn default_model() -> Self {
        CostModel {
            vmexit_roundtrip: 1200,
            vmfunc_switch: 109,
            page_walk_level: 30,
            tlb_hit: 1,
            tlb_flush: 500,
            cacheline_flush: 45,
            cache_flush_base: 400,
            mmode_trap_roundtrip: 700,
            pmp_write: 40,
            zero_page: 250,
            hash_page: 4000,
            fn_call: 5,
            process_create: 250_000,
            context_switch: 3000,
            ipc_roundtrip: 8000,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::default_model()
    }
}

/// A monotonically increasing simulated cycle counter.
///
/// Shared by everything running on one simulated machine; atomic so that
/// multi-threaded test drivers can charge cycles without holding the machine
/// lock.
#[derive(Debug, Default)]
pub struct CycleCounter {
    cycles: AtomicU64,
}

impl CycleCounter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `n` cycles.
    pub fn charge(&self, n: u64) {
        self.cycles.fetch_add(n, Ordering::Relaxed);
    }

    /// Reads the current cycle count.
    pub fn now(&self) -> u64 {
        self.cycles.load(Ordering::Relaxed)
    }

    /// Convenience: cycles elapsed since `start`.
    pub fn since(&self, start: u64) -> u64 {
        self.now().saturating_sub(start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = CycleCounter::new();
        assert_eq!(c.now(), 0);
        c.charge(100);
        c.charge(9);
        assert_eq!(c.now(), 109);
        assert_eq!(c.since(100), 9);
    }

    #[test]
    fn default_model_orderings() {
        // The relationships the paper relies on must hold in the model:
        let m = CostModel::default_model();
        assert!(
            m.vmfunc_switch < m.vmexit_roundtrip / 10,
            "VMFUNC ~10x+ cheaper than an exit"
        );
        assert!(
            m.process_create > 100 * m.vmexit_roundtrip,
            "process creation is heavyweight"
        );
        assert!(m.tlb_hit < m.page_walk_level);
        assert!((50..=200).contains(&m.vmfunc_switch), "paper: ~100 cycles");
    }
}
