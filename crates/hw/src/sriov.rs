//! SR-IOV: one physical device, many isolatable virtual functions.
//!
//! §4.2 lists "safely multiplexing (with and without SR-IOV) PCI
//! devices, e.g., GPUs, among TEEs" as a libtyche extension. The enabler
//! is SR-IOV: a physical function (PF) exposes virtual functions (VFs),
//! each with its *own* bus id — so the I/O-MMU can give every VF a
//! different translation context, and the monitor can hand different VFs
//! to mutually distrustful domains.
//!
//! The model here is an SR-IOV NIC with an internal loopback switch:
//! each VF has a TX doorbell and an RX ring (both in its owner's memory,
//! reached by DMA through that VF's I/O-MMU context). Packets sent on
//! one VF are delivered into the destination VF's RX ring — the device
//! moves data between domains *without either domain mapping the other's
//! memory*, which is precisely the controlled-sharing story.

use crate::addr::GuestPhysAddr;
use crate::iommu::{DeviceId, DmaFault, Iommu};
use crate::mem::PhysMem;
use std::collections::HashMap;

/// A virtual function index on a physical device.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VfIndex(pub u16);

/// Ring configuration for one VF, programmed by its owning domain.
#[derive(Clone, Copy, Debug)]
pub struct VfRing {
    /// Device-visible base address of the RX ring.
    pub rx_base: GuestPhysAddr,
    /// RX ring capacity in slots.
    pub rx_slots: u32,
    /// Fixed slot size in bytes.
    pub slot_bytes: u32,
}

/// Per-VF state.
struct Vf {
    ring: Option<VfRing>,
    /// Next RX slot to fill.
    rx_head: u32,
    /// Packets delivered.
    pub delivered: u64,
    /// Packets dropped (no ring / ring overrun in this simple model).
    pub dropped: u64,
}

/// An SR-IOV NIC with `vf_count` virtual functions and a loopback
/// switch.
pub struct SriovNic {
    /// The physical function's bus id; VF `i` gets `pf + 1 + i`.
    pub pf: DeviceId,
    vfs: HashMap<VfIndex, Vf>,
}

impl SriovNic {
    /// Creates a NIC with `vf_count` VFs.
    pub fn new(pf: DeviceId, vf_count: u16) -> Self {
        let vfs = (0..vf_count)
            .map(|i| {
                (
                    VfIndex(i),
                    Vf {
                        ring: None,
                        rx_head: 0,
                        delivered: 0,
                        dropped: 0,
                    },
                )
            })
            .collect();
        SriovNic { pf, vfs }
    }

    /// The bus id of VF `i` — what the monitor attaches to a domain's
    /// translation context and what the capability engine names.
    pub fn vf_device_id(&self, i: VfIndex) -> DeviceId {
        DeviceId(self.pf.0 + 1 + i.0)
    }

    /// Number of VFs.
    pub fn vf_count(&self) -> usize {
        self.vfs.len()
    }

    /// Programs VF `i`'s RX ring (done by the owning domain through its
    /// driver; addresses are in the VF's own DMA space).
    ///
    /// # Panics
    ///
    /// Panics on an unknown VF index — driver bug, not runtime input.
    pub fn configure_ring(&mut self, i: VfIndex, ring: VfRing) {
        let vf = self.vfs.get_mut(&i).expect("VF exists");
        vf.ring = Some(ring);
        vf.rx_head = 0;
    }

    /// TX doorbell on VF `src`: reads `len` bytes from `addr` (through
    /// `src`'s I/O-MMU context) and delivers them into `dst`'s RX ring
    /// (through `dst`'s context). Returns the RX slot used.
    ///
    /// Errors surface exactly where hardware faults: a bad TX buffer
    /// faults against the *sender's* context; a bad RX ring faults
    /// against the *receiver's*.
    pub fn send(
        &mut self,
        iommu: &mut Iommu,
        mem: &mut PhysMem,
        src: VfIndex,
        dst: VfIndex,
        addr: GuestPhysAddr,
        len: u32,
    ) -> Result<u32, SendError> {
        let src_dev = self.vf_device_id(src);
        let dst_dev = self.vf_device_id(dst);
        let dst_ring = {
            let vf = self.vfs.get(&dst).ok_or(SendError::NoSuchVf(dst))?;
            match vf.ring {
                Some(r) => r,
                None => {
                    self.vfs.get_mut(&dst).expect("checked").dropped += 1;
                    return Err(SendError::NoRing(dst));
                }
            }
        };
        if dst_ring.rx_slots == 0 {
            return Err(SendError::BadRing(dst));
        }
        if len > dst_ring.slot_bytes {
            return Err(SendError::TooLarge {
                len,
                slot: dst_ring.slot_bytes,
            });
        }
        // DMA read from the sender's space.
        let mut payload = vec![0u8; len as usize];
        iommu
            .dma_read(mem, src_dev, addr, &mut payload)
            .map_err(SendError::TxFault)?;
        // DMA write into the receiver's ring slot. The head is kept
        // *masked* — always in `[0, rx_slots)` — so the sequence stays
        // strictly cyclic even across `u32` wraparound. (The former
        // free-running `rx_head.wrapping_add(1)` broke the modulo
        // sequence at `u32::MAX` for any non-power-of-two `rx_slots`:
        // `u32::MAX % 3 == 0` is followed by `0 % 3 == 0`, a duplicated
        // slot.)
        let slot = {
            let vf = self.vfs.get_mut(&dst).expect("checked");
            let s = vf.rx_head % dst_ring.rx_slots;
            vf.rx_head = (s + 1) % dst_ring.rx_slots;
            s
        };
        let slot_off = (slot as u64)
            .checked_mul(dst_ring.slot_bytes as u64)
            .and_then(|off| dst_ring.rx_base.as_u64().checked_add(off));
        let slot_addr = match slot_off {
            Some(a) => GuestPhysAddr::new(a),
            None => {
                self.vfs.get_mut(&dst).expect("checked").dropped += 1;
                return Err(SendError::BadRing(dst));
            }
        };
        match iommu.dma_write(mem, dst_dev, slot_addr, &payload) {
            Ok(()) => {
                self.vfs.get_mut(&dst).expect("checked").delivered += 1;
                Ok(slot)
            }
            Err(f) => {
                self.vfs.get_mut(&dst).expect("checked").dropped += 1;
                Err(SendError::RxFault(f))
            }
        }
    }

    /// Delivery statistics for VF `i`: `(delivered, dropped)`.
    pub fn stats(&self, i: VfIndex) -> Option<(u64, u64)> {
        self.vfs.get(&i).map(|v| (v.delivered, v.dropped))
    }

    /// Test-only: presets VF `i`'s raw RX head register, modelling
    /// device state restored unmasked (the wraparound regression test
    /// drives the head to the `u32` boundary). The send path re-masks.
    #[doc(hidden)]
    pub fn corrupt_rx_head(&mut self, i: VfIndex, head: u32) {
        if let Some(vf) = self.vfs.get_mut(&i) {
            vf.rx_head = head;
        }
    }
}

/// Why a send failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendError {
    /// Unknown destination VF.
    NoSuchVf(VfIndex),
    /// Destination VF has no RX ring configured.
    NoRing(VfIndex),
    /// Destination ring is malformed: zero slots, or slot addressing
    /// overflows the DMA address space.
    BadRing(VfIndex),
    /// Payload exceeds the destination slot size.
    TooLarge {
        /// Attempted length.
        len: u32,
        /// Slot capacity.
        slot: u32,
    },
    /// The sender's DMA read faulted (bad TX buffer).
    TxFault(DmaFault),
    /// The receiver's DMA write faulted (bad RX ring).
    RxFault(DmaFault),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{PhysAddr, PhysRange, PAGE_SIZE};
    use crate::mem::FrameAllocator;
    use crate::x86::ept::{Ept, EptFlags};

    /// Two isolated DMA spaces (domains), each owning one VF.
    struct Fixture {
        mem: PhysMem,
        iommu: Iommu,
        nic: SriovNic,
    }

    fn setup() -> Fixture {
        let mut mem = PhysMem::new(256 * PAGE_SIZE);
        let mut alloc =
            FrameAllocator::new(PhysRange::from_len(PhysAddr::new(0x80000), 128 * PAGE_SIZE));
        let mut iommu = Iommu::new();
        let mut nic = SriovNic::new(DeviceId(0x100), 2);
        // Domain A's space: identity window [0x10000, 0x14000).
        let ept_a = Ept::new(&mut mem, &mut alloc).unwrap();
        ept_a
            .map_range(
                &mut mem,
                &mut alloc,
                GuestPhysAddr::new(0x10000),
                PhysAddr::new(0x10000),
                4 * PAGE_SIZE,
                EptFlags::RW,
            )
            .unwrap();
        // Domain B's space: identity window [0x20000, 0x24000).
        let ept_b = Ept::new(&mut mem, &mut alloc).unwrap();
        ept_b
            .map_range(
                &mut mem,
                &mut alloc,
                GuestPhysAddr::new(0x20000),
                PhysAddr::new(0x20000),
                4 * PAGE_SIZE,
                EptFlags::RW,
            )
            .unwrap();
        iommu.attach(nic.vf_device_id(VfIndex(0)), ept_a.root());
        iommu.attach(nic.vf_device_id(VfIndex(1)), ept_b.root());
        nic.configure_ring(
            VfIndex(0),
            VfRing {
                rx_base: GuestPhysAddr::new(0x12000),
                rx_slots: 4,
                slot_bytes: 256,
            },
        );
        nic.configure_ring(
            VfIndex(1),
            VfRing {
                rx_base: GuestPhysAddr::new(0x22000),
                rx_slots: 4,
                slot_bytes: 256,
            },
        );
        Fixture { mem, iommu, nic }
    }

    #[test]
    fn vf_ids_are_distinct_bus_ids() {
        let nic = SriovNic::new(DeviceId(0x100), 4);
        let ids: std::collections::HashSet<_> =
            (0..4).map(|i| nic.vf_device_id(VfIndex(i))).collect();
        assert_eq!(ids.len(), 4);
        assert!(!ids.contains(&nic.pf));
    }

    #[test]
    fn cross_domain_packet_flow() {
        let mut fx = setup();
        fx.mem
            .write(PhysAddr::new(0x10000), b"hello from A")
            .unwrap();
        let slot = fx
            .nic
            .send(
                &mut fx.iommu,
                &mut fx.mem,
                VfIndex(0),
                VfIndex(1),
                GuestPhysAddr::new(0x10000),
                12,
            )
            .unwrap();
        assert_eq!(slot, 0);
        let mut got = [0u8; 12];
        fx.mem.read(PhysAddr::new(0x22000), &mut got).unwrap();
        assert_eq!(&got, b"hello from A");
        assert_eq!(fx.nic.stats(VfIndex(1)), Some((1, 0)));
    }

    #[test]
    fn rings_wrap() {
        let mut fx = setup();
        fx.mem.write(PhysAddr::new(0x10000), b"pkt").unwrap();
        for expect_slot in [0u32, 1, 2, 3, 0, 1] {
            let s = fx
                .nic
                .send(
                    &mut fx.iommu,
                    &mut fx.mem,
                    VfIndex(0),
                    VfIndex(1),
                    GuestPhysAddr::new(0x10000),
                    3,
                )
                .unwrap();
            assert_eq!(s, expect_slot);
        }
    }

    #[test]
    fn rings_wrap_across_u32_boundary_non_power_of_two() {
        // Regression: a free-running rx_head broke the modulo sequence
        // when the u32 counter wrapped with a non-power-of-two ring
        // (`u32::MAX % 3 == 0` is followed by `0 % 3 == 0` — the same
        // slot twice, overwriting an undrained packet). The head is now
        // masked, so consecutive deliveries always advance by exactly
        // one slot, modulo the ring.
        let mut fx = setup();
        fx.nic.configure_ring(
            VfIndex(1),
            VfRing {
                rx_base: GuestPhysAddr::new(0x22000),
                rx_slots: 3,
                slot_bytes: 256,
            },
        );
        fx.nic.corrupt_rx_head(VfIndex(1), u32::MAX - 2);
        fx.mem.write(PhysAddr::new(0x10000), b"pkt").unwrap();
        let mut prev: Option<u32> = None;
        for _ in 0..7 {
            let s = fx
                .nic
                .send(
                    &mut fx.iommu,
                    &mut fx.mem,
                    VfIndex(0),
                    VfIndex(1),
                    GuestPhysAddr::new(0x10000),
                    3,
                )
                .unwrap();
            assert!(s < 3, "slot index always masked");
            if let Some(p) = prev {
                assert_eq!(s, (p + 1) % 3, "strictly cyclic, no skip or dup");
            }
            prev = Some(s);
        }
    }

    #[test]
    fn zero_slot_ring_rejected() {
        let mut fx = setup();
        fx.nic.configure_ring(
            VfIndex(1),
            VfRing {
                rx_base: GuestPhysAddr::new(0x22000),
                rx_slots: 0,
                slot_bytes: 256,
            },
        );
        fx.mem.write(PhysAddr::new(0x10000), b"p").unwrap();
        let err = fx
            .nic
            .send(
                &mut fx.iommu,
                &mut fx.mem,
                VfIndex(0),
                VfIndex(1),
                GuestPhysAddr::new(0x10000),
                1,
            )
            .unwrap_err();
        assert_eq!(err, SendError::BadRing(VfIndex(1)), "no divide-by-zero");
    }

    #[test]
    fn overflowing_slot_address_rejected() {
        let mut fx = setup();
        // A ring base near the top of the DMA address space must not
        // wrap slot addressing around to low memory.
        fx.nic.configure_ring(
            VfIndex(1),
            VfRing {
                rx_base: GuestPhysAddr::new(u64::MAX - 100),
                rx_slots: 4,
                slot_bytes: 256,
            },
        );
        fx.nic.corrupt_rx_head(VfIndex(1), 1); // slot 1: offset overflows
        fx.mem.write(PhysAddr::new(0x10000), b"p").unwrap();
        let err = fx
            .nic
            .send(
                &mut fx.iommu,
                &mut fx.mem,
                VfIndex(0),
                VfIndex(1),
                GuestPhysAddr::new(0x10000),
                1,
            )
            .unwrap_err();
        assert_eq!(err, SendError::BadRing(VfIndex(1)));
        assert_eq!(fx.nic.stats(VfIndex(1)).unwrap().1, 1, "counted as drop");
    }

    #[test]
    fn tx_confined_to_senders_space() {
        let mut fx = setup();
        // A tries to transmit *B's* memory — the VF's context does not
        // map it, so the DMA read faults. The device cannot be used to
        // exfiltrate another domain's data.
        let err = fx
            .nic
            .send(
                &mut fx.iommu,
                &mut fx.mem,
                VfIndex(0),
                VfIndex(1),
                GuestPhysAddr::new(0x20000),
                8,
            )
            .unwrap_err();
        assert!(matches!(err, SendError::TxFault(_)));
    }

    #[test]
    fn rx_ring_must_be_in_receivers_space() {
        let mut fx = setup();
        // B maliciously points its RX ring at A's memory; deliveries
        // fault against *B's* context instead of scribbling on A.
        fx.nic.configure_ring(
            VfIndex(1),
            VfRing {
                rx_base: GuestPhysAddr::new(0x10000), // A's window
                rx_slots: 4,
                slot_bytes: 256,
            },
        );
        fx.mem.write(PhysAddr::new(0x11000), b"x").unwrap();
        let err = fx
            .nic
            .send(
                &mut fx.iommu,
                &mut fx.mem,
                VfIndex(0),
                VfIndex(1),
                GuestPhysAddr::new(0x11000),
                1,
            )
            .unwrap_err();
        assert!(matches!(err, SendError::RxFault(_)));
        assert_eq!(fx.nic.stats(VfIndex(1)).unwrap().1, 1, "counted as a drop");
    }

    #[test]
    fn unconfigured_ring_drops() {
        let mut fx = setup();
        let mut nic2 = SriovNic::new(DeviceId(0x200), 2);
        nic2.configure_ring(
            VfIndex(0),
            VfRing {
                rx_base: GuestPhysAddr::new(0x12000),
                rx_slots: 1,
                slot_bytes: 64,
            },
        );
        // VF1 never configured a ring.
        fx.mem.write(PhysAddr::new(0x10000), b"p").unwrap();
        let err = nic2
            .send(
                &mut fx.iommu,
                &mut fx.mem,
                VfIndex(0),
                VfIndex(1),
                GuestPhysAddr::new(0x10000),
                1,
            )
            .unwrap_err();
        assert_eq!(err, SendError::NoRing(VfIndex(1)));
    }

    #[test]
    fn oversized_payload_rejected() {
        let mut fx = setup();
        let err = fx
            .nic
            .send(
                &mut fx.iommu,
                &mut fx.mem,
                VfIndex(0),
                VfIndex(1),
                GuestPhysAddr::new(0x10000),
                512,
            )
            .unwrap_err();
        assert_eq!(
            err,
            SendError::TooLarge {
                len: 512,
                slot: 256
            }
        );
    }
}
