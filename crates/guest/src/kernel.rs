//! The guest kernel: process table, scheduler, syscalls, pipes, console.
//!
//! The kernel runs as code *inside* a trust domain; every byte it or its
//! processes touch goes through [`tyche_monitor::Monitor::dom_read`] /
//! `dom_write`, i.e. through the hardware structures the monitor
//! programmed. The kernel never talks to the engine directly — when it
//! needs isolation (driver sandboxes, process compartments), it makes
//! monitor calls like any other domain.

use crate::process::{Pid, Process, ProcessState};
use crate::syscall::{SysResult, Syscall};
use std::collections::{HashMap, VecDeque};
use tyche_monitor::Monitor;

/// The guest operating system state.
pub struct GuestOs {
    /// RAM window `[start, end)` the OS manages (its domain's memory).
    pub ram: (u64, u64),
    /// The core this kernel instance runs on.
    pub core: usize,
    processes: HashMap<Pid, Process>,
    run_queue: VecDeque<Pid>,
    next_pid: u32,
    /// Next free RAM for process regions (bump).
    next_region: u64,
    /// Per-process message pipes.
    pipes: HashMap<Pid, VecDeque<Vec<u8>>>,
    /// Console log.
    pub console: Vec<Vec<u8>>,
    /// Context switches performed.
    pub context_switches: u64,
}

impl GuestOs {
    /// Creates a kernel managing `ram` on `core`. The first
    /// `kernel_reserved` bytes of the window belong to the kernel itself.
    pub fn new(ram: (u64, u64), core: usize, kernel_reserved: u64) -> Self {
        assert!(
            ram.0 + kernel_reserved <= ram.1,
            "reservation exceeds guest RAM"
        );
        GuestOs {
            ram,
            core,
            processes: HashMap::new(),
            run_queue: VecDeque::new(),
            next_pid: 1,
            next_region: ram.0 + kernel_reserved,
            pipes: HashMap::new(),
            console: Vec::new(),
            context_switches: 0,
        }
    }

    /// Spawns a process with a `region_len`-byte memory region.
    ///
    /// Returns `None` when guest RAM is exhausted.
    pub fn spawn(&mut self, region_len: u64) -> Option<Pid> {
        let start = (self.next_region + 0xfff) & !0xfff;
        let end = start.checked_add(region_len)?;
        if end > self.ram.1 {
            return None;
        }
        self.next_region = end;
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.processes.insert(pid, Process::new(pid, (start, end)));
        self.pipes.insert(pid, VecDeque::new());
        self.run_queue.push_back(pid);
        Some(pid)
    }

    /// Looks up a process.
    pub fn process(&self, pid: Pid) -> Option<&Process> {
        self.processes.get(&pid)
    }

    /// Round-robin: picks the next ready process, marks it running.
    pub fn schedule(&mut self) -> Option<Pid> {
        let n = self.run_queue.len();
        for _ in 0..n {
            let pid = self.run_queue.pop_front()?;
            let proc = self.processes.get_mut(&pid)?;
            match proc.state {
                ProcessState::Ready => {
                    proc.state = ProcessState::Running;
                    proc.dispatches += 1;
                    self.context_switches += 1;
                    self.run_queue.push_back(pid);
                    return Some(pid);
                }
                ProcessState::Exited(_) => continue, // drop from queue
                _ => self.run_queue.push_back(pid),
            }
        }
        None
    }

    /// The interrupt vector this kernel treats as its scheduler timer.
    pub const TIMER_VECTOR: u32 = 32;

    /// Services pending interrupts for this kernel's domain: a
    /// [`GuestOs::TIMER_VECTOR`] delivery preempts the running process
    /// (if any) and dispatches the next one. Returns the newly running
    /// process when a timer tick caused a switch, plus any non-timer
    /// vectors for the kernel's drivers to handle.
    ///
    /// This is the §4.1 interrupt-routing story from the consumer side:
    /// the kernel only sees ticks because its domain holds the vector
    /// capability — revoke it and scheduling (observably) stops.
    pub fn service_interrupts(
        &mut self,
        monitor: &mut Monitor,
        running: Option<Pid>,
    ) -> (Option<Pid>, Vec<u32>) {
        let pending = monitor.pending_interrupts(self.core);
        let mut other = Vec::new();
        let mut ticked = false;
        for v in pending {
            if v == Self::TIMER_VECTOR {
                ticked = true;
            } else {
                other.push(v);
            }
        }
        if !ticked {
            return (None, other);
        }
        if let Some(pid) = running {
            self.preempt(pid);
        }
        (self.schedule(), other)
    }

    /// Marks the running process ready again (time-slice end).
    pub fn preempt(&mut self, pid: Pid) {
        if let Some(p) = self.processes.get_mut(&pid) {
            if p.state == ProcessState::Running {
                p.state = ProcessState::Ready;
            }
        }
    }

    /// Handles a syscall from `pid`, performing memory access through the
    /// monitor (so a kernel bug or EPT change surfaces as a fault, not
    /// silent corruption).
    pub fn syscall(&mut self, monitor: &mut Monitor, pid: Pid, call: Syscall) -> SysResult {
        let Some(proc) = self.processes.get_mut(&pid) else {
            return SysResult::Denied;
        };
        if matches!(proc.state, ProcessState::Exited(_)) {
            return SysResult::Denied;
        }
        match call {
            Syscall::Alloc { len } => match proc.alloc(len) {
                Some(a) => SysResult::Addr(a),
                None => SysResult::Denied,
            },
            Syscall::Write { addr, data } => {
                if !proc.owns(addr, data.len() as u64) {
                    return SysResult::Denied;
                }
                match monitor.dom_write(self.core, addr, &data) {
                    Ok(()) => SysResult::Ok,
                    Err(_) => SysResult::Denied,
                }
            }
            Syscall::Read { addr, len } => {
                if !proc.owns(addr, len) {
                    return SysResult::Denied;
                }
                let mut buf = vec![0u8; len as usize];
                match monitor.dom_read(self.core, addr, &mut buf) {
                    Ok(()) => SysResult::Bytes(buf),
                    Err(_) => SysResult::Denied,
                }
            }
            Syscall::ConsoleWrite { data } => {
                self.console.push(data);
                SysResult::Ok
            }
            Syscall::PipeSend { dst, data } => {
                let Some(dst_proc) = self.processes.get(&dst) else {
                    return SysResult::Denied;
                };
                if matches!(dst_proc.state, ProcessState::Exited(_)) {
                    return SysResult::Denied;
                }
                self.pipes
                    .get_mut(&dst)
                    .expect("pipe exists")
                    .push_back(data);
                // Wake a blocked receiver.
                if let Some(d) = self.processes.get_mut(&dst) {
                    if d.state == ProcessState::Blocked {
                        d.state = ProcessState::Ready;
                    }
                }
                SysResult::Ok
            }
            Syscall::PipeRecv => {
                let pipe = self.pipes.get_mut(&pid).expect("pipe exists");
                match pipe.pop_front() {
                    Some(msg) => SysResult::Bytes(msg),
                    None => {
                        self.processes.get_mut(&pid).expect("checked").state =
                            ProcessState::Blocked;
                        SysResult::WouldBlock
                    }
                }
            }
            Syscall::Exit { code } => {
                self.processes.get_mut(&pid).expect("checked").state = ProcessState::Exited(code);
                SysResult::Ok
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyche_monitor::{boot_x86, BootConfig};

    fn os() -> (Monitor, GuestOs) {
        let m = boot_x86(BootConfig::default());
        let end = m.machine.domain_ram.end.as_u64();
        let g = GuestOs::new((0, end), 0, 0x10_0000);
        (m, g)
    }

    #[test]
    fn spawn_and_schedule_round_robin() {
        let (_m, mut g) = os();
        let a = g.spawn(0x10_000).unwrap();
        let b = g.spawn(0x10_000).unwrap();
        let first = g.schedule().unwrap();
        g.preempt(first);
        let second = g.schedule().unwrap();
        g.preempt(second);
        assert_ne!(first, second);
        assert_eq!(g.schedule().unwrap(), first, "round robin wraps");
        assert!(
            g.process(a).unwrap().region.0 >= 0x10_0000,
            "kernel reservation respected"
        );
        assert_ne!(g.process(a).unwrap().region, g.process(b).unwrap().region);
    }

    #[test]
    fn syscall_memory_confined_to_process_region() {
        let (mut m, mut g) = os();
        let a = g.spawn(0x10_000).unwrap();
        let b = g.spawn(0x10_000).unwrap();
        let addr = match g.syscall(&mut m, a, Syscall::Alloc { len: 64 }) {
            SysResult::Addr(x) => x,
            other => panic!("{other:?}"),
        };
        assert_eq!(
            g.syscall(
                &mut m,
                a,
                Syscall::Write {
                    addr,
                    data: b"mine".to_vec()
                }
            ),
            SysResult::Ok
        );
        assert_eq!(
            g.syscall(&mut m, a, Syscall::Read { addr, len: 4 }),
            SysResult::Bytes(b"mine".to_vec())
        );
        // Process b cannot read a's memory through syscalls.
        assert_eq!(
            g.syscall(&mut m, b, Syscall::Read { addr, len: 4 }),
            SysResult::Denied
        );
        // Nor write outside its region.
        assert_eq!(
            g.syscall(
                &mut m,
                b,
                Syscall::Write {
                    addr: 0x0,
                    data: vec![1]
                }
            ),
            SysResult::Denied
        );
    }

    #[test]
    fn pipes_block_and_wake() {
        let (mut m, mut g) = os();
        let a = g.spawn(0x1000).unwrap();
        let b = g.spawn(0x1000).unwrap();
        assert_eq!(
            g.syscall(&mut m, b, Syscall::PipeRecv),
            SysResult::WouldBlock
        );
        assert_eq!(g.process(b).unwrap().state, ProcessState::Blocked);
        assert_eq!(
            g.syscall(
                &mut m,
                a,
                Syscall::PipeSend {
                    dst: b,
                    data: b"msg".to_vec()
                }
            ),
            SysResult::Ok
        );
        assert_eq!(g.process(b).unwrap().state, ProcessState::Ready, "woken");
        assert_eq!(
            g.syscall(&mut m, b, Syscall::PipeRecv),
            SysResult::Bytes(b"msg".to_vec())
        );
    }

    #[test]
    fn exit_removes_from_scheduling() {
        let (mut m, mut g) = os();
        let a = g.spawn(0x1000).unwrap();
        let _ = g.syscall(&mut m, a, Syscall::Exit { code: 3 });
        assert_eq!(g.process(a).unwrap().state, ProcessState::Exited(3));
        assert_eq!(g.schedule(), None);
        // Dead processes get no syscalls.
        assert_eq!(g.syscall(&mut m, a, Syscall::PipeRecv), SysResult::Denied);
        // Sending to a dead process fails.
        let b = g.spawn(0x1000).unwrap();
        assert_eq!(
            g.syscall(
                &mut m,
                b,
                Syscall::PipeSend {
                    dst: a,
                    data: vec![]
                }
            ),
            SysResult::Denied
        );
    }

    #[test]
    fn console_accumulates() {
        let (mut m, mut g) = os();
        let a = g.spawn(0x1000).unwrap();
        g.syscall(
            &mut m,
            a,
            Syscall::ConsoleWrite {
                data: b"hello".to_vec(),
            },
        );
        g.syscall(
            &mut m,
            a,
            Syscall::ConsoleWrite {
                data: b"world".to_vec(),
            },
        );
        assert_eq!(g.console.len(), 2);
    }

    #[test]
    fn timer_interrupts_drive_preemption() {
        // Wire the timer vector to the OS domain and let ticks drive the
        // scheduler: each delivery rotates the running process.
        let (mut m, mut g) = os();
        let a = g.spawn(0x1000).unwrap();
        let b = g.spawn(0x1000).unwrap();
        // The root domain already holds vector 32 from boot; the backend
        // routed it there, so raises land in the OS's queue.
        assert!(m.machine.irq.raise(GuestOs::TIMER_VECTOR).is_some());
        let (now, other) = g.service_interrupts(&mut m, None);
        assert_eq!(now, Some(a));
        assert!(other.is_empty());
        // Next tick preempts a and dispatches b.
        m.machine.irq.raise(GuestOs::TIMER_VECTOR).unwrap();
        let (now, _) = g.service_interrupts(&mut m, now);
        assert_eq!(now, Some(b));
        // Non-timer vectors are handed to drivers, not the scheduler.
        m.machine.irq.raise(33).unwrap();
        let (sched, other) = g.service_interrupts(&mut m, now);
        assert_eq!(sched, None, "no tick, no switch");
        assert_eq!(other, vec![33]);
        // No pending interrupts: nothing happens.
        let (sched, other) = g.service_interrupts(&mut m, now);
        assert_eq!((sched, other.len()), (None, 0));
    }

    #[test]
    fn ram_exhaustion_refused() {
        let (_m, mut g) = os();
        assert!(g.spawn(1 << 40).is_none());
    }
}
