//! The guest OS syscall surface.

use crate::process::Pid;

/// A system call issued by a guest process.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Syscall {
    /// Allocate `len` bytes in the caller's region; returns the address.
    Alloc {
        /// Bytes requested.
        len: u64,
    },
    /// Write `data` at `addr` (must be inside the caller's region).
    Write {
        /// Destination address.
        addr: u64,
        /// Bytes to store.
        data: Vec<u8>,
    },
    /// Read `len` bytes from `addr` (must be inside the caller's region).
    Read {
        /// Source address.
        addr: u64,
        /// Bytes to load.
        len: u64,
    },
    /// Append `data` to the console log.
    ConsoleWrite {
        /// Message bytes.
        data: Vec<u8>,
    },
    /// Send `data` to `dst`'s pipe.
    PipeSend {
        /// Receiver pid.
        dst: Pid,
        /// Message bytes.
        data: Vec<u8>,
    },
    /// Receive one message from the caller's pipe (blocks when empty).
    PipeRecv,
    /// Exit with `code`.
    Exit {
        /// Exit code.
        code: i32,
    },
}

/// Result of a system call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SysResult {
    /// Success with no value.
    Ok,
    /// An address (Alloc).
    Addr(u64),
    /// Bytes (Read / PipeRecv).
    Bytes(Vec<u8>),
    /// The caller blocked (PipeRecv on empty pipe).
    WouldBlock,
    /// The call was refused (bad address, dead peer, out of memory).
    Denied,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syscall_variants_compare() {
        assert_eq!(Syscall::PipeRecv, Syscall::PipeRecv);
        assert_ne!(SysResult::Ok, SysResult::Denied);
    }
}
