//! A small guest operating system run as a trust domain.
//!
//! The paper's prototype "boots on bare metal and runs an unmodified
//! Ubuntu distribution and Linux kernel as an initial domain" (§4). The
//! reproduction cannot run Linux, so this crate provides the closest
//! exercising substitute: a compact OS kernel with processes, a
//! round-robin scheduler, syscalls, pipes, and a device-driver framework
//! — enough to drive every monitor path the paper's deployment (Figure 3)
//! needs:
//!
//! - the OS manages *its own* abstractions (processes) while the monitor
//!   manages domains — the two-layer split of §3.5;
//! - the OS sandboxes untrusted **drivers** in kernel compartments
//!   ([`driver`]), the §4.2 "sandboxing unsafe code in the kernel" story;
//! - processes get monitor-backed **sub-compartments** ([`compartment`]),
//!   "the monitor transparently allows sub-compartments within a
//!   process";
//! - the whole OS can run inside a [`libtyche::ConfidentialVm`].
//!
//! The kernel is single-address-space (the domain names physical memory);
//! process isolation inside the guest is the OS's own bookkeeping — which
//! is exactly the paper's point: the OS remains the resource manager, and
//! only *isolation* moves to the monitor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compartment;
pub mod driver;
pub mod kernel;
pub mod process;
pub mod syscall;

pub use driver::{Driver, DriverHost, DriverRequest, DriverResponse};
pub use kernel::GuestOs;
pub use process::{Pid, Process, ProcessState};
pub use syscall::{SysResult, Syscall};
