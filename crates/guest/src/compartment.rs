//! Process sub-compartments (§3.5: "the OS still provides the process
//! abstraction, while the monitor transparently allows sub-compartments
//! within a process").
//!
//! A compartment carves a slice of a *process's* memory into its own
//! trust domain: the process keeps running under the OS as before, but
//! the untrusted library inside the compartment can no longer read the
//! rest of the process. This is the paper's answer to "applications give
//! thousands of unverified libraries unrestricted access to their address
//! space" — without the cost of a separate process.

use crate::process::Pid;
use libtyche::sandbox::{Sandbox, SandboxOutcome};
use tyche_monitor::{Fault, Monitor, Status};

/// A library compartment inside a process.
pub struct Compartment {
    /// The owning process.
    pub pid: Pid,
    /// The monitor-backed sandbox realizing the compartment.
    sandbox: Sandbox,
}

impl Compartment {
    /// Creates a compartment over `[start, end)` of the process's region,
    /// with an in-process shared `window` for arguments/results.
    ///
    /// `start..end` and `window` must lie inside the process region — the
    /// OS checks its own invariant before asking the monitor.
    pub fn create(
        monitor: &mut Monitor,
        core: usize,
        pid: Pid,
        process_region: (u64, u64),
        compartment: (u64, u64),
        window: (u64, u64),
    ) -> Result<Compartment, Status> {
        let inside = |r: (u64, u64)| r.0 >= process_region.0 && r.1 <= process_region.1;
        if !inside(compartment) || !inside(window) {
            return Err(Status::InvalidArg);
        }
        let sandbox = Sandbox::create(monitor, core, compartment, Some(window))?;
        Ok(Compartment { pid, sandbox })
    }

    /// Runs untrusted library code in the compartment.
    pub fn invoke<F>(
        &self,
        monitor: &mut Monitor,
        core: usize,
        code: F,
    ) -> Result<SandboxOutcome, Status>
    where
        F: FnOnce(&mut libtyche::sandbox::SandboxCtx<'_>) -> Result<(), Fault>,
    {
        self.sandbox.run(monitor, core, code)
    }

    /// Dissolves the compartment, returning (zeroed) memory to the
    /// process.
    pub fn dissolve(self, monitor: &mut Monitor, core: usize) -> Result<(), Status> {
        self.sandbox.destroy(monitor, core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::GuestOs;
    use tyche_monitor::{boot_x86, BootConfig};

    #[test]
    fn library_confined_within_process() {
        let mut m = boot_x86(BootConfig::default());
        let end = m.machine.domain_ram.end.as_u64();
        let mut os = GuestOs::new((0, end), 0, 0x10_0000);
        let pid = os.spawn(0x100_000).unwrap();
        let region = os.process(pid).unwrap().region;

        // The process keeps secrets at the start of its region and gives
        // the untrusted parser library a compartment at the end.
        m.dom_write(0, region.0, b"process secret").unwrap();
        let comp_region = (region.1 - 0x4000, region.1 - 0x1000);
        let window = (region.1 - 0x1000, region.1);
        let comp = Compartment::create(&mut m, 0, pid, region, comp_region, window).unwrap();

        // The library reads its input from the window and faults trying
        // to read the process secret.
        m.dom_write(0, window.0, b"input").unwrap();
        let out = comp
            .invoke(&mut m, 0, |ctx| {
                let mut input = [0u8; 5];
                ctx.read(window.0, &mut input)?;
                let mut steal = [0u8; 14];
                ctx.read(region.0, &mut steal)?; // must fault
                Ok(())
            })
            .unwrap();
        assert!(matches!(out, SandboxOutcome::Faulted(f) if f.addr == region.0));

        // The process itself still owns the rest of its region.
        let mut buf = [0u8; 14];
        m.dom_read(0, region.0, &mut buf).unwrap();
        assert_eq!(&buf, b"process secret");
    }

    #[test]
    fn compartment_bounds_validated_by_os() {
        let mut m = boot_x86(BootConfig::default());
        let err = match Compartment::create(
            &mut m,
            0,
            Pid(1),
            (0x10_0000, 0x20_0000),
            (0x30_0000, 0x31_0000), // outside the process
            (0x10_0000, 0x10_1000),
        ) {
            Err(e) => e,
            Ok(_) => panic!("out-of-process compartment accepted"),
        };
        assert_eq!(err, Status::InvalidArg);
    }

    #[test]
    fn dissolve_returns_zeroed_memory() {
        let mut m = boot_x86(BootConfig::default());
        let end = m.machine.domain_ram.end.as_u64();
        let mut os = GuestOs::new((0, end), 0, 0x10_0000);
        let pid = os.spawn(0x100_000).unwrap();
        let region = os.process(pid).unwrap().region;
        let comp_region = (region.0 + 0x10_000, region.0 + 0x14_000);
        let window = (region.0 + 0x14_000, region.0 + 0x15_000);
        let comp = Compartment::create(&mut m, 0, pid, region, comp_region, window).unwrap();
        comp.invoke(&mut m, 0, |ctx| ctx.write(comp_region.0, b"library state"))
            .unwrap();
        comp.dissolve(&mut m, 0).unwrap();
        let mut buf = [0u8; 13];
        m.dom_read(0, comp_region.0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 13]);
    }
}
