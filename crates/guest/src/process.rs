//! Guest processes: the OS's own abstraction, below the monitor's radar.

/// A process identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Pid(pub u32);

/// Scheduler state of a process.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProcessState {
    /// Runnable.
    Ready,
    /// Currently on a core.
    Running,
    /// Waiting on a pipe read.
    Blocked,
    /// Exited with a code.
    Exited(i32),
}

/// A guest process.
#[derive(Clone, Debug)]
pub struct Process {
    /// Its pid.
    pub pid: Pid,
    /// Memory region `[start, end)` of guest RAM the OS assigned to it.
    pub region: (u64, u64),
    /// Allocation cursor inside the region (bump allocator).
    pub brk: u64,
    /// Scheduler state.
    pub state: ProcessState,
    /// Number of times the scheduler dispatched it.
    pub dispatches: u64,
}

impl Process {
    /// Creates a ready process over `region`.
    pub fn new(pid: Pid, region: (u64, u64)) -> Self {
        Process {
            pid,
            region,
            brk: region.0,
            state: ProcessState::Ready,
            dispatches: 0,
        }
    }

    /// Allocates `len` bytes from the process region; `None` when full.
    pub fn alloc(&mut self, len: u64) -> Option<u64> {
        let aligned = (self.brk + 7) & !7;
        let end = aligned.checked_add(len)?;
        if end > self.region.1 {
            return None;
        }
        self.brk = end;
        Some(aligned)
    }

    /// True when `addr..addr+len` lies inside the process region — the
    /// OS-level access check for syscall buffers.
    pub fn owns(&self, addr: u64, len: u64) -> bool {
        addr >= self.region.0
            && addr
                .checked_add(len)
                .map(|e| e <= self.region.1)
                .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocation() {
        let mut p = Process::new(Pid(1), (0x1000, 0x2000));
        let a = p.alloc(100).unwrap();
        assert_eq!(a, 0x1000);
        let b = p.alloc(100).unwrap();
        assert!(b >= a + 100);
        assert_eq!(b % 8, 0, "aligned");
        assert!(p.alloc(0x10000).is_none(), "over-allocation refused");
    }

    #[test]
    fn ownership_check() {
        let p = Process::new(Pid(1), (0x1000, 0x2000));
        assert!(p.owns(0x1000, 0x1000));
        assert!(!p.owns(0xfff, 2));
        assert!(!p.owns(0x1fff, 2));
        assert!(!p.owns(u64::MAX, 2), "overflow-safe");
    }
}
