//! Kernel drivers and driver sandboxing (§4.2: "sandboxing unsafe code
//! downloads in the kernel"; §2.2: kernels today must run untrusted
//! drivers in user mode "at the cost of extra context switches").
//!
//! A [`Driver`] is untrusted code the kernel loads. The [`DriverHost`]
//! runs it either **direct** (in the kernel's own domain — fast, but a
//! wild write corrupts the kernel) or **sandboxed** (inside a
//! `libtyche::Sandbox` kernel compartment — a wild write faults and the
//! kernel survives). Experiment C11 measures the cost of the two modes;
//! the tests here establish the safety difference.

use libtyche::sandbox::{Sandbox, SandboxCtx, SandboxOutcome};
use tyche_monitor::{Fault, Monitor, Status};

/// A request to a driver: operate on `len` bytes at `addr` (a
/// kernel-visible buffer inside the driver's window).
#[derive(Clone, Copy, Debug)]
pub struct DriverRequest {
    /// Opcode (driver-specific).
    pub op: u32,
    /// Buffer address.
    pub addr: u64,
    /// Buffer length.
    pub len: u64,
}

/// A driver's answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriverResponse {
    /// Request completed.
    Done,
    /// The driver rejected the request.
    Rejected,
    /// The driver faulted (only observable in sandboxed mode — direct
    /// mode corrupts silently or crashes the kernel).
    Crashed,
}

/// Memory interface a driver uses — both modes provide it, so driver code
/// is identical in either.
pub trait DriverMemory {
    /// Reads driver-visible memory.
    fn read(&mut self, addr: u64, out: &mut [u8]) -> Result<(), Fault>;
    /// Writes driver-visible memory.
    fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), Fault>;
}

/// Untrusted driver code.
pub trait Driver {
    /// Handles one request.
    fn handle(&mut self, mem: &mut dyn DriverMemory, req: DriverRequest) -> Result<(), Fault>;
}

/// Direct mode memory: the kernel's own domain view.
struct DirectMemory<'a> {
    monitor: &'a mut Monitor,
    core: usize,
}

impl DriverMemory for DirectMemory<'_> {
    fn read(&mut self, addr: u64, out: &mut [u8]) -> Result<(), Fault> {
        self.monitor.dom_read(self.core, addr, out)
    }

    fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), Fault> {
        self.monitor.dom_write(self.core, addr, data)
    }
}

impl DriverMemory for SandboxCtx<'_> {
    fn read(&mut self, addr: u64, out: &mut [u8]) -> Result<(), Fault> {
        SandboxCtx::read(self, addr, out)
    }

    fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), Fault> {
        SandboxCtx::write(self, addr, data)
    }
}

/// How the kernel hosts a driver.
pub enum DriverHost {
    /// In the kernel's own domain.
    Direct,
    /// In a monitor-enforced kernel compartment.
    Sandboxed(Sandbox),
}

impl DriverHost {
    /// Creates a sandboxed host: scratch `[start, end)` for the driver,
    /// with a shared `window` for request buffers.
    pub fn sandboxed(
        monitor: &mut Monitor,
        core: usize,
        scratch: (u64, u64),
        window: (u64, u64),
    ) -> Result<DriverHost, Status> {
        Ok(DriverHost::Sandboxed(Sandbox::create(
            monitor,
            core,
            scratch,
            Some(window),
        )?))
    }

    /// Dispatches `req` to `driver` under this host's isolation mode.
    pub fn dispatch(
        &self,
        monitor: &mut Monitor,
        core: usize,
        driver: &mut dyn Driver,
        req: DriverRequest,
    ) -> Result<DriverResponse, Status> {
        match self {
            DriverHost::Direct => {
                let mut mem = DirectMemory { monitor, core };
                Ok(match driver.handle(&mut mem, req) {
                    Ok(()) => DriverResponse::Done,
                    Err(_) => DriverResponse::Crashed,
                })
            }
            DriverHost::Sandboxed(sb) => {
                let out = sb.run(monitor, core, |ctx| driver.handle(ctx, req))?;
                Ok(match out {
                    SandboxOutcome::Completed => DriverResponse::Done,
                    SandboxOutcome::Faulted(_) => DriverResponse::Crashed,
                })
            }
        }
    }
}

/// A well-behaved "block device": XORs the buffer with a key (models an
/// encrypting disk).
pub struct XorBlockDriver {
    /// The XOR key.
    pub key: u8,
}

impl Driver for XorBlockDriver {
    fn handle(&mut self, mem: &mut dyn DriverMemory, req: DriverRequest) -> Result<(), Fault> {
        let mut buf = vec![0u8; req.len as usize];
        mem.read(req.addr, &mut buf)?;
        for b in buf.iter_mut() {
            *b ^= self.key;
        }
        mem.write(req.addr, &buf)
    }
}

/// A buggy driver: on opcode 666 it wild-writes to an attacker-chosen
/// kernel address (models a memory-safety bug in third-party driver
/// code).
pub struct BuggyDriver {
    /// Address the bug scribbles over.
    pub wild_target: u64,
}

impl Driver for BuggyDriver {
    fn handle(&mut self, mem: &mut dyn DriverMemory, req: DriverRequest) -> Result<(), Fault> {
        if req.op == 666 {
            // The bug: a stray pointer write far outside the request.
            mem.write(self.wild_target, b"CORRUPTION")?;
        }
        mem.write(req.addr, b"ok")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyche_monitor::{boot_x86, BootConfig};

    const KERNEL_STATE: u64 = 0x8_0000;
    const WINDOW: (u64, u64) = (0x30_0000, 0x30_1000);
    const SCRATCH: (u64, u64) = (0x31_0000, 0x31_4000);

    #[test]
    fn direct_driver_works_but_can_corrupt_kernel() {
        let mut m = boot_x86(BootConfig::default());
        m.dom_write(0, KERNEL_STATE, b"kernel struct").unwrap();
        m.dom_write(0, WINDOW.0, b"abcd").unwrap();
        let host = DriverHost::Direct;
        let mut good = XorBlockDriver { key: 0xff };
        let resp = host
            .dispatch(
                &mut m,
                0,
                &mut good,
                DriverRequest {
                    op: 1,
                    addr: WINDOW.0,
                    len: 4,
                },
            )
            .unwrap();
        assert_eq!(resp, DriverResponse::Done);

        // The buggy driver in direct mode corrupts kernel state silently.
        let mut buggy = BuggyDriver {
            wild_target: KERNEL_STATE,
        };
        let resp = host
            .dispatch(
                &mut m,
                0,
                &mut buggy,
                DriverRequest {
                    op: 666,
                    addr: WINDOW.0,
                    len: 4,
                },
            )
            .unwrap();
        assert_eq!(
            resp,
            DriverResponse::Done,
            "no fault: the write hit kernel memory"
        );
        let mut buf = [0u8; 10];
        m.dom_read(0, KERNEL_STATE, &mut buf).unwrap();
        assert_eq!(&buf, b"CORRUPTION", "kernel state destroyed");
    }

    #[test]
    fn sandboxed_driver_contained() {
        let mut m = boot_x86(BootConfig::default());
        m.dom_write(0, KERNEL_STATE, b"kernel struct").unwrap();
        m.dom_write(0, WINDOW.0, b"abcd").unwrap();
        let host = DriverHost::sandboxed(&mut m, 0, SCRATCH, WINDOW).unwrap();

        // The good driver still works through the shared window.
        let mut good = XorBlockDriver { key: 0xff };
        let resp = host
            .dispatch(
                &mut m,
                0,
                &mut good,
                DriverRequest {
                    op: 1,
                    addr: WINDOW.0,
                    len: 4,
                },
            )
            .unwrap();
        assert_eq!(resp, DriverResponse::Done);
        let mut buf = [0u8; 4];
        m.dom_read(0, WINDOW.0, &mut buf).unwrap();
        assert_eq!(buf, [b'a' ^ 0xff, b'b' ^ 0xff, b'c' ^ 0xff, b'd' ^ 0xff]);

        // The buggy driver faults instead of corrupting the kernel.
        let mut buggy = BuggyDriver {
            wild_target: KERNEL_STATE,
        };
        let resp = host
            .dispatch(
                &mut m,
                0,
                &mut buggy,
                DriverRequest {
                    op: 666,
                    addr: WINDOW.0,
                    len: 4,
                },
            )
            .unwrap();
        assert_eq!(resp, DriverResponse::Crashed);
        let mut buf = [0u8; 13];
        m.dom_read(0, KERNEL_STATE, &mut buf).unwrap();
        assert_eq!(&buf, b"kernel struct", "kernel state intact");
    }

    #[test]
    fn same_driver_code_both_modes() {
        // The Driver trait abstracts the memory interface: identical code
        // runs direct or sandboxed, so sandboxing is a deployment choice,
        // not a rewrite (the paper's "retrofitted with minimal
        // disruption").
        let mut m = boot_x86(BootConfig::default());
        m.dom_write(0, WINDOW.0, &[0x11, 0x22]).unwrap();
        let mut drv = XorBlockDriver { key: 0x0f };
        DriverHost::Direct
            .dispatch(
                &mut m,
                0,
                &mut drv,
                DriverRequest {
                    op: 1,
                    addr: WINDOW.0,
                    len: 2,
                },
            )
            .unwrap();
        let host = DriverHost::sandboxed(&mut m, 0, SCRATCH, WINDOW).unwrap();
        host.dispatch(
            &mut m,
            0,
            &mut drv,
            DriverRequest {
                op: 1,
                addr: WINDOW.0,
                len: 2,
            },
        )
        .unwrap();
        let mut buf = [0u8; 2];
        m.dom_read(0, WINDOW.0, &mut buf).unwrap();
        assert_eq!(buf, [0x11, 0x22], "double XOR restored the bytes");
    }
}
