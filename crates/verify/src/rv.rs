//! Offline runtime verification: temporal invariants over drained traces.
//!
//! The trace layer ([`tyche_core::trace`]) records what the monitor and
//! the simulated hardware *did*; this module replays a drained
//! [`TraceLog`] against the temporal invariants the design documents
//! *promise*. Each checker is a small deterministic automaton over the
//! event stream — no access to live state, so a trace captured from a
//! fuzz campaign (or shipped as an artifact) can be re-verified on any
//! machine. A violated invariant produces a [`Finding`] pinpointing the
//! exact event index where the automaton saw the contradiction, which is
//! what the trace-oracle test suite locks down: every checker has both a
//! conforming run and a seeded corruption it must catch at a known
//! index.
//!
//! The seven invariants:
//!
//! 1. **revoke-shootdown** — every domain queued for invalidation on a
//!    core (`shoot-queue`) is delivered by that core's next
//!    `shoot-batch` (whose `drained` count must match), and no queue is
//!    left pending at a phase boundary: revoked translations are flushed
//!    before the trace ends.
//! 2. **quarantine-sticky** — after `quarantine(d)`, no transition ever
//!    enters `d` again.
//! 3. **fast-cache** — after a generation bump, the fast-path cache may
//!    only serve a `(core, actor, cap)` key that was re-filled after
//!    that bump: a `cache-hit` without an intervening `cache-fill` is a
//!    stale validation.
//! 4. **ipi-accounting** — the IPIs a core charged since its previous
//!    `shoot-batch` must equal the `ipis` count that batch reports, and
//!    no IPIs may be left unaccounted at a phase boundary.
//! 5. **gen-monotonic** — the engine generation only moves forward:
//!    `gen-bump` is strictly increasing, seqlock snapshots
//!    (`snap-read`) are non-decreasing and never ahead of the last
//!    bump.
//! 6. **transition-stack** — enters and returns nest: every `return`
//!    pops the matching `enter` (same pair, reversed), per core; and
//!    hypercall enter/exit brackets stay balanced per core.
//! 7. **channel-seq** — per attested peer, channel epochs only advance,
//!    send and receive sequence numbers are strictly sequential from 0
//!    within an epoch, no traffic moves on a torn-down channel, a
//!    violation on an open channel is followed immediately by its
//!    teardown, and a violated peer is never re-established (sticky
//!    quarantine, observed at the trace level).

use std::collections::{BTreeMap, BTreeSet};

use tyche_core::trace::{EventKind, TraceEvent, TraceLog};

/// One invariant violation, anchored to the event that exposed it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Stable checker name (`revoke-shootdown`, `quarantine-sticky`,
    /// `fast-cache`, `ipi-accounting`, `gen-monotonic`,
    /// `transition-stack`, `channel-seq`).
    pub checker: &'static str,
    /// Index into the drained trace (the event where the automaton saw
    /// the contradiction; the end-of-trace index for leaked state).
    pub index: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl core::fmt::Display for Finding {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{}] event {}: {}", self.checker, self.index, self.message)
    }
}

/// Names of all checkers, in the order [`check_all`] runs them.
pub const CHECKERS: [&str; 7] = [
    "revoke-shootdown",
    "quarantine-sticky",
    "fast-cache",
    "ipi-accounting",
    "gen-monotonic",
    "transition-stack",
    "channel-seq",
];

/// Runs every checker over `log` and collects all findings, ordered by
/// checker then by event index. Empty = the trace satisfies all seven
/// temporal invariants.
pub fn check_all(log: &TraceLog) -> Vec<Finding> {
    let events = log.events();
    let mut findings = Vec::new();
    findings.extend(check_revoke_shootdown(events));
    findings.extend(check_quarantine_sticky(events));
    findings.extend(check_fast_cache(events));
    findings.extend(check_ipi_accounting(events));
    findings.extend(check_gen_monotonic(events));
    findings.extend(check_transition_stack(events));
    findings.extend(check_channel_seq(events));
    findings
}

/// Checker 1: revoke → shootdown before the phase ends.
///
/// Models each core's pending invalidation set. `shoot-queue` inserts;
/// the same core's `shoot-batch` must drain exactly the modeled set
/// (its `drained` count is cross-checked). A non-empty set at
/// `phase-end` (or at end of trace) is a leaked invalidation: some
/// domain lost translations that were never flushed remotely.
pub fn check_revoke_shootdown(events: &[TraceEvent]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut pending: BTreeMap<u32, BTreeSet<u64>> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        match ev.kind {
            EventKind::ShootQueue { domain } => {
                pending.entry(ev.core).or_default().insert(domain);
            }
            EventKind::ShootBatch { drained, .. } => {
                let modeled = pending.remove(&ev.core).unwrap_or_default();
                if modeled.len() as u64 != drained {
                    findings.push(Finding {
                        checker: "revoke-shootdown",
                        index: i,
                        message: format!(
                            "core {} batch drained {} but {} invalidations were queued",
                            ev.core,
                            drained,
                            modeled.len()
                        ),
                    });
                }
            }
            EventKind::PhaseEnd { phase } => {
                for (core, set) in &pending {
                    if !set.is_empty() {
                        findings.push(Finding {
                            checker: "revoke-shootdown",
                            index: i,
                            message: format!(
                                "phase {phase} ended with {} undelivered invalidation(s) on core {core}",
                                set.len()
                            ),
                        });
                    }
                }
                pending.clear();
            }
            _ => {}
        }
    }
    let end = events.len().saturating_sub(1);
    for (core, set) in &pending {
        if !set.is_empty() {
            findings.push(Finding {
                checker: "revoke-shootdown",
                index: end,
                message: format!(
                    "trace ended with {} undelivered invalidation(s) on core {core}",
                    set.len()
                ),
            });
        }
    }
    findings
}

/// Checker 2: quarantine is sticky.
///
/// Once `quarantine(d)` appears, any later transition *into* `d` —
/// mediated or fast — violates the containment the quarantine state
/// promises.
pub fn check_quarantine_sticky(events: &[TraceEvent]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut quarantined: BTreeSet<u64> = BTreeSet::new();
    for (i, ev) in events.iter().enumerate() {
        match ev.kind {
            EventKind::Quarantine { domain } => {
                quarantined.insert(domain);
            }
            EventKind::Enter { to, fast, .. } if quarantined.contains(&to) => {
                findings.push(Finding {
                    checker: "quarantine-sticky",
                    index: i,
                    message: format!(
                        "{} transition entered quarantined domain {to}",
                        if fast { "fast" } else { "mediated" }
                    ),
                });
            }
            _ => {}
        }
    }
    findings
}

/// Checker 3: fast-path cache validity windows.
///
/// A `cache-hit` for `(core, actor, cap)` is only sound if that key was
/// `cache-fill`ed after the most recent generation bump — otherwise the
/// monitor served a validation the engine has since invalidated.
pub fn check_fast_cache(events: &[TraceEvent]) -> Vec<Finding> {
    let mut findings = Vec::new();
    // Keys filled since the last gen-bump (validity window).
    let mut valid: BTreeSet<(u32, u64, u64)> = BTreeSet::new();
    let mut any_bump = false;
    for (i, ev) in events.iter().enumerate() {
        match ev.kind {
            EventKind::GenBump { .. } => {
                valid.clear();
                any_bump = true;
            }
            EventKind::CacheFill { actor, cap, .. } => {
                valid.insert((ev.core, actor, cap));
            }
            // Before the first bump every fill since trace start counts;
            // afterwards only post-bump fills are live.
            EventKind::CacheHit { actor, cap, gen }
                if any_bump && !valid.contains(&(ev.core, actor, cap)) =>
            {
                findings.push(Finding {
                    checker: "fast-cache",
                    index: i,
                    message: format!(
                        "core {} served stale cache entry (actor {actor}, cap {cap}, believed gen {gen}) with no re-fill after the last generation bump",
                        ev.core
                    ),
                });
            }
            _ => {}
        }
    }
    findings
}

/// Checker 4: IPI delivery accounting.
///
/// Each `ipi` event charges one remote flush from its core; the core's
/// next `shoot-batch` must report exactly that many in `ipis`. IPIs
/// still unaccounted at a phase boundary were charged but never
/// attributed to a batch.
pub fn check_ipi_accounting(events: &[TraceEvent]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut outstanding: BTreeMap<u32, u64> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        match ev.kind {
            EventKind::Ipi { .. } => {
                *outstanding.entry(ev.core).or_default() += 1;
            }
            EventKind::ShootBatch { ipis, .. } => {
                let charged = outstanding.remove(&ev.core).unwrap_or(0);
                if charged != ipis {
                    findings.push(Finding {
                        checker: "ipi-accounting",
                        index: i,
                        message: format!(
                            "core {} batch reports {ipis} IPI(s) but {charged} were charged since its previous batch",
                            ev.core
                        ),
                    });
                }
            }
            EventKind::PhaseEnd { phase } => {
                for (core, n) in &outstanding {
                    if *n > 0 {
                        findings.push(Finding {
                            checker: "ipi-accounting",
                            index: i,
                            message: format!(
                                "phase {phase} ended with {n} unattributed IPI(s) from core {core}"
                            ),
                        });
                    }
                }
                outstanding.clear();
            }
            _ => {}
        }
    }
    let end = events.len().saturating_sub(1);
    for (core, n) in &outstanding {
        if *n > 0 {
            findings.push(Finding {
                checker: "ipi-accounting",
                index: end,
                message: format!("trace ended with {n} unattributed IPI(s) from core {core}"),
            });
        }
    }
    findings
}

/// Checker 5: generation monotonicity.
///
/// `gen-bump` must be strictly increasing (every mutation advances the
/// counter exactly once — a repeat or regression means lost
/// invalidation); `snap-read` generations are non-decreasing and never
/// exceed the latest bump (a snapshot cannot observe the future).
pub fn check_gen_monotonic(events: &[TraceEvent]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut last_bump: Option<u64> = None;
    let mut last_snap: Option<u64> = None;
    for (i, ev) in events.iter().enumerate() {
        match ev.kind {
            EventKind::GenBump { gen } => {
                if let Some(prev) = last_bump {
                    if gen <= prev {
                        findings.push(Finding {
                            checker: "gen-monotonic",
                            index: i,
                            message: format!(
                                "generation bumped to {gen}, not after previous {prev}"
                            ),
                        });
                    }
                }
                last_bump = Some(gen);
            }
            EventKind::SnapRead { gen } => {
                if let Some(prev) = last_snap {
                    if gen < prev {
                        findings.push(Finding {
                            checker: "gen-monotonic",
                            index: i,
                            message: format!("snapshot generation regressed {prev} -> {gen}"),
                        });
                    }
                }
                if let Some(bump) = last_bump {
                    if gen > bump {
                        findings.push(Finding {
                            checker: "gen-monotonic",
                            index: i,
                            message: format!(
                                "snapshot observed generation {gen} ahead of last bump {bump}"
                            ),
                        });
                    }
                }
                last_snap = Some(gen);
            }
            _ => {}
        }
    }
    findings
}

/// Checker 6: symmetric transition accounting.
///
/// Per core, `enter(from, to)` pushes a frame and `return(from, to)`
/// must pop the matching one reversed (`from == top.to`, `to ==
/// top.from`) — a mismatch means control returned somewhere a
/// transition capability never authorized. Frames still open at the end
/// of the trace are fine (domains may legitimately stay entered), but
/// hypercall enter/exit brackets must stay balanced per core: an exit
/// without an enter (or a mismatched leaf) is a dispatch bug.
pub fn check_transition_stack(events: &[TraceEvent]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut stacks: BTreeMap<u32, Vec<(u64, u64)>> = BTreeMap::new();
    let mut hyper: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        match ev.kind {
            EventKind::Enter { from, to, .. } => {
                stacks.entry(ev.core).or_default().push((from, to));
            }
            EventKind::Return { from, to, .. } => {
                match stacks.entry(ev.core).or_default().pop() {
                    None => findings.push(Finding {
                        checker: "transition-stack",
                        index: i,
                        message: format!(
                            "core {} returned {from} -> {to} with no open transition frame",
                            ev.core
                        ),
                    }),
                    Some((f_from, f_to)) => {
                        if from != f_to || to != f_from {
                            findings.push(Finding {
                                checker: "transition-stack",
                                index: i,
                                message: format!(
                                    "core {} returned {from} -> {to} but the open frame was {f_from} -> {f_to}",
                                    ev.core
                                ),
                            });
                        }
                    }
                }
            }
            EventKind::HyperEnter { leaf, .. } => {
                hyper.entry(ev.core).or_default().push(leaf);
            }
            EventKind::HyperExit { leaf, .. } => {
                match hyper.entry(ev.core).or_default().pop() {
                    None => findings.push(Finding {
                        checker: "transition-stack",
                        index: i,
                        message: format!(
                            "core {} exited hypercall leaf {leaf} with no matching enter",
                            ev.core
                        ),
                    }),
                    Some(open) if open != leaf => findings.push(Finding {
                        checker: "transition-stack",
                        index: i,
                        message: format!(
                            "core {} exited hypercall leaf {leaf} but leaf {open} was open",
                            ev.core
                        ),
                    }),
                    Some(_) => {}
                }
            }
            _ => {}
        }
    }
    for (core, open) in &hyper {
        if !open.is_empty() {
            findings.push(Finding {
                checker: "transition-stack",
                index: events.len().saturating_sub(1),
                message: format!(
                    "core {core} ended the trace inside {} open hypercall(s)",
                    open.len()
                ),
            });
        }
    }
    findings
}

/// Checker 7: channel sequence discipline.
///
/// Per attested peer (the channel events are engine-lane, so peer id is
/// the key): `chan-establish` must strictly advance the epoch and reset
/// both sequence windows; `chan-send` / `chan-recv` must carry the
/// current epoch and exactly the next sequence number of their
/// direction; neither may appear on a closed channel; a
/// `chan-violation` while the channel is open must be followed
/// immediately (next event for that peer) by `chan-teardown`; and a
/// violated peer is quarantined for the rest of the trace — any later
/// establish/send/recv is a containment breach.
pub fn check_channel_seq(events: &[TraceEvent]) -> Vec<Finding> {
    #[derive(Default)]
    struct Chan {
        epoch: u64,
        open: bool,
        send_next: u64,
        recv_next: u64,
        violated: bool,
        expect_teardown: bool,
    }
    let mut findings = Vec::new();
    let mut chans: BTreeMap<u64, Chan> = BTreeMap::new();
    let mut flag = |index: usize, message: String| {
        findings.push(Finding {
            checker: "channel-seq",
            index,
            message,
        });
    };
    for (i, ev) in events.iter().enumerate() {
        let peer = match ev.kind {
            EventKind::ChanEstablish { peer, .. }
            | EventKind::ChanSend { peer, .. }
            | EventKind::ChanRecv { peer, .. }
            | EventKind::ChanViolation { peer, .. }
            | EventKind::ChanTeardown { peer, .. } => peer,
            _ => continue,
        };
        let c = chans.entry(peer).or_default();
        if c.expect_teardown && !matches!(ev.kind, EventKind::ChanTeardown { .. }) {
            flag(
                i,
                format!("peer {peer}: violation on an open channel was not followed by teardown"),
            );
            c.expect_teardown = false;
        }
        match ev.kind {
            EventKind::ChanEstablish { epoch, .. } => {
                if c.violated {
                    flag(i, format!("peer {peer}: re-established after a violation (quarantine not sticky)"));
                }
                if epoch <= c.epoch {
                    flag(
                        i,
                        format!(
                            "peer {peer}: establish at epoch {epoch} does not advance past {}",
                            c.epoch
                        ),
                    );
                }
                c.epoch = epoch;
                c.open = true;
                c.send_next = 0;
                c.recv_next = 0;
            }
            EventKind::ChanSend { seq, epoch, .. } => {
                if c.violated || !c.open {
                    flag(i, format!("peer {peer}: send on a closed channel"));
                }
                if epoch != c.epoch {
                    flag(
                        i,
                        format!("peer {peer}: send under epoch {epoch}, channel is at {}", c.epoch),
                    );
                }
                if seq != c.send_next {
                    flag(
                        i,
                        format!(
                            "peer {peer}: send sequence {seq}, expected {}",
                            c.send_next
                        ),
                    );
                }
                c.send_next = seq + 1;
            }
            EventKind::ChanRecv { seq, epoch, .. } => {
                if c.violated || !c.open {
                    flag(i, format!("peer {peer}: receive on a closed channel"));
                }
                if epoch != c.epoch {
                    flag(
                        i,
                        format!(
                            "peer {peer}: receive under epoch {epoch}, channel is at {}",
                            c.epoch
                        ),
                    );
                }
                if seq != c.recv_next {
                    flag(
                        i,
                        format!(
                            "peer {peer}: receive sequence {seq}, expected {}",
                            c.recv_next
                        ),
                    );
                }
                c.recv_next = seq + 1;
            }
            EventKind::ChanViolation { .. } => {
                c.violated = true;
                if c.open {
                    c.expect_teardown = true;
                }
            }
            EventKind::ChanTeardown { .. } => {
                if !c.open {
                    flag(i, format!("peer {peer}: teardown of a channel that was not open"));
                }
                c.open = false;
                c.expect_teardown = false;
            }
            _ => {}
        }
    }
    let end = events.len().saturating_sub(1);
    for (peer, c) in &chans {
        if c.expect_teardown {
            flag(
                end,
                format!("peer {peer}: trace ended with a violated channel still open"),
            );
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyche_core::trace::{EventKind, TraceEvent, TraceLog};

    fn ev(seq: u64, core: u32, kind: EventKind) -> TraceEvent {
        TraceEvent { seq, core, kind }
    }

    #[test]
    fn clean_shootdown_cycle_passes() {
        let log = TraceLog::from_events(vec![
            ev(0, 0, EventKind::ShootQueue { domain: 3 }),
            ev(1, 0, EventKind::ShootQueue { domain: 4 }),
            ev(2, 0, EventKind::Ipi { to: 1 }),
            ev(3, 0, EventKind::ShootBatch { drained: 2, ipis: 1 }),
            ev(4, 0, EventKind::PhaseEnd { phase: 0 }),
        ]);
        assert!(check_all(&log).is_empty());
    }

    #[test]
    fn leaked_invalidation_is_flagged_at_phase_end() {
        let log = TraceLog::from_events(vec![
            ev(0, 2, EventKind::ShootQueue { domain: 3 }),
            ev(1, 2, EventKind::PhaseEnd { phase: 0 }),
        ]);
        let f = check_revoke_shootdown(log.events());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].index, 1);
    }

    #[test]
    fn quarantined_domain_reentry_is_flagged() {
        let log = TraceLog::from_events(vec![
            ev(0, 0, EventKind::Quarantine { domain: 9 }),
            ev(
                1,
                0,
                EventKind::Enter {
                    from: 1,
                    to: 9,
                    fast: false,
                },
            ),
        ]);
        let f = check_quarantine_sticky(log.events());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].index, 1);
    }

    #[test]
    fn stale_cache_hit_is_flagged() {
        let log = TraceLog::from_events(vec![
            ev(
                0,
                0,
                EventKind::CacheFill {
                    actor: 1,
                    cap: 5,
                    gen: 7,
                },
            ),
            ev(
                1,
                0,
                EventKind::CacheHit {
                    actor: 1,
                    cap: 5,
                    gen: 7,
                },
            ),
            ev(2, 0, EventKind::GenBump { gen: 8 }),
            ev(
                3,
                0,
                EventKind::CacheHit {
                    actor: 1,
                    cap: 5,
                    gen: 7,
                },
            ),
        ]);
        let f = check_fast_cache(log.events());
        assert_eq!(f.len(), 1, "only the post-bump hit is stale: {f:?}");
        assert_eq!(f[0].index, 3);
    }

    #[test]
    fn ipi_mismatch_is_flagged() {
        let log = TraceLog::from_events(vec![
            ev(0, 1, EventKind::Ipi { to: 0 }),
            ev(1, 1, EventKind::Ipi { to: 2 }),
            ev(2, 1, EventKind::ShootBatch { drained: 0, ipis: 1 }),
        ]);
        let f = check_ipi_accounting(log.events());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].index, 2);
    }

    #[test]
    fn generation_regression_is_flagged() {
        let log = TraceLog::from_events(vec![
            ev(0, 0, EventKind::GenBump { gen: 5 }),
            ev(1, 0, EventKind::GenBump { gen: 5 }),
            ev(2, 0, EventKind::SnapRead { gen: 9 }),
        ]);
        let f = check_gen_monotonic(log.events());
        assert_eq!(f.len(), 2, "{f:?}");
        assert_eq!(f[0].index, 1, "repeated bump");
        assert_eq!(f[1].index, 2, "snapshot ahead of last bump");
    }

    #[test]
    fn mismatched_return_is_flagged() {
        let log = TraceLog::from_events(vec![
            ev(
                0,
                0,
                EventKind::Enter {
                    from: 1,
                    to: 2,
                    fast: true,
                },
            ),
            ev(
                1,
                0,
                EventKind::Return {
                    from: 2,
                    to: 7,
                    fast: true,
                },
            ),
        ]);
        let f = check_transition_stack(log.events());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].index, 1);
    }

    #[test]
    fn per_core_stacks_are_independent() {
        let log = TraceLog::from_events(vec![
            ev(
                0,
                0,
                EventKind::Enter {
                    from: 1,
                    to: 2,
                    fast: false,
                },
            ),
            ev(
                1,
                1,
                EventKind::Enter {
                    from: 1,
                    to: 3,
                    fast: false,
                },
            ),
            ev(
                2,
                1,
                EventKind::Return {
                    from: 3,
                    to: 1,
                    fast: false,
                },
            ),
            ev(
                3,
                0,
                EventKind::Return {
                    from: 2,
                    to: 1,
                    fast: false,
                },
            ),
        ]);
        assert!(check_transition_stack(log.events()).is_empty());
    }

    #[test]
    fn clean_channel_lifecycle_passes() {
        let log = TraceLog::from_events(vec![
            ev(0, 0, EventKind::ChanEstablish { peer: 1, epoch: 1 }),
            ev(1, 0, EventKind::ChanSend { peer: 1, seq: 0, epoch: 1 }),
            ev(2, 0, EventKind::ChanRecv { peer: 1, seq: 0, epoch: 1 }),
            ev(3, 0, EventKind::ChanSend { peer: 1, seq: 1, epoch: 1 }),
            // Re-key: epoch advances, sequence windows reset.
            ev(4, 0, EventKind::ChanEstablish { peer: 1, epoch: 2 }),
            ev(5, 0, EventKind::ChanRecv { peer: 1, seq: 0, epoch: 2 }),
            // A different peer violates and is promptly torn down.
            ev(6, 0, EventKind::ChanEstablish { peer: 2, epoch: 1 }),
            ev(7, 0, EventKind::ChanViolation { peer: 2, reason: 1, seq: 0 }),
            ev(8, 0, EventKind::ChanTeardown { peer: 2, epoch: 1 }),
        ]);
        assert!(check_channel_seq(log.events()).is_empty());
        assert!(check_all(&log).is_empty());
    }

    #[test]
    fn channel_sequence_gap_is_flagged() {
        let log = TraceLog::from_events(vec![
            ev(0, 0, EventKind::ChanEstablish { peer: 3, epoch: 1 }),
            ev(1, 0, EventKind::ChanRecv { peer: 3, seq: 0, epoch: 1 }),
            ev(2, 0, EventKind::ChanRecv { peer: 3, seq: 2, epoch: 1 }),
        ]);
        let f = check_channel_seq(log.events());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].index, 2);
    }

    #[test]
    fn traffic_after_teardown_is_flagged() {
        let log = TraceLog::from_events(vec![
            ev(0, 0, EventKind::ChanEstablish { peer: 4, epoch: 1 }),
            ev(1, 0, EventKind::ChanViolation { peer: 4, reason: 2, seq: 1 }),
            ev(2, 0, EventKind::ChanTeardown { peer: 4, epoch: 1 }),
            ev(3, 0, EventKind::ChanSend { peer: 4, seq: 0, epoch: 1 }),
        ]);
        let f = check_channel_seq(log.events());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].index, 3);
    }

    #[test]
    fn reestablish_after_violation_is_flagged() {
        let log = TraceLog::from_events(vec![
            ev(0, 0, EventKind::ChanEstablish { peer: 6, epoch: 1 }),
            ev(1, 0, EventKind::ChanViolation { peer: 6, reason: 1, seq: 0 }),
            ev(2, 0, EventKind::ChanTeardown { peer: 6, epoch: 1 }),
            ev(3, 0, EventKind::ChanEstablish { peer: 6, epoch: 2 }),
        ]);
        let f = check_channel_seq(log.events());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].index, 3);
    }

    #[test]
    fn violation_without_teardown_is_flagged() {
        let log = TraceLog::from_events(vec![
            ev(0, 0, EventKind::ChanEstablish { peer: 7, epoch: 1 }),
            ev(1, 0, EventKind::ChanViolation { peer: 7, reason: 3, seq: 2 }),
            ev(2, 0, EventKind::ChanSend { peer: 7, seq: 0, epoch: 1 }),
        ]);
        let f = check_channel_seq(log.events());
        // The missing teardown and the post-violation send both flag.
        assert_eq!(f.len(), 2, "{f:?}");
        assert_eq!(f[0].index, 2);
    }

    #[test]
    fn epoch_regression_on_establish_is_flagged() {
        let log = TraceLog::from_events(vec![
            ev(0, 0, EventKind::ChanEstablish { peer: 8, epoch: 2 }),
            ev(1, 0, EventKind::ChanEstablish { peer: 8, epoch: 2 }),
        ]);
        let f = check_channel_seq(log.events());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].index, 1);
    }

    #[test]
    fn hypercall_brackets_must_balance() {
        let log = TraceLog::from_events(vec![
            ev(0, 0, EventKind::HyperEnter { leaf: 3, actor: 1 }),
            ev(
                1,
                0,
                EventKind::HyperExit {
                    leaf: 4,
                    code: 0,
                    cycles: 10,
                },
            ),
        ]);
        let f = check_transition_stack(log.events());
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].index, 1);
    }
}
