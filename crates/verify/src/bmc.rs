//! Engine 2: the bounded model checker.
//!
//! Exhaustive small-scope exploration of the capability engine:
//! starting from a booted system (root + two child domains, a three-page
//! endowment), breadth-first enumerate every interleaving of
//! `share`/`grant`/`carve`/`seal`/`revoke` up to configurable bounds,
//! deduplicating states by a canonical fingerprint. At every *new* state
//! the checker runs:
//!
//! 1. the runtime invariant auditor (`tyche_core::audit`) — must be
//!    clean;
//! 2. a differential oracle: per-page reference counts must agree with
//!    the naive flat-list ownership model ([`crate::model`]);
//! 3. conservation: every endowed page stays accounted for by the
//!    lineage tree — grants and carves suspend access but never leak a
//!    byte out of the tree (exploration surfaced that a carved piece's
//!    revocation leaves its range transiently unreachable until the
//!    sibling pieces are also revoked, so reachability alone would be
//!    too strong an invariant);
//! 4. revocation soundness: an accepted revoke removes the capability
//!    and strictly shrinks the capability population (termination is
//!    enforced by the engine's tree lineage; the checker verifies the
//!    shrink).
//!
//! The checker is generic over [`Explore`] so tests can wire in a
//! deliberately broken engine and prove the oracle catches it.

use crate::model::RefModel;
use std::collections::{HashSet, VecDeque};
use tyche_core::audit;
use tyche_core::{CapEngine, CapId, CapKind, DomainId, MemRegion, Resource, RevocationPolicy, Rights, SealPolicy};

/// One domain as the checker sees it.
#[derive(Clone, Copy, Debug)]
pub struct DomView {
    /// Raw domain id.
    pub id: u64,
    /// Domain accepts operations.
    pub alive: bool,
    /// Sealed domains refuse incoming resources.
    pub sealed: bool,
    /// Has a fixed entry point (sealable).
    pub has_entry: bool,
    /// Manager's raw id, if any.
    pub manager: Option<u64>,
}

/// One memory capability as the checker sees it.
#[derive(Clone, Copy, Debug)]
pub struct CapView {
    /// Raw capability id.
    pub id: u64,
    /// Owning domain's raw id.
    pub owner: u64,
    /// Covered region.
    pub region: (u64, u64),
    /// Boot endowments are not revoked by the checker (conservation
    /// would become vacuous).
    pub is_root: bool,
    /// Inactive capabilities cannot be shared/granted/split.
    pub active: bool,
}

/// The operations and observations the checker needs. Implemented for
/// [`CapEngine`]; tests implement it for seeded-bug wrappers.
pub trait Explore: Clone {
    /// All domains.
    fn domains(&self) -> Vec<DomView>;
    /// All memory capabilities.
    fn mem_caps(&self) -> Vec<CapView>;
    /// Attempts a share; `Some(child id)` when the engine accepts.
    fn share(&mut self, actor: u64, cap: u64, target: u64) -> Option<u64>;
    /// Attempts a whole-capability grant.
    fn grant(&mut self, actor: u64, cap: u64, target: u64) -> Option<u64>;
    /// Attempts a split ("carve") at address `at`.
    fn carve(&mut self, actor: u64, cap: u64, at: u64) -> Option<(u64, u64)>;
    /// Attempts to seal `domain` (strict or nestable policy).
    fn seal_domain(&mut self, actor: u64, domain: u64, strict: bool) -> bool;
    /// Attempts a revoke.
    fn revoke(&mut self, actor: u64, cap: u64) -> bool;
    /// Whether a capability id still exists.
    fn cap_exists(&self, cap: u64) -> bool;
    /// `(max, min)` per-byte distinct-domain count over a region.
    fn refcount(&self, region: (u64, u64)) -> (usize, usize);
    /// Rendered invariant violations (empty = sound state).
    fn audit_violations(&self) -> Vec<String>;
    /// Canonical state fingerprint for deduplication. Isomorphic states
    /// (same structure, different absolute ids/timestamps) must collide.
    fn fingerprint(&self) -> Vec<u8>;
    /// Discards accumulated hardware effects so queue growth does not
    /// count as state.
    fn drain(&mut self);
}

impl Explore for CapEngine {
    fn domains(&self) -> Vec<DomView> {
        let mut out: Vec<DomView> = CapEngine::domains(self)
            .map(|d| DomView {
                id: d.id.0,
                alive: d.is_alive(),
                sealed: d.is_sealed(),
                has_entry: d.entry.is_some(),
                manager: d.manager.map(|m| m.0),
            })
            .collect();
        out.sort_by_key(|d| d.id);
        out
    }

    fn mem_caps(&self) -> Vec<CapView> {
        let mut out: Vec<CapView> = self
            .caps()
            .filter_map(|c| {
                c.resource.as_mem().map(|r| CapView {
                    id: c.id.0,
                    owner: c.owner.0,
                    region: (r.start, r.end),
                    is_root: c.kind == CapKind::Root,
                    active: c.active,
                })
            })
            .collect();
        out.sort_by_key(|c| c.id);
        out
    }

    fn share(&mut self, actor: u64, cap: u64, target: u64) -> Option<u64> {
        CapEngine::share(
            self,
            DomainId(actor),
            CapId(cap),
            DomainId(target),
            None,
            Rights::RW,
            RevocationPolicy::NONE,
        )
        .ok()
        .map(|c| c.0)
    }

    fn grant(&mut self, actor: u64, cap: u64, target: u64) -> Option<u64> {
        CapEngine::grant(
            self,
            DomainId(actor),
            CapId(cap),
            DomainId(target),
            None,
            Rights::RW,
            RevocationPolicy::NONE,
        )
        .ok()
        .map(|c| c.0)
    }

    fn carve(&mut self, actor: u64, cap: u64, at: u64) -> Option<(u64, u64)> {
        CapEngine::split(self, DomainId(actor), CapId(cap), at)
            .ok()
            .map(|(lo, hi)| (lo.0, hi.0))
    }

    fn seal_domain(&mut self, actor: u64, domain: u64, strict: bool) -> bool {
        let policy = if strict {
            SealPolicy::strict()
        } else {
            SealPolicy::nestable()
        };
        CapEngine::seal(self, DomainId(actor), DomainId(domain), policy).is_ok()
    }

    fn revoke(&mut self, actor: u64, cap: u64) -> bool {
        CapEngine::revoke(self, DomainId(actor), CapId(cap)).is_ok()
    }

    fn cap_exists(&self, cap: u64) -> bool {
        self.cap(CapId(cap)).is_some()
    }

    fn refcount(&self, region: (u64, u64)) -> (usize, usize) {
        let rc = self.refcount_mem_full(MemRegion::new(region.0, region.1));
        (rc.max, rc.min)
    }

    fn audit_violations(&self) -> Vec<String> {
        audit::audit(self).iter().map(|v| format!("{v:?}")).collect()
    }

    fn fingerprint(&self) -> Vec<u8> {
        // Rank-compress ids and timestamps so isomorphic states collide:
        // absolute values grow with path length, ranks do not.
        let mut dom_ids: Vec<u64> = CapEngine::domains(self).map(|d| d.id.0).collect();
        dom_ids.sort_unstable();
        let mut cap_ids: Vec<u64> = self.caps().map(|c| c.id.0).collect();
        cap_ids.sort_unstable();
        let dom_rank = |id: u64| dom_ids.binary_search(&id).expect("known domain") as u64;
        let cap_rank = |id: u64| cap_ids.binary_search(&id).expect("known cap") as u64;
        let mut stamps: Vec<u64> = cap_ids
            .iter()
            .filter_map(|&c| self.cap_created_at(CapId(c)))
            .chain(dom_ids.iter().filter_map(|&d| self.domain_sealed_at(DomainId(d))))
            .collect();
        stamps.sort_unstable();
        stamps.dedup();
        let stamp_rank = |t: Option<u64>| match t {
            None => u64::MAX,
            Some(t) => stamps.binary_search(&t).expect("known stamp") as u64,
        };

        let mut out = Vec::new();
        let push = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());
        for id in &dom_ids {
            let d = self.domain(DomainId(*id)).expect("listed");
            push(&mut out, dom_rank(*id));
            push(&mut out, d.manager.map(|m| dom_rank(m.0)).unwrap_or(u64::MAX));
            out.push(d.is_alive() as u8);
            out.push(d.is_sealed() as u8);
            out.push(d.seal_policy.encode());
            push(&mut out, d.entry.unwrap_or(u64::MAX));
            push(&mut out, stamp_rank(self.domain_sealed_at(DomainId(*id))));
        }
        out.push(0xfe); // domain/cap separator
        for id in &cap_ids {
            let c = self.cap(CapId(*id)).expect("listed");
            push(&mut out, cap_rank(*id));
            push(&mut out, dom_rank(c.owner.0));
            push(&mut out, dom_rank(c.granter.0));
            push(&mut out, c.parent.map(|p| cap_rank(p.0)).unwrap_or(u64::MAX));
            out.push(c.rights.0);
            out.push(match c.kind {
                CapKind::Root => 0,
                CapKind::Shared => 1,
                CapKind::Granted => 2,
                CapKind::Carved => 3,
            });
            out.push(c.active as u8);
            match c.resource {
                Resource::Memory(r) => {
                    out.push(1);
                    push(&mut out, r.start);
                    push(&mut out, r.end);
                }
                Resource::Transition(t) => {
                    out.push(2);
                    push(&mut out, dom_rank(t.0));
                }
                Resource::CpuCore(n) => {
                    out.push(3);
                    push(&mut out, n as u64);
                }
                Resource::Device(d) => {
                    out.push(4);
                    push(&mut out, d as u64);
                }
                Resource::Interrupt(v) => {
                    out.push(5);
                    push(&mut out, v as u64);
                }
            }
            push(&mut out, stamp_rank(self.cap_created_at(CapId(*id))));
        }
        out
    }

    fn drain(&mut self) {
        let _ = self.drain_effects();
    }
}

/// Scope bounds for one exploration.
#[derive(Clone, Copy, Debug)]
pub struct BmcConfig {
    /// Pages in the root endowment (the paper scope: ≤ 3 regions).
    pub pages: u64,
    /// Child domains besides root (≤ 2 for the ≤ 3-domain scope).
    pub child_domains: usize,
    /// Maximum operations along any path.
    pub max_depth: usize,
    /// Capability-count bound: ops that would push the population past
    /// this are not generated (keeps the space finite under self-share).
    pub max_caps: usize,
    /// Hard ceiling on deduplicated states (safety valve; hitting it
    /// means the run was *not* exhaustive and is reported).
    pub max_states: usize,
    /// Whether seal operations are part of the explored alphabet.
    pub explore_seal: bool,
}

/// First page of the endowment.
pub const BASE: u64 = 0x1000;
/// Page size used by the scope.
pub const PAGE: u64 = 0x1000;

impl Default for BmcConfig {
    fn default() -> Self {
        BmcConfig {
            // ≤3 domains, ≤3 regions — the paper-scope bounds. Depth 4
            // with cap bound 8 closes exhaustively at ~63k deduped
            // states in seconds; depth 5 (~920k states) and beyond are
            // reachable through `tcb-audit --bmc-depth`.
            pages: 3,
            child_domains: 2,
            max_depth: 4,
            max_caps: 8,
            max_states: 2_000_000,
            explore_seal: true,
        }
    }
}

/// A violation plus the operation path that reached it.
#[derive(Clone, Debug)]
pub struct BmcViolation {
    /// What failed.
    pub message: String,
    /// Operations from the initial state to the failing state.
    pub trace: Vec<String>,
}

/// Exploration statistics + violations.
#[derive(Clone, Debug, Default)]
pub struct BmcResult {
    /// Deduplicated states visited (including the initial state).
    pub states: usize,
    /// Accepted transitions applied (pre-dedup).
    pub transitions: usize,
    /// Attempted operations the engine refused.
    pub refused: usize,
    /// Deepest path explored.
    pub max_depth_reached: usize,
    /// True when the frontier emptied before any bound was hit — the
    /// scope was covered exhaustively.
    pub exhaustive: bool,
    /// All invariant violations found.
    pub violations: Vec<BmcViolation>,
}

/// Builds the booted initial state: root domain endowed with
/// `pages` pages at [`BASE`], plus `child_domains` unsealed children
/// with entry points set.
pub fn tyche_initial(config: &BmcConfig) -> (CapEngine, RefModel) {
    let mut engine = CapEngine::new();
    let root = engine.create_root_domain();
    let region = MemRegion::new(BASE, BASE + config.pages * PAGE);
    let cap = engine
        .endow(root, Resource::Memory(region), Rights::RW)
        .expect("endow boot memory");
    let mut model = RefModel::new();
    model.endow(cap.0, root.0, (region.start, region.end));
    for _ in 0..config.child_domains {
        let (child, _tcap) = engine.create_domain(root).expect("create child domain");
        engine
            .set_entry(root, child, 0xe000)
            .expect("set child entry");
    }
    engine.drain();
    (engine, model)
}

/// One candidate operation.
#[derive(Clone, Debug)]
enum Op {
    Share { actor: u64, cap: u64, target: u64 },
    Grant { actor: u64, cap: u64, target: u64 },
    Carve { actor: u64, cap: u64, at: u64 },
    Seal { actor: u64, domain: u64, strict: bool },
    Revoke { actor: u64, cap: u64 },
}

impl Op {
    fn describe(&self) -> String {
        match self {
            Op::Share { actor, cap, target } => format!("d{actor}: share cap{cap} -> d{target}"),
            Op::Grant { actor, cap, target } => format!("d{actor}: grant cap{cap} -> d{target}"),
            Op::Carve { actor, cap, at } => format!("d{actor}: carve cap{cap} @ {at:#x}"),
            Op::Seal { actor, domain, strict } => {
                format!("d{actor}: seal d{domain} ({})", if *strict { "strict" } else { "nestable" })
            }
            Op::Revoke { actor, cap } => format!("d{actor}: revoke cap{cap}"),
        }
    }
}

/// Enumerates the candidate operations from a state.
fn candidate_ops<E: Explore>(state: &E, config: &BmcConfig) -> Vec<Op> {
    let domains = state.domains();
    let caps = state.mem_caps();
    let alive: Vec<u64> = domains.iter().filter(|d| d.alive).map(|d| d.id).collect();
    let mut ops = Vec::new();
    let room = caps.len() < config.max_caps;

    for c in &caps {
        if c.active && room {
            // Only the owner can share/grant/carve; other actors are
            // refused unconditionally, so generating them adds nothing.
            for &target in &alive {
                ops.push(Op::Share { actor: c.owner, cap: c.id, target });
                ops.push(Op::Grant { actor: c.owner, cap: c.id, target });
            }
            let (start, end) = c.region;
            let mut at = start + PAGE;
            while at < end {
                ops.push(Op::Carve { actor: c.owner, cap: c.id, at });
                at += PAGE;
            }
        }
        if !c.is_root {
            // Revocation authority depends on lineage; let the engine
            // decide, for every live actor.
            for &actor in &alive {
                ops.push(Op::Revoke { actor, cap: c.id });
            }
        }
    }
    if config.explore_seal {
        for d in domains.iter().filter(|d| d.alive && !d.sealed && d.has_entry) {
            if let Some(manager) = d.manager {
                for strict in [false, true] {
                    ops.push(Op::Seal { actor: manager, domain: d.id, strict });
                }
            }
        }
    }
    ops
}

/// Applies `op`; `Ok(true)` when accepted (mirroring the model),
/// `Ok(false)` when the engine refused, `Err` with a violation message
/// when an accepted op broke a transition-level invariant.
fn apply<E: Explore>(state: &mut E, model: &mut RefModel, op: &Op) -> Result<bool, String> {
    match *op {
        Op::Share { actor, cap, target } => {
            let region = state.mem_caps().iter().find(|c| c.id == cap).map(|c| c.region);
            if let Some(child) = state.share(actor, cap, target) {
                let region = region.ok_or("share of unknown cap accepted")?;
                model.share(cap, child, target, region);
                return Ok(true);
            }
            Ok(false)
        }
        Op::Grant { actor, cap, target } => {
            let region = state.mem_caps().iter().find(|c| c.id == cap).map(|c| c.region);
            if let Some(child) = state.grant(actor, cap, target) {
                let region = region.ok_or("grant of unknown cap accepted")?;
                model.grant(cap, child, target, region);
                return Ok(true);
            }
            Ok(false)
        }
        Op::Carve { actor, cap, at } => {
            if let Some((lo, hi)) = state.carve(actor, cap, at) {
                model.split(cap, lo, hi, at);
                return Ok(true);
            }
            Ok(false)
        }
        Op::Seal { actor, domain, strict } => Ok(state.seal_domain(actor, domain, strict)),
        Op::Revoke { actor, cap } => {
            let before = state.mem_caps().len();
            if state.revoke(actor, cap) {
                if state.cap_exists(cap) {
                    return Err(format!("revoked cap{cap} still exists"));
                }
                let after = state.mem_caps().len();
                if after >= before {
                    return Err(format!(
                        "revocation did not shrink the capability population ({before} -> {after})"
                    ));
                }
                model.revoke(cap);
                return Ok(true);
            }
            Ok(false)
        }
    }
}

/// State-level invariant checks.
fn check_state<E: Explore>(state: &E, model: &RefModel, config: &BmcConfig) -> Vec<String> {
    let mut out = state.audit_violations();
    for page in 0..config.pages {
        let start = BASE + page * PAGE;
        let region = (start, start + PAGE);
        let (max, min) = state.refcount(region);
        let naive = model.owners_of(start).len();
        if max != naive || min != naive {
            out.push(format!(
                "refcount divergence on page {page} [{start:#x}): engine max={max} min={min}, reference model says {naive}"
            ));
        }
        // Conservation: a page may be transiently unreachable (the
        // engine suspends a split parent until *all* pieces are revoked,
        // so revoking one piece orphans its range until the sibling
        // goes too — a fact this checker surfaced), but it must never
        // leave the lineage tree: some record, active or suspended,
        // accounts for it, so revocations can always restore access.
        if naive == 0 && !model.covered(start) {
            out.push(format!(
                "conservation broken: page {page} [{start:#x}) left the capability tree"
            ));
        }
    }
    out
}

/// Runs the exploration from `initial`.
pub fn explore<E: Explore>(initial: E, model: RefModel, config: &BmcConfig) -> BmcResult {
    let mut result = BmcResult::default();
    let mut seen: HashSet<Vec<u8>> = HashSet::new();
    // Trace arena: (parent state index, op description).
    let mut arena: Vec<(Option<usize>, String)> = vec![(None, "initial".into())];

    let mut initial = initial;
    initial.drain();
    for v in check_state(&initial, &model, config) {
        result.violations.push(BmcViolation { message: v, trace: vec![] });
    }
    seen.insert(initial.fingerprint());
    let mut queue: VecDeque<(E, RefModel, usize, usize)> = VecDeque::new();
    queue.push_back((initial, model, 0, 0));
    result.states = 1;

    while let Some((state, model, depth, state_idx)) = queue.pop_front() {
        result.max_depth_reached = result.max_depth_reached.max(depth);
        if depth >= config.max_depth {
            continue;
        }
        for op in candidate_ops(&state, config) {
            let mut next = state.clone();
            let mut next_model = model.clone();
            match apply(&mut next, &mut next_model, &op) {
                Ok(false) => {
                    result.refused += 1;
                    continue;
                }
                Err(message) => {
                    result.violations.push(BmcViolation {
                        message,
                        trace: trace_of(&arena, state_idx, &op),
                    });
                    continue;
                }
                Ok(true) => {}
            }
            result.transitions += 1;
            next.drain();
            for message in check_state(&next, &next_model, config) {
                result.violations.push(BmcViolation {
                    message,
                    trace: trace_of(&arena, state_idx, &op),
                });
            }
            if seen.len() >= config.max_states {
                continue;
            }
            if seen.insert(next.fingerprint()) {
                arena.push((Some(state_idx), op.describe()));
                let idx = arena.len() - 1;
                result.states += 1;
                queue.push_back((next, next_model, depth + 1, idx));
            }
        }
    }
    result.exhaustive = seen.len() < config.max_states;
    result
}

/// Reconstructs the op path to `state_idx`, then `op`.
fn trace_of(arena: &[(Option<usize>, String)], state_idx: usize, op: &Op) -> Vec<String> {
    let mut trace = vec![op.describe()];
    let mut cur = Some(state_idx);
    while let Some(idx) = cur {
        let (parent, ref desc) = arena[idx];
        if parent.is_some() {
            trace.push(desc.clone());
        }
        cur = parent;
    }
    trace.reverse();
    trace
}

/// Convenience: explore the default Tyche scope.
pub fn run(config: &BmcConfig) -> BmcResult {
    let (engine, model) = tyche_initial(config);
    explore(engine, model, config)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BmcConfig {
        BmcConfig {
            pages: 2,
            child_domains: 1,
            max_depth: 4,
            max_caps: 5,
            max_states: 100_000,
            explore_seal: false,
        }
    }

    #[test]
    fn default_scope_explores_ten_thousand_states_clean() {
        // The acceptance bar for the checker: the full ≤3-domain /
        // ≤3-region scope at the default depth closes exhaustively,
        // covers >= 10k deduplicated states, and finds no violation.
        let result = run(&BmcConfig::default());
        assert!(result.exhaustive, "state cap hit: {result:?}");
        assert!(
            result.states >= 10_000,
            "only {} deduped states explored",
            result.states
        );
        assert!(result.violations.is_empty(), "{:?}", result.violations.first());
    }

    #[test]
    fn small_scope_is_clean_and_exhaustive() {
        let result = run(&small());
        assert!(result.exhaustive, "{result:?}");
        assert!(result.violations.is_empty(), "{:?}", result.violations.first());
        assert!(result.states > 50, "explored {} states", result.states);
        assert!(result.refused > 0, "refusal paths exercised");
    }

    #[test]
    fn dedup_collapses_isomorphic_states() {
        // share then revoke returns to the initial structure; without
        // rank compression the new cap id would make it look fresh.
        let config = small();
        let (engine, model) = tyche_initial(&config);
        let fp0 = engine.fingerprint();
        let mut e2 = engine.clone();
        let mut m2 = model.clone();
        let caps = e2.mem_caps();
        let target = Explore::domains(&e2)
            .iter()
            .find(|d| d.manager.is_some())
            .unwrap()
            .id;
        let op = Op::Share { actor: caps[0].owner, cap: caps[0].id, target };
        assert_eq!(apply(&mut e2, &mut m2, &op), Ok(true));
        assert_ne!(e2.fingerprint(), fp0);
        let new_cap = e2.mem_caps().iter().find(|c| !c.is_root).unwrap().id;
        let op = Op::Revoke { actor: caps[0].owner, cap: new_cap };
        assert_eq!(apply(&mut e2, &mut m2, &op), Ok(true));
        e2.drain();
        assert_eq!(e2.fingerprint(), fp0, "share+revoke is identity up to isomorphism");
    }

    /// A wrapper around the real engine whose refcount is off by one —
    /// the seeded bug the differential oracle must catch.
    #[derive(Clone)]
    struct BrokenRefcount(CapEngine);

    impl Explore for BrokenRefcount {
        fn domains(&self) -> Vec<DomView> {
            Explore::domains(&self.0)
        }
        fn mem_caps(&self) -> Vec<CapView> {
            Explore::mem_caps(&self.0)
        }
        fn share(&mut self, actor: u64, cap: u64, target: u64) -> Option<u64> {
            Explore::share(&mut self.0, actor, cap, target)
        }
        fn grant(&mut self, actor: u64, cap: u64, target: u64) -> Option<u64> {
            Explore::grant(&mut self.0, actor, cap, target)
        }
        fn carve(&mut self, actor: u64, cap: u64, at: u64) -> Option<(u64, u64)> {
            Explore::carve(&mut self.0, actor, cap, at)
        }
        fn seal_domain(&mut self, actor: u64, domain: u64, strict: bool) -> bool {
            Explore::seal_domain(&mut self.0, actor, domain, strict)
        }
        fn revoke(&mut self, actor: u64, cap: u64) -> bool {
            Explore::revoke(&mut self.0, actor, cap)
        }
        fn cap_exists(&self, cap: u64) -> bool {
            Explore::cap_exists(&self.0, cap)
        }
        fn refcount(&self, region: (u64, u64)) -> (usize, usize) {
            // The seeded bug: shared pages report one owner too many,
            // as if a revoked share's count were never decremented.
            let (max, min) = Explore::refcount(&self.0, region);
            if max > 1 {
                (max + 1, min)
            } else {
                (max, min)
            }
        }
        fn audit_violations(&self) -> Vec<String> {
            Explore::audit_violations(&self.0)
        }
        fn fingerprint(&self) -> Vec<u8> {
            Explore::fingerprint(&self.0)
        }
        fn drain(&mut self) {
            Explore::drain(&mut self.0)
        }
    }

    #[test]
    fn differential_oracle_catches_seeded_refcount_bug() {
        let config = BmcConfig {
            max_depth: 2,
            ..small()
        };
        let (engine, model) = tyche_initial(&config);
        let result = explore(BrokenRefcount(engine), model, &config);
        assert!(
            result
                .violations
                .iter()
                .any(|v| v.message.contains("refcount divergence")),
            "oracle missed the seeded bug: {result:?}"
        );
        // And the violation carries a usable trace.
        let v = result
            .violations
            .iter()
            .find(|v| v.message.contains("refcount divergence"))
            .unwrap();
        assert!(!v.trace.is_empty());
    }
}
