//! Lint 1: the lock-hierarchy / deadlock lint.
//!
//! DESIGN.md fixes one global acquisition order for every sleeping lock
//! in the monitor:
//!
//! > submission ring → per-core state → shard table (read) → domain
//! > shards (ascending index) → inner engine → pending-shootdown set
//!
//! plus the leaf-level epoch read-side locks (snapshot slots, retired
//! list), the cross-machine channel table and NIC queue, and the
//! trace-sink locks that sit after everything (channel code emits trace
//! events while holding its guard). This module is
//! that sentence made machine-checked:
//! every guard acquisition parsed out of the TCB is classified into a
//! ranked class, and an acquisition of a lower-ranked (or same-ranked)
//! class while a guard is held is a finding — directly in a body, or
//! transitively through a call while guards are held, reported with the
//! call chain.
//!
//! Shard locks are special twice over: the only legal way to take more
//! than one is the batch idiom (`sort_unstable` + `dedup`, then one
//! iterator-chain acquisition in ascending index order), so (a) two
//! separate shard acquisitions in one body are always a finding, and
//! (b) a batch acquisition without sort+dedup evidence earlier in the
//! same body is a finding.

use super::{Lint, StaticFinding};
use crate::parse::{Function, LockSite, WorkspaceModel};
use std::collections::BTreeMap;

/// The ranked lock classes, lowest-first. The rank order *is* the legal
/// acquisition order.
pub const HIERARCHY: &[(&str, u8)] = &[
    ("submission-ring", 0),
    ("core-state", 1),
    ("shard-table", 2),
    ("domain-shard", 3),
    ("engine-inner", 4),
    ("pending-shootdown", 5),
    ("snapshot-cache", 6),
    ("epoch-retired", 7),
    ("channel-table", 8),
    ("nic-queue", 9),
    ("trace-lanes", 10),
    ("trace-lane", 11),
    ("trace-spill-log", 12),
];

/// Substring → class rules, checked in order against the argument text
/// and then the statement context. First match wins — `ring` and
/// `retired` come first so ring cells and the epoch retired list are
/// never swallowed by the broader patterns below.
const PATTERNS: &[(&str, &str)] = &[
    ("ring", "submission-ring"),
    ("retired", "epoch-retired"),
    // `nic_queue`, not bare `nic`: the latter is a substring of `panic`,
    // which shows up in plenty of statement contexts.
    ("nic_queue", "nic-queue"),
    ("channel", "channel-table"),
    ("shard_table", "shard-table"),
    ("shard", "domain-shard"),
    ("core", "core-state"),
    ("slot", "core-state"),
    ("engine", "engine-inner"),
    ("inner", "engine-inner"),
    ("pending", "pending-shootdown"),
    ("batch", "pending-shootdown"),
    ("snap", "snapshot-cache"),
    ("lanes", "trace-lanes"),
    ("lane", "trace-lane"),
    ("log", "trace-spill-log"),
];

fn rank_of(class: &str) -> u8 {
    HIERARCHY
        .iter()
        .find(|(name, _)| *name == class)
        .map(|(_, r)| *r)
        .unwrap_or(u8::MAX)
}

/// Classifies one acquisition site. `None` for guards outside the
/// hierarchy (e.g. the lock helpers' own internals).
pub fn classify(site: &LockSite) -> Option<(&'static str, u8)> {
    if site.helper == "read_lanes" || site.helper == "write_lanes" {
        return Some(("trace-lanes", rank_of("trace-lanes")));
    }
    for text in [site.arg.as_str(), site.context.as_str()] {
        for (pat, class) in PATTERNS {
            if text.contains(pat) {
                return Some((class, rank_of(class)));
            }
        }
    }
    None
}

/// Guards live (let-bound, in scope, not yet dropped) at `offset`.
fn held_at(func: &Function, offset: usize) -> Vec<&LockSite> {
    func.locks
        .iter()
        .filter(|l| l.bound && l.offset < offset && l.scope_end > offset)
        .filter(|l| {
            !func.releases.iter().any(|r| {
                Some(r.var.as_str()) == l.binding.as_deref()
                    && r.offset > l.offset
                    && r.offset < offset
            })
        })
        .collect()
}

/// Runs the lint over the whole model.
pub fn check(model: &WorkspaceModel) -> Vec<StaticFinding> {
    let mut findings = Vec::new();

    // Intra-procedural: each acquisition against the guards held at it.
    for func in &model.functions {
        for site in &func.locks {
            let Some((class, rank)) = classify(site) else {
                continue;
            };
            for held in held_at(func, site.offset) {
                if std::ptr::eq(held, site) {
                    continue;
                }
                let Some((held_class, held_rank)) = classify(held) else {
                    continue;
                };
                if rank < held_rank {
                    findings.push(StaticFinding {
                        lint: Lint::LockOrder,
                        file: func.file.clone(),
                        line: site.line,
                        message: format!(
                            "{} acquires `{class}` (rank {rank}) while holding `{held_class}` (rank {held_rank}, taken line {}) — violates the global order {}",
                            func.qname, held.line, order_string()
                        ),
                        path: vec![func.qname.clone()],
                    });
                } else if rank == held_rank {
                    findings.push(StaticFinding {
                        lint: Lint::LockOrder,
                        file: func.file.clone(),
                        line: site.line,
                        message: format!(
                            "{} acquires `{class}` twice (first at line {}); only the sorted batch idiom may hold multiple guards of one class",
                            func.qname, held.line
                        ),
                        path: vec![func.qname.clone()],
                    });
                }
            }
            // Shard batches must carry ascending-order evidence.
            if class == "domain-shard" && site.multi {
                let rel = site
                    .offset
                    .saturating_sub(func.body_start)
                    .min(func.body_text.len());
                let before = &func.body_text[..rel];
                if !(before.contains("sort_unstable") && before.contains("dedup")) {
                    findings.push(StaticFinding {
                        lint: Lint::LockOrder,
                        file: func.file.clone(),
                        line: site.line,
                        message: format!(
                            "{} takes a batch of `domain-shard` guards without sort_unstable+dedup evidence earlier in the body — ascending shard order is unproven",
                            func.qname
                        ),
                        path: vec![func.qname.clone()],
                    });
                }
            }
        }
    }

    // Inter-procedural: classes transitively acquired by each function,
    // with a witness chain, then each call site checked against the
    // caller's held set.
    let acquired = transitive_acquisitions(model);
    for (fi, func) in model.functions.iter().enumerate() {
        for call in &func.calls {
            let held = held_at(func, call.offset);
            if held.is_empty() {
                continue;
            }
            for &callee in model.functions_named(&call.name) {
                if callee == fi {
                    continue;
                }
                for (rank, wit) in &acquired[callee] {
                    for h in &held {
                        let Some((held_class, held_rank)) = classify(h) else {
                            continue;
                        };
                        if *rank <= held_rank {
                            let mut path = vec![func.qname.clone()];
                            path.extend(wit.chain.iter().cloned());
                            findings.push(StaticFinding {
                                lint: Lint::LockOrder,
                                file: func.file.clone(),
                                line: call.line,
                                message: format!(
                                    "{} calls {} while holding `{held_class}` (rank {held_rank}, taken line {}); the callee transitively acquires `{}` (rank {rank}) at {}:{}",
                                    func.qname, call.name, h.line, wit.class, wit.file, wit.line
                                ),
                                path,
                            });
                        }
                    }
                }
            }
        }
    }
    findings
}

fn order_string() -> String {
    HIERARCHY
        .iter()
        .map(|(n, _)| *n)
        .collect::<Vec<_>>()
        .join(" -> ")
}

struct Witness {
    class: &'static str,
    file: String,
    line: usize,
    chain: Vec<String>,
}

/// For every function: rank → witness for each lock class it (or any
/// transitive callee) acquires. Fixpoint over the call graph.
fn transitive_acquisitions(model: &WorkspaceModel) -> Vec<BTreeMap<u8, Witness>> {
    let n = model.functions.len();
    let mut acq: Vec<BTreeMap<u8, Witness>> = Vec::with_capacity(n);
    for func in &model.functions {
        let mut own = BTreeMap::new();
        for site in &func.locks {
            if let Some((class, rank)) = classify(site) {
                own.entry(rank).or_insert(Witness {
                    class,
                    file: func.file.clone(),
                    line: site.line,
                    chain: vec![func.qname.clone()],
                });
            }
        }
        acq.push(own);
    }
    // Propagate callee acquisitions to callers until stable. Bounded by
    // (#ranks × #functions) insertions.
    loop {
        let mut changed = false;
        for fi in 0..n {
            let mut add: Vec<(u8, Witness)> = Vec::new();
            for call in &model.functions[fi].calls {
                for &callee in model.functions_named(&call.name) {
                    if callee == fi {
                        continue;
                    }
                    for (rank, wit) in &acq[callee] {
                        if !acq[fi].contains_key(rank) && !add.iter().any(|(r, _)| r == rank) {
                            let mut chain = vec![model.functions[fi].qname.clone()];
                            chain.extend(wit.chain.iter().cloned());
                            add.push((
                                *rank,
                                Witness {
                                    class: wit.class,
                                    file: wit.file.clone(),
                                    line: wit.line,
                                    chain,
                                },
                            ));
                        }
                    }
                }
            }
            for (rank, wit) in add {
                acq[fi].insert(rank, wit);
                changed = true;
            }
        }
        if !changed {
            return acq;
        }
    }
}
