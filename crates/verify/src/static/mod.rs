//! The deep static certifier: four whole-workspace analyses layered on
//! the item-level parser ([`crate::parse`]).
//!
//! The flat auditor ([`crate::static_audit`]) checks per-file facts —
//! no unsafe, panic budgets, LOC, dependency closure. The lints here
//! check *cross-cutting* properties the paper's concurrency and
//! observability arguments rest on:
//!
//! 1. [`lock_order`] — every nested guard acquisition respects the
//!    DESIGN.md hierarchy (per-core state → domain shards ascending →
//!    engine inner → pending-shootdown set → snapshot cache → trace
//!    sink), intra- and inter-procedurally, with the offending call
//!    chain as evidence.
//! 2. [`panic_reach`] — no panic-capable construct is reachable on the
//!    call graph from the 14 hypercall leaves or the SMP serving tiers
//!    unless its `(file, construct)` is allowlisted; reachable
//!    allowlisted sites are reported with entrypoint → … → site paths.
//! 3. [`atomics`] — the seqlock generation (`live_gen`) and trace
//!    enable flag (`enabled`) must pair Acquire loads with Release
//!    stores; any other `Relaxed` needs a `// verify: relaxed-ok
//!    <reason>` annotation, and the annotation count is itself an exact
//!    budget.
//! 4. [`trace_complete`] — every public mutating engine op emits a
//!    trace event (the static dual of the RV checkers' assumption that
//!    the trace is complete).

pub mod atomics;
pub mod lock_order;
pub mod panic_reach;
pub mod trace_complete;

use crate::allowlist::{self, AllowEntry};
use crate::parse::WorkspaceModel;
use crate::static_audit::AuditConfig;
use std::fmt;
use std::path::{Path, PathBuf};

/// Which deep lint produced a finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lint {
    /// Lock-hierarchy violation.
    LockOrder,
    /// Unallowlisted panic site reachable from an entrypoint.
    PanicReach,
    /// Atomic ordering too weak, or an unannotated/stale `Relaxed`.
    AtomicOrder,
    /// Mutating engine op that never emits a trace event.
    TraceComplete,
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Lint::LockOrder => "lock-order",
            Lint::PanicReach => "panic-reach",
            Lint::AtomicOrder => "atomic-order",
            Lint::TraceComplete => "trace-complete",
        })
    }
}

/// One deep-lint failure.
#[derive(Clone, Debug)]
pub struct StaticFinding {
    /// Which lint fired.
    pub lint: Lint,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the offending site.
    pub line: usize,
    /// Human explanation.
    pub message: String,
    /// Call-chain evidence (qnames, entrypoint first), when the lint
    /// walked the graph to get here.
    pub path: Vec<String>,
}

impl fmt::Display for StaticFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}:{}: {}", self.lint, self.file, self.line, self.message)?;
        if !self.path.is_empty() {
            write!(f, " (via {})", self.path.join(" -> "))?;
        }
        Ok(())
    }
}

/// Deep-lint configuration.
#[derive(Clone, Debug)]
pub struct StaticConfig {
    /// Workspace root.
    pub workspace_root: PathBuf,
    /// Directory names under `crates/` forming the TCB.
    pub tcb_crates: Vec<String>,
    /// Allowlist file, relative to the workspace root.
    pub allowlist: PathBuf,
    /// Exact number of `// verify: relaxed-ok` annotations the TCB may
    /// carry. More is an unreviewed escape; fewer is a stale budget.
    pub relaxed_ok_budget: usize,
}

impl StaticConfig {
    /// Defaults matching [`AuditConfig::tyche_defaults`].
    pub fn tyche_defaults(workspace_root: &Path) -> StaticConfig {
        let flat = AuditConfig::tyche_defaults(workspace_root);
        StaticConfig {
            workspace_root: flat.workspace_root,
            tcb_crates: flat.tcb_crates,
            allowlist: flat.allowlist,
            relaxed_ok_budget: 8,
        }
    }
}

/// Path evidence for one reachable allowlisted panic group.
#[derive(Clone, Debug)]
pub struct SiteEvidence {
    /// Workspace-relative file of the panic sites.
    pub file: String,
    /// Construct name.
    pub construct: String,
    /// Every occurrence line inside the reached function set.
    pub lines: Vec<usize>,
    /// Entrypoint → … → containing-function chain for the first site.
    pub path: Vec<String>,
}

/// Per-entrypoint reachability evidence.
#[derive(Clone, Debug)]
pub struct EntryEvidence {
    /// Leaf or tier name (`"Share"`, `"smp-mutating"`, ...).
    pub entry: String,
    /// Functions reachable from the entry's seeds.
    pub reached: usize,
    /// Reachable allowlisted panic groups with path evidence.
    pub sites: Vec<SiteEvidence>,
}

/// The deep-lint report.
#[derive(Clone, Debug, Default)]
pub struct StaticReport {
    /// All failures across the four lints.
    pub findings: Vec<StaticFinding>,
    /// Production functions in the model.
    pub functions: usize,
    /// Resolved call edges.
    pub call_edges: usize,
    /// Guard-acquisition sites seen by the lock lint.
    pub lock_sites: usize,
    /// Atomic operations seen by the ordering lint.
    pub atomic_sites: usize,
    /// `relaxed-ok` annotations in use.
    pub relaxed_ok_used: usize,
    /// The exact annotation budget.
    pub relaxed_ok_budget: usize,
    /// Mutating engine ops proven to emit a trace event.
    pub traced_ops: usize,
    /// Per-hypercall-leaf evidence (14 entries).
    pub leaves: Vec<EntryEvidence>,
    /// Per-serving-tier evidence.
    pub tiers: Vec<EntryEvidence>,
}

impl StaticReport {
    /// True when all four lints passed.
    pub fn passed(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("TCB deep static lints\n");
        out.push_str(&format!(
            "  call graph: {} functions, {} edges, {} lock sites, {} atomic ops\n",
            self.functions, self.call_edges, self.lock_sites, self.atomic_sites
        ));
        out.push_str(&format!(
            "  relaxed-ok annotations: {} used / {} budget\n",
            self.relaxed_ok_used, self.relaxed_ok_budget
        ));
        out.push_str(&format!(
            "  trace-complete: {} mutating engine ops all emit\n",
            self.traced_ops
        ));
        out.push_str("  panic-reachability evidence (allowlisted sites only):\n");
        for ev in self.leaves.iter().chain(self.tiers.iter()) {
            let total: usize = ev.sites.iter().map(|s| s.lines.len()).sum();
            out.push_str(&format!(
                "    {:<14} {:>3} fns reached, {:>3} allowlisted sites",
                ev.entry, ev.reached, total
            ));
            match ev.sites.first() {
                Some(first) => out.push_str(&format!(
                    "; e.g. `{}` {}:{} via {}\n",
                    first.construct,
                    first.file,
                    first.lines.first().copied().unwrap_or(0),
                    first.path.join(" -> ")
                )),
                None => out.push('\n'),
            }
        }
        if self.findings.is_empty() {
            out.push_str("  findings: none\n  RESULT: PASS\n");
        } else {
            out.push_str(&format!("  findings: {}\n", self.findings.len()));
            for finding in &self.findings {
                out.push_str(&format!("    {finding}\n"));
            }
            out.push_str("  RESULT: FAIL\n");
        }
        out
    }

    /// The committed `STATIC.json` document (schema `tyche-static/v1`).
    /// Deterministic: derived from source text only, so CI can
    /// regenerate and `diff` it as a freshness gate.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"schema\": \"tyche-static/v1\",\n");
        s.push_str(&format!("  \"pass\": {},\n", self.passed()));
        s.push_str(&format!("  \"functions\": {},\n", self.functions));
        s.push_str(&format!("  \"call_edges\": {},\n", self.call_edges));
        s.push_str(&format!("  \"lock_sites\": {},\n", self.lock_sites));
        s.push_str(&format!("  \"atomic_sites\": {},\n", self.atomic_sites));
        s.push_str(&format!(
            "  \"relaxed_ok\": {{ \"used\": {}, \"budget\": {} }},\n",
            self.relaxed_ok_used, self.relaxed_ok_budget
        ));
        s.push_str(&format!("  \"traced_ops\": {},\n", self.traced_ops));
        s.push_str(&format!("  \"findings\": [{}],\n", json_findings(&self.findings)));
        s.push_str(&format!("  \"leaves\": [{}],\n", json_entries(&self.leaves)));
        s.push_str(&format!("  \"tiers\": [{}]\n", json_entries(&self.tiers)));
        s.push_str("}\n");
        s
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_findings(findings: &[StaticFinding]) -> String {
    let rows: Vec<String> = findings
        .iter()
        .map(|f| {
            format!(
                "\n    {{ \"lint\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"path\": [{}] }}",
                f.lint,
                json_escape(&f.file),
                f.line,
                json_escape(&f.message),
                f.path
                    .iter()
                    .map(|p| format!("\"{}\"", json_escape(p)))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })
        .collect();
    if rows.is_empty() {
        String::new()
    } else {
        format!("{}\n  ", rows.join(","))
    }
}

fn json_entries(entries: &[EntryEvidence]) -> String {
    let rows: Vec<String> = entries
        .iter()
        .map(|e| {
            let sites: Vec<String> = e
                .sites
                .iter()
                .map(|s| {
                    format!(
                        "\n        {{ \"file\": \"{}\", \"construct\": \"{}\", \"lines\": [{}], \"path\": [{}] }}",
                        json_escape(&s.file),
                        json_escape(&s.construct),
                        s.lines
                            .iter()
                            .map(|l| l.to_string())
                            .collect::<Vec<_>>()
                            .join(", "),
                        s.path
                            .iter()
                            .map(|p| format!("\"{}\"", json_escape(p)))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                })
                .collect();
            let sites = if sites.is_empty() {
                String::new()
            } else {
                format!("{}\n      ", sites.join(","))
            };
            format!(
                "\n    {{ \"entry\": \"{}\", \"reached\": {}, \"sites\": [{}] }}",
                json_escape(&e.entry),
                e.reached,
                sites
            )
        })
        .collect();
    if rows.is_empty() {
        String::new()
    } else {
        format!("{}\n  ", rows.join(","))
    }
}

/// Runs all four lints over the workspace named by `config`.
pub fn run(config: &StaticConfig) -> Result<StaticReport, String> {
    let model = WorkspaceModel::build(&config.workspace_root, &config.tcb_crates)?;
    let allow = allowlist::load(&config.workspace_root.join(&config.allowlist))?;
    Ok(run_on_model(&model, &allow, config.relaxed_ok_budget))
}

/// Runs all four lints over a prebuilt model (the oracle-fixture entry
/// point: no filesystem access).
pub fn run_on_model(
    model: &WorkspaceModel,
    allow: &[AllowEntry],
    relaxed_ok_budget: usize,
) -> StaticReport {
    let mut report = StaticReport {
        functions: model.functions.len(),
        call_edges: model.call_edge_count(),
        lock_sites: model.functions.iter().map(|f| f.locks.len()).sum(),
        atomic_sites: model.functions.iter().map(|f| f.atomics.len()).sum(),
        relaxed_ok_budget,
        ..StaticReport::default()
    };

    report.findings.extend(lock_order::check(model));

    let reach = panic_reach::check(model, allow);
    report.findings.extend(reach.findings);
    report.leaves = reach.leaves;
    report.tiers = reach.tiers;

    let atom = atomics::check(model, relaxed_ok_budget);
    report.findings.extend(atom.findings);
    report.relaxed_ok_used = atom.used;

    let trace = trace_complete::check(model);
    report.findings.extend(trace.findings);
    report.traced_ops = trace.traced_ops;

    report
}
