//! Lint 4: trace completeness.
//!
//! The runtime-verification checkers replay the trace assuming every
//! capability mutation left a footprint. This lint is the static dual:
//! every public `&mut self` method on `CapEngine` must transitively
//! reach a `TraceSink::emit`/`emit_engine` call, except for the
//! explicitly exempted non-mutating plumbing and the adversarial
//! corruption hooks (which are *defined* as invisible tampering — the
//! RV suite exists to catch their effects, not their calls).

use super::{Lint, StaticFinding};
use crate::parse::WorkspaceModel;

/// Engine methods excused from emitting, with the reason.
pub const EXEMPT: &[(&str, &str)] = &[
    ("set_trace", "installs the sink itself; nothing to record yet"),
    ("drain_effects", "hardware-effect queue handoff, not a capability mutation"),
    ("corrupt_cap", "adversarial tampering hook: invisible by design, RV must catch it"),
    ("corrupt_domain", "adversarial tampering hook: invisible by design, RV must catch it"),
    ("corrupt_generation", "adversarial tampering hook: invisible by design, RV must catch it"),
    ("corrupt_created_at", "adversarial tampering hook: invisible by design, RV must catch it"),
    ("corrupt_sealed_at", "adversarial tampering hook: invisible by design, RV must catch it"),
];

/// Lint output.
pub struct TraceResult {
    /// Ops that never emit, plus exemption-table rot.
    pub findings: Vec<StaticFinding>,
    /// Ops checked and proven to emit.
    pub traced_ops: usize,
}

/// Runs the lint.
pub fn check(model: &WorkspaceModel) -> TraceResult {
    let mut findings = Vec::new();
    let mut traced_ops = 0usize;

    // Exemption-table rot: every exempt name must still be a parsed
    // CapEngine method, or the table is hiding nothing.
    for (name, _) in EXEMPT {
        if model.find_qname(&format!("CapEngine::{name}")).is_none() {
            findings.push(StaticFinding {
                lint: Lint::TraceComplete,
                file: "(config)".into(),
                line: 0,
                message: format!(
                    "exemption table rot: `CapEngine::{name}` is exempt but no longer exists"
                ),
                path: Vec::new(),
            });
        }
    }

    for (fi, func) in model.functions.iter().enumerate() {
        let is_engine_op = func.qname.starts_with("CapEngine::")
            && func.file.ends_with("core/src/engine.rs")
            && func.is_pub
            && func.has_mut_self;
        if !is_engine_op || EXEMPT.iter().any(|(n, _)| *n == func.name) {
            continue;
        }
        let parents = model.reachable(&[fi]);
        let emits = parents.keys().any(|&ri| {
            model.functions[ri]
                .calls
                .iter()
                .any(|c| c.name == "emit" || c.name == "emit_engine")
        });
        if emits {
            traced_ops += 1;
        } else {
            findings.push(StaticFinding {
                lint: Lint::TraceComplete,
                file: func.file.clone(),
                line: func.line,
                message: format!(
                    "mutating engine op {} never reaches TraceSink::emit — the RV trace would miss this mutation",
                    func.qname
                ),
                path: vec![func.qname.clone()],
            });
        }
    }
    TraceResult {
        findings,
        traced_ops,
    }
}
