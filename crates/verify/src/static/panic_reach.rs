//! Lint 2: panic-reachability from hypercall entry.
//!
//! The flat auditor bounds how many panic-capable constructs each file
//! may contain; this lint proves the stronger, paper-shaped claim: *no
//! unapproved panic site is reachable on the call graph from any of the
//! 14 hypercall leaves or from the SMP serving tiers*, and for the
//! approved sites it replaces flat counts with path evidence —
//! entrypoint → … → containing function → site — so every allowlist
//! entry that sits on a hypercall path is visibly load-bearing.
//!
//! Call edges over-approximate (by-name resolution), so "unreachable"
//! here really means unreachable; "reachable" may include paths the
//! borrow checker would prune, which only makes the gate stricter.

use super::{EntryEvidence, Lint, SiteEvidence, StaticFinding};
use crate::allowlist::AllowEntry;
use crate::parse::WorkspaceModel;
use std::collections::BTreeMap;

/// The 14 hypercall leaves (`MonitorCall` variants) and the functions
/// their dispatch arms call into. The shared dispatch prologue
/// (`Monitor::call`/`call_inner`) is covered by the `dispatch` serving
/// tier so per-leaf evidence stays distinguishable.
pub const HYPERCALL_LEAVES: &[(&str, &[&str])] = &[
    ("CreateDomain", &["CapEngine::create_domain", "Monitor::apply_or_compensate"]),
    ("Share", &["CapEngine::share", "Monitor::apply_or_compensate"]),
    ("Grant", &["CapEngine::grant", "Monitor::apply_or_compensate"]),
    ("Split", &["CapEngine::split", "Monitor::apply_or_compensate"]),
    ("Revoke", &["CapEngine::revoke", "Monitor::apply_or_compensate"]),
    ("Seal", &["CapEngine::seal", "Monitor::apply_or_compensate"]),
    ("SetEntry", &["CapEngine::set_entry"]),
    ("RecordContent", &["CapEngine::record_content"]),
    ("MakeTransition", &["CapEngine::make_transition"]),
    ("Kill", &["CapEngine::kill", "Monitor::apply_or_compensate"]),
    ("Enumerate", &["CapEngine::enumerate"]),
    ("Enter", &["Monitor::enter_mediated"]),
    ("Return", &["Monitor::ret"]),
    ("Attest", &["Monitor::attest_domain"]),
];

/// The concurrent serving tiers (§ SMP) plus the mediated dispatcher.
pub const SERVING_TIERS: &[(&str, &[&str])] = &[
    ("dispatch", &["Monitor::call", "Monitor::call_inner"]),
    ("smp-read", &["ConcurrentMonitor::serve_enumerate"]),
    ("smp-fast", &["ConcurrentMonitor::serve_enter", "ConcurrentMonitor::serve_return"]),
    (
        "smp-mutating",
        &[
            "ConcurrentMonitor::serve",
            "ConcurrentMonitor::serve_mutating",
            "ConcurrentMonitor::sync_shootdowns",
        ],
    ),
    (
        "smp-ring",
        &[
            "ConcurrentMonitor::submit",
            "ConcurrentMonitor::ring_doorbell",
            "ConcurrentMonitor::serve_batch",
        ],
    ),
];

/// Lint output: findings plus the per-entry evidence the report keeps.
pub struct ReachResult {
    /// Unallowlisted reachable sites and entrypoint-rot findings.
    pub findings: Vec<StaticFinding>,
    /// Evidence for the 14 leaves.
    pub leaves: Vec<EntryEvidence>,
    /// Evidence for the serving tiers.
    pub tiers: Vec<EntryEvidence>,
}

/// Runs the lint.
pub fn check(model: &WorkspaceModel, allow: &[AllowEntry]) -> ReachResult {
    let allowed: std::collections::BTreeSet<(String, String)> = allow
        .iter()
        .filter(|e| e.count > 0)
        .map(|e| (e.file.clone(), e.construct.clone()))
        .collect();

    let mut findings = Vec::new();
    let leaves = walk(model, HYPERCALL_LEAVES, &allowed, &mut findings);
    let tiers = walk(model, SERVING_TIERS, &allowed, &mut findings);
    ReachResult {
        findings,
        leaves,
        tiers,
    }
}

/// Reachability over an explicit entries table — the oracle-fixture
/// entry point, so fixtures can pin the analysis without defining every
/// real hypercall seed.
pub fn check_entries(
    model: &WorkspaceModel,
    entries: &[(&str, &[&str])],
    allow: &[AllowEntry],
) -> (Vec<StaticFinding>, Vec<EntryEvidence>) {
    let allowed: std::collections::BTreeSet<(String, String)> = allow
        .iter()
        .filter(|e| e.count > 0)
        .map(|e| (e.file.clone(), e.construct.clone()))
        .collect();
    let mut findings = Vec::new();
    let evidence = walk(model, entries, &allowed, &mut findings);
    (findings, evidence)
}

fn walk(
    model: &WorkspaceModel,
    entries: &[(&str, &[&str])],
    allowed: &std::collections::BTreeSet<(String, String)>,
    findings: &mut Vec<StaticFinding>,
) -> Vec<EntryEvidence> {
    let mut out = Vec::new();
    for (entry, seeds) in entries {
        let mut seed_idx = Vec::new();
        for seed in *seeds {
            match model.find_qname(seed) {
                Some(i) => seed_idx.push(i),
                None => findings.push(StaticFinding {
                    lint: Lint::PanicReach,
                    file: "(config)".into(),
                    line: 0,
                    message: format!(
                        "entrypoint table rot: seed `{seed}` for `{entry}` names no parsed function"
                    ),
                    path: Vec::new(),
                }),
            }
        }
        let parents = model.reachable(&seed_idx);

        // Group reachable panic sites by (file, construct); allowlisted
        // groups become evidence, anything else is a finding.
        let mut groups: BTreeMap<(String, String), SiteEvidence> = BTreeMap::new();
        for &fi in parents.keys() {
            let func = &model.functions[fi];
            for site in &func.panics {
                let key = (func.file.clone(), site.construct.clone());
                let path = model.path_to(&parents, fi);
                if allowed.contains(&key) {
                    groups
                        .entry(key.clone())
                        .or_insert_with(|| SiteEvidence {
                            file: key.0.clone(),
                            construct: key.1.clone(),
                            lines: Vec::new(),
                            path,
                        })
                        .lines
                        .push(site.line);
                } else {
                    let mut full = path.clone();
                    full.push(format!("{}:{}", func.file, site.line));
                    findings.push(StaticFinding {
                        lint: Lint::PanicReach,
                        file: func.file.clone(),
                        line: site.line,
                        message: format!(
                            "panic-capable `{}` in {} reachable from `{entry}` without an allowlist entry",
                            site.construct, func.qname
                        ),
                        path: full,
                    });
                }
            }
        }
        let mut sites: Vec<SiteEvidence> = groups.into_values().collect();
        for s in &mut sites {
            s.lines.sort_unstable();
            s.lines.dedup();
        }
        out.push(EntryEvidence {
            entry: entry.to_string(),
            reached: parents.len(),
            sites,
        });
    }
    out
}
