//! Lint 3: atomics-ordering discipline.
//!
//! Two fields carry publication semantics and must pair Acquire loads
//! with Release stores, exactly as DESIGN.md's seqlock argument
//! requires:
//!
//! - `live_gen` — the seqlock generation on [`SharedEngine`] and
//!   `ConcurrentMonitor`: a reader that observes generation `g` with
//!   Acquire must see every write the `g`-committing mutation made
//!   before its Release store.
//! - `enabled` — the trace-sink gate: a thread that observes the sink
//!   enabled must see the reset sequence counter and lane setup.
//!
//! Everything else may be `Relaxed` only with an explicit, reviewed
//! `// verify: relaxed-ok <reason>` annotation on (or directly above)
//! the operation. The annotation count is an exact budget: a new
//! unreviewed `Relaxed` fails, and so does a leftover annotation whose
//! operation went away.

use super::{Lint, StaticFinding};
use crate::parse::WorkspaceModel;

/// Fields with required Acquire/Release pairing, with the argument the
/// finding cites.
pub const REQUIRED_PAIRING: &[(&str, &str)] = &[
    ("live_gen", "seqlock generation: snapshot validation needs Acquire/Release pairing"),
    ("enabled", "trace-sink gate: publication of sink state needs Acquire/Release pairing"),
];

/// Lint output.
pub struct AtomicsResult {
    /// Ordering violations, unannotated Relaxed ops, stale annotations,
    /// and budget mismatches.
    pub findings: Vec<StaticFinding>,
    /// Annotations attached to a live `Relaxed` operation.
    pub used: usize,
}

fn strong_enough(method: &str, ordering: &str) -> bool {
    match method {
        "load" => matches!(ordering, "Acquire" | "SeqCst"),
        "store" => matches!(ordering, "Release" | "SeqCst"),
        // RMW ops on published fields need both halves.
        _ => matches!(ordering, "AcqRel" | "SeqCst"),
    }
}

/// Runs the lint.
pub fn check(model: &WorkspaceModel, budget: usize) -> AtomicsResult {
    let mut findings = Vec::new();
    // (file, line) of annotations consumed by a Relaxed operation.
    let mut used_at: Vec<(String, usize)> = Vec::new();

    for func in &model.functions {
        for op in &func.atomics {
            let required = REQUIRED_PAIRING.iter().find(|(f, _)| *f == op.field);
            let relaxed = op.orderings.iter().any(|o| o == "Relaxed");
            if let Some((field, why)) = required {
                for ordering in &op.orderings {
                    if !strong_enough(&op.method, ordering) {
                        findings.push(StaticFinding {
                            lint: Lint::AtomicOrder,
                            file: func.file.clone(),
                            line: op.line,
                            message: format!(
                                "{} uses `{}` with Ordering::{ordering} on `{field}` — {why}",
                                func.qname, op.method
                            ),
                            path: vec![func.qname.clone()],
                        });
                    }
                }
                if op.annotation.is_some() {
                    findings.push(StaticFinding {
                        lint: Lint::AtomicOrder,
                        file: func.file.clone(),
                        line: op.line,
                        message: format!(
                            "`{field}` may not be excused by relaxed-ok: {why}"
                        ),
                        path: vec![func.qname.clone()],
                    });
                }
                continue;
            }
            if relaxed {
                match &op.annotation {
                    Some(reason) if !reason.trim().is_empty() => {
                        // The annotation may sit on the op's line or the
                        // line above; record whichever exists.
                        let line = model
                            .annotations
                            .iter()
                            .find(|a| {
                                a.file == func.file
                                    && (a.line == op.line || a.line + 1 == op.line)
                            })
                            .map(|a| a.line)
                            .unwrap_or(op.line);
                        used_at.push((func.file.clone(), line));
                    }
                    Some(_) => findings.push(StaticFinding {
                        lint: Lint::AtomicOrder,
                        file: func.file.clone(),
                        line: op.line,
                        message: format!(
                            "{} has a relaxed-ok annotation with no reason on `{}.{}`",
                            func.qname, op.field, op.method
                        ),
                        path: vec![func.qname.clone()],
                    }),
                    None => findings.push(StaticFinding {
                        lint: Lint::AtomicOrder,
                        file: func.file.clone(),
                        line: op.line,
                        message: format!(
                            "{} uses Ordering::Relaxed on `{}.{}` without a `// verify: relaxed-ok <reason>` annotation",
                            func.qname, op.field, op.method
                        ),
                        path: vec![func.qname.clone()],
                    }),
                }
            }
        }
    }

    // Stale annotations: markers no Relaxed operation consumed.
    for ann in &model.annotations {
        if !used_at.iter().any(|(f, l)| *f == ann.file && *l == ann.line) {
            findings.push(StaticFinding {
                lint: Lint::AtomicOrder,
                file: ann.file.clone(),
                line: ann.line,
                message: "stale `verify: relaxed-ok` annotation: no Relaxed atomic operation on this or the next line".into(),
                path: Vec::new(),
            });
        }
    }

    let used = used_at.len();
    if used != budget {
        findings.push(StaticFinding {
            lint: Lint::AtomicOrder,
            file: "(workspace)".into(),
            line: 0,
            message: format!(
                "relaxed-ok annotations in use: {used}, budget is exactly {budget}; re-derive the budget with the change that adds or removes one"
            ),
            path: Vec::new(),
        });
    }
    AtomicsResult { findings, used }
}
