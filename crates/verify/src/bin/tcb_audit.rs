//! `tcb-audit`: the command-line front end of the judiciary toolchain.
//!
//! ```text
//! cargo run -p tyche-verify --bin tcb-audit            # audit the real tree
//! cargo run -p tyche-verify --bin tcb-audit -- --bmc   # audit + model check
//! tcb-audit --root <dir>                               # audit another tree
//! ```
//!
//! Exits non-zero when any gate fails, so CI can use it directly.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use tyche_verify::{bmc, locate_workspace_root, static_audit, static_lints};

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut run_bmc = false;
    let mut run_static = false;
    let mut json_out: Option<PathBuf> = None;
    let mut budget: Option<usize> = None;
    let mut bmc_config = bmc::BmcConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--static" => run_static = true,
            "--json" => match args.next() {
                Some(path) => json_out = Some(PathBuf::from(path)),
                None => return usage("--json needs a file path"),
            },
            "--loc-budget" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => budget = Some(n),
                None => return usage("--loc-budget needs a number"),
            },
            "--bmc" => run_bmc = true,
            "--bmc-depth" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => bmc_config.max_depth = n,
                None => return usage("--bmc-depth needs a number"),
            },
            "--bmc-caps" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => bmc_config.max_caps = n,
                None => return usage("--bmc-caps needs a number"),
            },
            "--help" | "-h" => {
                println!(
                    "tcb-audit [--root <workspace>] [--loc-budget <n>]\n\
                     \x20         [--static] [--json <path>]\n\
                     \x20         [--bmc] [--bmc-depth <n>] [--bmc-caps <n>]\n\
                     Static TCB audit (and optionally the deep static lints\n\
                     and/or the bounded model check) of the Tyche trust path.\n\
                     --static adds the call-graph lints (lock order, panic\n\
                     reachability, atomics ordering, trace completeness);\n\
                     --json writes their STATIC.json report to <path>.\n\
                     Exits non-zero on any violation."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let root = match root.or_else(|| {
        locate_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
    }) {
        Some(r) => r,
        None => {
            eprintln!("tcb-audit: cannot locate a workspace root; pass --root");
            return ExitCode::FAILURE;
        }
    };

    let mut config = static_audit::AuditConfig::tyche_defaults(&root);
    if let Some(b) = budget {
        config.loc_budget = b;
    }
    let report = match static_audit::run(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("tcb-audit: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", report.render());
    let mut failed = !report.passed();

    if run_static {
        let static_config = static_lints::StaticConfig::tyche_defaults(&root);
        match static_lints::run(&static_config) {
            Ok(deep) => {
                println!();
                print!("{}", deep.render());
                if let Some(path) = &json_out {
                    if let Err(e) = std::fs::write(path, deep.to_json()) {
                        eprintln!("tcb-audit: cannot write {}: {e}", path.display());
                        failed = true;
                    }
                }
                failed |= !deep.passed();
            }
            Err(e) => {
                eprintln!("tcb-audit: deep lints: {e}");
                failed = true;
            }
        }
    }

    if run_bmc {
        let result = bmc::run(&bmc_config);
        println!(
            "\nBounded model check ({} pages, {} child domains, depth {}, cap bound {})",
            bmc_config.pages, bmc_config.child_domains, bmc_config.max_depth, bmc_config.max_caps
        );
        println!(
            "  states: {} deduped ({} transitions, {} refused, depth reached {}, exhaustive: {})",
            result.states,
            result.transitions,
            result.refused,
            result.max_depth_reached,
            result.exhaustive
        );
        if result.violations.is_empty() {
            println!("  violations: none\n  RESULT: PASS");
        } else {
            println!("  violations: {}", result.violations.len());
            for v in result.violations.iter().take(10) {
                println!("    {}", v.message);
                for step in &v.trace {
                    println!("      after: {step}");
                }
            }
            println!("  RESULT: FAIL");
            failed = true;
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("tcb-audit: {msg} (try --help)");
    ExitCode::FAILURE
}
