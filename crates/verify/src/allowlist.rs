//! The panic-construct allowlist and its hand-rolled parser.
//!
//! The TCB auditor flags every panic-capable construct in trust-path
//! code. Some are deliberate — a monitor call that has already validated
//! its arguments, an infallible conversion — and those are recorded in a
//! checked-in `allowlist.toml` with a per-file, per-construct budget and
//! a human reason. The auditor fails when code exceeds its budget *or*
//! when the allowlist over-approves (a stale entry no longer matched by
//! code), so the list cannot rot in either direction.
//!
//! The parser reads exactly the TOML subset the file uses (`[[allow]]`
//! tables with string and integer values, `#` comments) — hand-rolled
//! because the verifier must have zero dependencies outside std.

use std::path::Path;

/// One approved panic-construct budget.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// Workspace-relative path the budget applies to.
    pub file: String,
    /// Construct name as reported by the auditor (e.g. `"expect("`).
    pub construct: String,
    /// Maximum occurrences allowed. Code above this count fails; an
    /// entry whose file has *fewer* occurrences is stale and also fails.
    pub count: usize,
    /// Why the occurrences are acceptable.
    pub reason: String,
}

/// Parses allowlist text. Errors carry a line number.
pub fn parse(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    // Fields of the entry currently being assembled.
    let mut current: Option<PartialEntry> = None;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(partial) = current.take() {
                entries.push(partial.finish(lineno)?);
            }
            current = Some(PartialEntry::new(lineno));
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("line {lineno}: unknown table {line:?}; only [[allow]] is supported"));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {lineno}: expected `key = value`, got {line:?}"));
        };
        let Some(entry) = current.as_mut() else {
            return Err(format!("line {lineno}: {key:?} outside any [[allow]] table"));
        };
        entry.set(key.trim(), value.trim(), lineno)?;
    }
    if let Some(partial) = current.take() {
        let last = text.lines().count();
        entries.push(partial.finish(last)?);
    }
    Ok(entries)
}

/// Parses the allowlist file at `path`.
pub fn load(path: &Path) -> Result<Vec<AllowEntry>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("read allowlist {}: {e}", path.display()))?;
    parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Drops a `#` comment, respecting `#` inside double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_string && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

#[derive(Default)]
struct PartialEntry {
    start_line: usize,
    file: Option<String>,
    construct: Option<String>,
    count: Option<usize>,
    reason: Option<String>,
}

impl PartialEntry {
    fn new(start_line: usize) -> Self {
        PartialEntry {
            start_line,
            ..Default::default()
        }
    }

    fn set(&mut self, key: &str, value: &str, lineno: usize) -> Result<(), String> {
        match key {
            "file" => self.file = Some(parse_string(value, lineno)?),
            "construct" => self.construct = Some(parse_string(value, lineno)?),
            "reason" => self.reason = Some(parse_string(value, lineno)?),
            "count" => {
                self.count = Some(value.parse().map_err(|_| {
                    format!("line {lineno}: count must be a non-negative integer, got {value:?}")
                })?)
            }
            other => return Err(format!("line {lineno}: unknown key {other:?}")),
        }
        Ok(())
    }

    fn finish(self, end_line: usize) -> Result<AllowEntry, String> {
        let at = format!(
            "[[allow]] table starting at line {} (ends by line {end_line})",
            self.start_line
        );
        Ok(AllowEntry {
            file: self.file.ok_or_else(|| format!("{at}: missing `file`"))?,
            construct: self
                .construct
                .ok_or_else(|| format!("{at}: missing `construct`"))?,
            count: self.count.ok_or_else(|| format!("{at}: missing `count`"))?,
            reason: self.reason.ok_or_else(|| format!("{at}: missing `reason`"))?,
        })
    }
}

fn parse_string(value: &str, lineno: usize) -> Result<String, String> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| format!("line {lineno}: expected a double-quoted string, got {value:?}"))?;
    // Unescape the two escapes TOML basic strings need here.
    Ok(inner.replace("\\\"", "\"").replace("\\\\", "\\"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# Approved panics in the trust path.
[[allow]]
file = "crates/core/src/engine.rs"
construct = "expect("   # trailing comment
count = 2
reason = "id allocation is infallible by construction"

[[allow]]
file = "crates/monitor/src/monitor.rs"
construct = "panic!"
count = 1
reason = "ABI contract violation is unrecoverable"
"#;

    #[test]
    fn parses_entries() {
        let entries = parse(SAMPLE).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].file, "crates/core/src/engine.rs");
        assert_eq!(entries[0].construct, "expect(");
        assert_eq!(entries[0].count, 2);
        assert_eq!(entries[1].construct, "panic!");
        assert!(entries[1].reason.contains("unrecoverable"));
    }

    #[test]
    fn rejects_missing_fields() {
        let err = parse("[[allow]]\nfile = \"x.rs\"\n").unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn rejects_unknown_keys_and_stray_values() {
        assert!(parse("[[allow]]\nfoo = \"bar\"\n").unwrap_err().contains("unknown key"));
        assert!(parse("file = \"x.rs\"\n").unwrap_err().contains("outside any"));
        assert!(parse("[badtable]\n").unwrap_err().contains("unknown table"));
        assert!(parse("[[allow]]\ncount = \"three\"\n").unwrap_err().contains("integer"));
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let entries = parse(
            "[[allow]]\nfile = \"a#b.rs\"\nconstruct = \"unwrap()\"\ncount = 1\nreason = \"r\"\n",
        )
        .unwrap();
        assert_eq!(entries[0].file, "a#b.rs");
    }
}
