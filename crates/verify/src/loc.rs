//! The single source of truth for the C1 claim's LOC count.
//!
//! The paper's Claim 1 is a TCB-size bound ("less than 10K lines of
//! Rust"). Everything that reports a TCB line count — `repro c1`,
//! `tcb-audit`, CI — must call [`count_file`]/[`count_crate`] so the
//! number cannot drift between tools.
//!
//! What counts as a line of trusted code:
//! - blank lines do not count;
//! - comment-only lines (line comments, doc comments, block comments)
//!   do not count;
//! - test code does not count: `#[cfg(test)]` items (modules or single
//!   functions) are excluded by tracking the brace extent of the item
//!   that follows the attribute, so a test module in the middle of a
//!   file does not hide the production code after it.

use crate::lex;
use std::path::{Path, PathBuf};

/// LOC breakdown for one source file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FileLoc {
    /// Non-blank, non-comment, non-test lines: the number that counts
    /// against the TCB budget.
    pub code: usize,
    /// Lines excluded because they sit inside a `#[cfg(test)]` extent.
    pub test: usize,
    /// Blank or comment-only lines.
    pub blank_or_comment: usize,
}

impl FileLoc {
    fn add(&mut self, other: &FileLoc) {
        self.code += other.code;
        self.test += other.test;
        self.blank_or_comment += other.blank_or_comment;
    }
}

/// How one source line counts against the TCB budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LineClass {
    /// Counts against the budget.
    Code,
    /// Inside a `#[cfg(test)]` extent; excluded.
    Test,
    /// Blank or comment-only; excluded.
    BlankOrComment,
}

/// Classifies every line of `src` (1-based line `n` is index `n - 1`).
/// Works on the comment/literal-stripped text so braces in strings do
/// not confuse the `#[cfg(test)]` extent tracking.
pub fn classify_lines(src: &str) -> Vec<LineClass> {
    let stripped = lex::strip_noncode(src);
    let mut classes = Vec::new();

    // A test extent begins at a `#[cfg(test)]` attribute and ends when
    // the brace depth of the item following it returns to its starting
    // value (or at `;` for braceless items like `#[cfg(test)] use x;`).
    let mut depth: i64 = 0;
    let mut test_until_depth: Vec<i64> = Vec::new();
    let mut pending_test_attr = false;

    for code_line in stripped.lines() {
        let in_test_before = !test_until_depth.is_empty() || pending_test_attr;
        let trimmed_code = code_line.trim();

        if trimmed_code.contains("#[cfg(test)]") {
            pending_test_attr = true;
        }

        for b in trimmed_code.bytes() {
            match b {
                b'{' => {
                    if pending_test_attr {
                        // The test item's body opens here; the extent
                        // lasts until depth drops back to this level.
                        test_until_depth.push(depth);
                        pending_test_attr = false;
                    }
                    depth += 1;
                }
                b'}' => {
                    depth -= 1;
                    if test_until_depth.last().is_some_and(|&d| depth <= d) {
                        test_until_depth.pop();
                    }
                }
                b';' if pending_test_attr => pending_test_attr = false,
                _ => {}
            }
        }

        let in_test_after = !test_until_depth.is_empty() || pending_test_attr;
        classes.push(if trimmed_code.is_empty() {
            LineClass::BlankOrComment
        } else if in_test_before || in_test_after {
            LineClass::Test
        } else {
            LineClass::Code
        });
    }
    classes
}

/// Counts one file's source text.
pub fn count_source(src: &str) -> FileLoc {
    let mut out = FileLoc::default();
    for class in classify_lines(src) {
        match class {
            LineClass::Code => out.code += 1,
            LineClass::Test => out.test += 1,
            LineClass::BlankOrComment => out.blank_or_comment += 1,
        }
    }
    out
}

/// Counts one file on disk.
pub fn count_file(path: &Path) -> Result<FileLoc, String> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| format!("read {}: {e}", path.display()))?;
    Ok(count_source(&src))
}

/// All `.rs` files under `dir`, recursively, sorted for determinism.
pub fn rust_sources(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries =
            std::fs::read_dir(&d).map_err(|e| format!("read_dir {}: {e}", d.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir {}: {e}", d.display()))?;
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|ext| ext == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// LOC for a crate: every `.rs` under `<crate>/src` (integration tests
/// under `<crate>/tests` are by definition not TCB and are not walked).
pub fn count_crate(crate_root: &Path) -> Result<FileLoc, String> {
    let src_dir = crate_root.join("src");
    let mut total = FileLoc::default();
    for file in rust_sources(&src_dir)? {
        total.add(&count_file(&file)?);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_and_comment_lines_do_not_count() {
        let src = "\n// comment\n/// doc\nfn f() {}\n\n/* block\n   still block */\nlet x = 1;\n";
        let loc = count_source(src);
        assert_eq!(loc.code, 2, "fn f and let x");
        assert_eq!(loc.test, 0);
        assert_eq!(loc.blank_or_comment, 6);
    }

    #[test]
    fn test_module_in_middle_does_not_hide_later_code() {
        let src = "fn prod1() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { if true { } }\n\
                   }\n\
                   fn prod2() {}\n";
        let loc = count_source(src);
        assert_eq!(loc.code, 2, "prod1 and prod2");
        assert_eq!(loc.test, 4, "attribute + module body");
    }

    #[test]
    fn cfg_test_on_single_item_and_use() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn prod() {}\n#[cfg(test)]\nfn helper() {\n    body();\n}\nfn prod2() {}\n";
        let loc = count_source(src);
        assert_eq!(loc.code, 2, "prod and prod2");
        assert_eq!(loc.test, 6);
    }

    #[test]
    fn braces_in_strings_do_not_confuse_extent_tracking() {
        let src = "#[cfg(test)]\nmod tests {\n    const S: &str = \"}}}}\";\n}\nfn prod() {}\n";
        let loc = count_source(src);
        assert_eq!(loc.code, 1);
        assert_eq!(loc.test, 4);
    }

    #[test]
    fn counts_this_crate_without_error() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let loc = count_crate(here).unwrap();
        assert!(loc.code > 100, "this crate is not empty: {loc:?}");
        assert!(loc.test > 50, "this crate has tests: {loc:?}");
    }
}
