//! Item-level parsing on top of [`lex`]: the workspace model the deep
//! static lints share.
//!
//! This is deliberately not a Rust parser. It recognizes exactly the
//! shapes the lints need — `impl` blocks, `fn` items and their brace
//! extents, call tokens, the workspace's lock-helper calls, atomic
//! operations carrying an explicit `Ordering`, and panic-capable
//! constructs — on comment/literal-stripped text. Everything else is
//! skipped.
//!
//! The model over-approximates on purpose: call edges resolve by simple
//! name to *every* same-named function in the TCB, which is the
//! conservative direction for reachability lints (extra edges can only
//! add findings), and guard lifetimes follow a lexical model — a
//! let-bound guard is held until its enclosing block closes or an
//! explicit `drop(var)`, an unbound guard (a temporary inside a larger
//! expression) is released at its own statement. Guards owned by `for`
//! scrutinees are treated as temporaries, which under-approximates one
//! hold in `TraceSink::drain` but cannot invent a violation.

use crate::lex;
use crate::loc::{self, LineClass};
use crate::static_audit;
use std::collections::BTreeMap;
use std::path::Path;

/// The workspace's poison-recovering lock helpers. Every guard the TCB
/// takes goes through one of these, so the parser keys on the helper
/// name instead of chasing `Mutex`/`RwLock` types.
pub const LOCK_HELPERS: &[&str] = &[
    "mutex_lock",
    "read_lock",
    "write_lock",
    "lock_mutex",
    "read_lanes",
    "write_lanes",
];

/// Atomic methods whose argument list names an `Ordering`.
pub const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// The escape-hatch marker for deliberately-`Relaxed` atomics.
pub const RELAXED_OK_MARKER: &str = "verify: relaxed-ok";

/// Words that look like calls (`if (...)`) but are not.
const KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "loop", "for", "return", "let", "in", "as", "move", "ref",
    "mut", "fn", "impl", "use", "where", "break", "continue", "struct", "enum", "const", "static",
    "type", "dyn", "pub", "mod", "trait", "await", "async", "yield",
];

/// One `name(...)` (or turbofished) call token inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Simple callee name; resolution is by-name across the model.
    pub name: String,
    /// 1-based line.
    pub line: usize,
    /// Byte offset in the stripped file (orders events within a body).
    pub offset: usize,
}

/// One guard acquisition through a lock helper.
#[derive(Clone, Debug)]
pub struct LockSite {
    /// Which helper took the guard.
    pub helper: String,
    /// Argument text (empty for the bare `.map(mutex_lock)` form).
    pub arg: String,
    /// Statement text preceding the call — classification fallback when
    /// the argument alone is ambiguous (e.g. `&s.lock` inside a map over
    /// the shard vector).
    pub context: String,
    /// 1-based line.
    pub line: usize,
    /// Byte offset in the stripped file.
    pub offset: usize,
    /// Offset of the `}` closing the innermost enclosing block.
    pub scope_end: usize,
    /// True when the guard is let-bound (held to end of scope); false
    /// for temporaries released at their own statement.
    pub bound: bool,
    /// The let binding's name, when it is a plain identifier.
    pub binding: Option<String>,
    /// True for batch acquisition through an iterator chain
    /// (`.map(|s| mutex_lock(..)).collect()`).
    pub multi: bool,
}

/// One `x.store(v, Ordering::..)`-shaped atomic operation.
#[derive(Clone, Debug)]
pub struct AtomicSite {
    /// Field/variable the method was called on (best-effort: the
    /// identifier left of the dot).
    pub field: String,
    /// The atomic method (`load`, `store`, `fetch_add`, ...).
    pub method: String,
    /// Every `Ordering::X` named in the argument list, in order.
    pub orderings: Vec<String>,
    /// 1-based line.
    pub line: usize,
    /// `// verify: relaxed-ok <reason>` found on this or the preceding
    /// line, with the reason text.
    pub annotation: Option<String>,
}

/// One panic-capable construct (as classified by the flat auditor)
/// inside a function body.
#[derive(Clone, Debug)]
pub struct PanicSite {
    /// Construct name (`"unwrap()"`, `"index["`, ...).
    pub construct: String,
    /// 1-based line.
    pub line: usize,
}

/// An explicit `drop(var)` releasing a guard early.
#[derive(Clone, Debug)]
pub struct ReleaseSite {
    /// The dropped variable.
    pub var: String,
    /// Byte offset in the stripped file.
    pub offset: usize,
}

/// One parsed production function.
#[derive(Clone, Debug)]
pub struct Function {
    /// Crate directory name (`"core"`, `"monitor"`, ...).
    pub krate: String,
    /// Workspace-relative file path with forward slashes.
    pub file: String,
    /// Simple name.
    pub name: String,
    /// `Type::name` when inside an `impl` block, else the simple name.
    pub qname: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Declared `pub` (including `pub(crate)` and friends).
    pub is_pub: bool,
    /// First parameter is `&mut self`.
    pub has_mut_self: bool,
    /// Call tokens, in body order.
    pub calls: Vec<CallSite>,
    /// Guard acquisitions, in body order.
    pub locks: Vec<LockSite>,
    /// Explicit `drop(var)` releases.
    pub releases: Vec<ReleaseSite>,
    /// Atomic operations with an explicit `Ordering`.
    pub atomics: Vec<AtomicSite>,
    /// Panic-capable constructs inside the body.
    pub panics: Vec<PanicSite>,
    /// The stripped body text (used for in-body evidence searches such
    /// as the shard sort/dedup requirement).
    pub body_text: String,
    /// File-absolute byte offset of the body's opening `{` — converts
    /// site offsets to `body_text` positions.
    pub body_start: usize,
}

/// A `// verify: relaxed-ok` marker found in a file.
#[derive(Clone, Debug)]
pub struct Annotation {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line the marker sits on.
    pub line: usize,
    /// Reason text after the marker.
    pub reason: String,
}

/// Parse result for one file.
#[derive(Clone, Debug, Default)]
pub struct ParsedFile {
    /// Production functions, in file order.
    pub functions: Vec<Function>,
    /// All relaxed-ok markers in the file (production or not).
    pub annotations: Vec<Annotation>,
}

/// The whole-workspace model.
#[derive(Clone, Debug, Default)]
pub struct WorkspaceModel {
    /// Every production function in the scanned crates.
    pub functions: Vec<Function>,
    /// Every relaxed-ok annotation in the scanned crates.
    pub annotations: Vec<Annotation>,
    /// Files parsed.
    pub files: usize,
    by_name: BTreeMap<String, Vec<usize>>,
    by_qname: BTreeMap<String, usize>,
}

impl WorkspaceModel {
    /// Parses every `.rs` file under `crates/<name>/src` for each crate.
    pub fn build(workspace_root: &Path, crates: &[String]) -> Result<WorkspaceModel, String> {
        let mut sources = Vec::new();
        for krate in crates {
            let src_dir = workspace_root.join("crates").join(krate).join("src");
            for file in loc::rust_sources(&src_dir)? {
                let rel = file
                    .strip_prefix(workspace_root)
                    .unwrap_or(&file)
                    .to_string_lossy()
                    .replace('\\', "/");
                let text = std::fs::read_to_string(&file)
                    .map_err(|e| format!("read {}: {e}", file.display()))?;
                sources.push((krate.clone(), rel, text));
            }
        }
        let borrowed: Vec<(&str, &str, &str)> = sources
            .iter()
            .map(|(k, f, s)| (k.as_str(), f.as_str(), s.as_str()))
            .collect();
        Ok(Self::from_sources(&borrowed))
    }

    /// Builds a model from in-memory sources: `(crate, file, text)`.
    /// This is what the lint-oracle fixtures use.
    pub fn from_sources(sources: &[(&str, &str, &str)]) -> WorkspaceModel {
        let mut model = WorkspaceModel::default();
        for (krate, file, text) in sources {
            let parsed = parse_source(krate, file, text);
            model.files += 1;
            model.annotations.extend(parsed.annotations);
            for f in parsed.functions {
                let idx = model.functions.len();
                model.by_name.entry(f.name.clone()).or_default().push(idx);
                model.by_qname.entry(f.qname.clone()).or_insert(idx);
                model.functions.push(f);
            }
        }
        model
    }

    /// Indices of every function with this simple name.
    pub fn functions_named(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Index of the (first) function with this qualified name.
    pub fn find_qname(&self, qname: &str) -> Option<usize> {
        self.by_qname.get(qname).copied()
    }

    /// Total resolved call edges (call tokens that name at least one
    /// function in the model count once per target).
    pub fn call_edge_count(&self) -> usize {
        self.functions
            .iter()
            .flat_map(|f| &f.calls)
            .map(|c| self.functions_named(&c.name).len())
            .sum()
    }

    /// Breadth-first reachability over call edges from `seeds`,
    /// returning `reached index -> parent index` (seeds map to
    /// themselves).
    pub fn reachable(&self, seeds: &[usize]) -> BTreeMap<usize, usize> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: Vec<usize> = Vec::new();
        for &s in seeds {
            if parent.insert(s, s).is_none() {
                queue.push(s);
            }
        }
        while let Some(cur) = queue.pop() {
            for call in &self.functions[cur].calls {
                for &next in self.functions_named(&call.name) {
                    if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(next) {
                        e.insert(cur);
                        queue.push(next);
                    }
                }
            }
        }
        parent
    }

    /// Reconstructs the qname chain seed → ... → `target` from a
    /// [`reachable`](Self::reachable) parent map.
    pub fn path_to(&self, parents: &BTreeMap<usize, usize>, target: usize) -> Vec<String> {
        let mut chain = vec![target];
        let mut cur = target;
        while let Some(&p) = parents.get(&cur) {
            if p == cur {
                break;
            }
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
            .into_iter()
            .map(|i| self.functions[i].qname.clone())
            .collect()
    }
}

/// Parses one file's text into production functions + annotations.
pub fn parse_source(krate: &str, file: &str, src: &str) -> ParsedFile {
    let stripped = lex::strip_noncode(src);
    let classes = loc::classify_lines(src);
    let file_panics = static_audit::panic_occurrences(&stripped, &classes);
    let annotations = scan_annotations(file, src);
    let bytes = stripped.as_bytes();

    let mut out = ParsedFile {
        annotations,
        ..ParsedFile::default()
    };
    let mut i = 0usize;
    let mut depth: i64 = 0;
    // (depth the block opened at, impl'd type name)
    let mut impls: Vec<(i64, String)> = Vec::new();
    let mut pending_impl: Option<String> = None;

    while i < bytes.len() {
        let b = bytes[i];
        if b == b'{' {
            if let Some(name) = pending_impl.take() {
                impls.push((depth, name));
            }
            depth += 1;
            i += 1;
        } else if b == b'}' {
            depth -= 1;
            if impls.last().is_some_and(|(d, _)| *d >= depth) {
                impls.pop();
            }
            i += 1;
        } else if b == b';' {
            pending_impl = None;
            i += 1;
        } else if b.is_ascii_alphabetic() || b == b'_' {
            let (word, j) = read_ident(&stripped, i);
            if word == "impl" {
                let (name, stop) = impl_header(&stripped, j);
                pending_impl = name;
                i = stop;
            } else if word == "fn" {
                let ctx = impls.last().map(|(_, n)| n.as_str());
                match parse_fn(&stripped, &classes, i, j, ctx, krate, file, &file_panics, &out.annotations) {
                    FnOutcome::Item(func, resume) => {
                        out.functions.push(*func);
                        i = resume;
                    }
                    FnOutcome::Skip(resume) => i = resume.max(j),
                }
            } else {
                i = j;
            }
        } else {
            i += 1;
        }
    }
    out
}

fn scan_annotations(file: &str, src: &str) -> Vec<Annotation> {
    let mut out = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        if let Some(comment) = raw.split_once("//").map(|(_, c)| c) {
            if let Some(rest) = comment.split(RELAXED_OK_MARKER).nth(1) {
                out.push(Annotation {
                    file: file.to_string(),
                    line: idx + 1,
                    reason: rest.trim().to_string(),
                });
            }
        }
    }
    out
}

/// Extracts the implemented type's simple name from an `impl` header
/// and returns the offset of the body `{` (not consumed).
fn impl_header(stripped: &str, from: usize) -> (Option<String>, usize) {
    let bytes = stripped.as_bytes();
    let mut header = String::new();
    let mut i = from;
    let mut angle = 0i64;
    while i < bytes.len() {
        match bytes[i] {
            b'{' if angle == 0 => break,
            b';' if angle == 0 => return (None, i),
            b'<' => angle += 1,
            b'>' => angle = (angle - 1).max(0),
            b'-' if bytes.get(i + 1) == Some(&b'>') => {
                header.push_str("->");
                i += 2;
                continue;
            }
            _ => {}
        }
        header.push(bytes[i] as char);
        i += 1;
    }
    // `impl<...> Trait for Type<...>` takes the segment after `for`;
    // plain `impl Type` takes the whole header.
    let target = match header.rfind(" for ") {
        Some(pos) => &header[pos + 5..],
        None => header.as_str(),
    };
    let target = target.trim();
    let target = target.split('<').next().unwrap_or(target);
    let target = target.rsplit("::").next().unwrap_or(target).trim();
    let name = target
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect::<String>();
    ((!name.is_empty()).then_some(name), i)
}

enum FnOutcome {
    Item(Box<Function>, usize),
    Skip(usize),
}

#[allow(clippy::too_many_arguments)]
fn parse_fn(
    stripped: &str,
    classes: &[LineClass],
    kw_pos: usize,
    after_kw: usize,
    impl_ctx: Option<&str>,
    krate: &str,
    file: &str,
    file_panics: &[(String, usize)],
    annotations: &[Annotation],
) -> FnOutcome {
    let bytes = stripped.as_bytes();
    let mut i = skip_ws(bytes, after_kw);
    let (name, after_name) = read_ident(stripped, i);
    if name.is_empty() {
        return FnOutcome::Skip(after_kw);
    }
    i = skip_ws(bytes, after_name);
    if bytes.get(i) == Some(&b'<') {
        i = skip_angles(bytes, i);
        i = skip_ws(bytes, i);
    }
    if bytes.get(i) != Some(&b'(') {
        return FnOutcome::Skip(i);
    }
    let Some(params_end) = match_delim(bytes, i, b'(', b')') else {
        return FnOutcome::Skip(bytes.len());
    };
    let params = stripped[i + 1..params_end].trim();

    // Body `{`, or `;` for a bodiless trait declaration.
    let mut j = params_end + 1;
    let body_open = loop {
        match bytes.get(j) {
            None => return FnOutcome::Skip(bytes.len()),
            Some(b'{') => break j,
            Some(b';') => return FnOutcome::Skip(j + 1),
            Some(b'(') | Some(b'[') => {
                // Tuple/array return types.
                let open = bytes[j];
                let close = if open == b'(' { b')' } else { b']' };
                match match_delim(bytes, j, open, close) {
                    Some(end) => j = end + 1,
                    None => return FnOutcome::Skip(bytes.len()),
                }
            }
            Some(_) => j += 1,
        }
    };
    let Some(body_close) = match_delim(bytes, body_open, b'{', b'}') else {
        return FnOutcome::Skip(bytes.len());
    };
    let resume = body_close + 1;

    let line = lex::line_of(stripped, kw_pos);
    if classes.get(line - 1) == Some(&LineClass::Test) {
        return FnOutcome::Skip(resume);
    }

    let qname = match impl_ctx {
        Some(ctx) => format!("{ctx}::{name}"),
        None => name.to_string(),
    };
    let mut func = Function {
        krate: krate.to_string(),
        file: file.to_string(),
        name: name.to_string(),
        qname,
        line,
        is_pub: is_pub_before(bytes, kw_pos),
        has_mut_self: params.starts_with("&mut self")
            || params
                .split(',')
                .next()
                .is_some_and(|p| p.trim() == "&mut self"),
        calls: Vec::new(),
        locks: Vec::new(),
        releases: Vec::new(),
        atomics: Vec::new(),
        panics: Vec::new(),
        body_text: stripped[body_open..=body_close].to_string(),
        body_start: body_open,
    };
    scan_body(stripped, body_open, body_close, &mut func, annotations);

    let first = lex::line_of(stripped, body_open);
    let last = lex::line_of(stripped, body_close);
    func.panics = file_panics
        .iter()
        .filter(|(_, l)| *l >= first && *l <= last)
        .map(|(c, l)| PanicSite {
            construct: c.clone(),
            line: *l,
        })
        .collect();
    FnOutcome::Item(Box::new(func), resume)
}

/// True when the tokens before `fn` include a `pub` qualifier
/// (`pub`, `pub(crate)`, `pub(super)`, ...).
fn is_pub_before(bytes: &[u8], kw_pos: usize) -> bool {
    let mut i = kw_pos;
    // Walk back over qualifier words (`const`, `async`, `unsafe` never
    // appears in TCB code but costs nothing) until something that is
    // not a qualifier.
    for _ in 0..4 {
        while i > 0 && bytes[i - 1].is_ascii_whitespace() {
            i -= 1;
        }
        if i == 0 {
            return false;
        }
        if bytes[i - 1] == b')' {
            // `pub(crate)` etc: skip back to the matching `(`.
            let mut depth = 0usize;
            while i > 0 {
                i -= 1;
                match bytes[i] {
                    b')' => depth += 1,
                    b'(' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            continue;
        }
        if !lex::is_ident_byte(bytes[i - 1]) {
            return false;
        }
        let end = i;
        while i > 0 && lex::is_ident_byte(bytes[i - 1]) {
            i -= 1;
        }
        match &bytes[i..end] {
            b"pub" => return true,
            b"const" | b"async" | b"extern" => continue,
            _ => return false,
        }
    }
    false
}

fn scan_body(
    stripped: &str,
    open: usize,
    close: usize,
    func: &mut Function,
    annotations: &[Annotation],
) {
    let bytes = stripped.as_bytes();
    let mut i = open + 1;
    let mut brace_stack: Vec<usize> = vec![open];
    while i < close {
        let b = bytes[i];
        if b == b'{' {
            brace_stack.push(i);
            i += 1;
        } else if b == b'}' {
            let opened_at = brace_stack.pop().unwrap_or(open);
            for l in func.locks.iter_mut() {
                if l.scope_end == usize::MAX && l.offset > opened_at {
                    l.scope_end = i;
                }
            }
            i += 1;
        } else if b.is_ascii_alphabetic() || b == b'_' {
            let (word, j) = read_ident(stripped, i);
            let k = skip_ws(bytes, j);
            if bytes.get(k) == Some(&b'!') {
                // Macro invocation; panic macros are collected by the
                // shared construct scanner, other macros' arguments are
                // scanned as ordinary tokens.
                i = j;
                continue;
            }
            // Optional turbofish between name and argument list.
            let mut call_at = k;
            if stripped[call_at..].starts_with("::<") {
                call_at = skip_angles(bytes, call_at + 2);
                call_at = skip_ws(bytes, call_at);
            }
            if bytes.get(call_at) == Some(&b'(') && !KEYWORDS.contains(&word) {
                handle_call(stripped, func, word, i, call_at, annotations);
            } else if LOCK_HELPERS.contains(&word) {
                // Bare function reference: `.map(mutex_lock)`.
                record_lock(stripped, func, word, i, None);
            }
            i = j;
        } else {
            i += 1;
        }
    }
    for l in func.locks.iter_mut() {
        if l.scope_end == usize::MAX {
            l.scope_end = close;
        }
    }
}

fn handle_call(
    stripped: &str,
    func: &mut Function,
    word: &str,
    ident_pos: usize,
    paren_open: usize,
    annotations: &[Annotation],
) {
    let bytes = stripped.as_bytes();
    let paren_close = match_delim(bytes, paren_open, b'(', b')').unwrap_or(bytes.len() - 1);
    let args = stripped[paren_open + 1..paren_close].trim().to_string();
    let line = lex::line_of(stripped, ident_pos);

    func.calls.push(CallSite {
        name: word.to_string(),
        line,
        offset: ident_pos,
    });

    if word == "drop" && !args.is_empty() && args.bytes().all(lex::is_ident_byte) {
        func.releases.push(ReleaseSite {
            var: args.clone(),
            offset: ident_pos,
        });
    }

    if LOCK_HELPERS.contains(&word) {
        record_lock(
            stripped,
            func,
            word,
            ident_pos,
            Some((paren_close, args.clone())),
        );
    }

    if ATOMIC_METHODS.contains(&word) && args.contains("Ordering::") {
        if let Some(field) = receiver_before(bytes, ident_pos) {
            let orderings = extract_orderings(&args);
            if !orderings.is_empty() {
                let annotation = annotations
                    .iter()
                    .find(|a| a.file == func.file && (a.line == line || a.line + 1 == line))
                    .map(|a| a.reason.clone());
                func.atomics.push(AtomicSite {
                    field,
                    method: word.to_string(),
                    orderings,
                    line,
                    annotation,
                });
            }
        }
    }
}

/// Records one lock-helper use. `call` is `(close paren, args)` for the
/// call form, `None` for the bare fn-reference form.
fn record_lock(
    stripped: &str,
    func: &mut Function,
    helper: &str,
    ident_pos: usize,
    call: Option<(usize, String)>,
) {
    let bytes = stripped.as_bytes();
    let stmt_start = statement_start(bytes, ident_pos);
    let context = stripped[stmt_start..ident_pos].trim().to_string();
    let after_pos = match &call {
        Some((close, _)) => close + 1,
        None => ident_pos + helper.len(),
    };
    let mut stmt_end = after_pos;
    while stmt_end < bytes.len() && bytes[stmt_end] != b';' {
        stmt_end += 1;
    }
    let after = stripped[after_pos..stmt_end].trim();

    let is_let = context == "let" || context.starts_with("let ") || context.starts_with("let\n");
    let rest_after_eq = context
        .split_once('=')
        .map(|(_, r)| r.trim().to_string())
        .unwrap_or_default();
    let multi = context.contains(".map(") || after.contains(".collect()");
    let bound = is_let && (multi || (rest_after_eq.is_empty() && after.is_empty()));
    let binding = if bound {
        let mut it = context.split_whitespace().skip(1); // past `let`
        let mut first = it.next().unwrap_or("");
        if first == "mut" {
            first = it.next().unwrap_or("");
        }
        let ident: String = first
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        (!ident.is_empty()).then_some(ident)
    } else {
        None
    };

    func.locks.push(LockSite {
        helper: helper.to_string(),
        arg: call.map(|(_, a)| a).unwrap_or_default(),
        context,
        line: lex::line_of(stripped, ident_pos),
        offset: ident_pos,
        scope_end: if bound { usize::MAX } else { ident_pos },
        bound,
        binding,
        multi,
    });
}

/// The identifier left of the `.` before a method call, stepping over
/// an index expression (`self.slots[i].store` → `slots`).
fn receiver_before(bytes: &[u8], ident_pos: usize) -> Option<String> {
    let mut i = ident_pos;
    while i > 0 && bytes[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    if i == 0 || bytes[i - 1] != b'.' {
        return None;
    }
    i -= 1; // at the dot
    while i > 0 && bytes[i - 1].is_ascii_whitespace() {
        i -= 1;
    }
    if i > 0 && bytes[i - 1] == b']' {
        let mut depth = 0usize;
        while i > 0 {
            i -= 1;
            match bytes[i] {
                b']' => depth += 1,
                b'[' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    let end = i;
    while i > 0 && lex::is_ident_byte(bytes[i - 1]) {
        i -= 1;
    }
    (i < end).then(|| String::from_utf8_lossy(&bytes[i..end]).into_owned())
}

fn extract_orderings(args: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = args;
    while let Some(pos) = rest.find("Ordering::") {
        let after = &rest[pos + "Ordering::".len()..];
        let name: String = after
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() {
            out.push(name);
        }
        rest = after;
    }
    out
}

/// Scans back from `pos` to just after the previous `;`, `{`, `}`, or
/// `=>` — the start of the enclosing statement.
fn statement_start(bytes: &[u8], pos: usize) -> usize {
    let mut i = pos;
    while i > 0 {
        match bytes[i - 1] {
            b';' | b'{' | b'}' => return i,
            b'>' if i >= 2 && bytes[i - 2] == b'=' => return i,
            _ => i -= 1,
        }
    }
    0
}

fn read_ident(stripped: &str, i: usize) -> (&str, usize) {
    let bytes = stripped.as_bytes();
    let mut j = i;
    while j < bytes.len() && lex::is_ident_byte(bytes[j]) {
        j += 1;
    }
    (&stripped[i..j], j)
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// Matches `open` at `at` to its closing `close`, returning the close
/// offset. `None` when unterminated.
fn match_delim(bytes: &[u8], at: usize, open: u8, close: u8) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = at;
    while i < bytes.len() {
        if bytes[i] == open {
            depth += 1;
        } else if bytes[i] == close {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
        i += 1;
    }
    None
}

/// Skips a `<...>` generic/turbofish group starting at `<`, tolerant of
/// `->` inside `Fn` bounds.
fn skip_angles(bytes: &[u8], at: usize) -> usize {
    let mut depth = 0i64;
    let mut i = at;
    while i < bytes.len() {
        match bytes[i] {
            b'<' => depth += 1,
            b'-' if bytes.get(i + 1) == Some(&b'>') => {
                i += 2;
                continue;
            }
            b'>' => {
                depth -= 1;
                if depth <= 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(src: &str) -> WorkspaceModel {
        WorkspaceModel::from_sources(&[("core", "crates/core/src/x.rs", src)])
    }

    #[test]
    fn parses_fns_with_impl_context_and_visibility() {
        let m = model(
            "impl Engine {\n\
                 pub fn go(&mut self, x: u8) -> u8 { helper(x) }\n\
                 fn helper(x: u8) -> u8 { x }\n\
             }\n\
             pub(crate) fn free() {}\n",
        );
        assert_eq!(m.functions.len(), 3);
        let go = &m.functions[m.find_qname("Engine::go").unwrap()];
        assert!(go.is_pub && go.has_mut_self);
        assert_eq!(go.calls.len(), 1);
        assert_eq!(go.calls[0].name, "helper");
        let free = &m.functions[m.find_qname("free").unwrap()];
        assert!(free.is_pub);
        assert!(!m.functions[m.find_qname("Engine::helper").unwrap()].is_pub);
    }

    #[test]
    fn impl_trait_for_type_attributes_to_the_type() {
        let m = model("impl fmt::Display for Finding {\n    fn fmt(&self) {}\n}\n");
        assert!(m.find_qname("Finding::fmt").is_some());
    }

    #[test]
    fn test_functions_are_excluded() {
        let m = model(
            "fn prod() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn t() { prod(); }\n\
             }\n",
        );
        assert_eq!(m.functions.len(), 1);
        assert_eq!(m.functions[0].name, "prod");
    }

    #[test]
    fn let_bound_guard_scope_and_temporary() {
        let src = "fn f(&self) {\n\
                       {\n\
                           let cached = mutex_lock(&self.snap);\n\
                           use_it(&cached);\n\
                       }\n\
                       let g = read_lock(&self.engine);\n\
                       f(&mutex_lock(&self.other));\n\
                   }\n";
        let m = model(src);
        let f = &m.functions[0];
        assert_eq!(f.locks.len(), 3);
        let cached = &f.locks[0];
        assert!(cached.bound);
        assert_eq!(cached.binding.as_deref(), Some("cached"));
        // Scope ends at the inner block's close, before lock 2's offset.
        assert!(cached.scope_end < f.locks[1].offset);
        let g = &f.locks[1];
        assert!(g.bound && g.scope_end > f.locks[2].offset);
        let temp = &f.locks[2];
        assert!(!temp.bound);
    }

    #[test]
    fn take_through_guard_is_a_temporary() {
        let src = "fn f(&self) {\n\
                       let events = std::mem::take(&mut *lock_mutex(&self.shared.log));\n\
                       use_it(events);\n\
                   }\n";
        let m = model(src);
        assert!(!m.functions[0].locks[0].bound, "guard inside take() is a temporary");
    }

    #[test]
    fn collected_map_guards_are_bound_and_multi() {
        let src = "fn f(&self) {\n\
                       let mut idx: Vec<usize> = ds.iter().map(shard_of).collect();\n\
                       idx.sort_unstable();\n\
                       idx.dedup();\n\
                       let _guards: Vec<MutexGuard<()>> = idx.iter().map(|i| mutex_lock(&self.shards[*i])).collect();\n\
                       let mut eng = write_lock(&self.engine);\n\
                   }\n";
        let m = model(src);
        let f = &m.functions[0];
        let shard = f.locks.iter().find(|l| l.arg.contains("shards")).unwrap();
        assert!(shard.bound && shard.multi);
        assert_eq!(shard.binding.as_deref(), Some("_guards"));
    }

    #[test]
    fn bare_fn_reference_lock_is_recorded() {
        let src = "fn f(&self) {\n\
                       let _g: Vec<MutexGuard<()>> = idx.into_iter().filter_map(|i| self.shards.get(i)).map(mutex_lock).collect();\n\
                   }\n";
        let m = model(src);
        let f = &m.functions[0];
        assert_eq!(f.locks.len(), 1);
        assert!(f.locks[0].multi && f.locks[0].bound);
        assert!(f.locks[0].context.contains("shards"));
    }

    #[test]
    fn atomics_capture_field_ordering_and_annotation() {
        let src = "fn f(&self) {\n\
                       self.live_gen.store(g, Ordering::Release);\n\
                       // verify: relaxed-ok monotonic counter, no payload\n\
                       let s = self.seq.fetch_add(1, Ordering::Relaxed);\n\
                       self.slots[i].store(0, Ordering::Relaxed);\n\
                   }\n";
        let m = model(src);
        let f = &m.functions[0];
        assert_eq!(f.atomics.len(), 3);
        assert_eq!(f.atomics[0].field, "live_gen");
        assert_eq!(f.atomics[0].orderings, vec!["Release"]);
        assert!(f.atomics[0].annotation.is_none());
        assert_eq!(f.atomics[1].field, "seq");
        assert!(f.atomics[1].annotation.as_deref().unwrap().contains("monotonic"));
        assert_eq!(f.atomics[2].field, "slots");
    }

    #[test]
    fn panic_sites_attributed_to_their_function() {
        let src = "fn a(x: Option<u8>) { x.unwrap(); }\nfn b(v: &[u8]) -> u8 { v[0] }\n";
        let m = model(src);
        let a = &m.functions[0];
        assert_eq!(a.panics.len(), 1);
        assert_eq!(a.panics[0].construct, "unwrap()");
        let b = &m.functions[1];
        assert_eq!(b.panics.len(), 1);
        assert_eq!(b.panics[0].construct, "index[");
    }

    #[test]
    fn drop_releases_are_recorded() {
        let src = "fn f(&self) {\n\
                       let g = write_lock(&self.inner);\n\
                       drop(g);\n\
                       let h = mutex_lock(&self.snap);\n\
                   }\n";
        let m = model(src);
        let f = &m.functions[0];
        assert_eq!(f.releases.len(), 1);
        assert_eq!(f.releases[0].var, "g");
        assert!(f.releases[0].offset > f.locks[0].offset);
        assert!(f.releases[0].offset < f.locks[1].offset);
    }

    #[test]
    fn reachability_and_paths() {
        let src = "fn entry() { mid(); }\nfn mid() { leaf(); }\nfn leaf(v: &[u8]) -> u8 { v[9] }\nfn lonely() {}\n";
        let m = model(src);
        let entry = m.find_qname("entry").unwrap();
        let parents = m.reachable(&[entry]);
        let leaf = m.find_qname("leaf").unwrap();
        assert!(parents.contains_key(&leaf));
        assert!(!parents.contains_key(&m.find_qname("lonely").unwrap()));
        assert_eq!(m.path_to(&parents, leaf), vec!["entry", "mid", "leaf"]);
    }
}
