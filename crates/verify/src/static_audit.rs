//! Engine 1: the static TCB auditor.
//!
//! The paper's trust argument leans on four statically checkable
//! properties of the trust-path crates (core, monitor, crypto):
//!
//! 1. **No unsafe.** Every TCB crate root carries
//!    `#![forbid(unsafe_code)]` and no `unsafe` token appears anywhere
//!    in TCB sources — the compiler's memory-safety argument applies to
//!    the whole monitor.
//! 2. **No unapproved panic paths.** Panic-capable constructs
//!    (`panic!`, `unwrap()`, `expect(`, `todo!`, `unimplemented!`, and
//!    indexing `x[i]`) in production TCB code must appear in the
//!    checked-in allowlist with a budget and a reason. Budgets are
//!    exact: more occurrences than granted fails, and so does a stale
//!    entry granting more than the code contains — the list cannot rot
//!    in either direction.
//! 3. **LOC budget.** Claim 1 bounds the TCB below
//!    [`AuditConfig::loc_budget`] lines (default 10 000), counted by
//!    [`crate::loc`] — the same counter `repro c1` reports.
//! 4. **Dependency closure.** TCB crates may depend only on workspace
//!    members reached by `path`. No registry or git dependency can
//!    enter the trust path unnoticed.

use crate::allowlist::{self, AllowEntry};
use crate::lex;
use crate::loc::{self, FileLoc, LineClass};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// What the auditor checks; one variant per gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Check {
    /// Crate root missing `#![forbid(unsafe_code)]`.
    ForbidUnsafe,
    /// An `unsafe` token in TCB source.
    UnsafeToken,
    /// Panic-capable construct above its allowlisted budget.
    PanicConstruct,
    /// Allowlist entry approving more than the code contains.
    StaleAllowlist,
    /// Dependency outside the workspace.
    Dependency,
    /// TCB line count at or above the budget.
    LocBudget,
}

impl fmt::Display for Check {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Check::ForbidUnsafe => "forbid-unsafe",
            Check::UnsafeToken => "unsafe-token",
            Check::PanicConstruct => "panic-construct",
            Check::StaleAllowlist => "stale-allowlist",
            Check::Dependency => "dependency",
            Check::LocBudget => "loc-budget",
        };
        f.write_str(s)
    }
}

/// One audit failure.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Which gate fired.
    pub check: Check,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line, when the finding points at one.
    pub line: Option<usize>,
    /// Human explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "[{}] {}:{}: {}", self.check, self.file, line, self.message),
            None => write!(f, "[{}] {}: {}", self.check, self.file, self.message),
        }
    }
}

/// What to audit.
#[derive(Clone, Debug)]
pub struct AuditConfig {
    /// Workspace root (the directory holding the top-level Cargo.toml).
    pub workspace_root: PathBuf,
    /// Directory names under `crates/` forming the TCB.
    pub tcb_crates: Vec<String>,
    /// Claim-1 budget: audit fails when TCB code LOC >= this.
    pub loc_budget: usize,
    /// Allowlist file, relative to the workspace root.
    pub allowlist: PathBuf,
}

impl AuditConfig {
    /// The Tyche trust path: capability engine, monitor, crypto.
    pub fn tyche_defaults(workspace_root: &Path) -> AuditConfig {
        AuditConfig {
            workspace_root: workspace_root.to_path_buf(),
            tcb_crates: vec!["core".into(), "monitor".into(), "crypto".into()],
            loc_budget: 10_000,
            allowlist: PathBuf::from("crates/verify/allowlist.toml"),
        }
    }
}

/// The audit result: findings plus the numbers the report prints.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All failures, in scan order.
    pub findings: Vec<Finding>,
    /// Per-crate LOC breakdown, in config order.
    pub crate_loc: Vec<(String, FileLoc)>,
    /// Total TCB code lines (the C1 number).
    pub tcb_loc: usize,
    /// The budget the total was gated against.
    pub loc_budget: usize,
    /// How many source files were scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when every gate passed.
    pub fn passed(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable summary table + findings.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("TCB static audit\n");
        out.push_str("  crate            code     test  blank/comment\n");
        for (name, loc) in &self.crate_loc {
            out.push_str(&format!(
                "  {name:<14} {:>6}   {:>6}         {:>6}\n",
                loc.code, loc.test, loc.blank_or_comment
            ));
        }
        out.push_str(&format!(
            "  TCB total: {} code lines (budget {}) across {} files\n",
            self.tcb_loc, self.loc_budget, self.files_scanned
        ));
        if self.findings.is_empty() {
            out.push_str("  findings: none\n  RESULT: PASS\n");
        } else {
            out.push_str(&format!("  findings: {}\n", self.findings.len()));
            for finding in &self.findings {
                out.push_str(&format!("    {finding}\n"));
            }
            out.push_str("  RESULT: FAIL\n");
        }
        out
    }
}

/// The panic-capable constructs the auditor knows. `index[` is the
/// slice-indexing heuristic: a `[` immediately preceded by an
/// identifier, `)`, or `]` (so `#[attr]`, array types, and literals do
/// not match).
pub const PANIC_CONSTRUCTS: &[&str] = &[
    "panic!",
    "todo!",
    "unimplemented!",
    "unreachable!",
    "unwrap()",
    "expect(",
    "index[",
];

/// Runs the audit.
pub fn run(config: &AuditConfig) -> Result<Report, String> {
    let mut report = Report {
        loc_budget: config.loc_budget,
        ..Report::default()
    };
    let allow_path = config.workspace_root.join(&config.allowlist);
    let allow = allowlist::load(&allow_path)?;

    // (file, construct) -> occurrence count, for allowlist reconciliation.
    let mut seen: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();

    for crate_name in &config.tcb_crates {
        let crate_root = config
            .workspace_root
            .join("crates")
            .join(crate_name);
        let mut crate_loc = FileLoc::default();

        check_crate_root_forbids_unsafe(&crate_root, &config.workspace_root, &mut report);
        check_dependencies(&crate_root, &config.workspace_root, &mut report)?;

        for file in loc::rust_sources(&crate_root.join("src"))? {
            report.files_scanned += 1;
            let rel = relative(&file, &config.workspace_root);
            let src = std::fs::read_to_string(&file)
                .map_err(|e| format!("read {}: {e}", file.display()))?;
            let floc = loc::count_source(&src);
            crate_loc.code += floc.code;
            crate_loc.test += floc.test;
            crate_loc.blank_or_comment += floc.blank_or_comment;

            scan_file(&src, &rel, &mut report, &mut seen);
        }
        report.crate_loc.push((crate_name.clone(), crate_loc));
    }

    reconcile_allowlist(&allow, &mut seen, &mut report);

    report.tcb_loc = report.crate_loc.iter().map(|(_, l)| l.code).sum();
    if report.tcb_loc >= config.loc_budget {
        report.findings.push(Finding {
            check: Check::LocBudget,
            file: "(workspace)".into(),
            line: None,
            message: format!(
                "TCB is {} code lines; Claim 1 requires < {}",
                report.tcb_loc, config.loc_budget
            ),
        });
    }
    Ok(report)
}

fn relative(path: &Path, root: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Gate 1a: `#![forbid(unsafe_code)]` in the crate root.
fn check_crate_root_forbids_unsafe(crate_root: &Path, ws_root: &Path, report: &mut Report) {
    let lib = crate_root.join("src/lib.rs");
    let rel = relative(&lib, ws_root);
    match std::fs::read_to_string(&lib) {
        Ok(src) => {
            let code = lex::strip_noncode(&src).replace(' ', "");
            if !code.contains("#![forbid(unsafe_code)]") {
                report.findings.push(Finding {
                    check: Check::ForbidUnsafe,
                    file: rel,
                    line: None,
                    message: "crate root does not carry #![forbid(unsafe_code)]".into(),
                });
            }
        }
        Err(e) => report.findings.push(Finding {
            check: Check::ForbidUnsafe,
            file: rel,
            line: None,
            message: format!("cannot read crate root: {e}"),
        }),
    }
}

/// Gates 1b and 2: unsafe tokens and panic constructs in one file.
fn scan_file(
    src: &str,
    rel: &str,
    report: &mut Report,
    seen: &mut BTreeMap<(String, String), Vec<usize>>,
) {
    let stripped = lex::strip_noncode(src);
    let classes = loc::classify_lines(src);

    // `unsafe` is forbidden everywhere in TCB sources, tests included:
    // forbid(unsafe_code) covers unit tests, and the gate should match.
    for pos in lex::word_offsets(&stripped, "unsafe") {
        report.findings.push(Finding {
            check: Check::UnsafeToken,
            file: rel.to_string(),
            line: Some(lex::line_of(&stripped, pos)),
            message: "`unsafe` token in TCB source".into(),
        });
    }

    // Panic constructs only count in production code; tests unwrap at
    // will. Occurrences are recorded here and reconciled against the
    // allowlist once all files are scanned.
    for (construct, line) in panic_occurrences(&stripped, &classes) {
        seen.entry((rel.to_string(), construct)).or_default().push(line);
    }
}

/// Every panic-capable construct on a production line of `stripped`
/// (comment/literal-stripped source), as `(construct, 1-based line)`.
/// Shared between the flat per-file audit and the call-graph
/// reachability lint so the two can never disagree on what counts.
pub(crate) fn panic_occurrences(stripped: &str, classes: &[LineClass]) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let is_code_line =
        |line: usize| classes.get(line - 1).is_some_and(|c| *c == LineClass::Code);
    for word in ["panic", "todo", "unimplemented", "unreachable"] {
        for pos in lex::word_offsets(stripped, word) {
            let after = stripped.as_bytes().get(pos + word.len());
            let line = lex::line_of(stripped, pos);
            if after == Some(&b'!') && is_code_line(line) {
                out.push((format!("{word}!"), line));
            }
        }
    }
    for word in ["unwrap", "expect"] {
        for pos in lex::word_offsets(stripped, word) {
            let line = lex::line_of(stripped, pos);
            let rest = stripped[pos + word.len()..].trim_start();
            if rest.starts_with('(') && is_code_line(line) {
                let construct = if word == "unwrap" { "unwrap()" } else { "expect(" };
                out.push((construct.to_string(), line));
            }
        }
    }
    // Indexing heuristic: `[` directly after an identifier byte, `)`,
    // or `]` is a panic-capable index expression.
    let bytes = stripped.as_bytes();
    for (pos, &b) in bytes.iter().enumerate() {
        if b == b'[' && pos > 0 {
            let prev = bytes[pos - 1];
            if lex::is_ident_byte(prev) || prev == b')' || prev == b']' {
                let line = lex::line_of(stripped, pos);
                if is_code_line(line) {
                    out.push(("index[".to_string(), line));
                }
            }
        }
    }
    out.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
    out
}

/// Gate 2's second half: every seen construct must be within budget and
/// every allowlist entry must still be earned.
fn reconcile_allowlist(
    allow: &[AllowEntry],
    seen: &mut BTreeMap<(String, String), Vec<usize>>,
    report: &mut Report,
) {
    let mut budgets: BTreeMap<(String, String), (usize, &str)> = BTreeMap::new();
    for entry in allow {
        budgets.insert(
            (entry.file.clone(), entry.construct.clone()),
            (entry.count, entry.reason.as_str()),
        );
    }

    for ((file, construct), lines) in seen.iter() {
        let budget = budgets
            .remove(&(file.clone(), construct.clone()))
            .map(|(count, _)| count)
            .unwrap_or(0);
        if lines.len() > budget {
            report.findings.push(Finding {
                check: Check::PanicConstruct,
                file: file.clone(),
                line: lines.first().copied(),
                message: format!(
                    "{} occurrence(s) of `{construct}` in production code, allowlist budget {budget} (lines {:?})",
                    lines.len(),
                    lines
                ),
            });
        } else if lines.len() < budget {
            // Budgets are exact: code that shrank leaves headroom a
            // later change could silently spend. Re-derive the entry.
            report.findings.push(Finding {
                check: Check::StaleAllowlist,
                file: file.clone(),
                line: lines.first().copied(),
                message: format!(
                    "allowlist grants {budget} `{construct}` but the code contains {}; budgets are exact — re-derive the entry",
                    lines.len()
                ),
            });
        }
    }

    // Entries left in `budgets` matched nothing — over-approving.
    for ((file, construct), (count, _reason)) in budgets {
        if count > 0 {
            report.findings.push(Finding {
                check: Check::StaleAllowlist,
                file,
                line: None,
                message: format!(
                    "allowlist grants {count} `{construct}` but the code contains none; remove the stale entry"
                ),
            });
        }
    }
}

/// Gate 3: TCB crates may only depend on workspace members by path.
fn check_dependencies(
    crate_root: &Path,
    ws_root: &Path,
    report: &mut Report,
) -> Result<(), String> {
    let manifest = crate_root.join("Cargo.toml");
    let rel = relative(&manifest, ws_root);
    let text = std::fs::read_to_string(&manifest)
        .map_err(|e| format!("read {}: {e}", manifest.display()))?;
    let ws_deps = workspace_path_deps(ws_root)?;

    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        let dep_section = matches!(
            section.as_str(),
            "dependencies" | "dev-dependencies" | "build-dependencies"
        );
        if !dep_section {
            continue;
        }
        let Some((name, value)) = line.split_once('=') else {
            continue;
        };
        let name = name.trim();
        let value = value.trim();
        let (dep_name, via_workspace) = match name.strip_suffix(".workspace") {
            Some(base) => (base.trim(), true),
            None => (name, value.contains("workspace = true")),
        };
        let inline_path = value.contains("path =") || value.contains("path=");
        let ok = if via_workspace {
            // Resolved through [workspace.dependencies]: the root table
            // must map this name to a path dependency.
            ws_deps.get(dep_name).copied().unwrap_or(false)
        } else {
            inline_path
        };
        if !ok {
            report.findings.push(Finding {
                check: Check::Dependency,
                file: rel.clone(),
                line: Some(idx + 1),
                message: format!(
                    "dependency `{dep_name}` does not resolve to a workspace path dependency; TCB crates may only depend on in-workspace crates"
                ),
            });
        }
    }
    Ok(())
}

/// Parses the root manifest's `[workspace.dependencies]`:
/// name -> "is a path dependency".
fn workspace_path_deps(ws_root: &Path) -> Result<BTreeMap<String, bool>, String> {
    let manifest = ws_root.join("Cargo.toml");
    let text = std::fs::read_to_string(&manifest)
        .map_err(|e| format!("read {}: {e}", manifest.display()))?;
    let mut out = BTreeMap::new();
    let mut in_table = false;
    for raw in text.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_table = line == "[workspace.dependencies]";
            continue;
        }
        if !in_table || line.starts_with('#') || line.is_empty() {
            continue;
        }
        if let Some((name, value)) = line.split_once('=') {
            out.insert(
                name.trim().to_string(),
                value.contains("path =") || value.contains("path="),
            );
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    type SeenMap = BTreeMap<(String, String), Vec<usize>>;

    fn scan_str(src: &str) -> (Vec<Finding>, SeenMap) {
        let mut report = Report::default();
        let mut seen = BTreeMap::new();
        scan_file(src, "x.rs", &mut report, &mut seen);
        (report.findings, seen)
    }

    #[test]
    fn finds_unsafe_tokens_but_not_in_comments_or_strings() {
        let (findings, _) = scan_str("// unsafe\nlet s = \"unsafe\";\nunsafe { }\n");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].check, Check::UnsafeToken);
        assert_eq!(findings[0].line, Some(3));
    }

    #[test]
    fn records_panic_constructs_on_production_lines_only() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t(x: Option<u8>) { x.unwrap(); panic!(); }\n\
                   }\n";
        let (_, seen) = scan_str(src);
        assert_eq!(seen[&("x.rs".into(), "unwrap()".into())], vec![1]);
        assert!(!seen.contains_key(&("x.rs".into(), "panic!".into())));
    }

    #[test]
    fn indexing_heuristic_skips_attributes_and_types() {
        let src = "#[derive(Debug)]\nstruct S { a: [u8; 4] }\nfn f(v: &[u8], i: usize) -> u8 { v[i] }\n";
        let (_, seen) = scan_str(src);
        assert_eq!(seen[&("x.rs".into(), "index[".into())], vec![3]);
    }

    #[test]
    fn expect_and_macros_recorded() {
        let src = "fn f(x: Option<u8>) { x.expect(\"m\"); todo!(); unimplemented!(); panic!(\"b\"); }\n";
        let (_, seen) = scan_str(src);
        for construct in ["expect(", "todo!", "unimplemented!", "panic!"] {
            assert!(
                seen.contains_key(&("x.rs".into(), construct.into())),
                "missing {construct}"
            );
        }
    }

    #[test]
    fn reconcile_flags_over_budget_and_stale() {
        let allow = vec![
            AllowEntry {
                file: "a.rs".into(),
                construct: "unwrap()".into(),
                count: 1,
                reason: "ok".into(),
            },
            AllowEntry {
                file: "gone.rs".into(),
                construct: "panic!".into(),
                count: 2,
                reason: "stale".into(),
            },
        ];
        let mut seen = BTreeMap::new();
        seen.insert(("a.rs".to_string(), "unwrap()".to_string()), vec![3, 9]);
        seen.insert(("b.rs".to_string(), "expect(".to_string()), vec![4]);
        let mut report = Report::default();
        reconcile_allowlist(&allow, &mut seen, &mut report);
        let checks: Vec<Check> = report.findings.iter().map(|f| f.check).collect();
        assert!(checks.contains(&Check::PanicConstruct), "{checks:?}");
        assert!(checks.contains(&Check::StaleAllowlist), "{checks:?}");
        // a.rs over budget (2 > 1), b.rs unapproved (1 > 0), gone.rs stale.
        assert_eq!(report.findings.len(), 3);
    }

    #[test]
    fn reconcile_flags_under_budget_as_stale() {
        let allow = vec![AllowEntry {
            file: "a.rs".into(),
            construct: "index[".into(),
            count: 5,
            reason: "bounds pre-validated".into(),
        }];
        let mut seen = BTreeMap::new();
        seen.insert(("a.rs".to_string(), "index[".to_string()), vec![2, 7]);
        let mut report = Report::default();
        reconcile_allowlist(&allow, &mut seen, &mut report);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].check, Check::StaleAllowlist);
        assert!(report.findings[0].message.contains("grants 5"), "{}", report.findings[0].message);
        assert!(report.findings[0].message.contains("contains 2"), "{}", report.findings[0].message);
    }

    #[test]
    fn unreachable_macro_is_a_tracked_construct() {
        let (_, seen) = scan_str("fn f(x: u8) { match x { 0 => (), _ => unreachable!() } }\n");
        assert!(seen.contains_key(&("x.rs".into(), "unreachable!".into())));
    }
}
