//! tyche-verify: the judiciary toolchain.
//!
//! The paper's trust argument ("Creating Trust by Abolishing
//! Hierarchies") rests on a small, memory-safe, formally-verifiable
//! monitor. This crate is the repo's enforcement of that argument,
//! split across two engines:
//!
//! - [`static_audit`] — the static TCB auditor: no `unsafe`, no
//!   unapproved panic path, the Claim-1 LOC budget, and a closed
//!   dependency set for the trust-path crates;
//! - [`bmc`] — a bounded model checker that exhaustively explores
//!   small-scope operation interleavings of the capability engine,
//!   checking the runtime invariant auditor, refcount conservation,
//!   revocation soundness, and a differential oracle against the naive
//!   ownership model in [`model`];
//! - [`rv`] — offline runtime verification: temporal invariants
//!   replayed over drained execution traces from the observability
//!   layer (`tyche_core::trace`);
//! - [`static_lints`] — the deep static certifier: a whole-workspace
//!   call-graph model ([`parse`]) feeding four cross-cutting lints —
//!   lock-order/deadlock, panic-reachability from hypercall entry,
//!   atomics-ordering discipline, and trace completeness.
//!
//! Support modules: [`lex`] (comment/literal stripping), [`loc`] (the
//! single LOC counter every tool shares), [`allowlist`] (the panic
//! budget file format), [`parse`] (the item-level workspace model).
//!
//! The crate depends on nothing outside the workspace and std — a
//! verifier you cannot audit is not a verifier.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allowlist;
pub mod bmc;
pub mod lex;
pub mod loc;
pub mod model;
pub mod parse;
pub mod rv;
pub mod static_audit;
// `static` is a keyword, so the directory-named module gets an
// explicit path and a usable identifier.
#[path = "static/mod.rs"]
pub mod static_lints;

use std::path::{Path, PathBuf};

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]` — the anchor every path in the audit is relative to.
pub fn locate_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_workspace() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = locate_workspace_root(here).expect("workspace root above crates/verify");
        assert!(root.join("crates/verify").is_dir());
        assert!(root.join("crates/core").is_dir());
    }
}
