//! A lightweight Rust source scanner.
//!
//! The static auditor must reason about *code*, not comments or string
//! literals: `// unsafe` in a doc comment or `"panic!"` in an error
//! message must not trip the TCB gate. [`strip_noncode`] blanks every
//! comment and literal with spaces, preserving byte offsets and line
//! structure so findings can report accurate line numbers.
//!
//! This is not a full lexer — it recognizes exactly the constructs that
//! can hide token-lookalikes: line comments, (nested) block comments,
//! string literals with escapes, raw strings with `#` fences, byte and
//! char literals. That subset is total: unterminated constructs blank to
//! end of input rather than erroring, which is the conservative choice
//! for an auditor (text inside an unterminated literal is not code).

/// Replaces comments and string/char literals with spaces (newlines are
/// kept so line numbers survive).
pub fn strip_noncode(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;

    // Writes `n` bytes of blank, preserving newlines.
    fn blank(out: &mut Vec<u8>, bytes: &[u8], from: usize, to: usize) {
        for &b in &bytes[from..to] {
            out.push(if b == b'\n' { b'\n' } else { b' ' });
        }
    }

    while i < bytes.len() {
        let b = bytes[i];
        let next = bytes.get(i + 1).copied();
        if b == b'/' && next == Some(b'/') {
            let end = line_end(bytes, i);
            blank(&mut out, bytes, i, end);
            i = end;
        } else if b == b'/' && next == Some(b'*') {
            let end = block_comment_end(bytes, i);
            blank(&mut out, bytes, i, end);
            i = end;
        } else if b == b'"' {
            let end = string_end(bytes, i);
            blank(&mut out, bytes, i, end);
            i = end;
        } else if !prev_is_ident(bytes, i) && raw_prefix(bytes, i).is_some() {
            let r = raw_prefix(bytes, i).unwrap_or(i);
            let end = raw_string_end(bytes, r);
            blank(&mut out, bytes, i, end);
            i = end;
        } else if (b == b'b' || b == b'c') && next == Some(b'"') && !prev_is_ident(bytes, i) {
            let end = string_end(bytes, i + 1);
            blank(&mut out, bytes, i, end);
            i = end;
        } else if b == b'\'' {
            match char_literal_end(bytes, i) {
                Some(end) => {
                    blank(&mut out, bytes, i, end);
                    i = end;
                }
                None => {
                    // A lifetime (`'a`), not a literal: copy through.
                    out.push(b);
                    i += 1;
                }
            }
        } else {
            out.push(b);
            i += 1;
        }
    }
    String::from_utf8(out).expect("blanking preserves UTF-8: multibyte chars only inside literals are replaced byte-for-byte with ASCII spaces")
}

fn line_end(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i] != b'\n' {
        i += 1;
    }
    i
}

/// Handles Rust's nested block comments.
fn block_comment_end(bytes: &[u8], mut i: usize) -> usize {
    let mut depth = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
            depth += 1;
            i += 2;
        } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
            depth -= 1;
            i += 2;
            if depth == 0 {
                return i;
            }
        } else {
            i += 1;
        }
    }
    bytes.len()
}

fn string_end(bytes: &[u8], start: usize) -> usize {
    // start points at the opening quote (or the `b` prefix's quote).
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    bytes.len()
}

/// True when the byte before `i` can continue an identifier — in which
/// case an `r`/`b`/`c` at `i` is the tail of a longer name (`attr`,
/// `ptr`, ...), not a literal prefix.
fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && is_ident_byte(bytes[i - 1])
}

/// When `i` starts a raw-string literal — `r"`, `r#"` with any fence
/// depth, or the `br`/`cr` prefixed forms — the offset of the `r`
/// itself (where fence counting begins). `None` otherwise.
fn raw_prefix(bytes: &[u8], i: usize) -> Option<usize> {
    let r = match bytes.get(i) {
        Some(b'r') => i,
        Some(b'b') | Some(b'c') if bytes.get(i + 1) == Some(&b'r') => i + 1,
        _ => return None,
    };
    let mut j = r + 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    (bytes.get(j) == Some(&b'"')).then_some(r)
}

fn raw_string_end(bytes: &[u8], i: usize) -> usize {
    let mut hashes = 0usize;
    let mut j = i + 1;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    while j < bytes.len() {
        if bytes[j] == b'"' {
            let mut k = 0;
            while k < hashes && bytes.get(j + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                return j + 1 + hashes;
            }
        }
        j += 1;
    }
    bytes.len()
}

/// `Some(end)` when `i` starts a char/byte-char literal, `None` for a
/// lifetime.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if bytes.get(j) == Some(&b'\\') {
        // Escape: skip the backslash and the escape head, then scan for
        // the closing quote (covers \x41 and \u{...}).
        j += 2;
        while j < bytes.len() && bytes[j] != b'\'' && bytes[j] != b'\n' {
            j += 1;
        }
        return (bytes.get(j) == Some(&b'\'')).then_some(j + 1);
    }
    // Unescaped: a literal is exactly one char then a quote. Anything
    // else (e.g. `'a` in `Foo<'a>` or `'static`) is a lifetime. Step
    // over one UTF-8 scalar.
    let width = match bytes.get(j) {
        None => return None,
        Some(b) if b & 0x80 == 0 => 1,
        Some(b) if b & 0xe0 == 0xc0 => 2,
        Some(b) if b & 0xf0 == 0xe0 => 3,
        _ => 4,
    };
    (bytes.get(j + width) == Some(&b'\'')).then_some(j + width + 1)
}

/// True when `text[pos]` begins the word `word` with identifier
/// boundaries on both sides.
pub fn is_word_at(text: &str, pos: usize, word: &str) -> bool {
    let bytes = text.as_bytes();
    if pos + word.len() > bytes.len() || &text[pos..pos + word.len()] != word {
        return false;
    }
    let before_ok = pos == 0 || !is_ident_byte(bytes[pos - 1]);
    let after_ok = pos + word.len() == bytes.len() || !is_ident_byte(bytes[pos + word.len()]);
    before_ok && after_ok
}

/// Byte classes that can continue a Rust identifier.
pub fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// All start offsets where `word` occurs as a whole identifier in
/// `text` (which should already be comment/literal-stripped).
pub fn word_offsets(text: &str, word: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = text[from..].find(word) {
        let pos = from + rel;
        if is_word_at(text, pos, word) {
            out.push(pos);
        }
        from = pos + word.len();
    }
    out
}

/// 1-based line number of byte offset `pos`.
pub fn line_of(text: &str, pos: usize) -> usize {
    text.as_bytes()[..pos].iter().filter(|&&b| b == b'\n').count() + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let src = "let x = 1; // unsafe here\n/* unsafe\nblock */ let y = 2;";
        let stripped = strip_noncode(src);
        assert!(!stripped.contains("unsafe"));
        assert!(stripped.contains("let x = 1;"));
        assert!(stripped.contains("let y = 2;"));
        assert_eq!(src.lines().count(), stripped.lines().count());
    }

    #[test]
    fn strips_nested_block_comments() {
        let stripped = strip_noncode("/* a /* unsafe */ b */ code");
        assert!(!stripped.contains("unsafe"));
        assert!(stripped.contains("code"));
    }

    #[test]
    fn strips_strings_and_chars_keeps_lifetimes() {
        let src = r#"let s = "unsafe"; let c = '\''; fn f<'a>(x: &'a str) {} let q = 'u';"#;
        let stripped = strip_noncode(src);
        assert!(!stripped.contains("unsafe"));
        assert!(stripped.contains("fn f<'a>(x: &'a str)"));
    }

    #[test]
    fn strips_raw_strings() {
        let src = r###"let s = r#"unsafe " quote"# ; done"###;
        let stripped = strip_noncode(src);
        assert!(!stripped.contains("unsafe"));
        assert!(stripped.contains("done"));
    }

    #[test]
    fn strips_fenced_raw_strings_with_inner_quote_hash() {
        // The body contains `"#` — a fence shorter than the literal's,
        // which must not terminate it.
        let src = "let s = r##\"tail \"# unsafe\"##; done";
        let stripped = strip_noncode(src);
        assert!(!stripped.contains("unsafe"));
        assert!(stripped.contains("done"));
    }

    #[test]
    fn strips_prefixed_literals() {
        let src = "let a = br#\"unsafe\"#; let b = cr\"unsafe\"; let c = c\"unsafe\"; end";
        let stripped = strip_noncode(src);
        assert!(!stripped.contains("unsafe"));
        assert!(stripped.contains("end"));
    }

    #[test]
    fn identifier_tail_is_not_a_literal_prefix() {
        // `ptr` ends in `r`; the lexer must not count fences from inside
        // the identifier and swallow it.
        let stripped = strip_noncode("ptr\"x\" attr");
        assert!(stripped.starts_with("ptr"));
        assert!(stripped.ends_with("attr"));
    }

    #[test]
    fn unterminated_block_comment_blanks_to_eof() {
        let stripped = strip_noncode("code /* unsafe /* still unsafe ");
        assert!(stripped.starts_with("code"));
        assert!(!stripped.contains("unsafe"));
    }

    #[test]
    fn unterminated_string_blanks_to_eof() {
        let stripped = strip_noncode("let s = \"unsafe\npanic!");
        assert!(stripped.starts_with("let s = "));
        assert!(!stripped.contains("unsafe"));
        assert!(!stripped.contains("panic"));
        assert_eq!(stripped.lines().count(), 2, "newlines survive blanking");
    }

    #[test]
    fn char_literal_vs_lifetime_disambiguation() {
        let src = "fn f<'a>(x: &'a u8) { let c = 'a'; let e = '\\u{1F600}'; let b = b'u'; }";
        let stripped = strip_noncode(src);
        assert!(stripped.contains("fn f<'a>(x: &'a u8)"), "lifetimes survive");
        assert!(!stripped.contains("= 'a'"), "char literal blanked");
        assert!(!stripped.contains("1F600"), "escaped char blanked");
        assert!(!stripped.contains("b'u'"), "byte-char blanked");
    }

    #[test]
    fn word_offsets_respect_boundaries() {
        let text = "unsafe fn not_unsafe() { unsafe_marker(); }";
        let hits = word_offsets(text, "unsafe");
        assert_eq!(hits, vec![0]);
    }

    #[test]
    fn line_numbers() {
        let text = "a\nb\nc";
        assert_eq!(line_of(text, 0), 1);
        assert_eq!(line_of(text, 2), 2);
        assert_eq!(line_of(text, 4), 3);
    }
}
