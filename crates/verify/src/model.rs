//! The naive reference model of memory ownership.
//!
//! The bounded model checker runs every operation against *two*
//! implementations: the real `CapEngine` (a lineage tree with
//! suspension, reactivation, and a sweep-based refcount) and this model
//! — a deliberately dumb flat list of `(owner, region, active)` records
//! with the spec's transfer rules restated in the most literal way
//! possible. The two share no code; agreement between them is evidence
//! that the engine implements the spec rather than its own bugs.
//!
//! The model mirrors only *accepted* operations: the engine is the
//! authority on which requests are legal, the model is the authority on
//! what an accepted request must do to ownership.

/// One capability record in the flat model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModelCap {
    /// Engine capability id (`CapId.0`) — the join key for mirroring.
    pub id: u64,
    /// Owning domain (`DomainId.0`).
    pub owner: u64,
    /// Covered memory `[start, end)`.
    pub region: (u64, u64),
    /// Lineage parent, `None` for boot endowments.
    pub parent: Option<u64>,
    /// How this record was derived.
    pub kind: ModelKind,
    /// Whether the record currently conveys access.
    pub active: bool,
}

/// Derivation kind, restated independently of the engine's `CapKind`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelKind {
    /// Boot endowment.
    Root,
    /// Share: parent stays active, both owners have access.
    Shared,
    /// Grant: exclusive move; parent is suspended until the grant is
    /// revoked.
    Granted,
    /// Carve: a split piece; parent suspended until all pieces are gone.
    Carved,
}

/// The flat ownership model.
#[derive(Clone, Debug, Default)]
pub struct RefModel {
    caps: Vec<ModelCap>,
}

impl RefModel {
    /// An empty model.
    pub fn new() -> RefModel {
        RefModel::default()
    }

    /// Mirrors a boot endowment.
    pub fn endow(&mut self, id: u64, owner: u64, region: (u64, u64)) {
        self.caps.push(ModelCap {
            id,
            owner,
            region,
            parent: None,
            kind: ModelKind::Root,
            active: true,
        });
    }

    /// Mirrors an accepted share: the child covers `region` for
    /// `target`; the parent keeps access.
    pub fn share(&mut self, parent: u64, child: u64, target: u64, region: (u64, u64)) {
        self.caps.push(ModelCap {
            id: child,
            owner: target,
            region,
            parent: Some(parent),
            kind: ModelKind::Shared,
            active: true,
        });
    }

    /// Mirrors an accepted grant: the child covers the parent's whole
    /// region for `target`; the parent loses access until revocation.
    pub fn grant(&mut self, parent: u64, child: u64, target: u64, region: (u64, u64)) {
        self.set_active(parent, false);
        self.caps.push(ModelCap {
            id: child,
            owner: target,
            region,
            parent: Some(parent),
            kind: ModelKind::Granted,
            active: true,
        });
    }

    /// Mirrors an accepted split at `at`: two carved pieces replace the
    /// parent's access (same owner, no net ownership change).
    pub fn split(&mut self, parent: u64, lo: u64, hi: u64, at: u64) {
        let (owner, (start, end)) = {
            let p = self.cap(parent).expect("split parent exists in model");
            (p.owner, p.region)
        };
        self.set_active(parent, false);
        self.caps.push(ModelCap {
            id: lo,
            owner,
            region: (start, at),
            parent: Some(parent),
            kind: ModelKind::Carved,
            active: true,
        });
        self.caps.push(ModelCap {
            id: hi,
            owner,
            region: (at, end),
            parent: Some(parent),
            kind: ModelKind::Carved,
            active: true,
        });
    }

    /// Mirrors an accepted revoke of `id`: the record and everything
    /// derived from it disappear; suspended parents get their access
    /// back (a granted parent always, a split parent once all pieces
    /// are gone).
    pub fn revoke(&mut self, id: u64) {
        // Collect the subtree by repeated parent-link scans — the naive
        // way, no child lists to maintain.
        let mut doomed = vec![id];
        loop {
            let more: Vec<u64> = self
                .caps
                .iter()
                .filter(|c| {
                    c.parent.is_some_and(|p| doomed.contains(&p)) && !doomed.contains(&c.id)
                })
                .map(|c| c.id)
                .collect();
            if more.is_empty() {
                break;
            }
            doomed.extend(more);
        }
        // Remove leaves-first so parent reactivation sees the final
        // child population: every child of a doomed record is itself
        // doomed, so the doomed set always contains a childless record.
        while !doomed.is_empty() {
            let next = doomed
                .iter()
                .copied()
                .find(|&d| !self.has_children(d))
                .unwrap_or(doomed[0]);
            self.remove_one(next);
            doomed.retain(|&d| d != next);
        }
    }

    fn remove_one(&mut self, id: u64) {
        let Some(pos) = self.caps.iter().position(|c| c.id == id) else {
            return;
        };
        let removed = self.caps.remove(pos);
        if let Some(pid) = removed.parent {
            let reactivate = match removed.kind {
                ModelKind::Granted => true,
                ModelKind::Carved => !self.has_children(pid),
                _ => false,
            };
            if reactivate {
                self.set_active(pid, true);
            }
        }
    }

    fn has_children(&self, id: u64) -> bool {
        self.caps.iter().any(|c| c.parent == Some(id))
    }

    fn set_active(&mut self, id: u64, active: bool) {
        if let Some(c) = self.caps.iter_mut().find(|c| c.id == id) {
            c.active = active;
        }
    }

    /// The record with engine id `id`.
    pub fn cap(&self, id: u64) -> Option<&ModelCap> {
        self.caps.iter().find(|c| c.id == id)
    }

    /// Number of records currently in the model.
    pub fn len(&self) -> usize {
        self.caps.len()
    }

    /// True when the model holds no records.
    pub fn is_empty(&self) -> bool {
        self.caps.is_empty()
    }

    /// True when *any* record — active or suspended — covers `addr`.
    /// This is the conservation invariant's notion of "accounted for":
    /// a suspended record (grant outstanding, or a carved parent) can
    /// always be reactivated by revocations, so the byte is not lost.
    pub fn covered(&self, addr: u64) -> bool {
        self.caps
            .iter()
            .any(|c| c.region.0 <= addr && addr < c.region.1)
    }

    /// Distinct owners with active access to the byte at `addr` — the
    /// model's answer to the engine's per-byte refcount.
    pub fn owners_of(&self, addr: u64) -> Vec<u64> {
        let mut owners: Vec<u64> = self
            .caps
            .iter()
            .filter(|c| c.active && c.region.0 <= addr && addr < c.region.1)
            .map(|c| c.owner)
            .collect();
        owners.sort_unstable();
        owners.dedup();
        owners
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn share_keeps_both_grant_moves() {
        let mut m = RefModel::new();
        m.endow(1, 0, (0x1000, 0x3000));
        m.share(1, 2, 7, (0x1000, 0x3000));
        assert_eq!(m.owners_of(0x1000), vec![0, 7]);
        m.revoke(2);
        assert_eq!(m.owners_of(0x1000), vec![0]);
        m.grant(1, 3, 7, (0x1000, 0x3000));
        assert_eq!(m.owners_of(0x1000), vec![7], "granter suspended");
        m.revoke(3);
        assert_eq!(m.owners_of(0x1000), vec![0], "granter reactivated");
    }

    #[test]
    fn split_preserves_ownership_and_reactivates_when_pieces_go() {
        let mut m = RefModel::new();
        m.endow(1, 0, (0x1000, 0x3000));
        m.split(1, 2, 3, 0x2000);
        assert_eq!(m.owners_of(0x1000), vec![0]);
        assert_eq!(m.owners_of(0x2000), vec![0]);
        assert!(!m.cap(1).unwrap().active);
        m.revoke(2);
        assert!(!m.cap(1).unwrap().active, "one piece remains");
        m.revoke(3);
        assert!(m.cap(1).unwrap().active, "all pieces gone");
        assert_eq!(m.owners_of(0x1000), vec![0]);
    }

    #[test]
    fn revoke_cascades_through_derived_records() {
        let mut m = RefModel::new();
        m.endow(1, 0, (0x1000, 0x2000));
        m.share(1, 2, 5, (0x1000, 0x2000));
        m.share(2, 3, 6, (0x1000, 0x2000));
        assert_eq!(m.owners_of(0x1000), vec![0, 5, 6]);
        m.revoke(2);
        assert_eq!(m.owners_of(0x1000), vec![0], "cascade removed 3 too");
        assert_eq!(m.len(), 1);
    }
}
