//! End-to-end tests of the `tcb-audit` binary: a deliberately violating
//! fixture workspace must fail (non-zero exit), the real tree must pass.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

const BIN: &str = env!("CARGO_BIN_EXE_tcb-audit");

/// A scratch workspace with the three TCB crates, removed on drop.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    /// Builds a fully compliant minimal tree; tests then break it.
    fn compliant(tag: &str) -> Fixture {
        let root = std::env::temp_dir().join(format!(
            "tcb-audit-fixture-{}-{tag}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&root);
        let f = Fixture { root };
        f.write(
            "Cargo.toml",
            "[workspace]\nmembers = [\"crates/*\"]\nresolver = \"2\"\n\n\
             [workspace.dependencies]\n\
             tyche-core = { path = \"crates/core\" }\n\
             tyche-crypto = { path = \"crates/crypto\" }\n",
        );
        for krate in ["core", "monitor", "crypto"] {
            f.write(
                &format!("crates/{krate}/Cargo.toml"),
                &format!(
                    "[package]\nname = \"tyche-{krate}\"\nversion = \"0.1.0\"\nedition = \"2021\"\n\n\
                     [dependencies]\n"
                ),
            );
            f.write(
                &format!("crates/{krate}/src/lib.rs"),
                "#![forbid(unsafe_code)]\n//! Fixture crate.\n\npub fn ok() -> u32 {\n    41 + 1\n}\n",
            );
        }
        f.write(
            "crates/verify/allowlist.toml",
            "# fixture allowlist: nothing approved\n",
        );
        f
    }

    fn write(&self, rel: &str, content: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("has parent")).expect("mkdir fixture");
        fs::write(path, content).expect("write fixture file");
    }

    fn audit(&self, extra: &[&str]) -> (bool, String) {
        let out = Command::new(BIN)
            .arg("--root")
            .arg(&self.root)
            .args(extra)
            .output()
            .expect("run tcb-audit");
        let text = format!(
            "{}{}",
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        );
        (out.status.success(), text)
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn compliant_fixture_passes() {
    let f = Fixture::compliant("pass");
    let (ok, text) = f.audit(&[]);
    assert!(ok, "compliant fixture should pass:\n{text}");
    assert!(text.contains("RESULT: PASS"), "{text}");
}

#[test]
fn unsafe_token_fails() {
    let f = Fixture::compliant("unsafe");
    f.write(
        "crates/core/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
    );
    let (ok, text) = f.audit(&[]);
    assert!(!ok, "unsafe token must fail the audit");
    assert!(text.contains("unsafe-token"), "{text}");
}

#[test]
fn missing_forbid_attribute_fails() {
    let f = Fixture::compliant("forbid");
    f.write("crates/monitor/src/lib.rs", "pub fn ok() -> u32 {\n    7\n}\n");
    let (ok, text) = f.audit(&[]);
    assert!(!ok);
    assert!(text.contains("forbid-unsafe"), "{text}");
}

#[test]
fn unapproved_panic_construct_fails() {
    let f = Fixture::compliant("panic");
    f.write(
        "crates/monitor/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n",
    );
    let (ok, text) = f.audit(&[]);
    assert!(!ok);
    assert!(text.contains("panic-construct") && text.contains("unwrap()"), "{text}");
}

#[test]
fn allowlisted_panic_construct_passes_and_stale_entry_fails() {
    let f = Fixture::compliant("allow");
    f.write(
        "crates/monitor/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\n",
    );
    f.write(
        "crates/verify/allowlist.toml",
        "[[allow]]\nfile = \"crates/monitor/src/lib.rs\"\nconstruct = \"unwrap()\"\ncount = 1\nreason = \"fixture\"\n",
    );
    let (ok, text) = f.audit(&[]);
    assert!(ok, "allowlisted construct should pass:\n{text}");

    // Now remove the unwrap but keep the entry: the list is stale.
    f.write(
        "crates/monitor/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f(x: Option<u8>) -> u8 {\n    x.unwrap_or(0)\n}\n",
    );
    let (ok, text) = f.audit(&[]);
    assert!(!ok, "stale allowlist entry must fail");
    assert!(text.contains("stale-allowlist"), "{text}");
}

#[test]
fn registry_dependency_fails() {
    let f = Fixture::compliant("dep");
    f.write(
        "crates/core/Cargo.toml",
        "[package]\nname = \"tyche-core\"\nversion = \"0.1.0\"\nedition = \"2021\"\n\n\
         [dependencies]\nrand = \"0.8\"\n",
    );
    let (ok, text) = f.audit(&[]);
    assert!(!ok);
    assert!(text.contains("dependency") && text.contains("rand"), "{text}");
}

#[test]
fn workspace_path_dependency_passes() {
    let f = Fixture::compliant("pathdep");
    f.write(
        "crates/core/Cargo.toml",
        "[package]\nname = \"tyche-core\"\nversion = \"0.1.0\"\nedition = \"2021\"\n\n\
         [dependencies]\ntyche-crypto.workspace = true\n\
         tyche-local = { path = \"../local\" }\n",
    );
    let (ok, text) = f.audit(&[]);
    assert!(ok, "path/workspace deps are allowed:\n{text}");
}

#[test]
fn loc_budget_gate_fails_when_exceeded() {
    let f = Fixture::compliant("loc");
    let (ok, text) = f.audit(&["--loc-budget", "5"]);
    assert!(!ok, "tiny budget must fail:\n{text}");
    assert!(text.contains("loc-budget"), "{text}");
}

#[test]
fn static_flag_gates_the_exit_code() {
    // The minimal fixture has none of the hypercall entrypoints, so the
    // deep lints must report entrypoint-table rot and fail the run even
    // though the flat audit passes.
    let f = Fixture::compliant("static");
    let (ok, text) = f.audit(&[]);
    assert!(ok, "flat audit alone passes:\n{text}");
    let (ok, text) = f.audit(&["--static"]);
    assert!(!ok, "--static must gate the exit code:\n{text}");
    assert!(text.contains("entrypoint table rot"), "{text}");
}

#[test]
fn real_tree_passes_deep_lints_and_writes_static_json() {
    let ws = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let json_path = std::env::temp_dir().join(format!("static-{}.json", std::process::id()));
    let out = Command::new(BIN)
        .arg("--root")
        .arg(ws)
        .arg("--static")
        .arg("--json")
        .arg(&json_path)
        .output()
        .expect("run tcb-audit --static");
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        out.status.success(),
        "the real tree must pass its own deep lints:\n{text}{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Path evidence, not counts: every hypercall leaf row is present.
    for leaf in [
        "CreateDomain", "Share", "Grant", "Split", "Revoke", "Seal", "SetEntry",
        "RecordContent", "MakeTransition", "Kill", "Enumerate", "Enter", "Return", "Attest",
    ] {
        assert!(text.contains(leaf), "missing leaf evidence for {leaf}:\n{text}");
    }
    let json = fs::read_to_string(&json_path).expect("STATIC.json written");
    let _ = fs::remove_file(&json_path);
    assert!(json.contains("\"schema\": \"tyche-static/v1\""), "{json}");
    assert!(json.contains("\"pass\": true"), "{json}");
}

#[test]
fn real_tree_passes() {
    // The actual repository must satisfy its own gates.
    let ws = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let out = Command::new(BIN)
        .arg("--root")
        .arg(ws)
        .output()
        .expect("run tcb-audit");
    let text = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(
        out.status.success(),
        "the real tree must pass its own audit:\n{text}{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(text.contains("RESULT: PASS"), "{text}");
}
