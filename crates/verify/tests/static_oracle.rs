//! Lint-oracle suite for the deep static certifier.
//!
//! Each of the four analyses is pinned from both sides: a conforming
//! fixture must pass clean, and a fixture with a seeded violation must
//! be caught — with the expected site and, where the lint walks the
//! call graph, the expected path evidence. A lint that silently stops
//! firing fails these tests before it can rot the real gate.

use tyche_verify::allowlist::AllowEntry;
use tyche_verify::parse::WorkspaceModel;
use tyche_verify::static_lints::{atomics, lock_order, panic_reach, trace_complete, Lint};

fn allow(file: &str, construct: &str, count: usize) -> AllowEntry {
    AllowEntry {
        file: file.to_string(),
        construct: construct.to_string(),
        count,
        reason: "oracle fixture".to_string(),
    }
}

// ---------------------------------------------------------------- lock order

/// Ascending acquisitions, an explicit drop before re-descending, and a
/// sorted shard batch: everything the hierarchy allows.
const LOCKS_OK: &str = r#"
impl Serving {
    pub fn ascending(&self) {
        let state = mutex_lock(&self.core_slot);
        let shard = mutex_lock(&self.shards[0].lock);
        let eng = write_lock(&self.engine);
        consume(&state, &shard, &eng);
    }
    pub fn drop_then_redescend(&self) {
        let eng = write_lock(&self.engine);
        drop(eng);
        let state = mutex_lock(&self.core_slot);
        consume(&state);
    }
    pub fn sorted_batch(&self, mut idx: Vec<usize>) {
        idx.sort_unstable();
        idx.dedup();
        let _guards: Vec<MutexGuard<'_, ()>> = idx
            .iter()
            .filter_map(|&i| self.shards.get(i))
            .map(|s| mutex_lock(&s.lock))
            .collect();
        let eng = write_lock(&self.engine);
        consume(&eng);
    }
}
"#;

#[test]
fn conforming_lock_usage_passes() {
    let model = WorkspaceModel::from_sources(&[("monitor", "crates/monitor/src/ok.rs", LOCKS_OK)]);
    let findings = lock_order::check(&model);
    assert!(findings.is_empty(), "clean fixture flagged: {findings:?}");
}

#[test]
fn descending_acquisition_is_caught() {
    let src = r#"
impl Serving {
    pub fn backwards(&self) {
        let eng = write_lock(&self.engine);
        let shard = mutex_lock(&self.shards[0].lock);
        consume(&eng, &shard);
    }
}
"#;
    let model = WorkspaceModel::from_sources(&[("monitor", "crates/monitor/src/bad.rs", src)]);
    let findings = lock_order::check(&model);
    assert_eq!(findings.len(), 1, "exactly the seeded violation: {findings:?}");
    let f = &findings[0];
    assert_eq!(f.lint, Lint::LockOrder);
    assert_eq!(f.line, 5, "site is the shard acquisition");
    assert!(f.message.contains("domain-shard"), "{}", f.message);
    assert!(f.message.contains("engine-inner"), "{}", f.message);
    assert_eq!(f.path, vec!["Serving::backwards".to_string()]);
}

#[test]
fn transitive_descending_acquisition_reports_the_chain() {
    let src = r#"
impl Serving {
    pub fn outer(&self) {
        let eng = write_lock(&self.engine);
        self.helper();
        consume(&eng);
    }
    fn helper(&self) {
        let shard = mutex_lock(&self.shards[0].lock);
        consume(&shard);
    }
}
"#;
    let model = WorkspaceModel::from_sources(&[("monitor", "crates/monitor/src/bad.rs", src)]);
    let findings = lock_order::check(&model);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!(f.lint, Lint::LockOrder);
    assert!(
        f.message.contains("calls helper while holding `engine-inner`"),
        "{}",
        f.message
    );
    assert_eq!(
        f.path,
        vec!["Serving::outer".to_string(), "Serving::helper".to_string()],
        "chain names caller then acquiring callee"
    );
}

#[test]
fn unsorted_shard_batch_is_caught() {
    let src = r#"
impl Serving {
    pub fn unsorted(&self, idx: Vec<usize>) {
        let _guards: Vec<MutexGuard<'_, ()>> = idx
            .iter()
            .filter_map(|&i| self.shards.get(i))
            .map(|s| mutex_lock(&s.lock))
            .collect();
    }
}
"#;
    let model = WorkspaceModel::from_sources(&[("monitor", "crates/monitor/src/bad.rs", src)]);
    let findings = lock_order::check(&model);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(
        findings[0].message.contains("sort_unstable+dedup"),
        "{}",
        findings[0].message
    );
}

#[test]
fn double_single_shard_acquisition_is_caught() {
    let src = r#"
impl Serving {
    pub fn two_shards(&self) {
        let a = mutex_lock(&self.shards[0].lock);
        let b = mutex_lock(&self.shards[1].lock);
        consume(&a, &b);
    }
}
"#;
    let model = WorkspaceModel::from_sources(&[("monitor", "crates/monitor/src/bad.rs", src)]);
    let findings = lock_order::check(&model);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("twice"), "{}", findings[0].message);
}

/// The resizable shard table's lock shape, mirroring
/// `SharedEngine::mutate`: pin the table with a read lock, then the
/// sorted shard batch *through* the pinned table, then the engine. The
/// read-guard binding is `shard_tbl` (not `shard_table`) so the batch
/// sites still classify as `domain-shard`.
const SHARD_TABLE_OK: &str = r#"
impl Serving {
    pub fn table_then_batch(&self, domains: Vec<u64>) {
        let shard_tbl = read_lock(&self.shard_table);
        let mut idx: Vec<usize> = domains.iter().map(|&d| route(d)).collect();
        idx.sort_unstable();
        idx.dedup();
        let _guards: Vec<MutexGuard<'_, ()>> = idx
            .into_iter()
            .filter_map(|i| shard_tbl.locks.get(i))
            .map(mutex_lock)
            .collect();
        let eng = write_lock(&self.engine);
        consume(&eng);
    }
    pub fn resize(&self, n: usize) {
        let mut tbl = write_lock(&self.shard_table);
        rebuild(&mut tbl, n);
    }
}
"#;

#[test]
fn conforming_shard_table_protocol_passes() {
    let model =
        WorkspaceModel::from_sources(&[("core", "crates/core/src/table_ok.rs", SHARD_TABLE_OK)]);
    let findings = lock_order::check(&model);
    assert!(findings.is_empty(), "clean shard-table fixture flagged: {findings:?}");
}

#[test]
fn shard_table_after_shard_is_caught() {
    let src = r#"
impl Serving {
    pub fn shard_then_table(&self) {
        let shard = mutex_lock(&self.shards[0].lock);
        let tbl = read_lock(&self.shard_table);
        consume(&shard, &tbl);
    }
}
"#;
    let model = WorkspaceModel::from_sources(&[("core", "crates/core/src/table_bad.rs", src)]);
    let findings = lock_order::check(&model);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!(f.lint, Lint::LockOrder);
    assert_eq!(f.line, 5, "site is the table acquisition");
    assert!(f.message.contains("acquires `shard-table`"), "{}", f.message);
    assert!(f.message.contains("`domain-shard`"), "{}", f.message);
}

#[test]
fn engine_then_shard_table_is_caught() {
    let src = r#"
impl Serving {
    pub fn backwards_resize(&self) {
        let eng = write_lock(&self.engine);
        let tbl = write_lock(&self.shard_table);
        consume(&eng, &tbl);
    }
}
"#;
    let model = WorkspaceModel::from_sources(&[("core", "crates/core/src/table_bad.rs", src)]);
    let findings = lock_order::check(&model);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(
        findings[0].message.contains("acquires `shard-table`")
            && findings[0].message.contains("`engine-inner`"),
        "{}",
        findings[0].message
    );
}

/// The epoch read side's lock shape: the submission ring first (and
/// dropped), then core state, the engine, a publish into a snapshot
/// slot, and the retired list last. Everything the extended hierarchy
/// allows.
const EPOCH_LOCKS_OK: &str = r#"
impl Reads {
    pub fn drain_and_publish(&self, gen: u64) {
        let queued = mutex_lock(&self.ring_cell);
        drop(queued);
        let state = mutex_lock(&self.core_slot);
        let eng = write_lock(&self.engine);
        let published = write_lock(&self.snap_cell);
        drop(published);
        let retired = mutex_lock(&self.retired);
        consume(&state, &eng, &retired);
    }
}
"#;

#[test]
fn conforming_epoch_and_ring_locks_pass() {
    let model =
        WorkspaceModel::from_sources(&[("core", "crates/core/src/epoch_ok.rs", EPOCH_LOCKS_OK)]);
    let findings = lock_order::check(&model);
    assert!(findings.is_empty(), "clean epoch fixture flagged: {findings:?}");
}

#[test]
fn ring_and_retired_inversions_are_caught() {
    let src = r#"
impl Reads {
    pub fn ring_after_core(&self) {
        let state = mutex_lock(&self.core_slot);
        let queued = mutex_lock(&self.ring_cell);
        consume(&state, &queued);
    }
    pub fn slot_after_retired(&self) {
        let retired = mutex_lock(&self.retired);
        let published = write_lock(&self.snap_cell);
        consume(&retired, &published);
    }
}
"#;
    let model = WorkspaceModel::from_sources(&[("core", "crates/core/src/epoch_bad.rs", src)]);
    let findings = lock_order::check(&model);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(
        findings.iter().any(|f| f.message.contains("acquires `submission-ring`")
            && f.message.contains("`core-state`")),
        "ring-after-core inversion missed: {findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.message.contains("acquires `snapshot-cache`")
            && f.message.contains("`epoch-retired`")),
        "slot-after-retired inversion missed: {findings:?}"
    );
}

/// The fleet layer's lock shape: the channel table (which emits trace
/// events while held — trace lanes rank above it), and the NIC inbox
/// queue after the table. Everything the extended hierarchy allows.
const CHANNEL_LOCKS_OK: &str = r#"
impl Channels {
    pub fn judge_and_emit(&self, peer: u64) {
        let channels = mutex_lock(&self.channels);
        let lanes = read_lanes(&self.sink);
        consume(&channels, &lanes);
    }
    pub fn route_inbound(&self, peer: u64) {
        let channels = mutex_lock(&self.channels);
        let inbox = mutex_lock(&self.nic_queue);
        consume(&channels, &inbox);
    }
}
"#;

#[test]
fn conforming_channel_and_nic_locks_pass() {
    let model = WorkspaceModel::from_sources(&[(
        "core",
        "crates/core/src/channel_ok.rs",
        CHANNEL_LOCKS_OK,
    )]);
    let findings = lock_order::check(&model);
    assert!(findings.is_empty(), "clean channel fixture flagged: {findings:?}");
}

#[test]
fn channel_and_nic_inversions_are_caught() {
    let src = r#"
impl Channels {
    pub fn channel_after_nic(&self) {
        let inbox = mutex_lock(&self.nic_queue);
        let channels = mutex_lock(&self.channels);
        consume(&inbox, &channels);
    }
    pub fn engine_after_channel(&self) {
        let channels = mutex_lock(&self.channels);
        let eng = write_lock(&self.engine);
        consume(&channels, &eng);
    }
}
"#;
    let model =
        WorkspaceModel::from_sources(&[("core", "crates/core/src/channel_bad.rs", src)]);
    let findings = lock_order::check(&model);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(
        findings.iter().any(|f| f.message.contains("acquires `channel-table`")
            && f.message.contains("`nic-queue`")),
        "channel-after-nic inversion missed: {findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.message.contains("acquires `engine-inner`")
            && f.message.contains("`channel-table`")),
        "engine-after-channel inversion missed: {findings:?}"
    );
}

// ------------------------------------------------------------- panic reach

const ENTRIES: &[(&str, &[&str])] = &[("TestEntry", &["Gate::entry"])];

#[test]
fn allowlisted_reachable_panic_becomes_path_evidence() {
    let src = r#"
impl Gate {
    pub fn entry(&self) { middle(); }
}
fn middle() { leaf(); }
fn leaf() { table.expect("checked"); }
"#;
    let model = WorkspaceModel::from_sources(&[("core", "crates/core/src/gate.rs", src)]);
    let (findings, evidence) = panic_reach::check_entries(
        &model,
        ENTRIES,
        &[allow("crates/core/src/gate.rs", "expect(", 1)],
    );
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(evidence.len(), 1);
    let ev = &evidence[0];
    assert_eq!(ev.entry, "TestEntry");
    assert_eq!(ev.sites.len(), 1);
    let site = &ev.sites[0];
    assert_eq!(site.construct, "expect(");
    assert_eq!(site.lines, vec![6]);
    assert_eq!(
        site.path,
        vec!["Gate::entry".to_string(), "middle".to_string(), "leaf".to_string()],
        "evidence is the entrypoint-to-site chain, not a count"
    );
}

#[test]
fn unallowlisted_reachable_panic_is_caught_with_path() {
    let src = r#"
impl Gate {
    pub fn entry(&self) { middle(); }
}
fn middle() { leaf(); }
fn leaf() { boom.unwrap(); }
"#;
    let model = WorkspaceModel::from_sources(&[("core", "crates/core/src/gate.rs", src)]);
    let (findings, _) = panic_reach::check_entries(&model, ENTRIES, &[]);
    assert_eq!(findings.len(), 1, "{findings:?}");
    let f = &findings[0];
    assert_eq!(f.lint, Lint::PanicReach);
    assert_eq!(f.line, 6);
    assert!(f.message.contains("unwrap()"), "{}", f.message);
    assert!(f.message.contains("TestEntry"), "{}", f.message);
    assert_eq!(
        f.path,
        vec![
            "Gate::entry".to_string(),
            "middle".to_string(),
            "leaf".to_string(),
            "crates/core/src/gate.rs:6".to_string(),
        ],
        "path ends at the concrete site"
    );
}

#[test]
fn unreachable_panic_is_not_flagged() {
    let src = r#"
impl Gate {
    pub fn entry(&self) { safe(); }
}
fn safe() {}
fn dead_code() { boom.unwrap(); }
"#;
    let model = WorkspaceModel::from_sources(&[("core", "crates/core/src/gate.rs", src)]);
    let (findings, evidence) = panic_reach::check_entries(&model, ENTRIES, &[]);
    assert!(findings.is_empty(), "unreachable site flagged: {findings:?}");
    assert!(evidence[0].sites.is_empty());
}

#[test]
fn entrypoint_rot_is_caught() {
    let model = WorkspaceModel::from_sources(&[("core", "crates/core/src/gate.rs", "fn x() {}")]);
    let (findings, _) = panic_reach::check_entries(&model, ENTRIES, &[]);
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("entrypoint table rot"), "{}", findings[0].message);
}

// ----------------------------------------------------------------- atomics

#[test]
fn conforming_atomics_pass() {
    let src = r#"
impl Shared {
    pub fn publish(&self, g: u64) {
        self.live_gen.store(g, Ordering::Release);
    }
    pub fn observe(&self) -> u64 {
        self.live_gen.load(Ordering::Acquire)
    }
    pub fn count(&self) {
        // verify: relaxed-ok statistics only
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
}
"#;
    let model = WorkspaceModel::from_sources(&[("core", "crates/core/src/shared.rs", src)]);
    let result = atomics::check(&model, 1);
    assert!(result.findings.is_empty(), "{:?}", result.findings);
    assert_eq!(result.used, 1);
}

#[test]
fn relaxed_on_seqlock_generation_is_caught() {
    let src = r#"
impl Shared {
    pub fn publish(&self, g: u64) {
        self.live_gen.store(g, Ordering::Relaxed);
    }
}
"#;
    let model = WorkspaceModel::from_sources(&[("core", "crates/core/src/shared.rs", src)]);
    let result = atomics::check(&model, 0);
    assert_eq!(result.findings.len(), 1, "{:?}", result.findings);
    let f = &result.findings[0];
    assert_eq!(f.lint, Lint::AtomicOrder);
    assert_eq!(f.line, 4);
    assert!(f.message.contains("live_gen"), "{}", f.message);
    assert!(f.message.contains("Relaxed"), "{}", f.message);
}

#[test]
fn required_field_cannot_be_excused_by_annotation() {
    let src = r#"
impl Sink {
    pub fn gate(&self) -> bool {
        // verify: relaxed-ok trying to sneak past
        self.enabled.load(Ordering::Relaxed)
    }
}
"#;
    let model = WorkspaceModel::from_sources(&[("core", "crates/core/src/trace.rs", src)]);
    let result = atomics::check(&model, 0);
    // Too-weak ordering AND an illegal excuse: two findings, plus the
    // stale-annotation sweep (the marker is not consumable on `enabled`).
    assert!(
        result
            .findings
            .iter()
            .any(|f| f.message.contains("Ordering::Relaxed on `enabled`")),
        "{:?}",
        result.findings
    );
    assert!(
        result
            .findings
            .iter()
            .any(|f| f.message.contains("may not be excused")),
        "{:?}",
        result.findings
    );
}

#[test]
fn unannotated_relaxed_and_stale_annotation_are_caught() {
    let src = r#"
impl Stats {
    pub fn bump(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
    pub fn strong(&self) -> u64 {
        // verify: relaxed-ok nothing relaxed here any more
        self.hits.load(Ordering::SeqCst)
    }
}
"#;
    let model = WorkspaceModel::from_sources(&[("core", "crates/core/src/stats.rs", src)]);
    let result = atomics::check(&model, 0);
    assert!(
        result
            .findings
            .iter()
            .any(|f| f.line == 4 && f.message.contains("without a `// verify: relaxed-ok")),
        "unannotated Relaxed missed: {:?}",
        result.findings
    );
    assert!(
        result
            .findings
            .iter()
            .any(|f| f.line == 7 && f.message.contains("stale")),
        "stale annotation missed: {:?}",
        result.findings
    );
}

#[test]
fn annotation_budget_is_exact_in_both_directions() {
    let src = r#"
impl Stats {
    pub fn bump(&self) {
        // verify: relaxed-ok statistics only
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
}
"#;
    let model = WorkspaceModel::from_sources(&[("core", "crates/core/src/stats.rs", src)]);
    let over = atomics::check(&model, 0);
    assert!(
        over.findings.iter().any(|f| f.message.contains("budget is exactly 0")),
        "{:?}",
        over.findings
    );
    let under = atomics::check(&model, 2);
    assert!(
        under.findings.iter().any(|f| f.message.contains("budget is exactly 2")),
        "{:?}",
        under.findings
    );
    assert!(atomics::check(&model, 1).findings.is_empty());
}

/// The epoch reclamation code's atomics shape: SeqCst epoch bumps and
/// reader-pin traffic, Acquire/Release on the head pointer, and no
/// Relaxed anywhere — so it must pass with a zero relaxed budget.
const EPOCH_ATOMICS_OK: &str = r#"
impl EpochReadSide {
    pub fn publish(&self, next: usize) {
        let epoch_now = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let old_head = self.head.load(Ordering::Acquire);
        self.head.store(next, Ordering::Release);
        self.displaced.store(epoch_now, Ordering::SeqCst);
    }
    pub fn grace_elapsed(&self, displaced_at: u64) -> bool {
        self.readers.load(Ordering::SeqCst) > displaced_at
    }
}
"#;

#[test]
fn conforming_reclamation_atomics_pass_with_zero_budget() {
    let model =
        WorkspaceModel::from_sources(&[("core", "crates/core/src/epoch.rs", EPOCH_ATOMICS_OK)]);
    let result = atomics::check(&model, 0);
    assert!(result.findings.is_empty(), "{:?}", result.findings);
}

#[test]
fn relaxed_reclamation_without_annotation_is_caught() {
    let src = r#"
impl EpochReadSide {
    pub fn reclaim(&self) {
        let horizon = self.readers.load(Ordering::Relaxed);
        self.reclaimed.fetch_add(1, Ordering::Relaxed);
    }
}
"#;
    let model = WorkspaceModel::from_sources(&[("core", "crates/core/src/epoch.rs", src)]);
    let result = atomics::check(&model, 0);
    let unexcused: Vec<_> = result
        .findings
        .iter()
        .filter(|f| f.message.contains("without a `// verify: relaxed-ok"))
        .collect();
    assert_eq!(
        unexcused.len(),
        2,
        "both Relaxed reclamation ops must be caught: {:?}",
        result.findings
    );
}

// --------------------------------------------------------- trace complete

/// The exempt plumbing every fixture must carry so the exemption-table
/// rot check stays quiet.
const EXEMPT_STUBS: &str = r#"
    pub fn set_trace(&mut self, t: TraceSink) { self.trace = t; }
    pub fn drain_effects(&mut self) -> Vec<Effect> { take(&mut self.effects) }
    pub fn corrupt_cap(&mut self, id: CapId) { self.tamper(id); }
    pub fn corrupt_domain(&mut self, id: DomainId) { self.tamper_domain(id); }
    pub fn corrupt_generation(&mut self) { self.generation += 1; }
    pub fn corrupt_created_at(&mut self, id: CapId) { self.tamper(id); }
    pub fn corrupt_sealed_at(&mut self, id: DomainId) { self.tamper_domain(id); }
"#;

fn engine_fixture(ops: &str) -> WorkspaceModel {
    let src = format!(
        "impl CapEngine {{\n{EXEMPT_STUBS}\n{ops}\n}}\n\
         impl TraceSink {{ pub fn emit(&self, core: u32, kind: EventKind) {{ record(kind); }} }}\n"
    );
    WorkspaceModel::from_sources(&[("core", "crates/core/src/engine.rs", &src)])
}

#[test]
fn emitting_mutators_pass() {
    let model = engine_fixture(
        r#"
    pub fn share(&mut self, a: DomainId) -> Result<CapId, CapError> {
        let id = self.insert(a);
        self.note(EventKind::Share { id });
        Ok(id)
    }
    fn note(&self, kind: EventKind) { self.trace.emit(0, kind); }
"#,
    );
    let result = trace_complete::check(&model);
    assert!(result.findings.is_empty(), "{:?}", result.findings);
    assert_eq!(result.traced_ops, 1, "share counted as proven");
}

#[test]
fn silent_mutator_is_caught() {
    let model = engine_fixture(
        r#"
    pub fn stealth_edit(&mut self, a: DomainId) { self.insert(a); }
"#,
    );
    let result = trace_complete::check(&model);
    assert_eq!(result.findings.len(), 1, "{:?}", result.findings);
    let f = &result.findings[0];
    assert_eq!(f.lint, Lint::TraceComplete);
    assert!(f.message.contains("stealth_edit"), "{}", f.message);
    assert!(f.message.contains("never reaches TraceSink::emit"), "{}", f.message);
}

#[test]
fn non_mutating_and_private_methods_are_not_required_to_emit() {
    let model = engine_fixture(
        r#"
    pub fn lookup(&self, id: CapId) -> Option<Cap> { self.caps.get(&id).cloned() }
    fn internal(&mut self) { self.rebalance(); }
"#,
    );
    let result = trace_complete::check(&model);
    assert!(result.findings.is_empty(), "{:?}", result.findings);
}

#[test]
fn exemption_table_rot_is_caught() {
    // A model without the exempt stubs: every exempt name is rot.
    let model = WorkspaceModel::from_sources(&[(
        "core",
        "crates/core/src/engine.rs",
        "impl CapEngine { pub fn nop(&self) {} }",
    )]);
    let result = trace_complete::check(&model);
    assert!(
        result.findings.iter().all(|f| f.message.contains("exemption table rot")),
        "{:?}",
        result.findings
    );
    assert_eq!(result.findings.len(), trace_complete::EXEMPT.len());
}
