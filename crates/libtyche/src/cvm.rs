//! Confidential virtual machines (§4.2: "extending KVM with a Tyche
//! backend for confidential VMs").
//!
//! A confidential VM is just a big trust domain: a contiguous slab of
//! "guest RAM" granted exclusively, several CPU cores, and a nestable
//! seal (a guest OS must manage its own processes, i.e. create
//! sub-domains). The hypervisor-role domain keeps the transition
//! capability — it can still *schedule* the cVM — but holds no capability
//! over guest memory, so it cannot read or corrupt it. That asymmetry is
//! the whole point: scheduling without trust.

use crate::client::TycheClient;
use tyche_core::prelude::*;
use tyche_crypto::Digest;
use tyche_monitor::attest::SignedReport;
use tyche_monitor::{Monitor, Status};

/// A confidential VM.
pub struct ConfidentialVm {
    /// The cVM's domain.
    pub domain: DomainId,
    /// Transition capability held by the hypervisor-role creator.
    pub transition: CapId,
    /// Guest RAM `[start, end)`.
    pub guest_ram: (u64, u64),
    /// Cores given to the guest.
    pub cores: Vec<usize>,
    /// Launch measurement.
    pub measurement: Digest,
}

impl ConfidentialVm {
    /// Launches a confidential VM: grants `guest_ram` exclusively (with
    /// the obfuscating revocation policy — zero + flush on teardown),
    /// shares `cores`, measures the pre-loaded guest image bytes in
    /// `measured` regions, and seals nestable.
    ///
    /// The caller must have written the guest kernel image into
    /// `guest_ram` beforehand (it owns that memory until the grant).
    pub fn launch(
        monitor: &mut Monitor,
        core: usize,
        guest_ram: (u64, u64),
        cores: &[usize],
        entry: u64,
        measured: &[(u64, u64)],
    ) -> Result<ConfidentialVm, Status> {
        let mut client = TycheClient::new(monitor, core);
        let (domain, transition) = client.create_domain()?;
        for &(s, e) in measured {
            client.record_content(domain, s, e)?;
        }
        let ram_cap = client.carve(guest_ram.0, guest_ram.1)?;
        client.grant(ram_cap, domain, Rights::RWX, RevocationPolicy::OBFUSCATE)?;
        for &c in cores {
            let core_cap = {
                let me = client.whoami();
                client
                    .monitor
                    .engine
                    .caps_of(me)
                    .iter()
                    .find(|k| k.active && matches!(k.resource, Resource::CpuCore(n) if n == c))
                    .map(|k| k.id)
            }
            .ok_or(Status::NotFound)?;
            client.share(core_cap, domain, None, Rights::USE, RevocationPolicy::NONE)?;
        }
        client.set_entry(domain, entry)?;
        let measurement = client.seal(domain, SealPolicy::nestable())?;
        Ok(ConfidentialVm {
            domain,
            transition,
            guest_ram,
            cores: cores.to_vec(),
            measurement,
        })
    }

    /// Like [`ConfidentialVm::launch`], but additionally enables
    /// MKTME-class memory encryption on the guest (physical-attack
    /// resistance, §4.2): a cold-boot snapshot of DRAM shows only
    /// ciphertext for guest RAM. x86 only.
    pub fn launch_encrypted(
        monitor: &mut Monitor,
        core: usize,
        guest_ram: (u64, u64),
        cores: &[usize],
        entry: u64,
        measured: &[(u64, u64)],
    ) -> Result<ConfidentialVm, Status> {
        let vm = Self::launch(monitor, core, guest_ram, cores, entry, measured)?;
        monitor.enable_memory_encryption(core, vm.domain)?;
        Ok(vm)
    }

    /// Enters the cVM on `core` (the hypervisor scheduling the guest).
    pub fn enter(&self, monitor: &mut Monitor, core: usize) -> Result<(), Status> {
        TycheClient::new(monitor, core)
            .enter(self.transition)
            .map(|_| ())
    }

    /// Yields back to the hypervisor-role domain.
    pub fn exit(monitor: &mut Monitor, core: usize) -> Result<(), Status> {
        TycheClient::new(monitor, core).ret().map(|_| ())
    }

    /// Attests the cVM (launch measurement + resource exclusivity).
    pub fn attest(
        &self,
        monitor: &mut Monitor,
        core: usize,
        nonce: u64,
    ) -> Result<SignedReport, Status> {
        TycheClient::new(monitor, core).attest(self.domain, nonce)
    }

    /// Destroys the cVM; the obfuscating revocation policy guarantees the
    /// guest RAM returns zeroed with micro-architectural state flushed.
    pub fn destroy(self, monitor: &mut Monitor, core: usize) -> Result<(), Status> {
        TycheClient::new(monitor, core).kill(self.domain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyche_monitor::{boot_x86, BootConfig};

    const GUEST_RAM: (u64, u64) = (0x40_0000, 0x80_0000);

    fn launch(m: &mut Monitor) -> ConfidentialVm {
        // "Hypervisor" (the root domain) writes a guest kernel image...
        m.dom_write(0, GUEST_RAM.0, b"guest kernel image").unwrap();
        ConfidentialVm::launch(
            m,
            0,
            GUEST_RAM,
            &[0, 1],
            GUEST_RAM.0,
            &[(GUEST_RAM.0, GUEST_RAM.0 + 0x1000)],
        )
        .unwrap()
    }

    #[test]
    fn hypervisor_cannot_read_guest_memory() {
        let mut m = boot_x86(BootConfig::default());
        let vm = launch(&mut m);
        // The hypervisor-role domain lost all access to guest RAM.
        assert!(m.dom_read(0, GUEST_RAM.0, &mut [0u8; 1]).is_err());
        assert!(m.dom_write(0, GUEST_RAM.0 + 0x1000, &[1]).is_err());
        // But the guest, once entered, sees its RAM.
        vm.enter(&mut m, 0).unwrap();
        let mut buf = [0u8; 18];
        m.dom_read(0, GUEST_RAM.0, &mut buf).unwrap();
        assert_eq!(&buf, b"guest kernel image");
        ConfidentialVm::exit(&mut m, 0).unwrap();
    }

    #[test]
    fn guest_cannot_escape_its_ram() {
        let mut m = boot_x86(BootConfig::default());
        m.dom_write(0, 0x10_0000, b"hypervisor secret").unwrap();
        let vm = launch(&mut m);
        vm.enter(&mut m, 0).unwrap();
        assert!(m.dom_read(0, 0x10_0000, &mut [0u8; 1]).is_err());
        ConfidentialVm::exit(&mut m, 0).unwrap();
    }

    #[test]
    fn guest_ram_exclusive_and_attested() {
        let mut m = boot_x86(BootConfig::default());
        let vm = launch(&mut m);
        assert!(m
            .engine
            .refcount_mem_full(MemRegion::new(GUEST_RAM.0, GUEST_RAM.1))
            .is_exclusive());
        let report = vm.attest(&mut m, 0, 7).unwrap();
        assert!(report.report.check_sharing(&[]));
        assert_eq!(report.report.content_measurements.len(), 1);
    }

    #[test]
    fn multi_core_guest() {
        let mut m = boot_x86(BootConfig::default());
        let vm = launch(&mut m);
        // The guest owns cores 0 and 1 — enterable on both.
        vm.enter(&mut m, 0).unwrap();
        ConfidentialVm::exit(&mut m, 0).unwrap();
        vm.enter(&mut m, 1).unwrap();
        ConfidentialVm::exit(&mut m, 1).unwrap();
        // Core 2 was not given to the guest.
        assert_eq!(vm.enter(&mut m, 2), Err(Status::Denied));
    }

    #[test]
    fn teardown_scrubs_guest_ram() {
        let mut m = boot_x86(BootConfig::default());
        let vm = launch(&mut m);
        vm.enter(&mut m, 0).unwrap();
        m.dom_write(0, GUEST_RAM.0 + 0x2000, b"guest secrets")
            .unwrap();
        ConfidentialVm::exit(&mut m, 0).unwrap();
        vm.destroy(&mut m, 0).unwrap();
        // Hypervisor regains the RAM — zeroed.
        let mut buf = [0u8; 13];
        m.dom_read(0, GUEST_RAM.0 + 0x2000, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 13]);
        let mut buf2 = [0u8; 18];
        m.dom_read(0, GUEST_RAM.0, &mut buf2).unwrap();
        assert_eq!(buf2, [0u8; 18], "even the kernel image is gone");
    }

    #[test]
    fn guest_spawns_subdomains() {
        // The nestable seal lets the guest OS compartmentalize itself —
        // e.g. isolate a driver — without hypervisor involvement.
        let mut m = boot_x86(BootConfig::default());
        let vm = launch(&mut m);
        vm.enter(&mut m, 0).unwrap();
        let mut client = TycheClient::new(&mut m, 0);
        let (sub, _t) = client.create_domain().unwrap();
        let page = client
            .carve(GUEST_RAM.0 + 0x10_0000, GUEST_RAM.0 + 0x10_1000)
            .unwrap();
        client
            .grant(page, sub, Rights::RW, RevocationPolicy::ZERO)
            .unwrap();
        assert!(m
            .engine
            .refcount_mem_full(MemRegion::new(
                GUEST_RAM.0 + 0x10_0000,
                GUEST_RAM.0 + 0x10_1000
            ))
            .is_exclusive());
        ConfidentialVm::exit(&mut m, 0).unwrap();
    }
}
