//! A typed client for the monitor call interface.
//!
//! Code inside a domain talks to the monitor through VMCALL; this wrapper
//! provides typed methods and unwraps the result variants. It is
//! deliberately a thin veneer: everything still goes through
//! [`tyche_monitor::Monitor::call`], so the ABI (and its validation) is
//! exercised by every libtyche operation.

use tyche_core::prelude::*;
use tyche_monitor::abi::MonitorCall;
use tyche_monitor::attest::SignedReport;
use tyche_monitor::monitor::CallResult;
use tyche_monitor::{Monitor, Status};

/// Client handle: "the domain currently running on `core`".
pub struct TycheClient<'m> {
    /// The monitor (the hardware interface, from the domain's viewpoint).
    pub monitor: &'m mut Monitor,
    /// The core this domain is running on.
    pub core: usize,
}

impl<'m> TycheClient<'m> {
    /// Creates a client for the domain running on `core`.
    pub fn new(monitor: &'m mut Monitor, core: usize) -> Self {
        TycheClient { monitor, core }
    }

    /// The calling domain's identity (what the monitor believes).
    pub fn whoami(&self) -> DomainId {
        self.monitor.current_domain(self.core)
    }

    /// Creates a child domain; returns `(domain, transition capability)`.
    pub fn create_domain(&mut self) -> Result<(DomainId, CapId), Status> {
        match self.monitor.call(self.core, MonitorCall::CreateDomain)? {
            CallResult::NewDomain { domain, transition } => Ok((domain, transition)),
            _ => Err(Status::BackendFailure),
        }
    }

    /// Shares (a window of) a capability.
    pub fn share(
        &mut self,
        cap: CapId,
        target: DomainId,
        sub: Option<(u64, u64)>,
        rights: Rights,
        policy: RevocationPolicy,
    ) -> Result<CapId, Status> {
        match self.monitor.call(
            self.core,
            MonitorCall::Share {
                cap,
                target,
                sub,
                rights,
                policy,
            },
        )? {
            CallResult::Cap(c) => Ok(c),
            _ => Err(Status::BackendFailure),
        }
    }

    /// Grants a whole capability.
    pub fn grant(
        &mut self,
        cap: CapId,
        target: DomainId,
        rights: Rights,
        policy: RevocationPolicy,
    ) -> Result<CapId, Status> {
        match self.monitor.call(
            self.core,
            MonitorCall::Grant {
                cap,
                target,
                rights,
                policy,
            },
        )? {
            CallResult::Cap(c) => Ok(c),
            _ => Err(Status::BackendFailure),
        }
    }

    /// Splits a memory capability at `at`.
    pub fn split(&mut self, cap: CapId, at: u64) -> Result<(CapId, CapId), Status> {
        match self
            .monitor
            .call(self.core, MonitorCall::Split { cap, at })?
        {
            CallResult::Caps(a, b) => Ok((a, b)),
            _ => Err(Status::BackendFailure),
        }
    }

    /// Revokes a capability subtree.
    pub fn revoke(&mut self, cap: CapId) -> Result<(), Status> {
        self.monitor
            .call(self.core, MonitorCall::Revoke { cap })
            .map(|_| ())
    }

    /// Sets a domain's entry point.
    pub fn set_entry(&mut self, domain: DomainId, entry: u64) -> Result<(), Status> {
        self.monitor
            .call(self.core, MonitorCall::SetEntry { domain, entry })
            .map(|_| ())
    }

    /// Records a content measurement for `[start, end)` of `domain`.
    pub fn record_content(&mut self, domain: DomainId, start: u64, end: u64) -> Result<(), Status> {
        self.monitor
            .call(self.core, MonitorCall::RecordContent { domain, start, end })
            .map(|_| ())
    }

    /// Seals a domain; returns its measurement.
    pub fn seal(
        &mut self,
        domain: DomainId,
        policy: SealPolicy,
    ) -> Result<tyche_crypto::Digest, Status> {
        match self.monitor.call(
            self.core,
            MonitorCall::Seal {
                domain,
                allow_outward: policy.allow_outward_sharing,
                allow_children: policy.allow_child_domains,
            },
        )? {
            CallResult::Measurement(m) => Ok(m),
            _ => Err(Status::BackendFailure),
        }
    }

    /// Creates a transition capability into `target`.
    pub fn make_transition(
        &mut self,
        target: DomainId,
        policy: RevocationPolicy,
    ) -> Result<CapId, Status> {
        match self
            .monitor
            .call(self.core, MonitorCall::MakeTransition { target, policy })?
        {
            CallResult::Cap(c) => Ok(c),
            _ => Err(Status::BackendFailure),
        }
    }

    /// Kills a managed domain.
    pub fn kill(&mut self, domain: DomainId) -> Result<(), Status> {
        self.monitor
            .call(self.core, MonitorCall::Kill { domain })
            .map(|_| ())
    }

    /// Enters a domain through a transition capability (mediated path).
    pub fn enter(&mut self, cap: CapId) -> Result<DomainId, Status> {
        match self.monitor.call(self.core, MonitorCall::Enter { cap })? {
            CallResult::Entered { target, .. } => Ok(target),
            _ => Err(Status::BackendFailure),
        }
    }

    /// Returns to the calling domain.
    pub fn ret(&mut self) -> Result<DomainId, Status> {
        match self.monitor.call(self.core, MonitorCall::Return)? {
            CallResult::Returned { to } => Ok(to),
            _ => Err(Status::BackendFailure),
        }
    }

    /// Requests a signed attestation report for `domain`.
    pub fn attest(&mut self, domain: DomainId, nonce: u64) -> Result<SignedReport, Status> {
        match self
            .monitor
            .call(self.core, MonitorCall::Attest { domain, nonce })?
        {
            CallResult::Report(r) => Ok(*r),
            _ => Err(Status::BackendFailure),
        }
    }

    /// Reads memory as the running domain.
    pub fn read(&mut self, addr: u64, out: &mut [u8]) -> Result<(), tyche_monitor::Fault> {
        self.monitor.dom_read(self.core, addr, out)
    }

    /// Writes memory as the running domain.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), tyche_monitor::Fault> {
        self.monitor.dom_write(self.core, addr, data)
    }

    /// Finds one of the caller's active memory capabilities covering
    /// `[start, end)`, for carving. (A real libtyche tracks its own
    /// capability handles; the reproduction asks the monitor's public
    /// engine view, which domains may query for their own caps.)
    pub fn find_mem_cap(&self, start: u64, end: u64) -> Option<CapId> {
        let me = self.whoami();
        self.monitor
            .engine
            .caps_of(me)
            .iter()
            .find(|c| {
                c.active
                    && c.resource
                        .as_mem()
                        .map(|r| r.contains(&MemRegion::new(start, end)))
                        .unwrap_or(false)
            })
            .map(|c| c.id)
    }

    /// Carves `[start, end)` out of the caller's memory holdings and
    /// returns a capability covering exactly that region.
    pub fn carve(&mut self, start: u64, end: u64) -> Result<CapId, Status> {
        let cap = self.find_mem_cap(start, end).ok_or(Status::NotFound)?;
        let region = self
            .monitor
            .engine
            .cap(cap)
            .and_then(|c| c.resource.as_mem())
            .ok_or(Status::NotFound)?;
        let mut cur = cap;
        if region.start < start {
            let (_lo, hi) = self.split(cur, start)?;
            cur = hi;
        }
        let cur_region = self
            .monitor
            .engine
            .cap(cur)
            .and_then(|c| c.resource.as_mem())
            .ok_or(Status::NotFound)?;
        if cur_region.end > end {
            let (lo, _hi) = self.split(cur, end)?;
            cur = lo;
        }
        Ok(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyche_monitor::{boot_x86, BootConfig};

    #[test]
    fn carve_exact_region() {
        let mut m = boot_x86(BootConfig::default());
        let mut client = TycheClient::new(&mut m, 0);
        let cap = client.carve(0x4000, 0x6000).unwrap();
        let region = client
            .monitor
            .engine
            .cap(cap)
            .unwrap()
            .resource
            .as_mem()
            .unwrap();
        assert_eq!((region.start, region.end), (0x4000, 0x6000));
        // Carving again from the remainder also works.
        let cap2 = client.carve(0x0, 0x1000).unwrap();
        let region2 = client
            .monitor
            .engine
            .cap(cap2)
            .unwrap()
            .resource
            .as_mem()
            .unwrap();
        assert_eq!((region2.start, region2.end), (0x0, 0x1000));
    }

    #[test]
    fn carve_whole_holding_no_split() {
        let mut m = boot_x86(BootConfig::default());
        let end = m.machine.domain_ram.end.as_u64();
        let mut client = TycheClient::new(&mut m, 0);
        let cap = client.carve(0, end).unwrap();
        let region = client
            .monitor
            .engine
            .cap(cap)
            .unwrap()
            .resource
            .as_mem()
            .unwrap();
        assert_eq!((region.start, region.end), (0, end));
    }

    #[test]
    fn whoami_tracks_transitions() {
        let mut m = boot_x86(BootConfig::default());
        let mut client = TycheClient::new(&mut m, 0);
        let os = client.whoami();
        let (child, tcap) = client.create_domain().unwrap();
        let page = client.carve(0x10_0000, 0x10_1000).unwrap();
        client
            .grant(page, child, Rights::RWX, RevocationPolicy::ZERO)
            .unwrap();
        let core_cap = {
            let me = client.whoami();
            client
                .monitor
                .engine
                .caps_of(me)
                .iter()
                .find(|c| c.active && matches!(c.resource, Resource::CpuCore(0)))
                .unwrap()
                .id
        };
        client
            .share(core_cap, child, None, Rights::USE, RevocationPolicy::NONE)
            .unwrap();
        client.set_entry(child, 0x10_0000).unwrap();
        client.seal(child, SealPolicy::strict()).unwrap();
        client.enter(tcap).unwrap();
        assert_eq!(client.whoami(), child);
        client.ret().unwrap();
        assert_eq!(client.whoami(), os);
    }
}
