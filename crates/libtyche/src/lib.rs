//! libtyche: higher-level isolation abstractions over the monitor API.
//!
//! §4.2 of the paper: "With Tyche, higher-level abstractions, including
//! but not limited to sandboxes, enclaves, and confidential VMs, are
//! implemented on top of the monitor's isolation API by libraries running
//! within the trust domains." This crate is that library:
//!
//! - [`client`]: a typed wrapper over the raw VMCALL ABI for the domain
//!   currently running on a core;
//! - [`loader`]: loads an ELF binary + manifest as a new trust domain —
//!   splitting, granting, sharing, and measuring segments per policy;
//! - [`sandbox`]: fault-contained compartments for untrusted libraries
//!   (user) and drivers (kernel);
//! - [`enclave`]: attestable enclaves with the paper's three improvements
//!   over SGX — explicit sharing, address reuse, and nesting with
//!   enclave-to-enclave channels;
//! - [`cvm`]: confidential virtual machines (whole-OS domains on several
//!   cores, invisible to the hypervisor-role domain).
//!
//! Every abstraction here uses *only* the public monitor call interface —
//! nothing reaches into engine internals — demonstrating the paper's
//! claim that one narrow API supports all of them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod cvm;
pub mod enclave;
pub mod loader;
pub mod rdma;
pub mod sandbox;

pub use client::TycheClient;
pub use cvm::ConfidentialVm;
pub use enclave::{Channel, Enclave};
pub use loader::{LoadError, LoadedDomain, Loader};
pub use rdma::{RdmaConnection, RdmaNic, Wire};
pub use sandbox::Sandbox;
