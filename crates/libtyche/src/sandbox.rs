//! Sandboxes: fault-contained compartments for untrusted code (§4.2
//! "user and kernel compartments").
//!
//! A sandbox is a trust domain holding exactly the pages the creator
//! decided to expose: its own scratch memory (granted) plus optional
//! shared windows. Untrusted code running in the sandbox — modeled as a
//! closure driving sandbox-context memory accesses — can scribble freely
//! inside, but every access outside its capabilities faults into the
//! monitor instead of corrupting the creator. This is the paper's answer
//! to "isolate libraries coming from untrusted third parties" without
//! process overheads.

use crate::client::TycheClient;
use tyche_core::prelude::*;
use tyche_monitor::{Fault, Monitor, Status};

/// A sandbox compartment.
pub struct Sandbox {
    /// The sandbox's domain.
    pub domain: DomainId,
    /// Transition capability into the sandbox.
    pub transition: CapId,
    /// The sandbox's private scratch region.
    pub scratch: (u64, u64),
    /// Shared window with the creator, if configured.
    pub window: Option<(u64, u64)>,
}

/// What sandboxed code may do: access memory through its domain's
/// capabilities. Out-of-capability access returns a [`Fault`] — the
/// sandboxed code cannot suppress it, and the host observes it.
pub struct SandboxCtx<'m> {
    client: TycheClient<'m>,
}

impl SandboxCtx<'_> {
    /// Reads sandbox-visible memory.
    pub fn read(&mut self, addr: u64, out: &mut [u8]) -> Result<(), Fault> {
        self.client.read(addr, out)
    }

    /// Writes sandbox-visible memory.
    pub fn write(&mut self, addr: u64, data: &[u8]) -> Result<(), Fault> {
        self.client.write(addr, data)
    }
}

/// Outcome of one sandbox invocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SandboxOutcome {
    /// The sandboxed code finished.
    Completed,
    /// The sandboxed code faulted (wild access) and was stopped; the
    /// creator is unharmed.
    Faulted(Fault),
}

impl Sandbox {
    /// Creates a sandbox with a private scratch region `[start, end)`
    /// carved from the creator's memory, an optional shared `window`, and
    /// core `core`.
    ///
    /// The scratch region is granted RW with zero-on-revoke; the window is
    /// shared RW with no clean-up (it belongs to the creator).
    pub fn create(
        monitor: &mut Monitor,
        core: usize,
        scratch: (u64, u64),
        window: Option<(u64, u64)>,
    ) -> Result<Sandbox, Status> {
        let mut client = TycheClient::new(monitor, core);
        let (domain, transition) = client.create_domain()?;
        let scratch_cap = client.carve(scratch.0, scratch.1)?;
        client.grant(scratch_cap, domain, Rights::RWX, RevocationPolicy::ZERO)?;
        if let Some((ws, we)) = window {
            let wcap = client.carve(ws, we)?;
            client.share(wcap, domain, None, Rights::RW, RevocationPolicy::NONE)?;
        }
        let core_cap = {
            let me = client.whoami();
            client
                .monitor
                .engine
                .caps_of(me)
                .iter()
                .find(|k| k.active && matches!(k.resource, Resource::CpuCore(n) if n == core))
                .map(|k| k.id)
        }
        .ok_or(Status::NotFound)?;
        client.share(core_cap, domain, None, Rights::USE, RevocationPolicy::NONE)?;
        client.set_entry(domain, scratch.0)?;
        client.seal(domain, SealPolicy::strict())?;
        Ok(Sandbox {
            domain,
            transition,
            scratch,
            window,
        })
    }

    /// Runs untrusted `code` inside the sandbox on `core`.
    ///
    /// The code gets a [`SandboxCtx`]; any fault it takes aborts the
    /// invocation (the monitor returns control to the creator) and is
    /// reported as [`SandboxOutcome::Faulted`].
    pub fn run<F>(
        &self,
        monitor: &mut Monitor,
        core: usize,
        code: F,
    ) -> Result<SandboxOutcome, Status>
    where
        F: FnOnce(&mut SandboxCtx<'_>) -> Result<(), Fault>,
    {
        let mut client = TycheClient::new(monitor, core);
        client.enter(self.transition)?;
        let mut ctx = SandboxCtx {
            client: TycheClient::new(monitor, core),
        };
        let result = code(&mut ctx);
        let mut client = TycheClient::new(monitor, core);
        client.ret()?;
        Ok(match result {
            Ok(()) => SandboxOutcome::Completed,
            Err(f) => SandboxOutcome::Faulted(f),
        })
    }

    /// Tears the sandbox down: cascading revocation returns (zeroed)
    /// scratch memory to the creator.
    pub fn destroy(self, monitor: &mut Monitor, core: usize) -> Result<(), Status> {
        let mut client = TycheClient::new(monitor, core);
        client.kill(self.domain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyche_monitor::{boot_x86, BootConfig};

    const SCRATCH: (u64, u64) = (0x20_0000, 0x20_4000);
    const WINDOW: (u64, u64) = (0x30_0000, 0x30_1000);

    #[test]
    fn wellbehaved_code_completes() {
        let mut m = boot_x86(BootConfig::default());
        let sb = Sandbox::create(&mut m, 0, SCRATCH, Some(WINDOW)).unwrap();
        let out = sb
            .run(&mut m, 0, |ctx| {
                ctx.write(SCRATCH.0 + 0x100, b"local state")?;
                ctx.write(WINDOW.0, b"result=42")?;
                Ok(())
            })
            .unwrap();
        assert_eq!(out, SandboxOutcome::Completed);
        // The creator reads the result through the shared window.
        let mut buf = [0u8; 9];
        m.dom_read(0, WINDOW.0, &mut buf).unwrap();
        assert_eq!(&buf, b"result=42");
        // But the sandbox's scratch is invisible to the creator.
        assert!(m.dom_read(0, SCRATCH.0, &mut [0u8; 1]).is_err());
    }

    #[test]
    fn wild_write_faults_and_host_survives() {
        let mut m = boot_x86(BootConfig::default());
        m.dom_write(0, 0x40_0000, b"host data").unwrap();
        let sb = Sandbox::create(&mut m, 0, SCRATCH, None).unwrap();
        let out = sb
            .run(&mut m, 0, |ctx| {
                // The untrusted library scribbles over the host heap...
                ctx.write(0x40_0000, b"pwned!!!!")?;
                Ok(())
            })
            .unwrap();
        assert!(matches!(out, SandboxOutcome::Faulted(f) if f.addr == 0x40_0000 && f.write));
        // Host data intact.
        let mut buf = [0u8; 9];
        m.dom_read(0, 0x40_0000, &mut buf).unwrap();
        assert_eq!(&buf, b"host data");
    }

    #[test]
    fn sandbox_cannot_read_host_secrets() {
        let mut m = boot_x86(BootConfig::default());
        m.dom_write(0, 0x40_0000, b"secret").unwrap();
        let sb = Sandbox::create(&mut m, 0, SCRATCH, None).unwrap();
        let out = sb
            .run(&mut m, 0, |ctx| {
                let mut steal = [0u8; 6];
                ctx.read(0x40_0000, &mut steal)?;
                Ok(())
            })
            .unwrap();
        assert!(matches!(out, SandboxOutcome::Faulted(_)));
    }

    #[test]
    fn destroy_zeroes_scratch() {
        let mut m = boot_x86(BootConfig::default());
        let sb = Sandbox::create(&mut m, 0, SCRATCH, None).unwrap();
        sb.run(&mut m, 0, |ctx| ctx.write(SCRATCH.0, b"residual secret"))
            .unwrap();
        sb.destroy(&mut m, 0).unwrap();
        // The creator regains the pages, zeroed.
        let mut buf = [0u8; 15];
        m.dom_read(0, SCRATCH.0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 15]);
    }

    #[test]
    fn two_sandboxes_are_mutually_isolated() {
        let mut m = boot_x86(BootConfig::default());
        let a = Sandbox::create(&mut m, 0, (0x20_0000, 0x20_2000), None).unwrap();
        let b = Sandbox::create(&mut m, 0, (0x21_0000, 0x21_2000), None).unwrap();
        a.run(&mut m, 0, |ctx| ctx.write(0x20_0000, b"A")).unwrap();
        let out = b
            .run(&mut m, 0, |ctx| {
                let mut peek = [0u8; 1];
                ctx.read(0x20_0000, &mut peek)?;
                Ok(())
            })
            .unwrap();
        assert!(matches!(out, SandboxOutcome::Faulted(_)));
    }
}
