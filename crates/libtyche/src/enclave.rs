//! Tyche enclaves (§4.2), with the three improvements over SGX the paper
//! claims:
//!
//! 1. **Explicit sharing**: nothing outside the enclave is reachable
//!    unless a region was explicitly shared — no implicit window onto the
//!    untrusted address space to leak through.
//! 2. **Address reuse**: enclaves are physical-name domains, so any
//!    number of enclaves can exist at arbitrary layouts; there is no
//!    ELRANGE-style exclusive virtual range per process.
//! 3. **Nesting and enclave-to-enclave channels**: a (nestable) enclave
//!    can map libtyche, spawn nested enclaves, and share its exclusively
//!    owned pages with them as secured channels.

use crate::client::TycheClient;
use crate::loader::{LoadError, LoadedDomain, Loader};
use tyche_core::prelude::*;
use tyche_crypto::Digest;
use tyche_elf::image::ElfImage;
use tyche_elf::manifest::Manifest;
use tyche_monitor::attest::SignedReport;
use tyche_monitor::{Monitor, Status};

/// A loaded enclave.
pub struct Enclave {
    /// The underlying loaded domain.
    pub loaded: LoadedDomain,
}

/// A secured communication channel: a page exclusively shared between two
/// enclaves (reference count exactly 2).
#[derive(Clone, Copy, Debug)]
pub struct Channel {
    /// Channel region start.
    pub start: u64,
    /// Channel region end.
    pub end: u64,
    /// The capability held by the *receiving* enclave.
    pub receiver_cap: CapId,
}

impl Enclave {
    /// Loads `image` as an enclave. `nestable` selects the seal policy:
    /// strict enclaves can never share onward (their reference counts are
    /// frozen); nestable ones can spawn children.
    pub fn load(
        monitor: &mut Monitor,
        core: usize,
        image: ElfImage,
        manifest: Manifest,
        nestable: bool,
    ) -> Result<Enclave, LoadError> {
        let seal = if nestable {
            SealPolicy::nestable()
        } else {
            SealPolicy::strict()
        };
        let loader = Loader::new(image, manifest, seal);
        Ok(Enclave {
            loaded: loader.load(monitor, core)?,
        })
    }

    /// The enclave's domain id.
    pub fn domain(&self) -> DomainId {
        self.loaded.domain
    }

    /// The enclave's measurement.
    pub fn measurement(&self) -> Digest {
        self.loaded.measurement
    }

    /// Enters the enclave on `core` (mediated path).
    pub fn enter(&self, monitor: &mut Monitor, core: usize) -> Result<(), Status> {
        TycheClient::new(monitor, core)
            .enter(self.loaded.transition)
            .map(|_| ())
    }

    /// Returns from the enclave.
    pub fn exit(monitor: &mut Monitor, core: usize) -> Result<(), Status> {
        TycheClient::new(monitor, core).ret().map(|_| ())
    }

    /// Requests a signed attestation report for this enclave.
    pub fn attest(
        &self,
        monitor: &mut Monitor,
        core: usize,
        nonce: u64,
    ) -> Result<SignedReport, Status> {
        TycheClient::new(monitor, core).attest(self.loaded.domain, nonce)
    }

    /// Loads `image` as an enclave *with channels*: each `(start, end)`
    /// region of the creator's memory is shared into the new enclave
    /// before it seals. Because sealing freezes incoming resources
    /// (§3.1), channels can only be established here, at construction —
    /// which is exactly what makes them attestable: the channel is part
    /// of the enclave's measured configuration, and its reference count
    /// (creator + enclave = 2) appears in every report.
    ///
    /// When a nestable enclave calls this, the "creator" is the enclave
    /// itself, so the shared pages are its own exclusively-owned pages —
    /// the paper's "share exclusively owned pages with them to create
    /// secured communication channels" (§4.2).
    pub fn load_with_channels(
        monitor: &mut Monitor,
        core: usize,
        image: ElfImage,
        manifest: Manifest,
        nestable: bool,
        channels: &[(u64, u64)],
    ) -> Result<(Enclave, Vec<Channel>), LoadError> {
        let seal = if nestable {
            SealPolicy::nestable()
        } else {
            SealPolicy::strict()
        };
        let loader = Loader::new(image, manifest, seal);
        let mut out = Vec::new();
        let loaded = loader.load_with(monitor, core, |client, domain| {
            for &(start, end) in channels {
                let cap = client.carve(start, end)?;
                let receiver_cap =
                    client.share(cap, domain, None, Rights::RW, RevocationPolicy::NONE)?;
                out.push(Channel {
                    start,
                    end,
                    receiver_cap,
                });
            }
            Ok(())
        })?;
        Ok((Enclave { loaded }, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyche_elf::image::{ElfMachine, Segment, SegmentFlags};
    use tyche_monitor::{boot_x86, BootConfig};

    fn enclave_image(base: u64) -> ElfImage {
        ElfImage::new(base, ElfMachine::X86_64)
            .with_segment(Segment::new(base, SegmentFlags::RX, b"entry".to_vec()))
            .with_segment(Segment {
                vaddr: base + 0x1000,
                memsz: 0x3000,
                flags: SegmentFlags::RW,
                data: b"heap".to_vec(),
            })
    }

    #[test]
    fn explicit_sharing_only() {
        // Claim 1: an enclave reaches exactly what was shared/granted —
        // nothing of the creator's space is implicitly visible.
        let mut m = boot_x86(BootConfig::default());
        m.dom_write(0, 0x50_0000, b"host secret").unwrap();
        let e = Enclave::load(
            &mut m,
            0,
            enclave_image(0x10_0000),
            Manifest::enclave_default(2),
            false,
        )
        .unwrap();
        e.enter(&mut m, 0).unwrap();
        // Own pages: visible.
        let mut own = [0u8; 5];
        m.dom_read(0, 0x10_0000, &mut own).unwrap();
        assert_eq!(&own, b"entry");
        // Creator memory: invisible (unlike SGX, where the enclave sees
        // the host address space).
        assert!(m.dom_read(0, 0x50_0000, &mut [0u8; 1]).is_err());
        Enclave::exit(&mut m, 0).unwrap();
    }

    #[test]
    fn arbitrary_layout_and_number() {
        // Claim 2: many enclaves, arbitrary (even identical-looking)
        // layouts — no ELRANGE scarcity. Load 8 enclaves whose images are
        // byte-identical except for their physical placement.
        let mut m = boot_x86(BootConfig::default());
        let mut enclaves = Vec::new();
        for i in 0..8u64 {
            let base = 0x10_0000 + i * 0x10_0000;
            let e = Enclave::load(
                &mut m,
                0,
                enclave_image(base),
                Manifest::enclave_default(2),
                false,
            )
            .unwrap();
            enclaves.push(e);
        }
        // All coexist, all enterable, all mutually exclusive memory.
        for (i, e) in enclaves.iter().enumerate() {
            let base = 0x10_0000 + (i as u64) * 0x10_0000;
            assert!(m
                .engine
                .refcount_mem_full(MemRegion::new(base, base + 0x1000))
                .is_exclusive());
            e.enter(&mut m, 0).unwrap();
            Enclave::exit(&mut m, 0).unwrap();
        }
    }

    #[test]
    fn nested_enclave_with_channel() {
        // Claim 3: a nestable enclave spawns a nested enclave and shares
        // an exclusively-owned page as a secured channel.
        let mut m = boot_x86(BootConfig::default());
        let outer_img = ElfImage::new(0x10_0000, ElfMachine::X86_64).with_segment(Segment {
            vaddr: 0x10_0000,
            memsz: 0x8_0000,
            flags: SegmentFlags::RW,
            data: b"outer".to_vec(),
        });
        let outer =
            Enclave::load(&mut m, 0, outer_img, Manifest::enclave_default(1), true).unwrap();
        outer.enter(&mut m, 0).unwrap();

        // Running as the outer enclave: spawn the nested enclave from our
        // own memory, with a channel on one of our exclusively-owned pages.
        let inner_img = ElfImage::new(0x14_0000, ElfMachine::X86_64).with_segment(Segment::new(
            0x14_0000,
            SegmentFlags::RW,
            b"inner".to_vec(),
        ));
        let (inner, chans) = Enclave::load_with_channels(
            &mut m,
            0,
            inner_img,
            Manifest::enclave_default(1),
            false,
            &[(0x16_0000, 0x16_1000)],
        )
        .unwrap();
        let chan = chans[0];
        let _ = inner.domain();
        // The channel page is reachable by exactly the two enclaves.
        assert_eq!(
            m.engine.refcount_mem(MemRegion::new(chan.start, chan.end)),
            2
        );
        // The host OS cannot see it.
        Enclave::exit(&mut m, 0).unwrap();
        assert!(m.dom_read(0, chan.start, &mut [0u8; 1]).is_err());

        // The OS cannot enter the nested enclave either: the transition
        // capability belongs to the outer enclave alone.
        assert!(inner.enter(&mut m, 0).is_err());

        // Messages flow: outer writes, then calls into inner, which reads.
        outer.enter(&mut m, 0).unwrap();
        m.dom_write(0, chan.start, b"ping").unwrap();
        inner.enter(&mut m, 0).unwrap();
        let mut msg = [0u8; 4];
        m.dom_read(0, chan.start, &mut msg).unwrap();
        assert_eq!(&msg, b"ping");
        Enclave::exit(&mut m, 0).unwrap(); // back to outer
        Enclave::exit(&mut m, 0).unwrap(); // back to the OS
    }

    #[test]
    fn strict_enclave_cannot_nest() {
        // A strictly sealed enclave cannot spawn nested enclaves at all:
        // domain creation is refused once sealed without
        // `allow_child_domains`.
        let mut m = boot_x86(BootConfig::default());
        let e = Enclave::load(
            &mut m,
            0,
            enclave_image(0x10_0000),
            Manifest::enclave_default(2),
            false,
        )
        .unwrap();
        e.enter(&mut m, 0).unwrap();
        let err = TycheClient::new(&mut m, 0).create_domain().unwrap_err();
        assert_eq!(err, Status::Denied, "strict seal forbids children");
        Enclave::exit(&mut m, 0).unwrap();
    }

    #[test]
    fn channel_is_part_of_attested_config() {
        // A channel shows up as a refcount-2 window in the enclave's
        // report — the verifier sees exactly who can reach what.
        let mut m = boot_x86(BootConfig::default());
        let (e, chans) = Enclave::load_with_channels(
            &mut m,
            0,
            enclave_image(0x10_0000),
            Manifest::enclave_default(2),
            false,
            &[(0x30_0000, 0x30_1000)],
        )
        .unwrap();
        let report = e.attest(&mut m, 0, 1).unwrap();
        assert!(
            !report.report.check_sharing(&[]),
            "channel breaks full exclusivity"
        );
        assert!(
            report.report.check_sharing(&[(0x30_0000, 0x30_1000, 2)]),
            "...but matches the declared channel exactly"
        );
        assert_eq!(chans.len(), 1);
    }

    #[test]
    fn attestation_after_load_matches() {
        let mut m = boot_x86(BootConfig::default());
        let e = Enclave::load(
            &mut m,
            0,
            enclave_image(0x10_0000),
            Manifest::enclave_default(2),
            false,
        )
        .unwrap();
        let report = e.attest(&mut m, 0, 42).unwrap();
        assert_eq!(report.report.measurement, e.measurement());
        assert!(
            report.report.check_sharing(&[]),
            "strict enclave fully exclusive"
        );
    }
}
