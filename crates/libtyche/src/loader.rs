//! The domain loader: ELF + manifest → sealed trust domain (§4.2).
//!
//! The loader runs *inside* the creating domain and uses only monitor
//! calls: it carves the image's physical footprint out of the caller's
//! memory, copies segment bytes, has the monitor measure the segments the
//! manifest marks `measured`, grants confidential segments, shares shared
//! ones, hands over a CPU core, sets the entry point, and seals.

use crate::client::TycheClient;
use tyche_core::prelude::*;
use tyche_crypto::Digest;
use tyche_elf::image::ElfImage;
use tyche_elf::manifest::{Manifest, Visibility};
use tyche_monitor::{Monitor, Status};

/// Why a load failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LoadError {
    /// The manifest does not fit the image.
    BadManifest(String),
    /// A segment is not page-representable (overlapping pages with
    /// conflicting policies, or zero-sized).
    BadLayout(String),
    /// A monitor call failed.
    Monitor(Status),
    /// The caller does not own the physical range the image loads at.
    NotOwned(u64),
    /// A memory write faulted.
    Fault(u64),
}

impl From<Status> for LoadError {
    fn from(s: Status) -> Self {
        LoadError::Monitor(s)
    }
}

impl core::fmt::Display for LoadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LoadError::BadManifest(s) => write!(f, "bad manifest: {s}"),
            LoadError::BadLayout(s) => write!(f, "bad layout: {s}"),
            LoadError::Monitor(s) => write!(f, "monitor refused: {s:?}"),
            LoadError::NotOwned(a) => write!(f, "caller does not own {a:#x}"),
            LoadError::Fault(a) => write!(f, "fault writing image at {a:#x}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// A successfully loaded, sealed domain.
#[derive(Clone, Debug)]
pub struct LoadedDomain {
    /// The new domain.
    pub domain: DomainId,
    /// Transition capability into it, owned by the loader's domain.
    pub transition: CapId,
    /// Seal-time measurement (compare with
    /// [`tyche_elf::offline_measurement`]-style expectations via the
    /// attestation report).
    pub measurement: Digest,
    /// Shared windows: `(segment index, start, end)` regions both domains
    /// can touch.
    pub shared: Vec<(usize, u64, u64)>,
}

/// The loader configuration.
pub struct Loader {
    /// The image to load.
    pub image: ElfImage,
    /// Per-segment policy.
    pub manifest: Manifest,
    /// Seal policy for the new domain.
    pub seal: SealPolicy,
    /// CPU cores to share with the domain.
    pub cores: Vec<usize>,
    /// Revocation policy attached to granted segments.
    pub revocation: RevocationPolicy,
}

impl Loader {
    /// Creates a loader with [`RevocationPolicy::ZERO`] grants and core 0.
    pub fn new(image: ElfImage, manifest: Manifest, seal: SealPolicy) -> Self {
        Loader {
            image,
            manifest,
            seal,
            cores: vec![0],
            revocation: RevocationPolicy::ZERO,
        }
    }

    /// Page-aligns a segment's footprint.
    fn page_span(start: u64, end: u64) -> (u64, u64) {
        (start & !0xfff, (end + 0xfff) & !0xfff)
    }

    /// Loads the image as a new sealed domain, driven by the domain
    /// currently running on `core`.
    pub fn load(&self, monitor: &mut Monitor, core: usize) -> Result<LoadedDomain, LoadError> {
        self.load_with(monitor, core, |_, _| Ok(()))
    }

    /// Like [`Loader::load`], but runs `pre_seal` after segments are
    /// placed and before the domain is sealed. This is the hook for
    /// establishing extra shared regions — e.g. enclave-to-enclave
    /// channels — which must exist *before* sealing because sealing
    /// freezes a domain's incoming resources (§3.1).
    pub fn load_with<F>(
        &self,
        monitor: &mut Monitor,
        core: usize,
        pre_seal: F,
    ) -> Result<LoadedDomain, LoadError>
    where
        F: FnOnce(&mut TycheClient<'_>, DomainId) -> Result<(), Status>,
    {
        self.manifest
            .validate(self.image.segments.len())
            .map_err(LoadError::BadManifest)?;
        // Validate page-disjointness of differently-policied segments.
        let mut spans: Vec<(usize, u64, u64)> = Vec::new();
        for (idx, seg) in self.image.segments.iter().enumerate() {
            if seg.memsz == 0 {
                return Err(LoadError::BadLayout(format!("segment {idx} is empty")));
            }
            let (s, e) = Self::page_span(seg.vaddr, seg.end());
            for (j, js, je) in &spans {
                if s < *je && *js < e {
                    return Err(LoadError::BadLayout(format!(
                        "segments {j} and {idx} share a page"
                    )));
                }
            }
            spans.push((idx, s, e));
        }

        let mut client = TycheClient::new(monitor, core);
        let (domain, transition) = client.create_domain()?;

        let mut shared = Vec::new();
        for (idx, seg) in self.image.segments.iter().enumerate() {
            let policy = self.manifest.policy(idx).expect("validated");
            let (start, end) = Self::page_span(seg.vaddr, seg.end());
            // Copy the bytes in while the caller still owns the pages.
            let mut bytes = seg.data.clone();
            bytes.resize(seg.memsz as usize, 0);
            client
                .write(seg.vaddr, &bytes)
                .map_err(|f| LoadError::Fault(f.addr))?;
            if policy.measured {
                client.record_content(domain, start, end)?;
            }
            let rights = elf_rights(seg.flags);
            let cap = client.carve(start, end).map_err(LoadError::Monitor)?;
            match policy.visibility {
                Visibility::Confidential => {
                    client.grant(cap, domain, rights, self.revocation)?;
                }
                Visibility::Shared => {
                    client.share(cap, domain, None, rights, RevocationPolicy::NONE)?;
                    shared.push((idx, start, end));
                }
            }
        }
        // CPU cores.
        for &c in &self.cores {
            let core_cap = {
                let me = client.whoami();
                client
                    .monitor
                    .engine
                    .caps_of(me)
                    .iter()
                    .find(|k| k.active && matches!(k.resource, Resource::CpuCore(n) if n == c))
                    .map(|k| k.id)
            }
            .ok_or(LoadError::Monitor(Status::NotFound))?;
            client.share(core_cap, domain, None, Rights::USE, RevocationPolicy::NONE)?;
        }
        pre_seal(&mut client, domain).map_err(LoadError::Monitor)?;
        client.set_entry(domain, self.image.entry)?;
        let measurement = client.seal(domain, self.seal)?;
        Ok(LoadedDomain {
            domain,
            transition,
            measurement,
            shared,
        })
    }
}

/// Maps ELF segment flags to capability rights.
fn elf_rights(flags: tyche_elf::image::SegmentFlags) -> Rights {
    let mut r = 0u8;
    if flags.readable() {
        r |= Rights::R;
    }
    if flags.writable() {
        r |= Rights::W;
    }
    if flags.executable() {
        r |= Rights::X;
    }
    Rights(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyche_elf::image::{ElfMachine, Segment, SegmentFlags};
    use tyche_monitor::{boot_x86, BootConfig};

    fn image() -> ElfImage {
        ElfImage::new(0x10_0000, ElfMachine::X86_64)
            .with_segment(Segment::new(
                0x10_0000,
                SegmentFlags::RX,
                b"\x90\x90\xc3".to_vec(),
            ))
            .with_segment(Segment::new(0x10_1000, SegmentFlags::RW, b"data".to_vec()))
            .with_segment(Segment::new(
                0x10_2000,
                SegmentFlags::RW,
                b"mailbox".to_vec(),
            ))
    }

    #[test]
    fn load_enclave_end_to_end() {
        let mut m = boot_x86(BootConfig::default());
        let manifest = Manifest::enclave_default(3).share_segment(2);
        let loader = Loader::new(image(), manifest, SealPolicy::strict());
        let loaded = loader.load(&mut m, 0).unwrap();

        // Confidential segments belong exclusively to the enclave.
        assert!(m
            .engine
            .refcount_mem_full(MemRegion::new(0x10_0000, 0x10_2000))
            .is_exclusive());
        // The shared mailbox has refcount 2.
        assert_eq!(
            m.engine.refcount_mem(MemRegion::new(0x10_2000, 0x10_3000)),
            2
        );
        assert_eq!(loaded.shared, vec![(2, 0x10_2000, 0x10_3000)]);

        // The OS cannot read enclave code, but can read the mailbox.
        assert!(m.dom_read(0, 0x10_0000, &mut [0u8; 1]).is_err());
        let mut mb = [0u8; 7];
        m.dom_read(0, 0x10_2000, &mut mb).unwrap();
        assert_eq!(&mb, b"mailbox");

        // Entering the enclave: it sees its code and data.
        let mut client = TycheClient::new(&mut m, 0);
        client.enter(loaded.transition).unwrap();
        let mut code = [0u8; 3];
        client.read(0x10_0000, &mut code).unwrap();
        assert_eq!(&code, b"\x90\x90\xc3");
        client.ret().unwrap();
    }

    #[test]
    fn measurement_reflects_content_and_manifest() {
        let mut m1 = boot_x86(BootConfig::default());
        let mut m2 = boot_x86(BootConfig::default());
        let manifest = Manifest::enclave_default(3).share_segment(2);
        let l1 = Loader::new(image(), manifest.clone(), SealPolicy::strict())
            .load(&mut m1, 0)
            .unwrap();
        let l2 = Loader::new(image(), manifest, SealPolicy::strict())
            .load(&mut m2, 0)
            .unwrap();
        assert_eq!(
            l1.measurement, l2.measurement,
            "same image, same measurement"
        );

        let mut m3 = boot_x86(BootConfig::default());
        let mut evil = image();
        evil.segments[0].data[0] = 0xcc; // patched code
        let manifest = Manifest::enclave_default(3).share_segment(2);
        let l3 = Loader::new(evil, manifest, SealPolicy::strict())
            .load(&mut m3, 0)
            .unwrap();
        assert_ne!(
            l1.measurement, l3.measurement,
            "patched code changes measurement"
        );
    }

    #[test]
    fn unmeasured_shared_data_does_not_change_measurement() {
        let manifest = Manifest::enclave_default(3).share_segment(2);
        let mut m1 = boot_x86(BootConfig::default());
        let l1 = Loader::new(image(), manifest.clone(), SealPolicy::strict())
            .load(&mut m1, 0)
            .unwrap();
        let mut img2 = image();
        img2.segments[2].data = b"MAILBX2".to_vec();
        let mut m2 = boot_x86(BootConfig::default());
        let l2 = Loader::new(img2, manifest, SealPolicy::strict())
            .load(&mut m2, 0)
            .unwrap();
        assert_eq!(l1.measurement, l2.measurement);
    }

    #[test]
    fn overlapping_policy_pages_rejected() {
        let img = ElfImage::new(0x10_0000, ElfMachine::X86_64)
            .with_segment(Segment::new(0x10_0000, SegmentFlags::RX, vec![0x90]))
            .with_segment(Segment::new(0x10_0800, SegmentFlags::RW, vec![1]));
        let manifest = Manifest::enclave_default(2);
        let mut m = boot_x86(BootConfig::default());
        let err = Loader::new(img, manifest, SealPolicy::strict())
            .load(&mut m, 0)
            .unwrap_err();
        assert!(matches!(err, LoadError::BadLayout(_)));
    }

    #[test]
    fn load_outside_owned_memory_fails() {
        // Image placed in the monitor-reserved region: the caller owns no
        // capability there, so the write faults.
        let mut m = boot_x86(BootConfig::default());
        let base = m.machine.domain_ram.end.as_u64() + 0x10_0000;
        let img = ElfImage::new(base, ElfMachine::X86_64).with_segment(Segment::new(
            base,
            SegmentFlags::RX,
            vec![0x90],
        ));
        let err = Loader::new(img, Manifest::enclave_default(1), SealPolicy::strict())
            .load(&mut m, 0)
            .unwrap_err();
        assert!(matches!(err, LoadError::Fault(_)));
    }

    #[test]
    fn nested_load_from_inside_a_domain() {
        // A nestable enclave loads a further enclave from its own memory —
        // the §4.2 nesting story through the loader path.
        let mut m = boot_x86(BootConfig::default());
        // Outer enclave with a generous footprint [0x10_0000, 0x14_0000).
        let outer_img = ElfImage::new(0x10_0000, ElfMachine::X86_64).with_segment(Segment {
            vaddr: 0x10_0000,
            memsz: 0x4_0000,
            flags: SegmentFlags::RW,
            data: b"outer".to_vec(),
        });
        let outer = Loader::new(
            outer_img,
            Manifest::enclave_default(1),
            SealPolicy::nestable(),
        )
        .load(&mut m, 0)
        .unwrap();
        let mut client = TycheClient::new(&mut m, 0);
        client.enter(outer.transition).unwrap();
        // Inside the outer enclave: load an inner enclave into own memory.
        // The inner segment's rights must attenuate from the outer grant
        // (RW), so it is RO data here.
        let inner_img = ElfImage::new(0x12_0000, ElfMachine::X86_64).with_segment(Segment::new(
            0x12_0000,
            SegmentFlags::RO,
            b"inner".to_vec(),
        ));
        let inner = Loader::new(
            inner_img,
            Manifest::enclave_default(1),
            SealPolicy::strict(),
        )
        .load(client.monitor, 0)
        .unwrap();
        // The inner enclave's page is exclusive — not even the outer
        // enclave can read it now.
        assert!(m
            .engine
            .refcount_mem_full(MemRegion::new(0x12_0000, 0x12_1000))
            .is_exclusive());
        let mut c2 = TycheClient::new(&mut m, 0);
        assert!(c2.read(0x12_0000, &mut [0u8; 1]).is_err());
        let _ = inner;
    }
}
