//! RDMA between TEEs on separate machines (§4.2: "providing RDMA support
//! for Tyche-based TEEs running on separate machines").
//!
//! The model: each machine has an RDMA NIC with a *memory region* (MR)
//! table. A TEE registers an MR through its monitor, which validates —
//! against the capability engine — that the TEE exclusively owns the
//! region (reference count 1): registered windows are part of the
//! attested, controlled-sharing story, not a side door.
//!
//! Two TEEs connect by exchanging attestations: each side's verifier
//! checks the other machine's quote + domain report, and the connection
//! key is derived from both report digests and both nonces. Every frame
//! on the (untrusted) wire is encrypted under that key — the test suite
//! literally greps the wire capture for plaintext.
//!
//! One-sided `rdma_write` then moves bytes from the local TEE's memory
//! (read through its own hardware-enforced view) into the remote MR
//! (bounds- and ownership-checked by the remote NIC at delivery time).

use crate::client::TycheClient;
use tyche_core::prelude::*;
use tyche_crypto::{hkdf, ChaChaRng};
use tyche_monitor::attest::{SignedReport, Verifier, VerifyError};
use tyche_monitor::Monitor;

/// A remote-access key naming a registered memory region.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RKey(pub u64);

/// A registered memory region.
#[derive(Clone, Copy, Debug)]
struct MemoryRegion {
    owner: DomainId,
    start: u64,
    end: u64,
    remote_writable: bool,
}

/// Why an RDMA operation failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RdmaError {
    /// The registering domain does not exclusively own the region.
    NotExclusive,
    /// Unknown rkey.
    NoSuchRegion,
    /// Access outside the registered region.
    OutOfBounds,
    /// The region does not permit remote writes.
    ReadOnlyRegion,
    /// The region's exclusivity was lost since registration (the owner
    /// shared it); the NIC refuses delivery rather than widen the leak.
    ExclusivityLost,
    /// A local memory fault (the sender's own view refused the read).
    LocalFault(u64),
    /// Peer attestation failed.
    Attestation(VerifyError),
    /// Frame authentication failed at the receiver (wire tampering).
    BadFrame,
}

/// The per-machine RDMA NIC: MR table + wire statistics.
#[derive(Default)]
pub struct RdmaNic {
    regions: std::collections::HashMap<RKey, MemoryRegion>,
    next_rkey: u64,
}

impl RdmaNic {
    /// Creates an empty NIC.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `[start, end)` of the domain currently running on
    /// `core` for remote access. The monitor validates exclusive
    /// ownership (refcount 1) — the §3.4 condition for a secured path.
    pub fn register_mr(
        &mut self,
        monitor: &mut Monitor,
        core: usize,
        start: u64,
        end: u64,
        remote_writable: bool,
    ) -> Result<RKey, RdmaError> {
        let owner = monitor.current_domain(core);
        let rc = monitor.engine.refcount_mem_full(MemRegion::new(start, end));
        if !rc.is_exclusive() {
            return Err(RdmaError::NotExclusive);
        }
        let covered = monitor.engine.caps_of(owner).iter().any(|c| {
            c.active
                && c.resource
                    .as_mem()
                    .map(|r| r.contains(&MemRegion::new(start, end)))
                    .unwrap_or(false)
        });
        if !covered {
            return Err(RdmaError::NotExclusive);
        }
        self.next_rkey += 1;
        let rkey = RKey(self.next_rkey);
        self.regions.insert(
            rkey,
            MemoryRegion {
                owner,
                start,
                end,
                remote_writable,
            },
        );
        Ok(rkey)
    }

    /// Revokes a registration.
    pub fn deregister(&mut self, rkey: RKey) {
        self.regions.remove(&rkey);
    }
}

/// The untrusted wire between two machines: captures every frame, so
/// tests can assert nothing readable crosses it.
#[derive(Default)]
pub struct Wire {
    /// Every transmitted frame, as seen by a network eavesdropper.
    pub frames: Vec<Vec<u8>>,
}

impl Wire {
    /// Creates an empty wire.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when any captured frame contains `needle` in the clear.
    pub fn leaks(&self, needle: &[u8]) -> bool {
        self.frames
            .iter()
            .any(|f| f.windows(needle.len()).any(|w| w == needle))
    }
}

/// An established, mutually attested connection between two TEEs.
pub struct RdmaConnection {
    // (key material; Debug deliberately omits it)
    key: [u8; 32],
    seq: u64,
}

impl core::fmt::Debug for RdmaConnection {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "RdmaConnection(seq={})", self.seq)
    }
}

impl RdmaConnection {
    /// Establishes a connection: each side verifies the other's machine
    /// quote and domain report with its own verifier, then both derive
    /// the same channel key from the two report digests and nonces.
    #[allow(clippy::too_many_arguments)]
    pub fn establish(
        local_verifier: &Verifier,
        remote_quote: &tyche_hw::tpm::Quote,
        remote_quote_nonce: &[u8; 32],
        remote_report: &SignedReport,
        remote_report_nonce: &[u8; 32],
        local_report: &SignedReport,
        expected_remote_measurement: Option<tyche_crypto::Digest>,
    ) -> Result<RdmaConnection, RdmaError> {
        local_verifier
            .verify(
                remote_quote,
                remote_quote_nonce,
                remote_report,
                remote_report_nonce,
                expected_remote_measurement,
            )
            .map_err(RdmaError::Attestation)?;
        // Both sides hold both reports after the exchange; the key binds
        // the channel to this exact pair of attested configurations.
        let mut a = local_report.report.digest();
        let mut b = remote_report.report.digest();
        if b.0 < a.0 {
            std::mem::swap(&mut a, &mut b);
        }
        let mut ikm = Vec::new();
        ikm.extend_from_slice(a.as_bytes());
        ikm.extend_from_slice(b.as_bytes());
        ikm.extend_from_slice(remote_quote_nonce);
        ikm.extend_from_slice(remote_report_nonce);
        let key = hkdf::derive_key32(b"tyche-rdma", &ikm, b"channel");
        Ok(RdmaConnection { key, seq: 0 })
    }

    /// The raw channel key — test-only accessor for authenticating
    /// captured frames the way a receiver would.
    #[cfg(test)]
    pub(crate) fn key_for_tests(&self) -> &[u8; 32] {
        &self.key
    }

    /// Per-frame keystream (key + sequence number).
    fn keystream(&self, seq: u64, len: usize) -> Vec<u8> {
        let mut seed = self.key.to_vec();
        seed.extend_from_slice(&seq.to_le_bytes());
        let mut rng = ChaChaRng::new(hkdf::derive_key32(b"tyche-rdma-frame", &seed, b"ks"));
        let mut ks = vec![0u8; len];
        rng.fill_bytes(&mut ks);
        ks
    }

    /// Sender half of an RDMA write: reads `len` bytes at `local_addr`
    /// as the domain running on `local` core (its own hardware view
    /// enforces access), encrypts under the per-frame keystream, and
    /// MACs the result into a self-contained wire frame
    /// (`seq_le || ciphertext || tag`). The frame can cross any
    /// transport — the in-process [`Wire`], or a fleet NIC channel.
    pub fn produce_frame(
        &mut self,
        local: &mut Monitor,
        core: usize,
        local_addr: u64,
        len: usize,
    ) -> Result<Vec<u8>, RdmaError> {
        // Local read through the sender's own enforced view.
        let mut payload = vec![0u8; len];
        {
            let mut client = TycheClient::new(local, core);
            client
                .read(local_addr, &mut payload)
                .map_err(|f| RdmaError::LocalFault(f.addr))?;
        }
        // Encrypt, authenticate, and transmit. A stream cipher alone is
        // malleable; the MAC is what makes wire tampering detectable
        // ([`RdmaError::BadFrame`]).
        let seq = self.seq;
        self.seq += 1;
        let ks = self.keystream(seq, len);
        let mut frame = Vec::with_capacity(len + 40);
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend(payload.iter().zip(&ks).map(|(p, k)| p ^ k));
        let tag = tyche_crypto::HmacSha256::mac(&self.key, &frame);
        frame.extend_from_slice(tag.as_bytes());
        Ok(frame)
    }

    /// Receiver half of an RDMA write: authenticates and decrypts one
    /// wire frame, then delivers it into the remote MR at `remote_off`
    /// after the remote NIC re-validates ownership and exclusivity.
    pub fn deliver_frame(
        &self,
        frame: &[u8],
        remote: &mut Monitor,
        remote_nic: &RdmaNic,
        rkey: RKey,
        remote_off: u64,
    ) -> Result<(), RdmaError> {
        if frame.len() < 40 {
            return Err(RdmaError::BadFrame);
        }
        // Wire bytes are untrusted input: a malformed tag or header is a
        // checked `BadFrame`, never a caller abort.
        let (body, rtag) = frame.split_at(frame.len() - 32);
        let rtag: [u8; 32] = rtag.try_into().map_err(|_| RdmaError::BadFrame)?;
        let expect = tyche_crypto::Digest(rtag);
        if !tyche_crypto::HmacSha256::verify(&self.key, body, &expect) {
            return Err(RdmaError::BadFrame);
        }
        let rseq_bytes: [u8; 8] = body
            .get(..8)
            .and_then(|b| b.try_into().ok())
            .ok_or(RdmaError::BadFrame)?;
        let rseq = u64::from_le_bytes(rseq_bytes);
        let len = body.len() - 8;
        let rks = self.keystream(rseq, len);
        let plain: Vec<u8> = body[8..].iter().zip(&rks).map(|(c, k)| c ^ k).collect();

        let mr = remote_nic
            .regions
            .get(&rkey)
            .ok_or(RdmaError::NoSuchRegion)?;
        if !mr.remote_writable {
            return Err(RdmaError::ReadOnlyRegion);
        }
        let dst = mr
            .start
            .checked_add(remote_off)
            .ok_or(RdmaError::OutOfBounds)?;
        let dst_end = dst.checked_add(len as u64).ok_or(RdmaError::OutOfBounds)?;
        if dst < mr.start || dst_end > mr.end {
            return Err(RdmaError::OutOfBounds);
        }
        // Delivery-time re-validation: the region must still be exclusive
        // to its registrant, or the NIC refuses (the attested topology
        // changed under the connection).
        let rc = remote
            .engine
            .refcount_mem_full(MemRegion::new(mr.start, mr.end));
        if !rc.is_exclusive() {
            return Err(RdmaError::ExclusivityLost);
        }
        let still_owner = remote.engine.caps_of(mr.owner).iter().any(|c| {
            c.active
                && c.resource
                    .as_mem()
                    .map(|r| r.contains(&MemRegion::new(mr.start, mr.end)))
                    .unwrap_or(false)
        });
        if !still_owner {
            return Err(RdmaError::ExclusivityLost);
        }
        // The NIC DMAs through the memory-encryption controller, like the
        // CPU does (TDX-IO-style trusted device path).
        remote
            .machine
            .mktme
            .write(
                &mut remote.machine.mem,
                tyche_hw::PhysAddr::new(dst),
                &plain,
            )
            .map_err(|_| RdmaError::OutOfBounds)?;
        Ok(())
    }

    /// One-sided RDMA write: reads `len` bytes at `local_addr` as the
    /// domain running on `local core` (its own hardware view enforces
    /// access), encrypts, crosses `wire`, and lands in the remote MR at
    /// `remote_off` — after the remote NIC re-validates ownership.
    /// Composes [`Self::produce_frame`] and [`Self::deliver_frame`]
    /// around the eavesdropper-visible wire capture.
    #[allow(clippy::too_many_arguments)]
    pub fn rdma_write(
        &mut self,
        local: &mut Monitor,
        core: usize,
        local_addr: u64,
        len: usize,
        wire: &mut Wire,
        remote: &mut Monitor,
        remote_nic: &RdmaNic,
        rkey: RKey,
        remote_off: u64,
    ) -> Result<(), RdmaError> {
        let frame = self.produce_frame(local, core, local_addr, len)?;
        wire.frames.push(frame.clone());
        self.deliver_frame(&frame, remote, remote_nic, rkey, remote_off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tyche_monitor::boot::{expected_monitor_pcr, MONITOR_VERSION};
    use tyche_monitor::{boot_x86, BootConfig};

    const TEE_MEM: (u64, u64) = (0x10_0000, 0x10_4000);

    /// Boots a machine with one sealed TEE owning TEE_MEM; returns the
    /// monitor, the TEE, and its gate.
    fn machine_with_tee() -> (Monitor, DomainId, CapId) {
        let mut m = boot_x86(BootConfig::default());
        let (d, gate) = tyche_bench_spawn(&mut m, TEE_MEM.0, TEE_MEM.1 - TEE_MEM.0);
        (m, d, gate)
    }

    /// Local copy of the bench fixture (libtyche cannot depend on
    /// tyche-bench).
    fn tyche_bench_spawn(m: &mut Monitor, base: u64, len: u64) -> (DomainId, CapId) {
        let mut client = TycheClient::new(m, 0);
        let (d, gate) = client.create_domain().unwrap();
        let cap = client.carve(base, base + len).unwrap();
        client
            .grant(cap, d, Rights::RW, RevocationPolicy::OBFUSCATE)
            .unwrap();
        let core0 = {
            let me = client.whoami();
            client
                .monitor
                .engine
                .caps_of(me)
                .iter()
                .find(|c| c.active && matches!(c.resource, Resource::CpuCore(0)))
                .map(|c| c.id)
                .unwrap()
        };
        client
            .share(core0, d, None, Rights::USE, RevocationPolicy::NONE)
            .unwrap();
        client.set_entry(d, base).unwrap();
        client.seal(d, SealPolicy::strict()).unwrap();
        (d, gate)
    }

    fn verifier_for(m: &Monitor) -> Verifier {
        Verifier {
            tpm_key: m.machine.tpm.attestation_key(),
            expected_monitor_pcr: expected_monitor_pcr(MONITOR_VERSION),
            monitor_key: m.report_key(),
        }
    }

    /// Full two-machine setup: attested connection + remote MR.
    fn connected() -> (
        Monitor,
        CapId,
        Monitor,
        CapId,
        RdmaConnection,
        RdmaNic,
        RKey,
        Wire,
    ) {
        let (mut ma, _da, ga) = machine_with_tee();
        let (mut mb, db, gb) = machine_with_tee();
        let qn = [1u8; 32];
        let rn = [2u8; 32];
        let quote_b = mb.machine_quote(qn).expect("quote");
        let report_b = mb.attest_domain(db, rn).unwrap();
        let report_a = {
            let da = ma.current_domain(0);
            let _ = da;
            let d = ma
                .engine
                .domains()
                .find(|d| d.is_sealed())
                .map(|d| d.id)
                .unwrap();
            ma.attest_domain(d, rn).unwrap()
        };
        // Machine A's TEE verifies machine B's chain (cross-machine).
        let verifier_b_anchors = verifier_for(&mb);
        let conn = RdmaConnection::establish(
            &verifier_b_anchors,
            &quote_b,
            &qn,
            &report_b,
            &rn,
            &report_a,
            None,
        )
        .unwrap();
        // B's TEE registers an MR (entered so the NIC sees the right
        // requesting domain).
        let mut nic_b = RdmaNic::new();
        let mut client = TycheClient::new(&mut mb, 0);
        client.enter(gb).unwrap();
        let rkey = nic_b
            .register_mr(&mut mb, 0, TEE_MEM.0 + 0x1000, TEE_MEM.0 + 0x2000, true)
            .unwrap();
        let mut client = TycheClient::new(&mut mb, 0);
        client.ret().unwrap();
        (ma, ga, mb, gb, conn, nic_b, rkey, Wire::new())
    }

    #[test]
    fn attested_cross_machine_write() {
        let (mut ma, ga, mut mb, gb, mut conn, nic_b, rkey, mut wire) = connected();
        // TEE A writes a secret into its own memory and pushes it to B.
        let mut client = TycheClient::new(&mut ma, 0);
        client.enter(ga).unwrap();
        client
            .write(TEE_MEM.0 + 0x100, b"cross-machine secret")
            .unwrap();
        conn.rdma_write(
            &mut ma,
            0,
            TEE_MEM.0 + 0x100,
            20,
            &mut wire,
            &mut mb,
            &nic_b,
            rkey,
            0,
        )
        .unwrap();
        TycheClient::new(&mut ma, 0).ret().unwrap();

        // TEE B reads it from its MR.
        let mut client = TycheClient::new(&mut mb, 0);
        client.enter(gb).unwrap();
        let mut got = [0u8; 20];
        client.read(TEE_MEM.0 + 0x1000, &mut got).unwrap();
        assert_eq!(&got, b"cross-machine secret");
        TycheClient::new(&mut mb, 0).ret().unwrap();

        // Machine B's host OS cannot read the landed data.
        assert!(mb.dom_read(0, TEE_MEM.0 + 0x1000, &mut [0u8; 1]).is_err());
        // And the wire never carried the plaintext.
        assert!(!wire.frames.is_empty());
        assert!(
            !wire.leaks(b"cross-machine secret"),
            "wire is ciphertext only"
        );
    }

    #[test]
    fn registration_requires_exclusivity() {
        let mut m = boot_x86(BootConfig::default());
        // The OS shares a window with a child: that window is refcount 2
        // and cannot be registered.
        let mut client = TycheClient::new(&mut m, 0);
        let (d, _gate) = client.create_domain().unwrap();
        let cap = client.carve(0x20_0000, 0x20_1000).unwrap();
        client
            .share(cap, d, None, Rights::RW, RevocationPolicy::NONE)
            .unwrap();
        let mut nic = RdmaNic::new();
        assert_eq!(
            nic.register_mr(&mut m, 0, 0x20_0000, 0x20_1000, true),
            Err(RdmaError::NotExclusive)
        );
        // A domain cannot register memory it does not hold.
        assert!(
            !nic.register_mr(&mut m, 0, 0x10_0000, 0x10_1000, true)
                .err()
                .is_some_and(|e| e == RdmaError::NotExclusive),
            "the OS exclusively owns 0x10_0000 pre-TEE; registration succeeds"
        );
    }

    #[test]
    fn delivery_revalidates_exclusivity() {
        let (mut ma, ga, mut mb, _gb, mut conn, nic_b, rkey, mut wire) = connected();
        // After registration, machine B's topology changes: kill the TEE,
        // returning the MR's pages to the OS (refcount stays 1 but the
        // owner changed — ExclusivityLost).
        let tee_b = mb
            .engine
            .domains()
            .find(|d| d.is_sealed())
            .map(|d| d.id)
            .unwrap();
        let os_b = mb.engine.root().unwrap();
        mb.engine.kill(os_b, tee_b).unwrap();
        mb.sync_effects().unwrap();
        let mut client = TycheClient::new(&mut ma, 0);
        client.enter(ga).unwrap();
        client.write(TEE_MEM.0 + 0x100, b"late").unwrap();
        let err = conn
            .rdma_write(
                &mut ma,
                0,
                TEE_MEM.0 + 0x100,
                4,
                &mut wire,
                &mut mb,
                &nic_b,
                rkey,
                0,
            )
            .unwrap_err();
        assert_eq!(err, RdmaError::ExclusivityLost);
    }

    #[test]
    fn bounds_and_permissions_enforced() {
        let (mut ma, ga, mut mb, _gb, mut conn, mut nic_b, rkey, mut wire) = connected();
        let mut client = TycheClient::new(&mut ma, 0);
        client.enter(ga).unwrap();
        client.write(TEE_MEM.0 + 0x100, b"data").unwrap();
        // Out of MR bounds.
        let err = conn
            .rdma_write(
                &mut ma,
                0,
                TEE_MEM.0 + 0x100,
                4,
                &mut wire,
                &mut mb,
                &nic_b,
                rkey,
                0xfff,
            )
            .unwrap_err();
        assert_eq!(err, RdmaError::OutOfBounds);
        // Unknown rkey.
        let err = conn
            .rdma_write(
                &mut ma,
                0,
                TEE_MEM.0 + 0x100,
                4,
                &mut wire,
                &mut mb,
                &nic_b,
                RKey(999),
                0,
            )
            .unwrap_err();
        assert_eq!(err, RdmaError::NoSuchRegion);
        // Read-only MR refuses writes.
        nic_b.deregister(rkey);
        let tee_b = mb
            .engine
            .domains()
            .find(|d| d.is_sealed())
            .map(|d| d.id)
            .unwrap();
        let gate_b = mb
            .engine
            .caps()
            .find(|c| matches!(c.resource, Resource::Transition(t) if t == tee_b))
            .map(|c| c.id)
            .unwrap();
        TycheClient::new(&mut mb, 0).enter(gate_b).unwrap();
        let ro = nic_b
            .register_mr(&mut mb, 0, TEE_MEM.0 + 0x1000, TEE_MEM.0 + 0x2000, false)
            .unwrap();
        TycheClient::new(&mut mb, 0).ret().unwrap();
        let err = conn
            .rdma_write(
                &mut ma,
                0,
                TEE_MEM.0 + 0x100,
                4,
                &mut wire,
                &mut mb,
                &nic_b,
                ro,
                0,
            )
            .unwrap_err();
        assert_eq!(err, RdmaError::ReadOnlyRegion);
        // The sender cannot push memory it cannot read.
        let err = conn
            .rdma_write(&mut ma, 0, 0x50_0000, 4, &mut wire, &mut mb, &nic_b, ro, 0)
            .unwrap_err();
        assert!(matches!(err, RdmaError::LocalFault(_)));
    }

    #[test]
    fn wire_frames_are_authenticated() {
        // The wire capture proves frames carry MACs: flipping any
        // ciphertext bit and re-verifying fails. (Delivery in the model
        // is in-process, so we check the property on the captured frame
        // the way a receiver would.)
        let (mut ma, ga, mut mb, _gb, mut conn, nic_b, rkey, mut wire) = connected();
        let mut client = TycheClient::new(&mut ma, 0);
        client.enter(ga).unwrap();
        client.write(TEE_MEM.0 + 0x100, b"auth").unwrap();
        conn.rdma_write(
            &mut ma,
            0,
            TEE_MEM.0 + 0x100,
            4,
            &mut wire,
            &mut mb,
            &nic_b,
            rkey,
            0,
        )
        .unwrap();
        let frame = wire.frames.last().unwrap().clone();
        assert!(frame.len() >= 40, "seq + payload + 32-byte tag");
        // An unmodified frame authenticates under the connection key...
        let (body, tag) = frame.split_at(frame.len() - 32);
        let tag = tyche_crypto::Digest(tag.try_into().unwrap());
        assert!(tyche_crypto::HmacSha256::verify(
            conn.key_for_tests(),
            body,
            &tag
        ));
        // ...and a tampered one does not.
        let mut evil = frame.clone();
        evil[9] ^= 0x80;
        let (ebody, etag) = evil.split_at(evil.len() - 32);
        let etag = tyche_crypto::Digest(etag.try_into().unwrap());
        assert!(!tyche_crypto::HmacSha256::verify(
            conn.key_for_tests(),
            ebody,
            &etag
        ));
    }

    #[test]
    fn attestation_gate_blocks_wrong_monitor() {
        let (ma, _da, _ga) = machine_with_tee();
        let mut evil = boot_x86(BootConfig {
            version: "evil-monitor v6.6.6",
            ..Default::default()
        });
        let (evil_tee, _gate) = tyche_bench_spawn(&mut evil, 0x10_0000, 0x1000);
        let qn = [1u8; 32];
        let rn = [2u8; 32];
        let quote = evil.machine_quote(qn).expect("quote");
        let report = evil.attest_domain(evil_tee, rn).unwrap();
        let my_report = {
            let mut ma = ma;
            let d = ma
                .engine
                .domains()
                .find(|d| d.is_sealed())
                .map(|d| d.id)
                .unwrap();
            ma.attest_domain(d, rn).unwrap()
        };
        // The verifier expects the *good* monitor's PCR but evil's TPM key
        // (the machine is real; its software stack is not).
        let verifier = Verifier {
            tpm_key: evil.machine.tpm.attestation_key(),
            expected_monitor_pcr: expected_monitor_pcr(MONITOR_VERSION),
            monitor_key: evil.report_key(),
        };
        let err = RdmaConnection::establish(&verifier, &quote, &qn, &report, &rn, &my_report, None)
            .unwrap_err();
        assert!(matches!(
            err,
            RdmaError::Attestation(VerifyError::WrongMonitor { .. })
        ));
    }
}
