//! The ChaCha20 block function (RFC 7539 §2.3).
//!
//! Only the block function is exposed; it backs the deterministic random bit
//! generator in [`crate::drbg`]. We do not implement the AEAD construction —
//! the reproduction encrypts nothing on a real wire.

/// "expand 32-byte k" — the ChaCha constant words.
const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

/// Computes one 64-byte ChaCha20 keystream block.
///
/// `key` is the 256-bit key, `counter` the 32-bit block counter, and `nonce`
/// the 96-bit nonce, all laid out as in RFC 7539.
pub fn block(key: &[u8; 32], counter: u32, nonce: &[u8; 12]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[i * 4], key[i * 4 + 1], key[i * 4 + 2], key[i * 4 + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[i * 4],
            nonce[i * 4 + 1],
            nonce[i * 4 + 2],
            nonce[i * 4 + 3],
        ]);
    }

    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// The ChaCha quarter round on state indices `(a, b, c, d)`.
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc7539_block_vector() {
        // RFC 7539 §2.3.2.
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let out = block(&key, 1, &nonce);
        let expected_prefix = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4,
        ];
        assert_eq!(&out[..16], &expected_prefix);
        let expected_suffix = [
            0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e, 0xb9, 0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50,
            0x3c, 0x4e,
        ];
        assert_eq!(&out[48..], &expected_suffix);
    }

    #[test]
    fn counter_changes_block() {
        let key = [7u8; 32];
        let nonce = [1u8; 12];
        assert_ne!(block(&key, 0, &nonce), block(&key, 1, &nonce));
    }

    #[test]
    fn nonce_changes_block() {
        let key = [7u8; 32];
        assert_ne!(block(&key, 0, &[0u8; 12]), block(&key, 0, &[1u8; 12]));
    }
}
