//! A ChaCha20-based deterministic random bit generator.
//!
//! Used by the simulated TPM for nonces and key generation, and by workload
//! generators that need reproducible randomness (benchmarks must produce the
//! same workloads run-to-run).

use crate::chacha;

/// Deterministic RNG driven by the ChaCha20 block function.
///
/// Not a general-purpose CSPRNG interface — it exposes exactly the draws the
/// reproduction needs. Reseeding is by constructing a new generator.
///
/// # Examples
///
/// ```
/// use tyche_crypto::ChaChaRng;
/// let mut a = ChaChaRng::from_seed(42);
/// let mut b = ChaChaRng::from_seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone)]
pub struct ChaChaRng {
    key: [u8; 32],
    nonce: [u8; 12],
    counter: u32,
    buf: [u8; 64],
    /// Next unread offset into `buf`; 64 means "refill needed".
    pos: usize,
}

impl ChaChaRng {
    /// Creates a generator from a full 256-bit seed.
    pub fn new(seed: [u8; 32]) -> Self {
        ChaChaRng {
            key: seed,
            nonce: [0u8; 12],
            counter: 0,
            buf: [0u8; 64],
            pos: 64,
        }
    }

    /// Creates a generator from a small integer seed (convenience for tests
    /// and benchmarks). The seed is expanded through SHA-256.
    pub fn from_seed(seed: u64) -> Self {
        let digest = crate::hash(&seed.to_le_bytes());
        Self::new(digest.0)
    }

    /// Refills the keystream buffer.
    fn refill(&mut self) {
        self.buf = chacha::block(&self.key, self.counter, &self.nonce);
        self.counter = self.counter.wrapping_add(1);
        // A 32-bit counter wraps after 256 GiB of output; bump the nonce so
        // the stream never repeats even then.
        if self.counter == 0 {
            for b in self.nonce.iter_mut() {
                *b = b.wrapping_add(1);
                if *b != 0 {
                    break;
                }
            }
        }
        self.pos = 0;
    }

    /// Fills `out` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        for byte in out.iter_mut() {
            if self.pos == 64 {
                self.refill();
            }
            *byte = self.buf[self.pos];
            self.pos += 1;
        }
    }

    /// Draws a pseudo-random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_le_bytes(b)
    }

    /// Draws a pseudo-random `u32`.
    pub fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.fill_bytes(&mut b);
        u32::from_le_bytes(b)
    }

    /// Draws a value uniformly from `[0, bound)` using rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Draws a fresh 32-byte value (e.g. a key or nonce for the TPM model).
    pub fn next_bytes32(&mut self) -> [u8; 32] {
        let mut out = [0u8; 32];
        self.fill_bytes(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = ChaChaRng::from_seed(7);
        let mut b = ChaChaRng::from_seed(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaChaRng::from_seed(1);
        let mut b = ChaChaRng::from_seed(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = ChaChaRng::from_seed(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all residues should appear in 1000 draws"
        );
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        ChaChaRng::from_seed(0).below(0);
    }

    #[test]
    fn fill_bytes_across_block_boundary() {
        let mut rng = ChaChaRng::from_seed(9);
        let mut one = vec![0u8; 200];
        rng.fill_bytes(&mut one);
        let mut rng2 = ChaChaRng::from_seed(9);
        let mut parts = vec![0u8; 200];
        let (a, rest) = parts.split_at_mut(63);
        let (b, c) = rest.split_at_mut(2);
        rng2.fill_bytes(a);
        rng2.fill_bytes(b);
        rng2.fill_bytes(c);
        assert_eq!(one, parts);
    }

    #[test]
    fn rough_uniformity() {
        // Mean of next_u32 draws should be near 2^31.
        let mut rng = ChaChaRng::from_seed(11);
        let n = 10_000u64;
        let sum: u64 = (0..n).map(|_| rng.next_u32() as u64).sum();
        let mean = sum / n;
        let mid = 1u64 << 31;
        assert!(
            mean > mid - mid / 10 && mean < mid + mid / 10,
            "mean {mean}"
        );
    }
}
