//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! This is the measurement primitive for the whole reproduction: PCR
//! extends in the simulated TPM, domain-configuration hashes, and memory
//! region measurements all go through [`Sha256`].
// Approved panic paths: every `expect(` in this module is budgeted,
// with a reviewed reason, in crates/verify/allowlist.toml.
#![allow(clippy::expect_used)]

/// The SHA-256 initial hash value (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// The SHA-256 round constants (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// A 32-byte SHA-256 digest.
///
/// Digests are the universal "measurement" currency of the reproduction;
/// they are ordered and hashable so they can serve as map keys.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest, used as the reset value of TPM PCRs.
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Renders the digest as lowercase hex.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble < 16"));
            s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble < 16"));
        }
        s
    }

    /// Parses a digest from 64 hex characters.
    ///
    /// Returns `None` when the input is not exactly 64 hex digits.
    pub fn from_hex(s: &str) -> Option<Digest> {
        if s.len() != 64 || !s.is_char_boundary(64) {
            return None;
        }
        let mut out = [0u8; 32];
        let bytes = s.as_bytes();
        for (i, chunk) in bytes.chunks_exact(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }

    /// Borrows the digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl core::fmt::Debug for Digest {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Digest({}..)", &self.to_hex()[..12])
    }
}

impl core::fmt::Display for Digest {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use tyche_crypto::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(
///     h.finalize().to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Total message length in bytes processed so far (excluding `buf`).
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        let mut data = data;
        // Fill a partially-occupied block first.
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.len += 64;
                self.buf_len = 0;
            }
        }
        // Whole blocks straight from the input.
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            self.len += 64;
            data = &data[64..];
        }
        // Stash the tail.
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes the hash and returns the digest, consuming the hasher.
    pub fn finalize(mut self) -> Digest {
        let total_bits = (self.len + self.buf_len as u64) * 8;
        // Padding: 0x80, zeros, then the 64-bit big-endian length.
        let mut pad = [0u8; 128];
        pad[..self.buf_len].copy_from_slice(&self.buf[..self.buf_len]);
        pad[self.buf_len] = 0x80;
        let pad_len = if self.buf_len < 56 { 64 } else { 128 };
        pad[pad_len - 8..pad_len].copy_from_slice(&total_bits.to_be_bytes());
        for chunk in pad[..pad_len].chunks_exact(64) {
            let mut block = [0u8; 64];
            block.copy_from_slice(chunk);
            self.compress(&block);
        }
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        Digest(out)
    }

    /// The SHA-256 compression function over one 64-byte block.
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for t in 16..64 {
            let s0 = w[t - 15].rotate_right(7) ^ w[t - 15].rotate_right(18) ^ (w[t - 15] >> 3);
            let s1 = w[t - 2].rotate_right(17) ^ w[t - 2].rotate_right(19) ^ (w[t - 2] >> 10);
            w[t] = w[t - 16]
                .wrapping_add(s0)
                .wrapping_add(w[t - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for t in 0..64 {
            let big_s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(big_s1)
                .wrapping_add(ch)
                .wrapping_add(K[t])
                .wrapping_add(w[t]);
            let big_s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = big_s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(data: &[u8]) -> String {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize().to_hex()
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            hex(b""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_vector_two_blocks() {
        assert_eq!(
            hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        for split in [0usize, 1, 63, 64, 65, 127, 128, 500, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize().to_hex(), hex(&data), "split at {split}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // Lengths that straddle the 55/56/64 padding boundaries must all be
        // distinct and stable.
        let mut seen = std::collections::HashSet::new();
        for len in 50..70 {
            let data = vec![0x5au8; len];
            assert!(seen.insert(hex(&data)), "collision at len {len}");
        }
    }

    #[test]
    fn digest_hex_roundtrip() {
        let d = crate::hash(b"roundtrip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex("zz"), None);
        assert_eq!(Digest::from_hex(&"0".repeat(63)), None);
        assert_eq!(Digest::from_hex(&"g".repeat(64)), None);
    }

    #[test]
    fn display_and_debug() {
        let d = crate::hash(b"abc");
        assert_eq!(format!("{d}").len(), 64);
        assert!(format!("{d:?}").starts_with("Digest(ba7816bf"));
    }
}
