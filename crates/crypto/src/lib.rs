//! Cryptographic primitives for the Tyche reproduction.
//!
//! The real Tyche relies on hardware roots of trust (TPM/TXT) and their
//! firmware crypto. This crate provides the software equivalents used by the
//! simulated platform and the attestation protocol:
//!
//! - [`sha256`]: FIPS 180-4 SHA-256, used for all measurements (domain
//!   configurations, memory regions, PCR extends).
//! - [`hmac`]: HMAC-SHA256 (RFC 2104), the MAC underlying attestation
//!   "signatures" — see `DESIGN.md` for why MACs substitute for asymmetric
//!   signatures in this reproduction.
//! - [`hkdf`]: HKDF (RFC 5869) for deriving per-purpose keys from a device
//!   root secret.
//! - [`chacha`] / [`drbg`]: a ChaCha20-based deterministic random bit
//!   generator used by the simulated TPM and by workload generators that need
//!   reproducible randomness.
//! - [`ct`]: constant-time comparison, used whenever a MAC or measurement is
//!   verified.
//! - [`sign`]: a tiny signing facade ([`sign::SigningKey`] /
//!   [`sign::VerifyingKey`]) over HMAC so higher layers read like a
//!   signature-based protocol.
//!
//! Everything is implemented from scratch in safe Rust with no external
//! dependencies; test vectors come from the relevant RFCs and FIPS documents.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Tests assert on engine state freely; the panic-path lints govern
// production code only (accounting: crates/verify/allowlist.toml).
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod chacha;
pub mod ct;
pub mod drbg;
pub mod hkdf;
pub mod hmac;
pub mod sha256;
pub mod sign;

pub use drbg::ChaChaRng;
pub use hmac::HmacSha256;
pub use sha256::{Digest, Sha256};

/// Convenience: hash a byte slice with SHA-256.
///
/// # Examples
///
/// ```
/// let d = tyche_crypto::hash(b"abc");
/// assert_eq!(&d.to_hex()[..8], "ba7816bf");
/// ```
pub fn hash(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Convenience: hash the concatenation of several byte slices.
///
/// Equivalent to hashing the slices one after another with a single
/// [`Sha256`] instance; used for multi-part measurements.
pub fn hash_parts(parts: &[&[u8]]) -> Digest {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}
