//! HMAC-SHA256 (RFC 2104 / FIPS 198-1).
//!
//! HMAC is the authentication primitive behind attestation reports in this
//! reproduction (see `DESIGN.md`: MACs substitute for the asymmetric
//! signatures a production TPM would produce).

use crate::sha256::{Digest, Sha256};

/// Incremental HMAC-SHA256.
///
/// # Examples
///
/// ```
/// use tyche_crypto::HmacSha256;
/// let mut mac = HmacSha256::new(&[0x0b; 20]);
/// mac.update(b"Hi There");
/// assert_eq!(
///     mac.finalize().to_hex(),
///     "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
/// );
/// ```
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    /// Outer-pad key block, applied at finalization.
    opad_key: [u8; 64],
}

impl HmacSha256 {
    /// Creates an HMAC instance keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        // Keys longer than the block size are hashed first (RFC 2104 §2).
        let mut key_block = [0u8; 64];
        if key.len() > 64 {
            let d = crate::hash(key);
            key_block[..32].copy_from_slice(d.as_bytes());
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; 64];
        let mut opad = [0u8; 64];
        for i in 0..64 {
            ipad[i] = key_block[i] ^ 0x36;
            opad[i] = key_block[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            opad_key: opad,
        }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes the MAC computation.
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(inner_digest.as_bytes());
        outer.finalize()
    }

    /// One-shot HMAC over a single message.
    pub fn mac(key: &[u8], data: &[u8]) -> Digest {
        let mut h = Self::new(key);
        h.update(data);
        h.finalize()
    }

    /// Verifies `tag` against the MAC of `data` in constant time.
    pub fn verify(key: &[u8], data: &[u8], tag: &Digest) -> bool {
        let expected = Self::mac(key, data);
        crate::ct::eq(expected.as_bytes(), tag.as_bytes())
    }

    /// One-shot HMAC over a multi-part message (header fields + payload,
    /// as in the fleet's channel frames). Each part is absorbed behind a
    /// 64-bit little-endian length prefix, so distinct part splits can
    /// never collide — `mac_parts(k, ["ab", "c"])` and
    /// `mac_parts(k, ["a", "bc"])` produce unrelated tags (and neither
    /// equals `mac(k, "abc")`).
    pub fn mac_parts(key: &[u8], parts: &[&[u8]]) -> Digest {
        let mut h = Self::new(key);
        for part in parts {
            h.update(&(part.len() as u64).to_le_bytes());
            h.update(part);
        }
        h.finalize()
    }

    /// Verifies `tag` against [`Self::mac_parts`] in constant time.
    pub fn verify_parts(key: &[u8], parts: &[&[u8]], tag: &Digest) -> bool {
        let expected = Self::mac_parts(key, parts);
        crate::ct::eq(expected.as_bytes(), tag.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case_1() {
        let tag = HmacSha256::mac(&[0x0b; 20], b"Hi There");
        assert_eq!(
            tag.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = HmacSha256::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let tag = HmacSha256::mac(&[0xaa; 20], &[0xdd; 50]);
        assert_eq!(
            tag.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        // 131-byte key exercises the hash-the-key path.
        let tag = HmacSha256::mac(
            &[0xaa; 131],
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            tag.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = HmacSha256::mac(b"key", b"msg");
        assert!(HmacSha256::verify(b"key", b"msg", &tag));
        assert!(!HmacSha256::verify(b"key", b"msg2", &tag));
        assert!(!HmacSha256::verify(b"key2", b"msg", &tag));
        let mut bad = tag;
        bad.0[0] ^= 1;
        assert!(!HmacSha256::verify(b"key", b"msg", &bad));
    }

    #[test]
    fn parts_are_unambiguous() {
        let k = b"frame-key";
        let ab_c = HmacSha256::mac_parts(k, &[b"ab", b"c"]);
        let a_bc = HmacSha256::mac_parts(k, &[b"a", b"bc"]);
        let abc = HmacSha256::mac(k, b"abc");
        assert_ne!(ab_c, a_bc, "part boundaries are authenticated");
        assert_ne!(ab_c, abc, "parts never alias the flat message");
        assert!(HmacSha256::verify_parts(k, &[b"ab", b"c"], &ab_c));
        assert!(!HmacSha256::verify_parts(k, &[b"a", b"bc"], &ab_c));
        let mut flipped = ab_c;
        flipped.0[31] ^= 0x01;
        assert!(!HmacSha256::verify_parts(k, &[b"ab", b"c"], &flipped));
    }

    #[test]
    fn parts_encoding_is_stable() {
        // Pin the transcript encoding (8-byte LE length prefix per part):
        // a schema change here would silently re-key every fleet channel.
        let tag = HmacSha256::mac_parts(b"k", &[b"seq", b"payload"]);
        let mut flat = Vec::new();
        flat.extend_from_slice(&3u64.to_le_bytes());
        flat.extend_from_slice(b"seq");
        flat.extend_from_slice(&7u64.to_le_bytes());
        flat.extend_from_slice(b"payload");
        assert_eq!(tag, HmacSha256::mac(b"k", &flat));
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut m = HmacSha256::new(b"k");
        m.update(b"hello ");
        m.update(b"world");
        assert_eq!(m.finalize(), HmacSha256::mac(b"k", b"hello world"));
    }
}
