//! A signing facade over HMAC-SHA256.
//!
//! The paper's attestation protocol has the root of trust and the monitor
//! *sign* measurements so that remote verifiers can check them. A production
//! implementation uses asymmetric keys (TPM AIK, monitor attestation key);
//! this reproduction substitutes MACs with a verifier-shared key, which
//! preserves the protocol logic (who signs what, what a verifier checks,
//! what a forgery looks like) while keeping the crypto self-contained. The
//! substitution is recorded in `DESIGN.md`.

use crate::hkdf;
use crate::hmac::HmacSha256;
use crate::sha256::Digest;

/// A signature (MAC tag) over a message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Signature(pub Digest);

impl Signature {
    /// Renders the signature as hex for reports and logs.
    pub fn to_hex(&self) -> String {
        self.0.to_hex()
    }
}

/// A signing key held by a root of trust or monitor.
#[derive(Clone)]
pub struct SigningKey {
    key: [u8; 32],
}

impl SigningKey {
    /// Creates a signing key from raw key material.
    pub fn new(key: [u8; 32]) -> Self {
        SigningKey { key }
    }

    /// Derives a purpose-separated signing key from a root secret.
    pub fn derive(root: &[u8], purpose: &str) -> Self {
        SigningKey {
            key: hkdf::derive_key32(b"tyche-sign", root, purpose.as_bytes()),
        }
    }

    /// Signs a message.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        Signature(HmacSha256::mac(&self.key, msg))
    }

    /// Returns the matching verifying key.
    ///
    /// With the MAC substitution the verifying key carries the same key
    /// material; a production build would return the public half.
    pub fn verifying_key(&self) -> VerifyingKey {
        VerifyingKey { key: self.key }
    }
}

impl core::fmt::Debug for SigningKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print key material.
        f.write_str("SigningKey(..)")
    }
}

/// The verification half of a [`SigningKey`].
#[derive(Clone)]
pub struct VerifyingKey {
    key: [u8; 32],
}

impl VerifyingKey {
    /// Verifies `sig` over `msg` in constant time.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        HmacSha256::verify(&self.key, msg, &sig.0)
    }
}

impl core::fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("VerifyingKey(..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let sk = SigningKey::derive(b"root-secret", "attest");
        let vk = sk.verifying_key();
        let sig = sk.sign(b"report");
        assert!(vk.verify(b"report", &sig));
        assert!(!vk.verify(b"report2", &sig));
    }

    #[test]
    fn purpose_separation() {
        let a = SigningKey::derive(b"root", "attest");
        let b = SigningKey::derive(b"root", "seal");
        let sig = a.sign(b"m");
        assert!(!b.verifying_key().verify(b"m", &sig));
    }

    #[test]
    fn forged_signature_rejected() {
        let sk = SigningKey::derive(b"root", "attest");
        let vk = sk.verifying_key();
        let mut sig = sk.sign(b"m");
        sig.0 .0[5] ^= 0xff;
        assert!(!vk.verify(b"m", &sig));
    }

    #[test]
    fn debug_never_leaks_key() {
        let sk = SigningKey::new([0xaa; 32]);
        assert_eq!(format!("{sk:?}"), "SigningKey(..)");
        assert_eq!(format!("{:?}", sk.verifying_key()), "VerifyingKey(..)");
    }
}
