//! HKDF with SHA-256 (RFC 5869).
//!
//! The simulated platform holds a single device root secret (the analogue of
//! a TPM endorsement seed); all per-purpose keys — monitor attestation key,
//! per-domain sealing keys — are derived from it through HKDF so that key
//! separation is explicit and auditable.

use crate::hmac::HmacSha256;
use crate::sha256::Digest;

/// HKDF-Extract: derives a pseudo-random key from input keying material.
pub fn extract(salt: &[u8], ikm: &[u8]) -> Digest {
    HmacSha256::mac(salt, ikm)
}

/// HKDF-Expand: expands `prk` into `len` bytes of output keying material.
///
/// # Panics
///
/// Panics if `len > 255 * 32`, the RFC 5869 limit.
pub fn expand(prk: &Digest, info: &[u8], len: usize) -> Vec<u8> {
    assert!(len <= 255 * 32, "HKDF-Expand output too long");
    let mut okm = Vec::with_capacity(len);
    let mut prev: Option<Digest> = None;
    let mut counter = 1u8;
    while okm.len() < len {
        let mut mac = HmacSha256::new(prk.as_bytes());
        if let Some(p) = &prev {
            mac.update(p.as_bytes());
        }
        mac.update(info);
        mac.update(&[counter]);
        let block = mac.finalize();
        let take = (len - okm.len()).min(32);
        okm.extend_from_slice(&block.as_bytes()[..take]);
        prev = Some(block);
        counter = counter.wrapping_add(1);
    }
    okm
}

/// One-shot extract-then-expand.
pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    let prk = extract(salt, ikm);
    expand(&prk, info, len)
}

/// Derives a fixed 32-byte key, the common case for this reproduction.
pub fn derive_key32(salt: &[u8], ikm: &[u8], info: &[u8]) -> [u8; 32] {
    let okm = derive(salt, ikm, info, 32);
    let mut out = [0u8; 32];
    out.copy_from_slice(&okm);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 5869 Test Case 1.
    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0b; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let prk = extract(&salt, &ikm);
        assert_eq!(
            prk.to_hex(),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let okm = expand(&prk, &info, 42);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 Test Case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case_3() {
        let ikm = [0x0b; 22];
        let okm = derive(&[], &ikm, &[], 42);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn different_info_different_keys() {
        let a = derive_key32(b"salt", b"root", b"attestation");
        let b = derive_key32(b"salt", b"root", b"sealing");
        assert_ne!(a, b);
    }

    #[test]
    fn expand_multi_block_lengths() {
        let prk = extract(b"s", b"ikm");
        for len in [0usize, 1, 31, 32, 33, 64, 100] {
            assert_eq!(expand(&prk, b"i", len).len(), len);
        }
        // Prefix property: a shorter expansion is a prefix of a longer one.
        let long = expand(&prk, b"i", 100);
        let short = expand(&prk, b"i", 40);
        assert_eq!(&long[..40], &short[..]);
    }

    #[test]
    #[should_panic(expected = "too long")]
    fn expand_rejects_oversize() {
        let prk = extract(b"s", b"ikm");
        expand(&prk, b"i", 255 * 32 + 1);
    }
}
