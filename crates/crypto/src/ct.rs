//! Constant-time byte comparison.
//!
//! Every MAC and measurement verification in the attestation path goes
//! through [`eq`] so that the comparison itself does not leak where the first
//! differing byte is. In a simulation this is belt-and-braces, but the real
//! Tyche monitor must compare secrets this way, so the reproduction keeps the
//! same discipline.

/// Compares two byte slices in constant time (for equal lengths).
///
/// Returns `false` immediately when lengths differ — lengths of MACs and
/// digests are public.
pub fn eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

/// Constant-time conditional select: returns `a` when `choice` is true.
///
/// `choice` must be exactly 0 or 1 in spirit; the implementation masks with
/// a full byte so any `bool` works.
pub fn select(choice: bool, a: u8, b: u8) -> u8 {
    let mask = (choice as u8).wrapping_neg();
    (a & mask) | (b & !mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices() {
        assert!(eq(b"", b""));
        assert!(eq(b"abc", b"abc"));
        assert!(eq(&[0u8; 32], &[0u8; 32]));
    }

    #[test]
    fn unequal_slices() {
        assert!(!eq(b"abc", b"abd"));
        assert!(!eq(b"abc", b"ab"));
        assert!(!eq(b"", b"a"));
        let mut a = [7u8; 32];
        let b = [7u8; 32];
        a[31] ^= 0x80;
        assert!(!eq(&a, &b));
    }

    #[test]
    fn select_behaves() {
        assert_eq!(select(true, 0xaa, 0x55), 0xaa);
        assert_eq!(select(false, 0xaa, 0x55), 0x55);
    }
}
