//! Offline measurement (§4.2): "the library further supports generating a
//! binary's hash offline to be compared with the attestation provided by
//! Tyche".
//!
//! The function here computes, from only the ELF file and its manifest,
//! the same digest the monitor produces when libtyche loads the binary:
//! the hash of the manifest's canonical bytes followed by each *measured*
//! segment's index, load address, and padded contents. A remote verifier
//! runs this over the source binary and compares against the attestation
//! report — no access to the running machine required.

use crate::image::ElfImage;
use crate::manifest::Manifest;
use tyche_crypto::{Digest, Sha256};

/// Pads segment data to its in-memory size (the loader zero-fills BSS, so
/// the measured bytes are the loaded bytes).
fn padded(data: &[u8], memsz: u64) -> Vec<u8> {
    let mut v = data.to_vec();
    v.resize(memsz as usize, 0);
    v
}

/// Computes the offline measurement of `(image, manifest)`.
///
/// # Panics
///
/// Panics if the manifest fails validation against the image — measuring
/// an inconsistent pair would produce a digest no loader can reproduce.
pub fn offline_measurement(image: &ElfImage, manifest: &Manifest) -> Digest {
    manifest
        .validate(image.segments.len())
        .expect("manifest must validate against the image");
    let mut h = Sha256::new();
    h.update(b"tyche-offline-v1");
    h.update(&manifest.canonical_bytes());
    h.update(&image.entry.to_le_bytes());
    for (idx, seg) in image.segments.iter().enumerate() {
        let Some(policy) = manifest.policy(idx) else {
            continue;
        };
        if !policy.measured {
            continue;
        }
        h.update(&(idx as u64).to_le_bytes());
        h.update(&seg.vaddr.to_le_bytes());
        h.update(&seg.memsz.to_le_bytes());
        h.update(&padded(&seg.data, seg.memsz));
    }
    h.finalize()
}

/// Per-segment content digests (what the monitor records via
/// `RecordContent` for each measured segment): `(index, digest of padded
/// bytes)`.
pub fn segment_digests(image: &ElfImage, manifest: &Manifest) -> Vec<(usize, Digest)> {
    image
        .segments
        .iter()
        .enumerate()
        .filter(|(idx, _)| manifest.policy(*idx).map(|p| p.measured).unwrap_or(false))
        .map(|(idx, seg)| (idx, tyche_crypto::hash(&padded(&seg.data, seg.memsz))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::{ElfMachine, Segment, SegmentFlags};

    fn image() -> ElfImage {
        ElfImage::new(0x1000, ElfMachine::X86_64)
            .with_segment(Segment::new(0x1000, SegmentFlags::RX, b"code".to_vec()))
            .with_segment(Segment::new(0x2000, SegmentFlags::RW, b"data".to_vec()))
    }

    #[test]
    fn deterministic() {
        let img = image();
        let m = Manifest::enclave_default(2);
        assert_eq!(offline_measurement(&img, &m), offline_measurement(&img, &m));
    }

    #[test]
    fn content_changes_measurement() {
        let img = image();
        let m = Manifest::enclave_default(2);
        let base = offline_measurement(&img, &m);
        let mut img2 = img.clone();
        img2.segments[0].data[0] ^= 1;
        assert_ne!(offline_measurement(&img2, &m), base);
    }

    #[test]
    fn unmeasured_segments_do_not_affect() {
        let img = image();
        let m = Manifest::enclave_default(2).share_segment(1);
        let base = offline_measurement(&img, &m);
        let mut img2 = img.clone();
        img2.segments[1].data = b"DIFF".to_vec();
        assert_eq!(
            offline_measurement(&img2, &m),
            base,
            "shared segment not measured"
        );
        // But its *policy* is measured: a different manifest changes it.
        let m2 = Manifest::enclave_default(2);
        assert_ne!(offline_measurement(&img, &m2), base);
    }

    #[test]
    fn entry_changes_measurement() {
        let img = image();
        let m = Manifest::enclave_default(2);
        let base = offline_measurement(&img, &m);
        let mut img2 = img.clone();
        img2.entry = 0x2000;
        assert_ne!(offline_measurement(&img2, &m), base);
    }

    #[test]
    fn bss_padding_measured_as_zero() {
        let mut img = image();
        img.segments[1].memsz = 0x100; // BSS tail
        let m = Manifest::enclave_default(2);
        let d = segment_digests(&img, &m);
        assert_eq!(d.len(), 2);
        let mut padded_data = b"data".to_vec();
        padded_data.resize(0x100, 0);
        assert_eq!(d[1].1, tyche_crypto::hash(&padded_data));
    }

    #[test]
    #[should_panic(expected = "manifest must validate")]
    fn invalid_manifest_panics() {
        let img = image();
        offline_measurement(&img, &Manifest::enclave_default(5));
    }
}
