//! A minimal ELF64 object model with byte-exact serialization.
//!
//! Only what a domain loader needs is modeled: the ELF header, program
//! headers of type `PT_LOAD`, and the segment bytes. The writer produces a
//! valid little-endian ELF64 executable layout (magic, class, version,
//! machine) and the parser accepts exactly what the writer produces plus
//! any conforming ELF with `PT_LOAD` segments — each parsed field is
//! validated so corrupt images fail loudly, never silently.

/// ELF constants used by the reader/writer.
mod consts {
    pub const MAGIC: [u8; 4] = [0x7f, b'E', b'L', b'F'];
    pub const CLASS64: u8 = 2;
    pub const DATA_LE: u8 = 1;
    pub const VERSION: u8 = 1;
    pub const ET_EXEC: u16 = 2;
    pub const EM_X86_64: u16 = 0x3e;
    pub const EM_RISCV: u16 = 0xf3;
    pub const PT_LOAD: u32 = 1;
    pub const EHDR_SIZE: u64 = 64;
    pub const PHDR_SIZE: u64 = 56;
}

/// Segment permission flags (ELF `p_flags`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct SegmentFlags(pub u32);

impl SegmentFlags {
    /// Executable (PF_X).
    pub const X: u32 = 1;
    /// Writable (PF_W).
    pub const W: u32 = 2;
    /// Readable (PF_R).
    pub const R: u32 = 4;

    /// Read-only data.
    pub const RO: SegmentFlags = SegmentFlags(Self::R);
    /// Read-write data.
    pub const RW: SegmentFlags = SegmentFlags(Self::R | Self::W);
    /// Text (read-execute).
    pub const RX: SegmentFlags = SegmentFlags(Self::R | Self::X);

    /// True when readable.
    pub fn readable(self) -> bool {
        self.0 & Self::R != 0
    }

    /// True when writable.
    pub fn writable(self) -> bool {
        self.0 & Self::W != 0
    }

    /// True when executable.
    pub fn executable(self) -> bool {
        self.0 & Self::X != 0
    }
}

/// One loadable segment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Segment {
    /// Load address (the domain names physical memory, so this is a
    /// physical address in the reproduction).
    pub vaddr: u64,
    /// In-memory size; may exceed `data.len()` (BSS tail is zero-filled).
    pub memsz: u64,
    /// Permissions.
    pub flags: SegmentFlags,
    /// Initialized bytes.
    pub data: Vec<u8>,
}

impl Segment {
    /// Creates a segment whose memory size equals its data length.
    pub fn new(vaddr: u64, flags: SegmentFlags, data: Vec<u8>) -> Self {
        let memsz = data.len() as u64;
        Segment {
            vaddr,
            memsz,
            flags,
            data,
        }
    }

    /// The end address of the segment in memory.
    pub fn end(&self) -> u64 {
        self.vaddr + self.memsz
    }
}

/// Target machine of an image.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ElfMachine {
    /// x86_64.
    X86_64,
    /// RISC-V.
    RiscV,
}

/// Errors from parsing an ELF image.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ElfError {
    /// The file is shorter than a structure it claims to contain.
    Truncated,
    /// Bad magic bytes.
    BadMagic,
    /// Not 64-bit little-endian version 1.
    UnsupportedFormat,
    /// Unknown machine type.
    UnsupportedMachine(u16),
    /// A program header's file range is out of bounds or overflows.
    BadSegmentBounds,
    /// `p_memsz < p_filesz`, which no valid loader accepts.
    MemSmallerThanFile,
}

impl core::fmt::Display for ElfError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ElfError::Truncated => f.write_str("ELF file truncated"),
            ElfError::BadMagic => f.write_str("not an ELF file"),
            ElfError::UnsupportedFormat => f.write_str("only ELF64 little-endian supported"),
            ElfError::UnsupportedMachine(m) => write!(f, "unsupported machine {m:#x}"),
            ElfError::BadSegmentBounds => f.write_str("segment bounds invalid"),
            ElfError::MemSmallerThanFile => f.write_str("p_memsz smaller than p_filesz"),
        }
    }
}

impl std::error::Error for ElfError {}

/// An ELF64 image: entry point, machine, loadable segments.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ElfImage {
    /// Entry point address.
    pub entry: u64,
    /// Target machine.
    pub machine: ElfMachine,
    /// Loadable segments in file order.
    pub segments: Vec<Segment>,
}

impl ElfImage {
    /// Creates an empty image.
    pub fn new(entry: u64, machine: ElfMachine) -> Self {
        ElfImage {
            entry,
            machine,
            segments: Vec::new(),
        }
    }

    /// Adds a segment (builder style).
    pub fn with_segment(mut self, seg: Segment) -> Self {
        self.segments.push(seg);
        self
    }

    /// Serializes to ELF64 bytes: header, program headers, then segment
    /// data, 8-byte aligned.
    pub fn to_bytes(&self) -> Vec<u8> {
        use consts::*;
        let phnum = self.segments.len() as u64;
        let mut offsets = Vec::with_capacity(self.segments.len());
        let mut cursor = EHDR_SIZE + PHDR_SIZE * phnum;
        for seg in &self.segments {
            cursor = (cursor + 7) & !7;
            offsets.push(cursor);
            cursor += seg.data.len() as u64;
        }
        let mut out = Vec::with_capacity(cursor as usize);
        // ELF header.
        out.extend_from_slice(&MAGIC);
        out.push(CLASS64);
        out.push(DATA_LE);
        out.push(VERSION);
        out.extend_from_slice(&[0u8; 9]); // OSABI + padding
        out.extend_from_slice(&ET_EXEC.to_le_bytes());
        let machine = match self.machine {
            ElfMachine::X86_64 => EM_X86_64,
            ElfMachine::RiscV => EM_RISCV,
        };
        out.extend_from_slice(&machine.to_le_bytes());
        out.extend_from_slice(&1u32.to_le_bytes()); // e_version
        out.extend_from_slice(&self.entry.to_le_bytes());
        out.extend_from_slice(&EHDR_SIZE.to_le_bytes()); // e_phoff
        out.extend_from_slice(&0u64.to_le_bytes()); // e_shoff
        out.extend_from_slice(&0u32.to_le_bytes()); // e_flags
        out.extend_from_slice(&(EHDR_SIZE as u16).to_le_bytes()); // e_ehsize
        out.extend_from_slice(&(PHDR_SIZE as u16).to_le_bytes()); // e_phentsize
        out.extend_from_slice(&(phnum as u16).to_le_bytes()); // e_phnum
        out.extend_from_slice(&[0u8; 6]); // shentsize/shnum/shstrndx
        debug_assert_eq!(out.len() as u64, EHDR_SIZE);
        // Program headers.
        for (seg, off) in self.segments.iter().zip(&offsets) {
            out.extend_from_slice(&PT_LOAD.to_le_bytes());
            out.extend_from_slice(&seg.flags.0.to_le_bytes());
            out.extend_from_slice(&off.to_le_bytes()); // p_offset
            out.extend_from_slice(&seg.vaddr.to_le_bytes()); // p_vaddr
            out.extend_from_slice(&seg.vaddr.to_le_bytes()); // p_paddr
            out.extend_from_slice(&(seg.data.len() as u64).to_le_bytes()); // p_filesz
            out.extend_from_slice(&seg.memsz.to_le_bytes()); // p_memsz
            out.extend_from_slice(&4096u64.to_le_bytes()); // p_align
        }
        // Segment data.
        for (seg, off) in self.segments.iter().zip(&offsets) {
            while (out.len() as u64) < *off {
                out.push(0);
            }
            out.extend_from_slice(&seg.data);
        }
        out
    }

    /// Parses an ELF64 image.
    pub fn parse(bytes: &[u8]) -> Result<ElfImage, ElfError> {
        use consts::*;
        let read_u16 = |off: usize| -> Result<u16, ElfError> {
            bytes
                .get(off..off + 2)
                .map(|b| u16::from_le_bytes([b[0], b[1]]))
                .ok_or(ElfError::Truncated)
        };
        let read_u32 = |off: usize| -> Result<u32, ElfError> {
            bytes
                .get(off..off + 4)
                .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                .ok_or(ElfError::Truncated)
        };
        let read_u64 = |off: usize| -> Result<u64, ElfError> {
            bytes
                .get(off..off + 8)
                .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
                .ok_or(ElfError::Truncated)
        };
        if bytes.len() < EHDR_SIZE as usize {
            return Err(ElfError::Truncated);
        }
        if bytes[..4] != MAGIC {
            return Err(ElfError::BadMagic);
        }
        if bytes[4] != CLASS64 || bytes[5] != DATA_LE || bytes[6] != VERSION {
            return Err(ElfError::UnsupportedFormat);
        }
        let machine = match read_u16(18)? {
            EM_X86_64 => ElfMachine::X86_64,
            EM_RISCV => ElfMachine::RiscV,
            other => return Err(ElfError::UnsupportedMachine(other)),
        };
        let entry = read_u64(24)?;
        let phoff = read_u64(32)?;
        let phentsize = read_u16(54)? as u64;
        let phnum = read_u16(56)? as u64;
        if phentsize < PHDR_SIZE {
            return Err(ElfError::UnsupportedFormat);
        }
        let mut segments = Vec::new();
        for i in 0..phnum {
            let base = phoff
                .checked_add(i.checked_mul(phentsize).ok_or(ElfError::BadSegmentBounds)?)
                .ok_or(ElfError::BadSegmentBounds)? as usize;
            let p_type = read_u32(base)?;
            if p_type != PT_LOAD {
                continue;
            }
            let flags = SegmentFlags(read_u32(base + 4)?);
            let offset = read_u64(base + 8)?;
            let vaddr = read_u64(base + 16)?;
            let filesz = read_u64(base + 32)?;
            let memsz = read_u64(base + 40)?;
            if memsz < filesz {
                return Err(ElfError::MemSmallerThanFile);
            }
            if vaddr.checked_add(memsz).is_none() {
                return Err(ElfError::BadSegmentBounds);
            }
            let start = offset as usize;
            let end = offset
                .checked_add(filesz)
                .ok_or(ElfError::BadSegmentBounds)? as usize;
            let data = bytes
                .get(start..end)
                .ok_or(ElfError::BadSegmentBounds)?
                .to_vec();
            segments.push(Segment {
                vaddr,
                memsz,
                flags,
                data,
            });
        }
        Ok(ElfImage {
            entry,
            machine,
            segments,
        })
    }

    /// Total in-memory footprint (max end − min start), 0 when empty.
    pub fn footprint(&self) -> u64 {
        let lo = self.segments.iter().map(|s| s.vaddr).min().unwrap_or(0);
        let hi = self.segments.iter().map(|s| s.end()).max().unwrap_or(0);
        hi - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ElfImage {
        ElfImage::new(0x40_1000, ElfMachine::X86_64)
            .with_segment(Segment::new(
                0x40_1000,
                SegmentFlags::RX,
                b"\x90\x90\xc3".to_vec(),
            ))
            .with_segment(Segment::new(0x40_2000, SegmentFlags::RW, vec![1, 2, 3, 4]))
            .with_segment(Segment {
                vaddr: 0x40_3000,
                memsz: 0x2000,
                flags: SegmentFlags::RW,
                data: vec![7, 7],
            })
    }

    #[test]
    fn roundtrip() {
        let img = sample();
        let bytes = img.to_bytes();
        let parsed = ElfImage::parse(&bytes).unwrap();
        assert_eq!(parsed, img);
    }

    #[test]
    fn magic_and_layout() {
        let bytes = sample().to_bytes();
        assert_eq!(&bytes[..4], &[0x7f, b'E', b'L', b'F']);
        assert_eq!(bytes[4], 2, "ELF64");
        assert_eq!(bytes[5], 1, "little-endian");
        assert_eq!(u16::from_le_bytes([bytes[16], bytes[17]]), 2, "ET_EXEC");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(ElfImage::parse(b"not an elf"), Err(ElfError::Truncated));
        let mut bytes = sample().to_bytes();
        bytes[0] = 0x7e;
        assert_eq!(ElfImage::parse(&bytes), Err(ElfError::BadMagic));
        let mut bytes = sample().to_bytes();
        bytes[4] = 1; // ELF32
        assert_eq!(ElfImage::parse(&bytes), Err(ElfError::UnsupportedFormat));
        let mut bytes = sample().to_bytes();
        bytes[18] = 0x08; // MIPS
        assert!(matches!(
            ElfImage::parse(&bytes),
            Err(ElfError::UnsupportedMachine(8))
        ));
    }

    #[test]
    fn parse_rejects_bad_bounds() {
        let mut bytes = sample().to_bytes();
        // Corrupt the first phdr's p_offset to point past EOF.
        let phoff = 64usize;
        bytes[phoff + 8..phoff + 16].copy_from_slice(&(1u64 << 40).to_le_bytes());
        assert_eq!(ElfImage::parse(&bytes), Err(ElfError::BadSegmentBounds));
    }

    #[test]
    fn parse_rejects_memsz_lt_filesz() {
        let mut bytes = sample().to_bytes();
        let phoff = 64usize;
        bytes[phoff + 40..phoff + 48].copy_from_slice(&1u64.to_le_bytes());
        assert_eq!(ElfImage::parse(&bytes), Err(ElfError::MemSmallerThanFile));
    }

    #[test]
    fn bss_memsz_preserved() {
        let img = sample();
        let parsed = ElfImage::parse(&img.to_bytes()).unwrap();
        assert_eq!(parsed.segments[2].memsz, 0x2000);
        assert_eq!(parsed.segments[2].data, vec![7, 7]);
    }

    #[test]
    fn footprint() {
        assert_eq!(sample().footprint(), 0x40_5000 - 0x40_1000);
        assert_eq!(ElfImage::new(0, ElfMachine::RiscV).footprint(), 0);
    }

    #[test]
    fn riscv_machine_roundtrip() {
        let img = ElfImage::new(0x8000_0000, ElfMachine::RiscV).with_segment(Segment::new(
            0x8000_0000,
            SegmentFlags::RX,
            vec![0x13],
        ));
        let parsed = ElfImage::parse(&img.to_bytes()).unwrap();
        assert_eq!(parsed.machine, ElfMachine::RiscV);
    }

    #[test]
    fn empty_image_roundtrip() {
        let img = ElfImage::new(0, ElfMachine::X86_64);
        assert_eq!(ElfImage::parse(&img.to_bytes()).unwrap(), img);
    }
}
