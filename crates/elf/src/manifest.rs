//! The libtyche manifest: per-segment isolation policy (§4.2).
//!
//! "The library loads an ELF binary as a domain using a manifest that
//! describes which segments should run in which privilege ring, whether
//! they are shared or confidential, and if their content is part of the
//! attestation or not."

/// The privilege ring a segment's code runs in inside its domain.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Ring {
    /// Kernel/supervisor ring.
    Ring0,
    /// User ring.
    Ring3,
}

/// Whether a segment is confidential to the domain or shared with its
/// creator.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Visibility {
    /// Exclusively owned: granted, refcount 1, zeroed on revocation.
    Confidential,
    /// Shared with the loading domain (a communication window).
    Shared,
}

/// Policy for one ELF segment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SegmentPolicy {
    /// Index into the ELF image's segment table.
    pub segment: usize,
    /// Ring the segment's code runs in.
    pub ring: Ring,
    /// Confidential or shared with the creator.
    pub visibility: Visibility,
    /// Whether the segment's initial content is measured into the
    /// domain's attestation.
    pub measured: bool,
}

/// A whole-binary manifest.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Manifest {
    /// Per-segment policies, one per ELF segment (by index).
    pub segments: Vec<SegmentPolicy>,
}

impl Manifest {
    /// A sensible default for an enclave: every segment confidential and
    /// measured, code in ring 3.
    pub fn enclave_default(segment_count: usize) -> Manifest {
        Manifest {
            segments: (0..segment_count)
                .map(|segment| SegmentPolicy {
                    segment,
                    ring: Ring::Ring3,
                    visibility: Visibility::Confidential,
                    measured: true,
                })
                .collect(),
        }
    }

    /// A sandbox default: confidential, unmeasured (sandboxes bound a
    /// blast radius; they do not need attestation), ring 3.
    pub fn sandbox_default(segment_count: usize) -> Manifest {
        Manifest {
            segments: (0..segment_count)
                .map(|segment| SegmentPolicy {
                    segment,
                    ring: Ring::Ring3,
                    visibility: Visibility::Confidential,
                    measured: false,
                })
                .collect(),
        }
    }

    /// Marks segment `idx` shared (a communication window with the
    /// creator).
    pub fn share_segment(mut self, idx: usize) -> Manifest {
        if let Some(p) = self.segments.iter_mut().find(|p| p.segment == idx) {
            p.visibility = Visibility::Shared;
            p.measured = false; // shared windows hold runtime data
        }
        self
    }

    /// Policy for segment `idx`, if present.
    pub fn policy(&self, idx: usize) -> Option<&SegmentPolicy> {
        self.segments.iter().find(|p| p.segment == idx)
    }

    /// Validates the manifest against an image's segment count: every
    /// policy must reference an existing segment and no segment may have
    /// two policies.
    pub fn validate(&self, segment_count: usize) -> Result<(), String> {
        let mut seen = vec![false; segment_count];
        for p in &self.segments {
            if p.segment >= segment_count {
                return Err(format!("policy references missing segment {}", p.segment));
            }
            if seen[p.segment] {
                return Err(format!("duplicate policy for segment {}", p.segment));
            }
            seen[p.segment] = true;
            if p.visibility == Visibility::Shared && p.measured {
                return Err(format!(
                    "segment {} is shared and measured; shared windows hold runtime data and cannot have a stable measurement",
                    p.segment
                ));
            }
        }
        Ok(())
    }

    /// Canonical bytes for measurement (order-independent: sorted by
    /// segment index).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut policies = self.segments.clone();
        policies.sort_by_key(|p| p.segment);
        let mut out = Vec::with_capacity(8 + policies.len() * 8);
        out.extend_from_slice(b"tyche-manifest-v1");
        out.extend_from_slice(&(policies.len() as u64).to_le_bytes());
        for p in policies {
            out.extend_from_slice(&(p.segment as u64).to_le_bytes());
            out.push(match p.ring {
                Ring::Ring0 => 0,
                Ring::Ring3 => 3,
            });
            out.push(match p.visibility {
                Visibility::Confidential => 0,
                Visibility::Shared => 1,
            });
            out.push(p.measured as u8);
        }
        out
    }

    /// Serializes to the wire format the manifest ships in next to
    /// binaries. Unlike [`canonical_bytes`](Manifest::canonical_bytes)
    /// (the sorted measurement encoding) this preserves policy order and
    /// round-trips exactly through [`from_bytes`](Manifest::from_bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(MANIFEST_MAGIC.len() + 8 + self.segments.len() * 11);
        out.extend_from_slice(MANIFEST_MAGIC);
        out.extend_from_slice(&(self.segments.len() as u64).to_le_bytes());
        for p in &self.segments {
            out.extend_from_slice(&(p.segment as u64).to_le_bytes());
            out.push(match p.ring {
                Ring::Ring0 => 0,
                Ring::Ring3 => 3,
            });
            out.push(match p.visibility {
                Visibility::Confidential => 0,
                Visibility::Shared => 1,
            });
            out.push(p.measured as u8);
        }
        out
    }

    /// Parses the wire format produced by [`to_bytes`](Manifest::to_bytes).
    /// Total: returns `Err` on any malformed input, never panics — the
    /// manifest arrives from an untrusted loader.
    pub fn from_bytes(bytes: &[u8]) -> Result<Manifest, String> {
        let rest = bytes
            .strip_prefix(MANIFEST_MAGIC)
            .ok_or_else(|| "bad manifest magic".to_string())?;
        let (count_bytes, mut rest) = split_at_checked(rest, 8)?;
        let count = u64::from_le_bytes(count_bytes.try_into().expect("8 bytes"));
        let count: usize = count
            .try_into()
            .map_err(|_| "segment count overflows usize".to_string())?;
        // Each policy is 11 bytes; bound before allocating.
        if count > rest.len() / 11 {
            return Err(format!("segment count {count} exceeds payload"));
        }
        let mut segments = Vec::with_capacity(count);
        for _ in 0..count {
            let (entry, tail) = split_at_checked(rest, 11)?;
            rest = tail;
            let segment = u64::from_le_bytes(entry[..8].try_into().expect("8 bytes"));
            let segment: usize = segment
                .try_into()
                .map_err(|_| "segment index overflows usize".to_string())?;
            let ring = match entry[8] {
                0 => Ring::Ring0,
                3 => Ring::Ring3,
                other => return Err(format!("unknown ring {other}")),
            };
            let visibility = match entry[9] {
                0 => Visibility::Confidential,
                1 => Visibility::Shared,
                other => return Err(format!("unknown visibility {other}")),
            };
            let measured = match entry[10] {
                0 => false,
                1 => true,
                other => return Err(format!("bad measured flag {other}")),
            };
            segments.push(SegmentPolicy {
                segment,
                ring,
                visibility,
                measured,
            });
        }
        if !rest.is_empty() {
            return Err(format!("{} trailing bytes after manifest", rest.len()));
        }
        Ok(Manifest { segments })
    }
}

/// Magic prefix of the manifest wire format.
const MANIFEST_MAGIC: &[u8] = b"tyche-manifest-wire-v1";

/// `slice::split_at` that errors instead of panicking on short input.
fn split_at_checked(bytes: &[u8], mid: usize) -> Result<(&[u8], &[u8]), String> {
    if bytes.len() < mid {
        Err(format!("truncated manifest: need {mid} bytes, have {}", bytes.len()))
    } else {
        Ok(bytes.split_at(mid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let m = Manifest::enclave_default(3);
        assert_eq!(m.segments.len(), 3);
        assert!(m.segments.iter().all(|p| p.measured));
        assert!(m
            .segments
            .iter()
            .all(|p| p.visibility == Visibility::Confidential));
        let s = Manifest::sandbox_default(2);
        assert!(s.segments.iter().all(|p| !p.measured));
    }

    #[test]
    fn share_segment_unmeasures() {
        let m = Manifest::enclave_default(3).share_segment(1);
        assert_eq!(m.policy(1).unwrap().visibility, Visibility::Shared);
        assert!(!m.policy(1).unwrap().measured);
        assert!(m.policy(0).unwrap().measured);
        assert!(m.validate(3).is_ok());
    }

    #[test]
    fn validate_rejects_bad_manifests() {
        let m = Manifest::enclave_default(3);
        assert!(
            m.validate(2).is_err(),
            "policy references segment 2 of 2-segment image"
        );
        let mut dup = Manifest::enclave_default(2);
        dup.segments.push(dup.segments[0]);
        assert!(dup.validate(2).is_err(), "duplicate policy");
        let mut shared_measured = Manifest::enclave_default(1);
        shared_measured.segments[0].visibility = Visibility::Shared;
        assert!(
            shared_measured.validate(1).is_err(),
            "shared+measured contradiction"
        );
    }

    #[test]
    fn canonical_bytes_order_independent() {
        let a = Manifest::enclave_default(3);
        let mut b = a.clone();
        b.segments.reverse();
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
        // And policy changes change the bytes.
        let c = a.clone().share_segment(0);
        assert_ne!(a.canonical_bytes(), c.canonical_bytes());
    }

    #[test]
    fn wire_roundtrip() {
        // The manifest ships next to binaries; serialization must exist
        // and round-trip exactly, including policy order.
        for m in [
            Manifest::default(),
            Manifest::enclave_default(3).share_segment(1),
            Manifest::sandbox_default(5),
        ] {
            let bytes = m.to_bytes();
            assert_eq!(Manifest::from_bytes(&bytes).unwrap(), m);
        }
        let mut reordered = Manifest::enclave_default(3);
        reordered.segments.reverse();
        let back = Manifest::from_bytes(&reordered.to_bytes()).unwrap();
        assert_eq!(back, reordered, "wire format preserves order");
    }

    #[test]
    fn wire_parser_is_total() {
        // The parser must reject, not panic on, malformed input.
        assert!(Manifest::from_bytes(b"").is_err());
        assert!(Manifest::from_bytes(b"not a manifest").is_err());
        let good = Manifest::enclave_default(2).to_bytes();
        assert!(Manifest::from_bytes(&good[..good.len() - 1]).is_err(), "truncated");
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(Manifest::from_bytes(&trailing).is_err(), "trailing bytes");
        let mut huge_count = good.clone();
        // Claim u64::MAX segments: must be rejected without allocating.
        let magic_len = b"tyche-manifest-wire-v1".len();
        huge_count[magic_len..magic_len + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(Manifest::from_bytes(&huge_count).is_err());
        let mut bad_ring = good.clone();
        bad_ring[magic_len + 8 + 8] = 7;
        assert!(Manifest::from_bytes(&bad_ring).is_err());
    }
}
