//! The libtyche manifest: per-segment isolation policy (§4.2).
//!
//! "The library loads an ELF binary as a domain using a manifest that
//! describes which segments should run in which privilege ring, whether
//! they are shared or confidential, and if their content is part of the
//! attestation or not."

use serde::{Deserialize, Serialize};

/// The privilege ring a segment's code runs in inside its domain.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize, Hash)]
pub enum Ring {
    /// Kernel/supervisor ring.
    Ring0,
    /// User ring.
    Ring3,
}

/// Whether a segment is confidential to the domain or shared with its
/// creator.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize, Hash)]
pub enum Visibility {
    /// Exclusively owned: granted, refcount 1, zeroed on revocation.
    Confidential,
    /// Shared with the loading domain (a communication window).
    Shared,
}

/// Policy for one ELF segment.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct SegmentPolicy {
    /// Index into the ELF image's segment table.
    pub segment: usize,
    /// Ring the segment's code runs in.
    pub ring: Ring,
    /// Confidential or shared with the creator.
    pub visibility: Visibility,
    /// Whether the segment's initial content is measured into the
    /// domain's attestation.
    pub measured: bool,
}

/// A whole-binary manifest.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct Manifest {
    /// Per-segment policies, one per ELF segment (by index).
    pub segments: Vec<SegmentPolicy>,
}

impl Manifest {
    /// A sensible default for an enclave: every segment confidential and
    /// measured, code in ring 3.
    pub fn enclave_default(segment_count: usize) -> Manifest {
        Manifest {
            segments: (0..segment_count)
                .map(|segment| SegmentPolicy {
                    segment,
                    ring: Ring::Ring3,
                    visibility: Visibility::Confidential,
                    measured: true,
                })
                .collect(),
        }
    }

    /// A sandbox default: confidential, unmeasured (sandboxes bound a
    /// blast radius; they do not need attestation), ring 3.
    pub fn sandbox_default(segment_count: usize) -> Manifest {
        Manifest {
            segments: (0..segment_count)
                .map(|segment| SegmentPolicy {
                    segment,
                    ring: Ring::Ring3,
                    visibility: Visibility::Confidential,
                    measured: false,
                })
                .collect(),
        }
    }

    /// Marks segment `idx` shared (a communication window with the
    /// creator).
    pub fn share_segment(mut self, idx: usize) -> Manifest {
        if let Some(p) = self.segments.iter_mut().find(|p| p.segment == idx) {
            p.visibility = Visibility::Shared;
            p.measured = false; // shared windows hold runtime data
        }
        self
    }

    /// Policy for segment `idx`, if present.
    pub fn policy(&self, idx: usize) -> Option<&SegmentPolicy> {
        self.segments.iter().find(|p| p.segment == idx)
    }

    /// Validates the manifest against an image's segment count: every
    /// policy must reference an existing segment and no segment may have
    /// two policies.
    pub fn validate(&self, segment_count: usize) -> Result<(), String> {
        let mut seen = vec![false; segment_count];
        for p in &self.segments {
            if p.segment >= segment_count {
                return Err(format!("policy references missing segment {}", p.segment));
            }
            if seen[p.segment] {
                return Err(format!("duplicate policy for segment {}", p.segment));
            }
            seen[p.segment] = true;
            if p.visibility == Visibility::Shared && p.measured {
                return Err(format!(
                    "segment {} is shared and measured; shared windows hold runtime data and cannot have a stable measurement",
                    p.segment
                ));
            }
        }
        Ok(())
    }

    /// Canonical bytes for measurement (order-independent: sorted by
    /// segment index).
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut policies = self.segments.clone();
        policies.sort_by_key(|p| p.segment);
        let mut out = Vec::with_capacity(8 + policies.len() * 8);
        out.extend_from_slice(b"tyche-manifest-v1");
        out.extend_from_slice(&(policies.len() as u64).to_le_bytes());
        for p in policies {
            out.extend_from_slice(&(p.segment as u64).to_le_bytes());
            out.push(match p.ring {
                Ring::Ring0 => 0,
                Ring::Ring3 => 3,
            });
            out.push(match p.visibility {
                Visibility::Confidential => 0,
                Visibility::Shared => 1,
            });
            out.push(p.measured as u8);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let m = Manifest::enclave_default(3);
        assert_eq!(m.segments.len(), 3);
        assert!(m.segments.iter().all(|p| p.measured));
        assert!(m
            .segments
            .iter()
            .all(|p| p.visibility == Visibility::Confidential));
        let s = Manifest::sandbox_default(2);
        assert!(s.segments.iter().all(|p| !p.measured));
    }

    #[test]
    fn share_segment_unmeasures() {
        let m = Manifest::enclave_default(3).share_segment(1);
        assert_eq!(m.policy(1).unwrap().visibility, Visibility::Shared);
        assert!(!m.policy(1).unwrap().measured);
        assert!(m.policy(0).unwrap().measured);
        assert!(m.validate(3).is_ok());
    }

    #[test]
    fn validate_rejects_bad_manifests() {
        let m = Manifest::enclave_default(3);
        assert!(
            m.validate(2).is_err(),
            "policy references segment 2 of 2-segment image"
        );
        let mut dup = Manifest::enclave_default(2);
        dup.segments.push(dup.segments[0]);
        assert!(dup.validate(2).is_err(), "duplicate policy");
        let mut shared_measured = Manifest::enclave_default(1);
        shared_measured.segments[0].visibility = Visibility::Shared;
        assert!(
            shared_measured.validate(1).is_err(),
            "shared+measured contradiction"
        );
    }

    #[test]
    fn canonical_bytes_order_independent() {
        let a = Manifest::enclave_default(3);
        let mut b = a.clone();
        b.segments.reverse();
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
        // And policy changes change the bytes.
        let c = a.clone().share_segment(0);
        assert_ne!(a.canonical_bytes(), c.canonical_bytes());
    }

    #[test]
    fn serde_derives_compile() {
        // The manifest ships next to binaries; Serialize/Deserialize must
        // exist. Asserting the trait bounds at compile time is enough —
        // no JSON library is a dependency of this crate.
        fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
        assert_serde::<Manifest>();
        assert_serde::<SegmentPolicy>();
    }
}
