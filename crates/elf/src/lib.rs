//! ELF64 images and the libtyche manifest (§4.2 of the paper).
//!
//! libtyche "loads an ELF binary as a domain using a manifest that
//! describes which segments should run in which privilege ring, whether
//! they are shared or confidential, and if their content is part of the
//! attestation", and "supports generating a binary's hash offline to be
//! compared with the attestation provided by Tyche".
//!
//! This crate provides both halves, implemented from scratch:
//!
//! - [`image`]: a minimal ELF64 object model with a byte-exact writer and
//!   parser (just what a loader needs: header + program headers + segment
//!   bytes);
//! - [`manifest`]: the per-segment policy manifest;
//! - [`measure`]: the offline measurement — the same digest the monitor
//!   computes when the image is loaded, computable by a verifier who has
//!   only the ELF file and the manifest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod image;
pub mod manifest;
pub mod measure;

pub use image::{ElfError, ElfImage, Segment, SegmentFlags};
pub use manifest::{Manifest, Ring, SegmentPolicy, Visibility};
pub use measure::offline_measurement;
