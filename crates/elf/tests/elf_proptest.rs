//! Property tests for the ELF64 writer/parser and the measurement:
//! write→parse is the identity, parsing never panics on mutated bytes,
//! and measurements are injective over the measured surface.

use proptest::prelude::*;
use tyche_elf::image::{ElfImage, ElfMachine, Segment, SegmentFlags};
use tyche_elf::manifest::Manifest;
use tyche_elf::measure::offline_measurement;

fn segment_strategy() -> impl Strategy<Value = Segment> {
    (
        0u64..(1 << 30),
        proptest::collection::vec(any::<u8>(), 0..256),
        0u64..512,
        0u32..8,
    )
        .prop_map(|(vaddr, data, extra_mem, flags)| Segment {
            vaddr: vaddr & !0xfff,
            memsz: data.len() as u64 + extra_mem,
            flags: SegmentFlags(flags),
            data,
        })
}

fn image_strategy() -> impl Strategy<Value = ElfImage> {
    (
        any::<u64>(),
        any::<bool>(),
        proptest::collection::vec(segment_strategy(), 0..6),
    )
        .prop_map(|(entry, riscv, segments)| ElfImage {
            entry,
            machine: if riscv {
                ElfMachine::RiscV
            } else {
                ElfMachine::X86_64
            },
            segments,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn write_parse_roundtrip(img in image_strategy()) {
        let bytes = img.to_bytes();
        let parsed = ElfImage::parse(&bytes).expect("own output parses");
        prop_assert_eq!(parsed, img);
    }

    #[test]
    fn parser_total_on_mutations(img in image_strategy(), flips in proptest::collection::vec((0usize..4096, any::<u8>()), 1..8)) {
        // Bit-flip the serialized image anywhere: the parser must return
        // Ok or Err, never panic, never read out of bounds.
        let mut bytes = img.to_bytes();
        for (pos, val) in flips {
            if !bytes.is_empty() {
                let p = pos % bytes.len();
                bytes[p] ^= val;
            }
        }
        let _ = ElfImage::parse(&bytes);
    }

    #[test]
    fn parser_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = ElfImage::parse(&bytes);
    }

    #[test]
    fn measurement_sensitive_to_measured_bytes(
        mut img in image_strategy(),
        flip in (0usize..64, 1u8..255),
    ) {
        prop_assume!(!img.segments.is_empty());
        // Non-overlapping pages are not required for measurement; use the
        // enclave-default manifest (everything measured).
        let manifest = Manifest::enclave_default(img.segments.len());
        let base = offline_measurement(&img, &manifest);
        let seg = 0;
        prop_assume!(!img.segments[seg].data.is_empty());
        let pos = flip.0 % img.segments[seg].data.len();
        img.segments[seg].data[pos] ^= flip.1;
        let changed = offline_measurement(&img, &manifest);
        prop_assert_ne!(base, changed, "flipping a measured byte changes the measurement");
    }
}
