//! F2 — the confidential SaaS pipeline: setup, attestation, and
//! steady-state per-request cost.

use criterion::{criterion_group, criterion_main, Criterion};
use tyche_bench::scenarios;

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("f2_saas_pipeline");
    group.sample_size(15);

    group.bench_function("deployment_setup", |b| {
        b.iter(scenarios::fig2);
    });

    group.bench_function("customer_verification", |b| {
        let mut f = scenarios::fig2();
        b.iter(|| assert!(scenarios::fig2_customer_verifies(&mut f)));
    });

    group.bench_function("pipeline_request", |b| {
        let mut f = scenarios::fig2();
        let data = *b"customer sensitive data 32 byte!";
        b.iter(|| scenarios::fig2_run_pipeline(&mut f, 0xdead_beef, &data));
    });

    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
