//! C2 — domain transition latency: mediated (VMCALL) vs fast (VMFUNC),
//! with and without warm TLB/cache, plus raw monitor-call dispatch.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tyche_bench::{boot, spawn_sealed};
use tyche_core::prelude::*;
use tyche_monitor::abi::MonitorCall;

fn bench_transitions(c: &mut Criterion) {
    let mut group = c.benchmark_group("c2_transitions");
    group.sample_size(30);

    group.bench_function("mediated_roundtrip", |b| {
        let mut m = boot();
        let (_d, gate) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
        b.iter(|| {
            m.call(
                0,
                MonitorCall::Enter {
                    cap: black_box(gate),
                },
            )
            .expect("enter");
            m.call(0, MonitorCall::Return).expect("return");
        });
        // Counter symmetry: every round trip is exactly two mediated
        // one-way transitions, and the fast counter never moves.
        assert_eq!(m.stats().transitions_mediated % 2, 0);
        assert!(m.stats().transitions_mediated > 0);
        assert_eq!(m.stats().transitions_fast, 0);
    });

    group.bench_function("vmfunc_roundtrip", |b| {
        let mut m = boot();
        let (_d, gate) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
        b.iter(|| {
            m.enter_fast(0, black_box(gate)).expect("enter");
            m.ret_fast(0).expect("ret");
        });
        // Counter symmetry: every round trip is exactly two fast one-way
        // transitions, and the mediated counter never moves.
        assert_eq!(m.stats().transitions_fast % 2, 0);
        assert!(m.stats().transitions_fast > 0);
        assert_eq!(m.stats().transitions_mediated, 0);
    });

    group.bench_function("mediated_with_flush_policy", |b| {
        let mut m = boot();
        let (d, _gate) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
        let os = m.engine.root().expect("root");
        let gate = m
            .engine
            .make_transition(os, d, RevocationPolicy::OBFUSCATE)
            .expect("gate");
        m.sync_effects().expect("sync");
        b.iter(|| {
            m.call(
                0,
                MonitorCall::Enter {
                    cap: black_box(gate),
                },
            )
            .expect("enter");
            m.dom_write(0, 0x10_0000, &[1]).expect("dirty a line");
            m.call(0, MonitorCall::Return).expect("return");
        });
        assert_eq!(m.stats().transitions_mediated % 2, 0);
        assert_eq!(m.stats().transitions_fast, 0);
    });

    // Baseline: what a monitor call costs without a transition at all.
    group.bench_function("noop_monitor_call", |b| {
        let mut m = boot();
        b.iter(|| {
            m.call(0, MonitorCall::Enumerate).expect("enumerate");
        });
    });

    group.finish();
}

criterion_group!(benches, bench_transitions);
criterion_main!(benches);
