//! C12 — confidential VM lifecycle: launch (grant + measure), world
//! switch, and teardown (zero + flush) as guest RAM grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tyche_bench::boot;
use tyche_monitor::Monitor;

fn launch(m: &mut Monitor, mib: u64) -> libtyche::ConfidentialVm {
    let base = 0x40_0000u64;
    let end = base + mib * 1024 * 1024;
    m.dom_write(0, base, b"guest kernel").expect("stage");
    libtyche::ConfidentialVm::launch(m, 0, (base, end), &[0], base, &[(base, base + 0x1000)])
        .expect("launch")
}

fn bench_cvm(c: &mut Criterion) {
    let mut group = c.benchmark_group("c12_cvm");
    group.sample_size(10);

    for &mib in &[1u64, 4, 16] {
        group.bench_with_input(BenchmarkId::new("launch_destroy", mib), &mib, |b, &mib| {
            b.iter_batched(
                boot,
                |mut m| {
                    let vm = launch(&mut m, mib);
                    vm.destroy(&mut m, 0).expect("destroy");
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }

    group.bench_function("world_switch", |b| {
        let mut m = boot();
        let vm = launch(&mut m, 1);
        b.iter(|| {
            vm.enter(&mut m, 0).expect("enter");
            libtyche::ConfidentialVm::exit(&mut m, 0).expect("exit");
        });
    });

    group.bench_function("attest_cvm", |b| {
        let mut m = boot();
        let vm = launch(&mut m, 1);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            vm.attest(&mut m, 0, i).expect("attest")
        });
    });

    group.finish();
}

criterion_group!(benches, bench_cvm);
criterion_main!(benches);
