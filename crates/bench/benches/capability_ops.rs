//! Capability-engine operation costs: the §3.2 API primitives, measured
//! at the engine level (no hardware sync) and through the full monitor
//! call path, across growing system sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tyche_bench::boot;
use tyche_core::prelude::*;

/// An engine pre-populated with `domains` domains each holding one
/// shared window, to measure operation cost at scale.
fn populated_engine(domains: usize) -> (CapEngine, DomainId, CapId) {
    let mut e = CapEngine::new();
    let os = e.create_root_domain();
    let ram = e.endow(os, Resource::mem(0, 1 << 32), Rights::RWX).unwrap();
    for i in 0..domains {
        let (d, _) = e.create_domain(os).unwrap();
        let s = 0x10_0000 + (i as u64) * 0x10_000;
        e.share(
            os,
            ram,
            d,
            Some(MemRegion::new(s, s + 0x1000)),
            Rights::RO,
            RevocationPolicy::NONE,
        )
        .unwrap();
    }
    e.drain_effects();
    (e, os, ram)
}

fn bench_engine_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_ops");
    group.sample_size(50);

    for &n in &[10usize, 100, 1000] {
        group.bench_with_input(BenchmarkId::new("share", n), &n, |b, &n| {
            let (e, os, ram) = populated_engine(n);
            let (target, _) = {
                let mut e2 = e.clone();
                e2.create_domain(os).unwrap()
            };
            let mut i = 0u64;
            b.iter_batched(
                || {
                    let mut e2 = e.clone();
                    let (t, _) = e2.create_domain(os).unwrap();
                    (e2, t)
                },
                |(mut e2, t)| {
                    i += 1;
                    let s = 0x8000_0000 + (i % 1000) * 0x1000;
                    black_box(
                        e2.share(
                            os,
                            ram,
                            t,
                            Some(MemRegion::new(s, s + 0x1000)),
                            Rights::RO,
                            RevocationPolicy::NONE,
                        )
                        .unwrap(),
                    );
                },
                criterion::BatchSize::SmallInput,
            );
            let _ = target;
        });

        group.bench_with_input(BenchmarkId::new("refcount_query", n), &n, |b, &n| {
            let (e, _os, _ram) = populated_engine(n);
            b.iter(|| black_box(e.refcount_mem(MemRegion::new(0x10_0000, 0x10_1000))));
        });

        group.bench_with_input(BenchmarkId::new("enumerate", n), &n, |b, &n| {
            let (e, os, _ram) = populated_engine(n);
            b.iter(|| black_box(e.enumerate(os).unwrap().len()));
        });

        group.bench_with_input(BenchmarkId::new("audit", n), &n, |b, &n| {
            let (e, _os, _ram) = populated_engine(n);
            b.iter(|| assert!(tyche_core::audit::audit(black_box(&e)).is_empty()));
        });
    }

    group.bench_function("split_merge_cycle", |b| {
        let (e, os, ram) = populated_engine(10);
        b.iter_batched(
            || e.clone(),
            |mut e2| {
                let (lo, hi) = e2.split(os, ram, 0x4000_0000).unwrap();
                e2.revoke(os, lo).unwrap();
                e2.revoke(os, hi).unwrap();
            },
            criterion::BatchSize::SmallInput,
        );
    });

    group.finish();
}

fn bench_full_path_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor_call_ops");
    group.sample_size(20);

    // Full path: engine + ABI + backend (EPT programming).
    group.bench_function("grant_revoke_page_full_path", |b| {
        let mut m = boot();
        let os = m.engine.root().expect("root");
        let (child, _) = m.engine.create_domain(os).expect("child");
        m.sync_effects().expect("sync");
        let page = {
            let mut client = libtyche::TycheClient::new(&mut m, 0);
            client.carve(0x20_0000, 0x20_1000).expect("carve")
        };
        b.iter(|| {
            let mut client = libtyche::TycheClient::new(&mut m, 0);
            let g = client
                .grant(black_box(page), child, Rights::RW, RevocationPolicy::ZERO)
                .expect("grant");
            client.revoke(g).expect("revoke");
        });
    });

    group.bench_function("domain_create_kill_full_path", |b| {
        let mut m = boot();
        b.iter(|| {
            let mut client = libtyche::TycheClient::new(&mut m, 0);
            let (d, _t) = client.create_domain().expect("create");
            client.kill(d).expect("kill");
        });
    });

    group.finish();
}

criterion_group!(benches, bench_engine_ops, bench_full_path_ops);
criterion_main!(benches);
