//! C5 — enclave lifecycle: Tyche enclave creation/teardown vs the SGX
//! model and the process baseline, plus nesting depth scaling (which only
//! Tyche can do at all).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tyche_baselines::process::{ProcessCosts, ProcessSim};
use tyche_baselines::sgx::{HostPid, SgxMachine};
use tyche_bench::boot;
use tyche_core::prelude::*;
use tyche_elf::image::{ElfImage, ElfMachine, Segment, SegmentFlags};
use tyche_elf::manifest::Manifest;

fn enclave_image(base: u64, pages: u64) -> ElfImage {
    ElfImage::new(base, ElfMachine::X86_64).with_segment(Segment {
        vaddr: base,
        memsz: pages * 4096,
        flags: SegmentFlags::RW,
        data: b"enclave image".to_vec(),
    })
}

fn bench_enclave_lifecycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("c5_enclave_lifecycle");
    group.sample_size(20);

    for &pages in &[1u64, 16, 64] {
        group.bench_with_input(
            BenchmarkId::new("tyche_load_seal_destroy", pages),
            &pages,
            |b, &pages| {
                b.iter_batched(
                    boot,
                    |mut m| {
                        let e = libtyche::Enclave::load(
                            &mut m,
                            0,
                            enclave_image(0x10_0000, pages),
                            Manifest::enclave_default(1),
                            false,
                        )
                        .expect("load");
                        let mut client = libtyche::TycheClient::new(&mut m, 0);
                        client.kill(e.domain()).expect("kill");
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );

        group.bench_with_input(
            BenchmarkId::new("sgx_model_ecreate", pages),
            &pages,
            |b, &pages| {
                b.iter_batched(
                    || SgxMachine::new(100_000),
                    |mut sgx| {
                        let e = sgx
                            .ecreate(
                                HostPid(1),
                                (0x10_0000, 0x10_0000 + pages * 4096),
                                pages,
                                false,
                            )
                            .expect("ecreate");
                        sgx.edestroy(e).expect("edestroy");
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }

    group.bench_function("process_baseline_create_destroy", |b| {
        b.iter(|| {
            let p = ProcessSim::create(ProcessCosts::default(), 64 * 1024);
            p.destroy()
        });
    });

    group.finish();
}

fn bench_nesting(c: &mut Criterion) {
    let mut group = c.benchmark_group("c5_nesting_depth");
    group.sample_size(15);

    // Nesting depth d: enclave in enclave in ... — impossible past depth 1
    // in the SGX model, linear work for Tyche.
    for &depth in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("tyche_nested", depth),
            &depth,
            |b, &depth| {
                b.iter_batched(
                    boot,
                    |mut m| {
                        // Each level carves from its own grant and spawns the
                        // next level inside.
                        let mut base = 0x10_0000u64;
                        let mut len: u64 = 0x100_0000 >> 1;
                        let mut client = libtyche::TycheClient::new(&mut m, 0);
                        for _ in 0..depth {
                            let (d, t) = client.create_domain().expect("create");
                            let cap = client.carve(base, base + len).expect("carve");
                            client
                                .grant(cap, d, Rights::RWX, RevocationPolicy::NONE)
                                .expect("grant");
                            let me = client.whoami();
                            let core_cap = client
                                .monitor
                                .engine
                                .caps_of(me)
                                .iter()
                                .find(|k| k.active && matches!(k.resource, Resource::CpuCore(0)))
                                .map(|k| k.id)
                                .expect("core");
                            client
                                .share(core_cap, d, None, Rights::USE, RevocationPolicy::NONE)
                                .expect("share core");
                            client.set_entry(d, base).expect("entry");
                            client.seal(d, SealPolicy::nestable()).expect("seal");
                            client.enter(t).expect("enter");
                            base += 0x1000;
                            len = ((len / 2) & !0xfffu64).max(0x2000);
                        }
                        // Unwind.
                        for _ in 0..depth {
                            let mut c2 = libtyche::TycheClient::new(&mut m, 0);
                            c2.ret().expect("ret");
                        }
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_enclave_lifecycle, bench_nesting);
criterion_main!(benches);
