//! C7 — PMP layout validation cost and the fixed-entry frontier, vs the
//! EPT backend which absorbs arbitrary fragmentation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tyche_bench::boot;
use tyche_core::prelude::*;
use tyche_monitor::abi::MonitorCall;
use tyche_monitor::{boot_riscv, BootConfig, Monitor};

fn ram_cap(m: &Monitor) -> CapId {
    let os = m.engine.root().expect("root");
    m.engine
        .caps_of(os)
        .iter()
        .find(|c| c.active && c.is_memory())
        .map(|c| c.id)
        .expect("ram")
}

/// Shares `frags` discontiguous single pages into a fresh child; returns
/// how many the backend accepted.
fn fragment_into_child(m: &mut Monitor, frags: usize) -> usize {
    let os = m.engine.root().expect("root");
    let (child, _) = m.engine.create_domain(os).expect("child");
    m.sync_effects().expect("sync");
    let ram = ram_cap(m);
    let mut accepted = 0;
    for i in 0..frags {
        let s = 0x10_0000 + (i as u64) * 0x4000;
        if m.call(
            0,
            MonitorCall::Share {
                cap: ram,
                target: child,
                sub: Some((s, s + 0x1000)),
                rights: Rights::RO,
                policy: RevocationPolicy::NONE,
            },
        )
        .is_ok()
        {
            accepted += 1;
        }
    }
    accepted
}

fn bench_pmp(c: &mut Criterion) {
    let mut group = c.benchmark_group("c7_pmp_layout");
    group.sample_size(15);

    for &frags in &[4usize, 14, 20] {
        group.bench_with_input(BenchmarkId::new("riscv_pmp", frags), &frags, |b, &frags| {
            b.iter_batched(
                || boot_riscv(BootConfig::default()),
                |mut m| {
                    let accepted = fragment_into_child(&mut m, frags);
                    assert_eq!(accepted, frags.min(14), "PMP frontier at 14 fragments");
                },
                criterion::BatchSize::SmallInput,
            );
        });

        group.bench_with_input(BenchmarkId::new("x86_ept", frags), &frags, |b, &frags| {
            b.iter_batched(
                boot,
                |mut m| {
                    let accepted = fragment_into_child(&mut m, frags);
                    assert_eq!(accepted, frags, "EPT accepts all fragments");
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }

    // The PMP reprogram cost on a transition grows with segment count;
    // the EPT switch is O(1) (one EPTP write).
    for &frags in &[1usize, 7, 13] {
        group.bench_with_input(
            BenchmarkId::new("riscv_transition_with_frags", frags),
            &frags,
            |b, &frags| {
                let mut m = boot_riscv(BootConfig::default());
                let os = m.engine.root().expect("root");
                let (child, tcap) = m.engine.create_domain(os).expect("child");
                m.sync_effects().expect("sync");
                let ram = ram_cap(&m);
                for i in 0..frags {
                    let s = 0x10_0000 + (i as u64) * 0x4000;
                    m.call(
                        0,
                        MonitorCall::Share {
                            cap: ram,
                            target: child,
                            sub: Some((s, s + 0x1000)),
                            rights: Rights::RWX,
                            policy: RevocationPolicy::NONE,
                        },
                    )
                    .expect("share");
                }
                // Core + entry + seal.
                let core_cap = m
                    .engine
                    .caps_of(os)
                    .iter()
                    .find(|c| c.active && matches!(c.resource, Resource::CpuCore(0)))
                    .map(|c| c.id)
                    .expect("core");
                m.call(
                    0,
                    MonitorCall::Share {
                        cap: core_cap,
                        target: child,
                        sub: None,
                        rights: Rights::USE,
                        policy: RevocationPolicy::NONE,
                    },
                )
                .expect("share core");
                m.call(
                    0,
                    MonitorCall::SetEntry {
                        domain: child,
                        entry: 0x10_0000,
                    },
                )
                .expect("entry");
                m.call(
                    0,
                    MonitorCall::Seal {
                        domain: child,
                        allow_outward: false,
                        allow_children: false,
                    },
                )
                .expect("seal");
                b.iter(|| {
                    m.call(0, MonitorCall::Enter { cap: tcap }).expect("enter");
                    m.call(0, MonitorCall::Return).expect("return");
                });
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_pmp);
criterion_main!(benches);
