//! C3 — the cost of micro-architectural scrubbing on transitions, as a
//! function of the victim's cache footprint.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tyche_bench::{boot, spawn_sealed};
use tyche_core::prelude::*;
use tyche_monitor::abi::MonitorCall;

fn bench_flush_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("c3_flush_policy");
    group.sample_size(30);

    for &lines in &[0usize, 16, 64] {
        for flush in [false, true] {
            let name = format!("{}_{}lines", if flush { "flush" } else { "noflush" }, lines);
            group.bench_with_input(BenchmarkId::new(name, lines), &lines, |b, &lines| {
                let mut m = boot();
                let os = m.engine.root().expect("root");
                let (victim, _) =
                    spawn_sealed(&mut m, 0, 0x10_0000, 0x8000, &[0], SealPolicy::strict());
                let policy = if flush {
                    RevocationPolicy::OBFUSCATE
                } else {
                    RevocationPolicy::NONE
                };
                let gate = m.engine.make_transition(os, victim, policy).expect("gate");
                m.sync_effects().expect("sync");
                b.iter(|| {
                    m.call(0, MonitorCall::Enter { cap: gate }).expect("enter");
                    for i in 0..lines as u64 {
                        m.dom_write(0, 0x10_0000 + i * 64, &[i as u8])
                            .expect("touch");
                    }
                    m.call(0, MonitorCall::Return).expect("return");
                });
            });
        }
    }

    group.finish();
}

criterion_group!(benches, bench_flush_policy);
criterion_main!(benches);
