//! C8 — attestation costs: quote generation, report signing, and
//! end-to-end chain verification, scaling with domain resource counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tyche_bench::boot;
use tyche_core::prelude::*;
use tyche_monitor::attest::Verifier;
use tyche_monitor::boot::{expected_monitor_pcr, MONITOR_VERSION};
use tyche_monitor::Monitor;

/// A sealed domain with `n` shared memory windows.
fn domain_with_resources(m: &mut Monitor, n: usize) -> DomainId {
    let os = m.engine.root().expect("root");
    let (d, _) = m.engine.create_domain(os).expect("domain");
    let mut client = libtyche::TycheClient::new(m, 0);
    for i in 0..n as u64 {
        let s = 0x10_0000 + i * 0x2000;
        let cap = client.carve(s, s + 0x1000).expect("carve");
        client
            .share(cap, d, None, Rights::RO, RevocationPolicy::NONE)
            .expect("share");
    }
    m.engine.set_entry(os, d, 0x10_0000).expect("entry");
    m.engine.seal(os, d, SealPolicy::strict()).expect("seal");
    m.sync_effects().expect("sync");
    d
}

fn bench_attestation(c: &mut Criterion) {
    let mut group = c.benchmark_group("c8_attestation");
    group.sample_size(30);

    group.bench_function("tpm_quote", |b| {
        let m = boot();
        let mut i = 0u8;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(m.machine_quote([i; 32]).expect("quote"))
        });
    });

    for &n in &[1usize, 16, 64] {
        group.bench_with_input(BenchmarkId::new("sign_report", n), &n, |b, &n| {
            let mut m = boot();
            let d = domain_with_resources(&mut m, n);
            let mut i = 0u8;
            b.iter(|| {
                i = i.wrapping_add(1);
                black_box(m.attest_domain(d, [i; 32]).expect("attest"))
            });
        });

        group.bench_with_input(BenchmarkId::new("verify_chain", n), &n, |b, &n| {
            let mut m = boot();
            let d = domain_with_resources(&mut m, n);
            let verifier = Verifier {
                tpm_key: m.machine.tpm.attestation_key(),
                expected_monitor_pcr: expected_monitor_pcr(MONITOR_VERSION),
                monitor_key: m.report_key(),
            };
            let nonce = [7u8; 32];
            let quote = m.machine_quote(nonce).expect("quote");
            let signed = m.attest_domain(d, nonce).expect("attest");
            b.iter(|| {
                black_box(
                    verifier
                        .verify(&quote, &nonce, &signed, &nonce, None)
                        .expect("verify"),
                )
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_attestation);
criterion_main!(benches);
