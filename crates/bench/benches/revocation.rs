//! C4 — cascading revocation cost vs sharing-graph shape: chains,
//! fan-outs, and circular sharing. The paper's requirement is
//! correctness plus termination; the bench establishes the cost is
//! linear in subtree size regardless of shape.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tyche_core::prelude::*;

fn engine_with_ram() -> (CapEngine, DomainId, CapId) {
    let mut e = CapEngine::new();
    let os = e.create_root_domain();
    let ram = e.endow(os, Resource::mem(0, 1 << 30), Rights::RWX).unwrap();
    (e, os, ram)
}

/// A linear share chain of `n` domains; returns the top child cap.
fn chain(e: &mut CapEngine, os: DomainId, ram: CapId, n: usize) -> CapId {
    let mut dom = os;
    let mut cap = ram;
    let mut first = None;
    for _ in 0..n {
        let (d, _) = e.create_domain(dom).unwrap();
        cap = e
            .share(
                dom,
                cap,
                d,
                Some(MemRegion::new(0, 0x1000)),
                Rights::RW,
                RevocationPolicy::NONE,
            )
            .unwrap();
        if first.is_none() {
            first = Some(cap);
        }
        dom = d;
    }
    e.drain_effects();
    first.unwrap()
}

/// A star: the OS shares one page with `n` sibling domains; returns all
/// child caps' common parent (the os ram cap) — we revoke children by
/// killing... instead return the list head by revoking each: here we
/// instead share from one intermediate cap so one revoke kills all.
fn fanout(e: &mut CapEngine, os: DomainId, ram: CapId, n: usize) -> CapId {
    // One intermediate domain holds the window and fans it out.
    let (hub, _) = e.create_domain(os).unwrap();
    let hub_cap = e
        .share(
            os,
            ram,
            hub,
            Some(MemRegion::new(0, 0x1000)),
            Rights::RW,
            RevocationPolicy::NONE,
        )
        .unwrap();
    for _ in 0..n {
        let (d, _) = e.create_domain(os).unwrap();
        e.share(hub, hub_cap, d, None, Rights::RO, RevocationPolicy::NONE)
            .unwrap();
    }
    e.drain_effects();
    hub_cap
}

/// Circular sharing between two domains, `n` links deep.
fn circular(e: &mut CapEngine, os: DomainId, ram: CapId, n: usize) -> CapId {
    let (a, _) = e.create_domain(os).unwrap();
    let (b, _) = e.create_domain(os).unwrap();
    let first = e
        .share(
            os,
            ram,
            a,
            Some(MemRegion::new(0, 0x1000)),
            Rights::RW,
            RevocationPolicy::NONE,
        )
        .unwrap();
    let mut cur = first;
    let mut owners = (a, b);
    for _ in 0..n {
        cur = e
            .share(
                owners.0,
                cur,
                owners.1,
                None,
                Rights::RW,
                RevocationPolicy::NONE,
            )
            .unwrap();
        owners = (owners.1, owners.0);
    }
    e.drain_effects();
    first
}

fn bench_revocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("c4_revocation");
    group.sample_size(20);

    for &n in &[8usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("chain", n), &n, |bch, &n| {
            bch.iter_batched(
                || {
                    let (mut e, os, ram) = engine_with_ram();
                    let first = chain(&mut e, os, ram, n);
                    (e, os, first)
                },
                |(mut e, os, first)| {
                    e.revoke(os, first).unwrap();
                    assert_eq!(e.refcount_mem(MemRegion::new(0, 0x1000)), 1);
                },
                criterion::BatchSize::SmallInput,
            );
        });

        group.bench_with_input(BenchmarkId::new("fanout", n), &n, |bch, &n| {
            bch.iter_batched(
                || {
                    let (mut e, os, ram) = engine_with_ram();
                    let hub = fanout(&mut e, os, ram, n);
                    (e, os, hub)
                },
                |(mut e, os, hub)| {
                    e.revoke(os, hub).unwrap();
                    assert_eq!(e.refcount_mem(MemRegion::new(0, 0x1000)), 1);
                },
                criterion::BatchSize::SmallInput,
            );
        });

        group.bench_with_input(BenchmarkId::new("circular", n), &n, |bch, &n| {
            bch.iter_batched(
                || {
                    let (mut e, os, ram) = engine_with_ram();
                    let first = circular(&mut e, os, ram, n);
                    (e, os, first)
                },
                |(mut e, os, first)| {
                    e.revoke(os, first).unwrap();
                    assert_eq!(e.refcount_mem(MemRegion::new(0, 0x1000)), 1);
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }

    group.finish();
}

criterion_group!(benches, bench_revocation);
criterion_main!(benches);
