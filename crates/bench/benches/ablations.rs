//! Ablations for the reproduction's load-bearing design choices:
//!
//! - **PMP segment coalescing**: without merging adjacent same-rights
//!   pages, realistic layouts blow the 14-entry budget immediately; with
//!   it, contiguous layouts cost O(1) entries (the C7 frontier depends
//!   on this).
//! - **Permission-carrying TLB**: warm-TLB vs flush-every-access memory
//!   throughput — what the TLB model buys, and what a paranoid
//!   flush-always policy would cost.
//! - **Hardware auditing**: the cost of `Monitor::audit_hardware` (the
//!   judiciary's executive oversight) as domains multiply.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tyche_bench::{boot, spawn_sealed};
use tyche_core::prelude::*;
use tyche_monitor::backend::riscv::coalesce;
use tyche_monitor::backend::PageView;

fn bench_coalescing(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pmp_coalescing");
    for &pages in &[64usize, 512, 4096] {
        // A realistic view: one big contiguous RWX region.
        let mut view = PageView::new();
        for i in 0..pages {
            view.insert(0x10_0000 + (i as u64) * 4096, Rights::RWX);
        }
        group.bench_with_input(
            BenchmarkId::new("with_coalescing", pages),
            &view,
            |b, view| {
                b.iter(|| {
                    let segs = coalesce(black_box(view));
                    let entries: usize = segs.iter().map(|s| s.entries_needed()).sum();
                    assert!(entries <= 2, "contiguous layout fits trivially");
                    entries
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("naive_per_page", pages),
            &view,
            |b, view| {
                b.iter(|| {
                    // The ablated design: one NAPOT entry per page — blows
                    // the 14-entry budget for anything non-trivial.
                    let entries = black_box(view).len();
                    assert!(
                        entries > 14,
                        "every tested size exceeds the PMP budget un-coalesced"
                    );
                    entries
                });
            },
        );
    }
    group.finish();
}

fn bench_tlb_value(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_tlb");
    group.sample_size(20);

    group.bench_function("warm_tlb_reads", |b| {
        let mut m = boot();
        let mut buf = [0u8; 64];
        b.iter(|| {
            for i in 0..64u64 {
                m.dom_read(0, 0x10_0000 + i * 4096, &mut buf).expect("read");
            }
        });
    });

    group.bench_function("flush_every_iteration", |b| {
        let mut m = boot();
        let os = m.engine.root().expect("root");
        let tag = m
            .x86_backend()
            .and_then(|x| x.ept_root(os))
            .expect("tag")
            .as_u64();
        let mut buf = [0u8; 64];
        b.iter(|| {
            m.machine.tlb.flush_domain(tag);
            for i in 0..64u64 {
                m.dom_read(0, 0x10_0000 + i * 4096, &mut buf).expect("read");
            }
        });
    });

    group.finish();
}

fn bench_audit_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_audit_hardware");
    group.sample_size(10);
    for &domains in &[1usize, 8, 32] {
        group.bench_with_input(BenchmarkId::new("domains", domains), &domains, |b, &n| {
            let mut m = boot();
            for i in 0..n as u64 {
                spawn_sealed(
                    &mut m,
                    0,
                    0x10_0000 + i * 0x4000,
                    0x1000,
                    &[0],
                    SealPolicy::strict(),
                );
            }
            b.iter(|| {
                let issues = m.audit_hardware();
                assert!(issues.is_empty());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_coalescing, bench_tlb_value, bench_audit_cost);
criterion_main!(benches);
