//! C6 — isolating an untrusted library: Tyche in-process compartment vs
//! the separate-process baseline, across creation, call, and teardown.

use criterion::{criterion_group, criterion_main, Criterion};
use tyche_baselines::process::{ProcessCosts, ProcessSim};
use tyche_bench::boot;

const SCRATCH: (u64, u64) = (0x20_0000, 0x20_4000);
const WINDOW: (u64, u64) = (0x30_0000, 0x30_1000);

fn bench_compartments(c: &mut Criterion) {
    let mut group = c.benchmark_group("c6_compartments");
    group.sample_size(20);

    group.bench_function("tyche_create_destroy", |b| {
        b.iter_batched(
            boot,
            |mut m| {
                let sb =
                    libtyche::Sandbox::create(&mut m, 0, SCRATCH, Some(WINDOW)).expect("create");
                sb.destroy(&mut m, 0).expect("destroy");
            },
            criterion::BatchSize::SmallInput,
        );
    });

    group.bench_function("tyche_call", |b| {
        let mut m = boot();
        let sb = libtyche::Sandbox::create(&mut m, 0, SCRATCH, Some(WINDOW)).expect("create");
        b.iter(|| {
            sb.run(&mut m, 0, |ctx| {
                ctx.write(SCRATCH.0, b"work")?;
                ctx.write(WINDOW.0, b"result")
            })
            .expect("run")
        });
    });

    group.bench_function("process_create_destroy", |b| {
        b.iter(|| {
            let p = ProcessSim::create(ProcessCosts::default(), 0x4000);
            p.destroy()
        });
    });

    group.bench_function("process_call", |b| {
        let mut p = ProcessSim::create(ProcessCosts::default(), 0x4000);
        b.iter(|| p.call(b"work", |mem| mem[0] ^= 1));
    });

    group.finish();
}

criterion_group!(benches, bench_compartments);
criterion_main!(benches);
