//! C11 — kernel driver dispatch: direct vs sandboxed, per request size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tyche_bench::boot;
use tyche_guest::driver::{DriverHost, DriverRequest, XorBlockDriver};

const WINDOW: (u64, u64) = (0x30_0000, 0x30_4000);
const SCRATCH: (u64, u64) = (0x31_0000, 0x31_4000);

fn bench_driver(c: &mut Criterion) {
    let mut group = c.benchmark_group("c11_driver_dispatch");
    group.sample_size(20);

    for &len in &[64u64, 1024, 4096] {
        group.bench_with_input(BenchmarkId::new("direct", len), &len, |b, &len| {
            let mut m = boot();
            m.dom_write(0, WINDOW.0, &vec![0x5a; len as usize])
                .expect("stage");
            let host = DriverHost::Direct;
            let mut drv = XorBlockDriver { key: 0x3c };
            b.iter(|| {
                host.dispatch(
                    &mut m,
                    0,
                    &mut drv,
                    DriverRequest {
                        op: 1,
                        addr: WINDOW.0,
                        len,
                    },
                )
                .expect("dispatch")
            });
        });

        group.bench_with_input(BenchmarkId::new("sandboxed", len), &len, |b, &len| {
            let mut m = boot();
            m.dom_write(0, WINDOW.0, &vec![0x5a; len as usize])
                .expect("stage");
            let host = DriverHost::sandboxed(&mut m, 0, SCRATCH, WINDOW).expect("host");
            let mut drv = XorBlockDriver { key: 0x3c };
            b.iter(|| {
                host.dispatch(
                    &mut m,
                    0,
                    &mut drv,
                    DriverRequest {
                        op: 1,
                        addr: WINDOW.0,
                        len,
                    },
                )
                .expect("dispatch")
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_driver);
criterion_main!(benches);
