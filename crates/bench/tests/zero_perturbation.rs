//! Zero-perturbation property: recording the trace must not change
//! what the system does — only what it remembers.
//!
//! The trace layer's contract is that `emit` charges no model cycles
//! and takes no lock the hot path can observe, so a traced run and an
//! untraced run of the same fuzz seed must be *the same execution*:
//! identical call-by-call outcomes, identical fault and quarantine
//! counts, identical final engine states, and identical attested
//! digests. Seed 13 is the campaign's quarantine witness (it exercises
//! fault plans, shootdowns, and at least one quarantine), which makes
//! it the strongest single-seed probe of the property.

use tyche_bench::fuzz::{self, FuzzConfig};

const CONFIG: FuzzConfig = FuzzConfig {
    seed: 13,
    calls: 1_200,
    faults: true,
};

#[test]
fn traced_and_untraced_runs_are_the_same_execution() {
    let traced = fuzz::run_traced(CONFIG);
    let untraced = fuzz::run_untraced(CONFIG);

    // Same behaviour, call by call.
    let (t, u) = (&traced.report, &untraced.report);
    assert_eq!(t.ok, u.ok, "ok counts diverged");
    assert_eq!(t.refused, u.refused, "refusal counts diverged");
    assert_eq!(t.malformed, u.malformed, "malformed counts diverged");
    assert_eq!(t.accesses, u.accesses, "access counts diverged");
    assert_eq!(t.faults_fired, u.faults_fired, "fault firings diverged");
    assert_eq!(t.quarantines, u.quarantines, "quarantine counts diverged");
    assert_eq!(t.audit_failures, u.audit_failures, "audit verdicts diverged");

    // Same attested digest — the report digest covers the engine's
    // final capability state, so matching digests mean the observer
    // did not perturb the observed.
    assert_eq!(t.trace, u.trace, "state digests diverged");
    assert_eq!(traced.x86_engine, untraced.x86_engine, "x86 engines diverged");
    assert_eq!(
        traced.riscv_engine, untraced.riscv_engine,
        "riscv engines diverged"
    );

    // The traced run actually recorded something (and it was clean);
    // the untraced run recorded nothing. Observability is additive.
    assert_eq!(traced.phases.len(), 2, "x86 and riscv phases drained");
    for phase in &traced.phases {
        assert!(!phase.log.is_empty(), "{} phase recorded events", phase.name);
        assert!(
            phase.findings.is_empty(),
            "{} phase RV findings: {:?}",
            phase.name,
            phase.findings
        );
    }
    for phase in &untraced.phases {
        assert!(
            phase.log.is_empty(),
            "untraced {} phase recorded {} events",
            phase.name,
            phase.log.len()
        );
    }
}

#[test]
fn traced_replay_reproduces_event_streams_and_chains() {
    let a = fuzz::run_traced(CONFIG);
    let b = fuzz::run_traced(CONFIG);
    assert_eq!(a.phases.len(), b.phases.len());
    for (pa, pb) in a.phases.iter().zip(&b.phases) {
        assert_eq!(pa.name, pb.name);
        assert_eq!(
            pa.log.len(),
            pb.log.len(),
            "{} event counts diverged across replays",
            pa.name
        );
        assert_eq!(pa.chain, pb.chain, "{} chain diverged across replays", pa.name);
    }
}
