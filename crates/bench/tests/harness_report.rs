//! End-to-end tests for the process-based bench harness and the
//! `repro report` diff/check layer: the child-line protocol survives a
//! real process boundary, corrupted payloads are caught by digest, the
//! regression flag trips in both directions, and a smoke run can never
//! clobber a committed full artifact.

use std::path::PathBuf;
use std::process::Command;

use tyche_bench::harness::{self, ChildLine, Family};
use tyche_bench::histogram::Histogram;
use tyche_bench::json::{self, Json};

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tyche-harness-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

// ---------------------------------------------------------------------
// Histogram oracle: percentiles vs an exact sorted-vector reference
// ---------------------------------------------------------------------

/// Log-bucketed percentiles may only overstate, and by at most the
/// bucket's relative width (1/32), compared to the exact quantile of
/// the recorded values — including across merged histograms.
#[test]
fn percentiles_match_sorted_vector_oracle_across_merge() {
    // Deterministic LCG so the test is reproducible.
    let mut state = 0x2545f4914f6cdd1du64;
    let mut next = || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        // Spread samples across several orders of magnitude.
        (state >> 33) % 1_000_000 + 1
    };
    let mut parts = [Histogram::new(), Histogram::new(), Histogram::new()];
    let mut exact: Vec<u64> = Vec::new();
    for (i, part) in parts.iter_mut().enumerate() {
        for _ in 0..(500 + i * 311) {
            let v = next();
            part.record(v);
            exact.push(v);
        }
    }
    let mut merged = Histogram::new();
    for part in &parts {
        merged.merge_from(part);
    }
    exact.sort_unstable();
    assert_eq!(merged.count(), exact.len() as u64);
    assert_eq!(merged.min_ns(), exact[0]);
    assert_eq!(merged.max_ns(), *exact.last().unwrap());
    for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
        let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
        let truth = exact[rank - 1];
        let reported = merged.percentile(q);
        assert!(
            reported >= truth,
            "p{q}: quantisation must not understate ({reported} < {truth})"
        );
        let bound = truth + truth / 32 + 1;
        assert!(
            reported <= bound,
            "p{q}: {reported} exceeds relative-error bound {bound} (exact {truth})"
        );
    }
}

// ---------------------------------------------------------------------
// Child-line digest: seeded corruption must be caught
// ---------------------------------------------------------------------

fn sample_child_line() -> ChildLine {
    let mut h = Histogram::new();
    for v in [100u64, 250, 250, 999, 5000, 123_456] {
        h.record(v);
    }
    let mut h2 = Histogram::new();
    h2.record_n(42, 16);
    ChildLine {
        id: "hotpath/revocation/fanout=16".into(),
        seed: 7,
        det: vec![("before_cycles".into(), 500), ("after_cycles".into(), 250)],
        row: json::parse(r#"{"name": "revocation", "fanout": 16}"#).unwrap(),
        hists: vec![("op".into(), h), ("aux".into(), h2)],
    }
}

#[test]
fn child_line_roundtrips() {
    let line = sample_child_line();
    let back = ChildLine::parse(&line.emit()).expect("roundtrip");
    assert_eq!(back.id, line.id);
    assert_eq!(back.seed, line.seed);
    assert_eq!(back.det, line.det);
    assert_eq!(back.hists.len(), 2);
    assert_eq!(back.hists[0].1.count(), line.hists[0].1.count());
}

/// Flip digits inside the hists payload at several seeded positions;
/// every corruption that still parses as JSON must be rejected by the
/// digest, never silently accepted with different counts.
#[test]
fn child_line_digest_catches_seeded_corruption() {
    let line = sample_child_line();
    let emitted = line.emit();
    let hists_at = emitted.find("\"hists\"").expect("hists section");
    let digest_at = emitted.find("\"digest\"").expect("digest section");
    let bytes = emitted.as_bytes();
    let mut caught = 0usize;
    let mut candidates = 0usize;
    for seed in 0..64u64 {
        let pos = hists_at + (seed as usize * 2654435761 % (digest_at - hists_at));
        let b = bytes[pos];
        if !b.is_ascii_digit() {
            continue;
        }
        let flipped = if b == b'9' { b'1' } else { b + 1 };
        let mut corrupted = emitted.clone().into_bytes();
        corrupted[pos] = flipped;
        let corrupted = String::from_utf8(corrupted).unwrap();
        candidates += 1;
        match ChildLine::parse(&corrupted) {
            Err(e) => {
                if e.contains("digest") {
                    caught += 1;
                }
                // Structural parse errors are fine too: the corruption
                // did not survive to the histogram layer.
            }
            Ok(back) => {
                // A parse that still succeeds must be byte-identical in
                // payload — i.e. the flip landed outside the digested
                // region (it cannot: everything between the markers is
                // hists content). Fail loudly.
                panic!(
                    "corrupted line at byte {pos} parsed successfully (id {})",
                    back.id
                );
            }
        }
    }
    assert!(candidates >= 10, "corruption oracle needs digit positions to flip");
    assert!(caught >= candidates / 2, "digest caught {caught}/{candidates} corruptions");
}

// ---------------------------------------------------------------------
// `repro report`: the regression flag must trip both ways
// ---------------------------------------------------------------------

fn hotpath_artifact(p50: u64, after: u64) -> String {
    format!(
        r#"{{"schema": "tyche-bench-hotpath/v2", "mode": "full", "benches": [
  {{"name": "transitions", "fanout": 1, "after": {after},
    "latency": {{"p50": {p50}, "p99": {}, "p999": {}, "max": {}}}}}
]}}"#,
        p50 * 2,
        p50 * 3,
        p50 * 4
    )
}

#[test]
fn report_exits_nonzero_on_regression_and_zero_on_improvement() {
    let old = tmp_path("report_old.json");
    let new_bad = tmp_path("report_new_bad.json");
    let new_good = tmp_path("report_new_good.json");
    std::fs::write(&old, hotpath_artifact(1000, 500)).unwrap();
    std::fs::write(&new_bad, hotpath_artifact(1500, 500)).unwrap();
    std::fs::write(&new_good, hotpath_artifact(700, 400)).unwrap();

    // p50 regressed 50% > 10% default threshold: non-zero exit.
    let bad = repro().arg("report").arg(&old).arg(&new_bad).output().expect("run report");
    assert!(!bad.status.success(), "50% latency regression must fail the report");
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(stdout.contains("REGRESSIONS"), "missing regression banner:\n{stdout}");

    // Everything improved: clean exit.
    let good = repro().arg("report").arg(&old).arg(&new_good).output().expect("run report");
    assert!(good.status.success(), "improvement must pass: {}", String::from_utf8_lossy(&good.stdout));

    // The threshold is honored in both directions around the same diff:
    // a 50% move passes at --threshold 60 and fails at --threshold 40.
    let loose = repro()
        .args(["report", old.to_str().unwrap(), new_bad.to_str().unwrap(), "--threshold", "60"])
        .output()
        .expect("run report");
    assert!(loose.status.success(), "50% move must pass a 60% threshold");
    let tight = repro()
        .args(["report", old.to_str().unwrap(), new_bad.to_str().unwrap(), "--threshold", "40"])
        .output()
        .expect("run report");
    assert!(!tight.status.success(), "50% move must fail a 40% threshold");
}

#[test]
fn report_diff_library_flags_directions_correctly() {
    let old = json::parse(&hotpath_artifact(1000, 500)).unwrap();
    let worse = json::parse(&hotpath_artifact(1300, 500)).unwrap();
    let better = json::parse(&hotpath_artifact(600, 500)).unwrap();
    let out = harness::report_diff(&old, &worse, 10.0).unwrap();
    // p99 is derived from p50 in the fixture, so both latency metrics
    // regress together; `after` is unchanged and must not be flagged.
    assert_eq!(out.regressions.len(), 2, "p50 and p99 both moved +30%");
    assert!(out.regressions.iter().any(|r| r.contains("latency.p50")));
    assert!(out.regressions.iter().all(|r| !r.contains("after")));
    let out = harness::report_diff(&old, &better, 10.0).unwrap();
    assert!(out.regressions.is_empty());
    assert!(out.improvements >= 1);
}

// ---------------------------------------------------------------------
// Smoke-clobber protection
// ---------------------------------------------------------------------

#[test]
fn harness_smoke_refuses_to_overwrite_full_artifact() {
    let path = tmp_path("committed_full.json");
    let committed = r#"{"schema": "tyche-bench-hotpath/v2", "mode": "full", "benches": []}"#;
    std::fs::write(&path, committed).unwrap();
    // The preflight fires before any child spawns, so this is instant.
    let out = repro()
        .args(["harness", "--suite", "hotpath", "--smoke", "--out", path.to_str().unwrap()])
        .output()
        .expect("run harness");
    assert!(!out.status.success(), "smoke harness must refuse a full-artifact path");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("refusing to overwrite"), "unexpected stderr:\n{stderr}");
    assert_eq!(
        std::fs::read_to_string(&path).unwrap(),
        committed,
        "the committed artifact must be untouched"
    );
}

#[test]
fn bench_json_smoke_leaves_committed_artifact_untouched() {
    // `repro bench --json --smoke` with no --out must resolve into
    // target/, never the committed workspace-root artifact.
    let workspace = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let committed = workspace.join("BENCH_hotpath.json");
    let before = std::fs::read_to_string(&committed).ok();
    let out = repro().args(["bench", "--json", "--smoke"]).output().expect("run bench smoke");
    assert!(out.status.success(), "bench smoke failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("BENCH_hotpath.smoke.json"),
        "smoke run must write the .smoke.json path:\n{stdout}"
    );
    assert_eq!(
        std::fs::read_to_string(&committed).ok(),
        before,
        "committed BENCH_hotpath.json changed under a smoke run"
    );
    // Family naming invariants the resolver depends on.
    assert_eq!(Family::Hotpath.artifact_name(), "BENCH_hotpath.json");
    assert_eq!(Family::Smp.artifact_name(), "BENCH_smp.json");
    assert_eq!(Family::Scale.artifact_name(), "BENCH_scale.json");
}

// ---------------------------------------------------------------------
// Process boundary: harness-child and a small orchestration
// ---------------------------------------------------------------------

#[test]
fn harness_child_emits_a_parseable_verified_line() {
    let out = repro()
        .args(["harness-child", "transitions", "--id", "hotpath/transitions", "seed=3", "iters=32"])
        .output()
        .expect("spawn child");
    assert!(out.status.success(), "child failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find(|l| l.starts_with("{\"schema\": \"tyche-harness-child/"))
        .expect("child line on stdout");
    let parsed = ChildLine::parse(line).expect("digest-verified parse");
    assert_eq!(parsed.id, "hotpath/transitions");
    assert_eq!(parsed.seed, 3);
    assert!(parsed.hists.iter().any(|(name, h)| name == "op" && h.count() > 0));
    assert!(parsed.det.iter().any(|(k, _)| k == "mediated_cycles"));
}

#[test]
fn end_to_end_smoke_orchestration_writes_checkable_artifact() {
    let path = tmp_path("smoke_hotpath.json");
    let _ = std::fs::remove_file(&path);
    let out = repro()
        .args(["harness", "--suite", "hotpath", "--smoke", "--out", path.to_str().unwrap()])
        .output()
        .expect("run harness");
    assert!(out.status.success(), "harness failed: {}", String::from_utf8_lossy(&out.stderr));
    let doc = std::fs::read_to_string(&path).expect("artifact written");
    let parsed = json::parse(&doc).expect("artifact parses");
    assert_eq!(
        parsed.path("schema").and_then(Json::as_str),
        Some("tyche-bench-hotpath/v2")
    );
    assert_eq!(parsed.path("mode").and_then(Json::as_str), Some("smoke"));
    assert_eq!(
        parsed.path("manifest.generator").and_then(Json::as_str),
        Some("harness")
    );
    let benches = parsed.get("benches").and_then(Json::as_arr).expect("benches");
    assert_eq!(benches.len(), 4);
    for row in benches {
        let p50 = row.path("latency.p50").and_then(Json::as_u64);
        let p999 = row.path("latency.p999").and_then(Json::as_u64);
        assert!(p50.is_some() && p999.is_some(), "row missing percentiles: {}", row.to_compact());
        assert!(p999 >= p50, "p999 below p50");
    }
    let children = parsed.path("manifest.children").and_then(Json::as_arr).expect("children");
    assert_eq!(children.len(), 8, "4 scenarios x 2 invocations");

    // A smoke artifact must fail `report --check` (mode gate)...
    let check = repro().args(["report", "--check", path.to_str().unwrap()]).output().unwrap();
    assert!(!check.status.success(), "smoke artifact must not pass --check");
    // ...but self-diffs clean through `repro report`.
    let diff = repro()
        .args(["report", path.to_str().unwrap(), path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(diff.status.success(), "self-diff regressed: {}", String::from_utf8_lossy(&diff.stdout));
}
