//! The paper's figures as executable scenarios.
//!
//! [`fig2`] builds Figure 2 end to end: a customer processes sensitive
//! data through an *untrusted* SaaS application, trusting only a crypto
//! engine enclave, an isolated GPU, and the attested sharing topology.
//! [`fig4_view`] reconstructs Figure 4's memory view (domain-to-region
//! mappings with reference counts) from live monitor state.

use tyche_core::prelude::*;
use tyche_crypto::ChaChaRng;
use tyche_hw::device::{Gpu, KernelDesc};
use tyche_hw::iommu::DeviceId;
use tyche_monitor::attest::Verifier;
use tyche_monitor::boot::{expected_monitor_pcr, MONITOR_VERSION};
use tyche_monitor::{boot_x86, BootConfig, Monitor};

/// Physical layout of the Figure 2 deployment.
pub mod layout {
    /// Crypto-engine enclave private memory (keys live here).
    pub const CRYPTO: (u64, u64) = (0x10_0000, 0x10_4000);
    /// SaaS application enclave private memory.
    pub const APP: (u64, u64) = (0x20_0000, 0x20_8000);
    /// Shared window: app ↔ crypto engine (refcount 2).
    pub const APP_CRYPTO: (u64, u64) = (0x30_0000, 0x30_1000);
    /// Shared window: app ↔ GPU (refcount 2; the GPU side is a device
    /// context, counted via its owning domain).
    pub const APP_GPU: (u64, u64) = (0x31_0000, 0x31_2000);
    /// Untrusted network buffer: ciphertext handed back to the provider.
    pub const NET: (u64, u64) = (0x32_0000, 0x32_1000);
    /// The GPU's PCI id.
    pub const GPU_DEV: u16 = 0x0042;
}

/// The assembled Figure 2 deployment.
pub struct Fig2 {
    /// The machine, post-setup.
    pub monitor: Monitor,
    /// The cloud-provider/OS domain (untrusted).
    pub provider: DomainId,
    /// The crypto-engine enclave.
    pub crypto: DomainId,
    /// Transition capability into the crypto engine (held by provider —
    /// scheduling without trust).
    pub crypto_gate: CapId,
    /// The SaaS application enclave.
    pub app: DomainId,
    /// Transition capability into the app.
    pub app_gate: CapId,
    /// The GPU device model.
    pub gpu: Gpu,
    /// The GPU's isolated DMA domain.
    pub gpu_domain: DomainId,
}

/// Builds the Figure 2 deployment.
///
/// Trust topology (who can reach which bytes):
///
/// | region | provider | app | crypto | GPU | refcount |
/// |---|---|---|---|---|---|
/// | CRYPTO     | –   | – | ✓ | – | 1 |
/// | APP        | –   | ✓ | – | – | 1 |
/// | APP_CRYPTO | –   | ✓ | ✓ | – | 2 |
/// | APP_GPU    | –   | ✓ | – | ✓ | 2 |
/// | NET        | ✓   | ✓ | – | – | 2 |
///
/// # Panics
///
/// Panics when construction fails; the scenario is a fixture.
pub fn fig2() -> Fig2 {
    fig2_impl(false, true)
}

/// [`fig2`] without the untrusted NET share: every shared region is
/// between attested members, so the whole topology is verifiable with
/// [`tyche_monitor::attest::Verifier::verify_topology`].
pub fn fig2_without_net() -> Fig2 {
    fig2_impl(false, false)
}

/// A malicious variant of [`fig2`]: the provider keeps a read window
/// into the last page of the app's "confidential" memory (it *shares*
/// that page instead of granting it). Everything else is identical —
/// only the reference counts betray it, which is exactly what the
/// customer's verification checks.
pub fn fig2_with_spy_window() -> Fig2 {
    fig2_impl(true, true)
}

fn fig2_impl(spy_window: bool, with_net: bool) -> Fig2 {
    use layout::*;
    let mut m = boot_x86(BootConfig {
        devices: vec![GPU_DEV],
        ..Default::default()
    });
    let provider = m.engine.root().expect("booted");

    let mut client = libtyche::TycheClient::new(&mut m, 0);

    // --- The GPU's I/O domain: sees only the APP_GPU window. ---
    let (gpu_domain, _gpu_gate) = client.create_domain().expect("gpu domain");
    let gpu_win = client
        .carve(APP_GPU.0, APP_GPU.1)
        .expect("carve gpu window");
    // Shared: the app keeps access; grant comes later when the app's
    // share child is created from the same capability.
    client
        .share(
            gpu_win,
            gpu_domain,
            None,
            Rights::RW,
            RevocationPolicy::NONE,
        )
        .expect("share gpu window");
    let dev_cap = {
        let me = client.whoami();
        client
            .monitor
            .engine
            .caps_of(me)
            .iter()
            .find(|c| c.active && matches!(c.resource, Resource::Device(d) if d == GPU_DEV))
            .map(|c| c.id)
    }
    .expect("device cap");
    client
        .grant(dev_cap, gpu_domain, Rights::USE, RevocationPolicy::NONE)
        .expect("grant gpu");
    client.set_entry(gpu_domain, APP_GPU.0).expect("gpu entry");
    client
        .seal(gpu_domain, SealPolicy::strict())
        .expect("seal gpu");

    // --- The crypto-engine enclave. ---
    let (crypto, crypto_gate) = client.create_domain().expect("crypto domain");
    client
        .write(CRYPTO.0, b"crypto-engine code v1")
        .expect("load crypto code");
    client
        .record_content(crypto, CRYPTO.0, CRYPTO.0 + 0x1000)
        .expect("measure crypto");
    let crypto_mem = client.carve(CRYPTO.0, CRYPTO.1).expect("carve crypto");
    client
        .grant(crypto_mem, crypto, Rights::RWX, RevocationPolicy::OBFUSCATE)
        .expect("grant crypto");
    let app_crypto_win = client
        .carve(APP_CRYPTO.0, APP_CRYPTO.1)
        .expect("carve a-c window");
    client
        .share(
            app_crypto_win,
            crypto,
            None,
            Rights::RW,
            RevocationPolicy::NONE,
        )
        .expect("share a-c to crypto");
    share_core(&mut client, crypto, 0);
    client.set_entry(crypto, CRYPTO.0).expect("crypto entry");
    client
        .seal(crypto, SealPolicy::strict())
        .expect("seal crypto");

    // --- The SaaS application enclave. ---
    let (app, app_gate) = client.create_domain().expect("app domain");
    client
        .write(APP.0, b"saas-app code v1")
        .expect("load app code");
    client
        .record_content(app, APP.0, APP.0 + 0x1000)
        .expect("measure app");
    if spy_window {
        // The dishonest provider grants all but the last page and keeps a
        // shared read window into it.
        let app_mem = client.carve(APP.0, APP.1 - 0x1000).expect("carve app");
        client
            .grant(app_mem, app, Rights::RWX, RevocationPolicy::OBFUSCATE)
            .expect("grant app");
        let spy = client.carve(APP.1 - 0x1000, APP.1).expect("carve spy");
        client
            .share(spy, app, None, Rights::RW, RevocationPolicy::NONE)
            .expect("share spy");
    } else {
        let app_mem = client.carve(APP.0, APP.1).expect("carve app");
        client
            .grant(app_mem, app, Rights::RWX, RevocationPolicy::OBFUSCATE)
            .expect("grant app");
    }
    // Hand the app the *granted* side of each shared window: the provider
    // loses its own access, leaving refcount exactly 2.
    client
        .grant(app_crypto_win, app, Rights::RW, RevocationPolicy::ZERO)
        .expect("grant a-c");
    client
        .grant(gpu_win, app, Rights::RW, RevocationPolicy::ZERO)
        .expect("grant a-g");
    // The untrusted network buffer stays shared with the provider.
    if with_net {
        let net = client.carve(NET.0, NET.1).expect("carve net");
        client
            .share(net, app, None, Rights::RW, RevocationPolicy::NONE)
            .expect("share net");
    }
    share_core(&mut client, app, 0);
    client.set_entry(app, APP.0).expect("app entry");
    client.seal(app, SealPolicy::strict()).expect("seal app");

    let gpu = Gpu::new(DeviceId(GPU_DEV));
    Fig2 {
        monitor: m,
        provider,
        crypto,
        crypto_gate,
        app,
        app_gate,
        gpu,
        gpu_domain,
    }
}

fn share_core(client: &mut libtyche::TycheClient<'_>, target: DomainId, core: usize) {
    let cap = {
        let me = client.whoami();
        client
            .monitor
            .engine
            .caps_of(me)
            .iter()
            .find(|c| c.active && matches!(c.resource, Resource::CpuCore(n) if n == core))
            .map(|c| c.id)
    }
    .expect("core cap");
    client
        .share(cap, target, None, Rights::USE, RevocationPolicy::NONE)
        .expect("share core");
}

/// The customer's verification step: quote + both enclave reports, with
/// the exact sharing topology asserted. Returns `true` when the customer
/// would proceed to provision the key.
pub fn fig2_customer_verifies(f: &mut Fig2) -> bool {
    use layout::*;
    let verifier = Verifier {
        tpm_key: f.monitor.machine.tpm.attestation_key(),
        expected_monitor_pcr: expected_monitor_pcr(MONITOR_VERSION),
        monitor_key: f.monitor.report_key(),
    };
    let qn = [1u8; 32];
    let quote = f.monitor.machine_quote(qn).expect("quote");
    let rn = [2u8; 32];
    let crypto_report = f
        .monitor
        .attest_domain(f.crypto, rn)
        .expect("crypto report");
    let app_report = f.monitor.attest_domain(f.app, rn).expect("app report");

    let Ok(crypto_att) = verifier.verify(&quote, &qn, &crypto_report, &rn, None) else {
        return false;
    };
    let Ok(app_att) = verifier.verify(&quote, &qn, &app_report, &rn, None) else {
        return false;
    };
    // Figure 2's condition: resources "either shared among themselves
    // (ref. count 2) or exclusively owned (ref. count 1)".
    crypto_att.sharing_is_exactly(&[(APP_CRYPTO.0, APP_CRYPTO.1, 2)])
        && app_att.sharing_is_exactly(&[
            (APP_CRYPTO.0, APP_CRYPTO.1, 2),
            (APP_GPU.0, APP_GPU.1, 2),
            (NET.0, NET.1, 2),
        ])
}

/// Runs the confidential pipeline once: the customer's `data` enters the
/// app enclave, is processed on the GPU, encrypted by the crypto engine
/// with `key`, and the ciphertext lands in the untrusted NET buffer.
/// Returns the ciphertext the provider sees.
///
/// # Panics
///
/// Panics if any step faults; the scenario is a fixture.
pub fn fig2_run_pipeline(f: &mut Fig2, key: u64, data: &[u8; 32]) -> Vec<u8> {
    use layout::*;
    let m = &mut f.monitor;
    // Customer key provisioning: enters the crypto engine (the gate is
    // scheduling-only; the write happens as the enclave).
    let mut client = libtyche::TycheClient::new(m, 0);
    client.enter(f.crypto_gate).expect("enter crypto");
    client
        .write(CRYPTO.0 + 0x2000, &key.to_le_bytes())
        .expect("provision key");
    client.ret().expect("exit crypto");

    // The app receives the customer payload into its private memory and
    // stages it in the GPU window.
    let mut client = libtyche::TycheClient::new(m, 0);
    client.enter(f.app_gate).expect("enter app");
    client.write(APP.0 + 0x1000, data).expect("stage input");
    client.write(APP_GPU.0, data).expect("to gpu window");
    client.ret().expect("exit app");

    // GPU kernel: transforms in place within its window (DMA through the
    // I/O-MMU; its context is the GPU domain's EPT).
    f.gpu
        .run_kernel(
            &mut m.machine.iommu,
            &mut m.machine.mem,
            KernelDesc {
                input: tyche_hw::addr::GuestPhysAddr::new(APP_GPU.0),
                output: tyche_hw::addr::GuestPhysAddr::new(APP_GPU.0 + 0x1000),
                len: 32,
            },
        )
        .expect("gpu kernel");

    // The app moves the GPU result to the crypto window.
    let mut client = libtyche::TycheClient::new(m, 0);
    client.enter(f.app_gate).expect("enter app");
    let mut gpu_out = [0u8; 32];
    client
        .read(APP_GPU.0 + 0x1000, &mut gpu_out)
        .expect("read gpu result");
    client
        .write(APP_CRYPTO.0, &gpu_out)
        .expect("to crypto window");

    // Nested call into the crypto engine? The app holds no gate; the
    // provider schedules it. Return to provider first.
    client.ret().expect("exit app");
    let mut client = libtyche::TycheClient::new(m, 0);
    client.enter(f.crypto_gate).expect("enter crypto");
    let mut plain = [0u8; 32];
    client
        .read(APP_CRYPTO.0, &mut plain)
        .expect("read plaintext");
    let mut kb = [0u8; 8];
    client.read(CRYPTO.0 + 0x2000, &mut kb).expect("read key");
    let ct = encrypt(u64::from_le_bytes(kb), &plain);
    client.write(APP_CRYPTO.0, &ct).expect("write ct");
    client.ret().expect("exit crypto");

    // The app copies ciphertext to the untrusted network buffer.
    let mut client = libtyche::TycheClient::new(m, 0);
    client.enter(f.app_gate).expect("enter app");
    let mut ct = [0u8; 32];
    client.read(APP_CRYPTO.0, &mut ct).expect("read ct");
    client.write(NET.0, &ct).expect("to net");
    client.ret().expect("exit app");

    // The provider "transmits" it: reads the NET buffer (allowed).
    let mut out = vec![0u8; 32];
    m.dom_read(0, NET.0, &mut out)
        .expect("provider reads ciphertext");
    out
}

/// The stream cipher the crypto engine applies (ChaCha20 keystream XOR).
pub fn encrypt(key: u64, data: &[u8; 32]) -> [u8; 32] {
    let mut rng = ChaChaRng::from_seed(key);
    let mut ks = [0u8; 32];
    rng.fill_bytes(&mut ks);
    let mut out = [0u8; 32];
    for i in 0..32 {
        out[i] = data[i] ^ ks[i];
    }
    out
}

/// What the customer expects the pipeline to produce for `data` under
/// `key`: GPU transform then encryption.
pub fn fig2_expected(key: u64, data: &[u8; 32]) -> [u8; 32] {
    let mut transformed = [0u8; 32];
    for (i, b) in data.iter().enumerate() {
        transformed[i] = Gpu::transform(*b);
    }
    encrypt(key, &transformed)
}

/// One row of the Figure 4 memory view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fig4Row {
    /// Region `[start, end)`.
    pub region: (u64, u64),
    /// Domains with access.
    pub domains: Vec<DomainId>,
    /// Reference count (distinct domains).
    pub refcount: usize,
}

/// Reconstructs the Figure 4 view for the given regions from live
/// monitor state.
pub fn fig4_view(m: &Monitor, regions: &[(u64, u64)]) -> Vec<Fig4Row> {
    regions
        .iter()
        .map(|&(s, e)| {
            let mut domains: Vec<DomainId> = m
                .engine
                .active_mem_coverage()
                .into_iter()
                .filter(|(_, r)| r.overlaps(&MemRegion::new(s, e)))
                .map(|(d, _)| d)
                .collect();
            domains.sort();
            domains.dedup();
            Fig4Row {
                region: (s, e),
                refcount: domains.len(),
                domains,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_topology_matches_figure() {
        use layout::*;
        let f = fig2();
        let m = &f.monitor;
        // Exclusive confidential regions.
        assert!(m
            .engine
            .refcount_mem_full(MemRegion::new(CRYPTO.0, CRYPTO.1))
            .is_exclusive());
        assert!(m
            .engine
            .refcount_mem_full(MemRegion::new(APP.0, APP.1))
            .is_exclusive());
        // Shared windows: exactly 2.
        assert_eq!(
            m.engine
                .refcount_mem(MemRegion::new(APP_CRYPTO.0, APP_CRYPTO.1)),
            2
        );
        assert_eq!(
            m.engine.refcount_mem(MemRegion::new(APP_GPU.0, APP_GPU.1)),
            2
        );
        assert_eq!(m.engine.refcount_mem(MemRegion::new(NET.0, NET.1)), 2);
        assert!(tyche_core::audit::audit(&m.engine).is_empty());
    }

    #[test]
    fn fig2_customer_accepts() {
        let mut f = fig2();
        assert!(fig2_customer_verifies(&mut f));
    }

    #[test]
    fn fig2_pipeline_end_to_end() {
        let mut f = fig2();
        assert!(fig2_customer_verifies(&mut f));
        let data = *b"customer sensitive data 32 byte!";
        let key = 0xfeed_f00d_dead_beef;
        let ct = fig2_run_pipeline(&mut f, key, &data);
        assert_eq!(
            &ct[..],
            &fig2_expected(key, &data)[..],
            "customer decrypts correctly"
        );
        // The ciphertext is NOT the plaintext or the transform.
        assert_ne!(&ct[..], &data[..]);
        // The provider saw only ciphertext: it cannot read any
        // confidential buffer.
        let m = &mut f.monitor;
        assert!(
            m.dom_read(0, layout::CRYPTO.0 + 0x2000, &mut [0u8; 8])
                .is_err(),
            "key safe"
        );
        assert!(
            m.dom_read(0, layout::APP.0 + 0x1000, &mut [0u8; 4])
                .is_err(),
            "input safe"
        );
        assert!(
            m.dom_read(0, layout::APP_CRYPTO.0, &mut [0u8; 4]).is_err(),
            "window safe"
        );
    }

    #[test]
    fn fig2_gpu_cannot_reach_beyond_window() {
        let mut f = fig2();
        // A malicious GPU kernel tries to DMA out of its window.
        let err = f
            .gpu
            .run_kernel(
                &mut f.monitor.machine.iommu,
                &mut f.monitor.machine.mem,
                KernelDesc {
                    input: tyche_hw::addr::GuestPhysAddr::new(layout::APP_GPU.0),
                    output: tyche_hw::addr::GuestPhysAddr::new(layout::CRYPTO.0),
                    len: 16,
                },
            )
            .unwrap_err();
        assert!(err.write);
    }

    #[test]
    fn fig4_view_reconstructs() {
        use layout::*;
        let f = fig2();
        let rows = fig4_view(&f.monitor, &[CRYPTO, APP, APP_CRYPTO, APP_GPU, NET]);
        assert_eq!(rows[0].refcount, 1);
        assert_eq!(rows[1].refcount, 1);
        assert_eq!(rows[2].refcount, 2);
        assert_eq!(rows[3].refcount, 2);
        assert_eq!(rows[4].refcount, 2);
        assert_eq!(rows[2].domains, {
            let mut v = vec![f.app, f.crypto];
            v.sort();
            v
        });
    }
}
