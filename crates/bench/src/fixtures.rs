//! Boot helpers and canned domain constructions shared by benches,
//! examples, and the repro harness.

use tyche_core::prelude::*;
use tyche_monitor::{boot_x86, BootConfig, Monitor};

/// Boots the default x86 machine.
pub fn boot() -> Monitor {
    boot_x86(BootConfig::default())
}

/// Boots an x86 machine with `devices` present.
pub fn boot_with_devices(devices: Vec<u16>) -> Monitor {
    boot_x86(BootConfig {
        devices,
        ..Default::default()
    })
}

/// From the domain running on `core`: creates a child domain with
/// `[base, base+len)` granted RWX (zero-on-revoke), the listed cores
/// shared, entry at `base`, sealed with `policy`. Returns `(domain,
/// transition cap)`.
///
/// # Panics
///
/// Panics when any step is refused — fixtures are for known-good
/// constructions; failures are test bugs.
pub fn spawn_sealed(
    m: &mut Monitor,
    core: usize,
    base: u64,
    len: u64,
    cores: &[usize],
    policy: SealPolicy,
) -> (DomainId, CapId) {
    let mut client = libtyche::TycheClient::new(m, core);
    let (domain, transition) = client.create_domain().expect("create");
    let cap = client.carve(base, base + len).expect("carve");
    client
        .grant(cap, domain, Rights::RWX, RevocationPolicy::ZERO)
        .expect("grant");
    for &c in cores {
        let core_cap = {
            let me = client.whoami();
            client
                .monitor
                .engine
                .caps_of(me)
                .iter()
                .find(|k| k.active && matches!(k.resource, Resource::CpuCore(n) if n == c))
                .map(|k| k.id)
        }
        .expect("core cap");
        client
            .share(core_cap, domain, None, Rights::USE, RevocationPolicy::NONE)
            .expect("share core");
    }
    client.set_entry(domain, base).expect("entry");
    client.seal(domain, policy).expect("seal");
    (domain, transition)
}

/// Builds a share chain of `depth` domains over one page starting from
/// the root; returns the first child capability (revoking it collapses
/// the chain). Used by the revocation benches.
pub fn share_chain(m: &mut Monitor, page: (u64, u64), depth: usize) -> CapId {
    let os = m.engine.root().expect("booted");
    let cap = {
        let mut client = libtyche::TycheClient::new(m, 0);
        client.carve(page.0, page.1).expect("carve")
    };
    let mut prev_domain = os;
    let mut prev_cap = cap;
    let mut first_child = None;
    for _ in 0..depth {
        let (d, _t) = m.engine.create_domain(prev_domain).expect("create");
        let child = m
            .engine
            .share(
                prev_domain,
                prev_cap,
                d,
                None,
                Rights::RW,
                RevocationPolicy::NONE,
            )
            .expect("share");
        if first_child.is_none() {
            first_child = Some(child);
        }
        prev_domain = d;
        prev_cap = child;
    }
    // Flush effects into the backend so hardware state is consistent.
    sync(m);
    first_child.expect("depth >= 1")
}

/// Applies any engine effects left by direct-engine manipulation in
/// fixtures (normal monitor calls do this themselves).
pub fn sync(m: &mut Monitor) {
    m.sync_effects().expect("fixture effects are realizable");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_sealed_is_enterable() {
        let mut m = boot();
        let (_d, t) = spawn_sealed(&mut m, 0, 0x10_0000, 0x1000, &[0], SealPolicy::strict());
        let mut client = libtyche::TycheClient::new(&mut m, 0);
        client.enter(t).unwrap();
        client.ret().unwrap();
    }

    #[test]
    fn share_chain_has_expected_refcount() {
        let mut m = boot();
        let _first = share_chain(&mut m, (0x20_0000, 0x20_1000), 10);
        assert_eq!(
            m.engine.refcount_mem(MemRegion::new(0x20_0000, 0x20_1000)),
            11
        );
    }
}
