//! Minimal JSON value model, parser, and writer.
//!
//! The workspace is fully self-contained (no serde), and until this
//! module the only way the bench layer could read its own artifacts
//! back was a substring scanner (`json_field_u64` in `bin/repro.rs`).
//! The harness needs real round-trips: child processes emit one JSON
//! line each, the orchestrator parses and re-serialises rows, and
//! `repro report` diffs two committed artifacts. This is a small
//! recursive-descent parser over the full JSON grammar with one
//! deliberate twist: numbers keep their **raw source text** instead of
//! being forced through `f64`, so u128 histogram sums and
//! already-rounded means like `833.33` survive a parse/write cycle
//! byte-for-byte.

use std::fmt::Write as _;

/// A parsed JSON value.
///
/// Object members keep their source order (`Vec` of pairs, not a map):
/// artifact files are diffed textually in CI, so serialisation must be
/// deterministic and order-preserving.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its raw source text (e.g. `"833.33"`).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered list of `(key, value)` members.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a member of an object by key. Returns `None` for
    /// non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Follows a `.`-separated path of object keys.
    pub fn path(&self, path: &str) -> Option<&Json> {
        let mut cur = self;
        for key in path.split('.') {
            cur = cur.get(key)?;
        }
        Some(cur)
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a `u128`, if it is a non-negative integer number.
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object members, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Serialises compactly in the artifact house style: `", "` between
    /// members/elements and `": "` after keys, no newlines.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(raw) => out.push_str(raw),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document. Trailing non-whitespace after the
/// top-level value is an error.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err("unexpected end of input".into());
    };
    match b {
        b'{' => parse_object(bytes, pos),
        b'[' => parse_array(bytes, pos),
        b'"' => parse_string(bytes, pos).map(Json::Str),
        b't' => parse_literal(bytes, pos, "true", Json::Bool(true)),
        b'f' => parse_literal(bytes, pos, "false", Json::Bool(false)),
        b'n' => parse_literal(bytes, pos, "null", Json::Null),
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        other => Err(format!("unexpected byte {:?} at offset {}", other as char, *pos)),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at offset {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_start = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    if *pos == digits_start {
        return Err(format!("number with no digits at offset {start}"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    let raw = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| "non-utf8 number".to_string())?;
    Ok(Json::Num(raw.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".into());
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        *pos += 4;
                        // Surrogate pairs never appear in our artifacts;
                        // map them to the replacement character rather
                        // than failing the whole parse.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape \\{}", other as char)),
                }
            }
            _ => {
                // Re-scan the UTF-8 sequence starting at b.
                let start = *pos - 1;
                let mut end = *pos;
                while end < bytes.len() && bytes[end] & 0xc0 == 0x80 {
                    end += 1;
                }
                let s = std::str::from_utf8(&bytes[start..end])
                    .map_err(|_| "non-utf8 string content".to_string())?;
                let c = s.chars().next().ok_or_else(|| "empty utf8 run".to_string())?;
                out.push(c);
                *pos = start + c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {}", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {}", *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_artifact_shapes() {
        let src = r#"{"schema": "tyche-bench-hotpath/v2", "mode": "full", "n": 1024, "f": 833.33, "big": 340282366920938463463374607431768211455, "ok": true, "none": null, "arr": [[3, 5], [7, 1]]}"#;
        let doc = parse(src).unwrap();
        assert_eq!(doc.to_compact(), src);
        assert_eq!(doc.get("n").unwrap().as_u64(), Some(1024));
        assert_eq!(doc.get("f").unwrap().as_f64(), Some(833.33));
        assert_eq!(doc.get("big").unwrap().as_u128(), Some(u128::MAX));
        assert_eq!(doc.path("arr").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn parses_nested_and_escapes() {
        let doc = parse(r#"{"a": {"b": {"c": "x\ny \"q\" A"}}}"#).unwrap();
        assert_eq!(doc.path("a.b.c").unwrap().as_str(), Some("x\ny \"q\" A"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("-").is_err());
    }

    #[test]
    fn whitespace_tolerant_parse_canonical_write() {
        let doc = parse(" {\n\t\"a\" : [ 1 ,2 ]\n} ").unwrap();
        assert_eq!(doc.to_compact(), r#"{"a": [1, 2]}"#);
    }
}
